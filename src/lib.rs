//! Ivy — sound program analysis for a Linux-like kernel.
//!
//! This is the umbrella crate of the workspace reproducing *"Beyond
//! Bug-Finding: Sound Program Analysis for Linux"* (HotOS 2007). It
//! re-exports the individual crates so downstream users can depend on a
//! single package:
//!
//! * [`cmir`] — the KC (kernel C subset) language front end.
//! * [`analysis`] — dataflow, points-to, call-graph, and summary
//!   infrastructure.
//! * [`engine`] — the parallel, incremental, plugin-based analysis engine
//!   all checkers run on.
//! * [`daemon`] — the resident analysis service: the engine behind a
//!   Unix-domain socket, with dependency-driven invalidation across edits.
//! * [`vm`] — the execution substrate (memory model, interpreter, cost model).
//! * [`deputy`] — the Deputy dependent type system (§2.1).
//! * [`ccount`] — CCount reference-count checking of manual memory
//!   management (§2.2).
//! * [`blockstop`] — BlockStop, no-blocking-with-interrupts-disabled (§2.3).
//! * [`kernelgen`] — the synthetic kernel corpus and workloads.
//! * [`oracle`] — the dynamic soundness oracle: VM-traced differential
//!   validation of every static analysis, with per-sensitivity precision.
//! * [`telemetry`] — zero-dependency structured tracing and metrics:
//!   spans, counters, Prometheus text, and Chrome trace-event export.
//! * [`core`] — the combined pipeline, experiment harness, annotation
//!   repository, and extension analyses.
//!
//! # Examples
//!
//! ```
//! use ivy::deputy::Deputy;
//! use ivy::cmir::parser::parse_program;
//!
//! let program = parse_program(
//!     "fn get(buf: u8 * count(n), n: u32, i: u32) -> u8 { return buf[i]; }",
//! )
//! .unwrap();
//! let conversion = Deputy::new().convert(&program);
//! assert!(conversion.report.accepted());
//! ```

#![warn(missing_docs)]

pub use ivy_analysis as analysis;
pub use ivy_blockstop as blockstop;
pub use ivy_ccount as ccount;
pub use ivy_cmir as cmir;
pub use ivy_core as core;
pub use ivy_daemon as daemon;
pub use ivy_deputy as deputy;
pub use ivy_engine as engine;
pub use ivy_kernelgen as kernelgen;
pub use ivy_oracle as oracle;
pub use ivy_telemetry as telemetry;
pub use ivy_vm as vm;
