//! Quickstart: annotate a buffer-handling routine, deputize it, and watch the
//! inserted run-time check catch an out-of-bounds access.
//!
//! Run with: `cargo run --example quickstart`

use ivy::cmir::parser::parse_program;
use ivy::cmir::pretty::pretty_program;
use ivy::deputy::Deputy;
use ivy::vm::{TrapKind, Value, Vm, VmConfig};

fn main() {
    let source = r#"
        #[allocator]
        extern fn kmalloc(size: u32, flags: u32) -> void *;
        extern fn kfree(p: void *);

        struct packet {
            len: u32;
            data: u8 * count(len);
        }

        fn packet_alloc(len: u32) -> struct packet * {
            let p: struct packet * = (kmalloc(sizeof(struct packet), 0) as struct packet *);
            p->len = len;
            p->data = (kmalloc(len, 0) as u8 *);
            return p;
        }

        fn packet_poke(p: struct packet * nonnull, index: u32, value: u8) {
            p->data[index] = value;
        }

        fn demo(index: u32) -> u32 {
            let p: struct packet * = packet_alloc(32);
            packet_poke(p, index, 7);
            let sum: u32 = (p->data[index % 32] as u32);
            kfree((p->data as void *));
            kfree((p as void *));
            return sum;
        }
    "#;

    let program = parse_program(source).expect("snippet parses");
    let conversion = Deputy::new().convert(&program);
    println!(
        "== Deputized program ==\n{}",
        pretty_program(&conversion.program)
    );
    println!(
        "Deputy inserted {} run-time check(s); {} site(s) discharged statically.\n",
        conversion.report.total_runtime_checks(),
        conversion.report.static_discharged
    );

    // A correct access runs unchanged.
    let mut vm = Vm::new(conversion.program.clone(), VmConfig::deputized()).unwrap();
    let ok = vm.run("demo", vec![Value::Int(5), Value::Int(0)]).unwrap();
    println!(
        "demo(5) = {ok} with {} checks executed, 0 failures",
        vm.stats.total_checks()
    );

    // An out-of-bounds access traps on the inserted check.
    let cfg = VmConfig {
        trap_on_check_failure: true,
        ..VmConfig::deputized()
    };
    let mut vm2 = Vm::new(conversion.program, cfg).unwrap();
    match vm2.run("demo", vec![Value::Int(40), Value::Int(0)]) {
        Err(e) if e.kind == TrapKind::CheckFailure => {
            println!("demo(40) trapped as expected: {e}");
        }
        other => println!("unexpected outcome: {other:?}"),
    }
}
