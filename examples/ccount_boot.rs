//! Reproduces the CCount experiments (§2.2): free verification across boot
//! and light use, before and after the source fixes, plus the fork and
//! module-loading overheads on UP and SMP kernels.
//!
//! Run with: `cargo run --release --example ccount_boot`

use ivy::core::experiments::{ccount_frees, ccount_overhead, Scale};

fn main() {
    let mut scale = Scale::paper();
    if cfg!(debug_assertions) {
        scale.kernel.boot_cycles = 16;
        scale.workload_factor = 0.1;
    }

    println!("Booting the CCount-instrumented kernel (boot + light use)...\n");
    let frees = ccount_frees(&scale);
    println!("Free verification (E3):");
    println!(
        "  unfixed kernel: {:>6} frees checked, {:>4} bad ({:.1}% good)",
        frees.unfixed.total(),
        frees.unfixed.bad,
        frees.unfixed.good_ratio() * 100.0
    );
    println!(
        "  fixed kernel:   {:>6} frees checked, {:>4} bad ({:.1}% good)",
        frees.fixed.total(),
        frees.fixed.bad,
        frees.fixed.good_ratio() * 100.0
    );
    println!(
        "  fixes applied:  {} pointer-nulling + {} delayed-free scopes\n",
        frees.null_fixes, frees.delayed_free_fixes
    );

    println!("CCount run-time overhead (E4):");
    let overhead = ccount_overhead(&scale);
    print!("{}", overhead.render());
}
