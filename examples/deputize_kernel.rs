//! Reproduces Table 1: relative performance of the deputized kernel on the
//! hbench-style workload suite, plus the annotation-burden numbers of §2.1.
//!
//! Run with: `cargo run --release --example deputize_kernel`

use ivy::core::experiments::{deputy_burden, table1_hbench, Scale};

fn main() {
    // Use the paper-shaped kernel but a reduced iteration factor so the
    // example finishes quickly even in debug builds.
    let mut scale = Scale::paper();
    scale.workload_factor = if cfg!(debug_assertions) { 0.1 } else { 0.5 };

    println!("Generating the synthetic kernel and running the hbench suite twice");
    println!("(baseline kernel vs. deputized kernel)...\n");
    let table = table1_hbench(&scale);
    println!("Table 1: Relative performance of the deputized kernel\n");
    println!("{}", table.render());
    println!("geometric mean: {:.2}", table.geomean());
    println!(
        "checks inserted: {} ({} optimised away), static discharge ratio {:.1}%\n",
        table.conversion.total_runtime_checks(),
        table.conversion.checks_optimized_away,
        table.conversion.static_ratio() * 100.0
    );

    let burden = deputy_burden(&scale);
    println!("Annotation burden (§2.1):");
    println!("  total lines:      {}", burden.burden.total_lines);
    println!(
        "  annotated lines:  {} ({:.2}%)",
        burden.burden.annotated_lines,
        burden.burden.annotated_fraction() * 100.0
    );
    println!(
        "  trusted lines:    {} ({:.2}%)",
        burden.burden.trusted_lines,
        burden.burden.trusted_fraction() * 100.0
    );
}
