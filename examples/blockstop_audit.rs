//! Reproduces the BlockStop experiment (§2.3): whole-kernel audit for
//! blocking calls in atomic context, classification of findings against the
//! seeded ground truth, false-positive silencing with run-time assertions,
//! and the points-to precision ablation.
//!
//! Run with: `cargo run --release --example blockstop_audit`

use ivy::core::experiments::{blockstop_results, pointsto_ablation, Scale};

fn main() {
    let scale = if cfg!(debug_assertions) {
        Scale::test()
    } else {
        Scale::paper()
    };

    println!("Running BlockStop over the synthetic kernel...\n");
    let r = blockstop_results(&scale);
    println!("BlockStop findings (E5):");
    println!("  findings (no assertions):      {}", r.findings_before);
    println!(
        "  real bugs covered:             {} of 2 seeded",
        r.real_bugs_found
    );
    println!("  false positives:               {}", r.false_positives);
    println!("  run-time assertions inserted:  {}", r.asserts_inserted);
    println!("  findings after assertions:     {}", r.findings_after);
    println!(
        "  assertion failures at runtime: {}",
        r.runtime_assert_failures
    );
    println!(
        "  observed runtime violations:   {}\n",
        r.runtime_violations
    );

    println!("Points-to precision ablation (E6):");
    println!(
        "  {:<16} {:>9} {:>16} {:>14}",
        "variant", "findings", "false positives", "mean fanout"
    );
    for row in pointsto_ablation(&scale) {
        println!(
            "  {:<16} {:>9} {:>16} {:>14.2}",
            row.sensitivity, row.findings, row.false_positives, row.mean_indirect_fanout
        );
    }
}
