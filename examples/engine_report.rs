//! Run the full checker fleet over a generated kernel through `ivy-engine`
//! and print the unified report: severity counts, the BlockStop findings,
//! cache behaviour on a re-run, and a SARIF snippet.
//!
//! Run with: `cargo run --release --example engine_report`

use ivy::blockstop::BlockStopChecker;
use ivy::ccount::CCountChecker;
use ivy::deputy::DeputyChecker;
use ivy::engine::{Engine, Severity};
use ivy::kernelgen::{KernelBuild, KernelConfig};
use std::sync::Arc;

fn main() {
    let build = KernelBuild::generate(&KernelConfig::small());
    let engine = Engine::new()
        .with_checker(Arc::new(DeputyChecker::new()))
        .with_checker(Arc::new(CCountChecker::new()))
        .with_checker(Arc::new(BlockStopChecker::new()));

    let report = engine.analyze(&build.program);
    println!(
        "analyzed {} functions ({} SCCs, {} bottom-up levels)",
        report.stats.functions, report.stats.sccs, report.stats.levels
    );
    for (severity, count) in report.severity_counts() {
        println!("  {:>8}: {count}", severity.name());
    }

    println!("\nBlockStop findings:");
    for d in report.by_checker("blockstop") {
        if d.severity == Severity::Error {
            println!("  [{}] {}", d.function, d.message);
            if let Some(hint) = &d.fix_hint {
                println!("      fix: {hint}");
            }
        }
    }

    let warm = engine.analyze(&build.program);
    println!(
        "\nre-analyzing the unchanged kernel: {} hits / {} misses ({:.0}% cached)",
        warm.stats.cache_hits,
        warm.stats.cache_misses,
        warm.stats.hit_rate() * 100.0
    );

    let sarif = report.to_sarif();
    let preview: String = sarif.lines().take(12).collect::<Vec<_>>().join("\n");
    println!("\nSARIF preview:\n{preview}\n...");
}
