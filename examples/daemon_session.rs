//! Cold→edit→warm session against the resident analysis daemon.
//!
//! Spawns an in-process daemon over the generated kernel corpus, then
//! drives one editing session through a client: a cold `analyze`, a
//! `notify_edit` of one leaf function, and a warm re-`analyze` that is
//! served almost entirely from resident state (dependency-driven
//! invalidation keeps everything outside the edited function's cone).
//!
//! Environment:
//! * `IVY_CACHE_DIR` — persist directory (default `target/ivy-cache`).
//! * `IVY_DAEMON_STRICT=1` — exit non-zero if any *clean* function was
//!   invalidated, if the warm re-serve rate drops below 90%, or if the
//!   daemon is unreachable (used by CI to pin the daemon's contract).
//! * `IVY_TRACE_OUT=<path>` — record spans for the whole session and
//!   export them as Chrome trace-event JSON at exit. In strict mode the
//!   exported trace must contain engine, points-to solver, and daemon
//!   request spans, or the session exits non-zero (the CI tracing gate).
//!
//! Run with: `cargo run --release --example daemon_session`.

use ivy::cmir::pretty::pretty_program;
use ivy::daemon::{Client, Daemon, DaemonConfig};
use ivy::kernelgen::{KernelBuild, KernelConfig};
use std::process::ExitCode;
use std::time::Instant;

fn fail(strict: bool, message: &str) -> ExitCode {
    eprintln!("error: {message}");
    if strict {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Exports the session's spans to `trace_out` and, in strict mode, checks
/// that the trace actually covers the serving path: at least one engine
/// span, one points-to solver span, and one daemon request span. A trace
/// with a silent hole in it is exactly the regression this gate exists for.
fn export_trace(strict: bool, trace_out: &str) -> Result<(), String> {
    let spans = ivy::telemetry::spans_snapshot();
    let covered = |prefix: &str| spans.iter().any(|s| s.cat.starts_with(prefix));
    if let Err(e) = ivy::telemetry::write_chrome_trace(std::path::Path::new(trace_out)) {
        return Err(format!("trace export to {trace_out} failed: {e}"));
    }
    println!("trace: {} spans -> {trace_out}", spans.len());
    if strict {
        for prefix in ["engine/", "pointsto/", "daemon/"] {
            if !covered(prefix) {
                return Err(format!(
                    "exported trace has no {prefix}* spans ({} spans total)",
                    spans.len()
                ));
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let strict = std::env::var("IVY_DAEMON_STRICT").as_deref() == Ok("1");
    let trace_out = std::env::var("IVY_TRACE_OUT").ok();
    if trace_out.is_some() {
        ivy::telemetry::enable_spans();
    }
    let cache = std::env::var("IVY_CACHE_DIR").unwrap_or_else(|_| "target/ivy-cache".to_string());
    let socket = std::env::temp_dir().join(format!("ivy-session-{}.sock", std::process::id()));

    let handle = match Daemon::spawn(DaemonConfig::new(&socket).with_cache_dir(&cache)) {
        Ok(handle) => handle,
        Err(e) => return fail(strict, &format!("daemon failed to start: {e}")),
    };
    let mut client = match Client::connect(handle.socket()) {
        Ok(client) => client,
        Err(e) => return fail(strict, &format!("daemon socket is dead: {e}")),
    };
    println!("daemon on {} (cache {cache})", handle.socket().display());

    let source = pretty_program(&KernelBuild::generate(&KernelConfig::small()).program);
    let edited = source.replacen("watchdog_ticks + 1", "watchdog_ticks + 2", 1);

    // 1. Cold request: the daemon pays the full solve (or reloads shards a
    //    previous session left behind).
    let start = Instant::now();
    let cold = match client.analyze(&source) {
        Ok(cold) => cold,
        Err(e) => return fail(strict, &format!("analyze failed: {e}")),
    };
    println!(
        "cold:  {:>8.4}s  {} diagnostics, {} functions, persist_hit_rate={:.3}",
        start.elapsed().as_secs_f64(),
        cold.diagnostic_count,
        cold.stats.functions,
        cold.stats.persist_hit_rate()
    );

    // 2. Edit one leaf function; only its dependency-reachable cone may be
    //    invalidated.
    let outcome = match client.notify_edit(&edited) {
        Ok(outcome) => outcome,
        Err(e) => return fail(strict, &format!("notify_edit failed: {e}")),
    };
    let inv = &outcome.invalidation;
    println!(
        "edit:  changed=[{}] invalidated={} retained={} revalidated={} (retention {:.1}%)",
        inv.changed_functions.join(", "),
        inv.invalidated,
        inv.retained,
        inv.revalidated,
        inv.retention_rate() * 100.0
    );
    if inv.changed_functions != ["watchdog_tick".to_string()] {
        return fail(
            strict,
            &format!(
                "clean functions are dirty at the input layer: {:?}",
                inv.changed_functions
            ),
        );
    }
    // The input-layer diff being right is not enough: the graph walk must
    // not have dragged the clean majority down with the seed.
    if inv.invalidated * 3 >= inv.invalidated + inv.retained {
        return fail(
            strict,
            &format!(
                "clean queries were invalidated: {} dropped vs {} retained",
                inv.invalidated, inv.retained
            ),
        );
    }

    // 3. Warm request over the edited program: resident state plus the
    //    persist shards serve everything outside the dirty cone.
    let start = Instant::now();
    let warm = match client.analyze(&edited) {
        Ok(warm) => warm,
        Err(e) => return fail(strict, &format!("warm analyze failed: {e}")),
    };
    let lookups = warm.stats.cache_hits + warm.stats.persist_hits + warm.stats.cache_misses;
    let served = warm.stats.cache_hits + warm.stats.persist_hits;
    let reserve_rate = if lookups == 0 {
        0.0
    } else {
        served as f64 / lookups as f64
    };
    println!(
        "warm:  {:>8.4}s  {} diagnostics, re-serve rate {:.1}%, pointsto batches regenerated {}",
        start.elapsed().as_secs_f64(),
        warm.diagnostic_count,
        reserve_rate * 100.0,
        warm.stats.pointsto_batches_generated
    );
    if reserve_rate < 0.9 {
        return fail(
            strict,
            &format!("warm re-serve rate {reserve_rate:.3} below 0.9"),
        );
    }

    let _ = client.shutdown();
    handle.join();
    if let Some(path) = &trace_out {
        if let Err(message) = export_trace(strict, path) {
            return fail(strict, &message);
        }
    }
    ExitCode::SUCCESS
}
