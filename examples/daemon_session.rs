//! Cold→edit→warm→explain session against the resident analysis daemon.
//!
//! Spawns an in-process daemon over the generated kernel corpus, then
//! drives one editing session through a client: a cold `analyze`, a
//! `notify_edit` of one leaf function, a warm re-`analyze` that is
//! served almost entirely from resident state (dependency-driven
//! invalidation keeps everything outside the edited function's cone),
//! and finally two `explain` round-trips — one for a raw points-to fact
//! of the kernel's VFS dispatch table, one for the fact a Deputy
//! diagnostic cites as evidence. The daemon runs with provenance on and
//! Deputy's indirect-annotation drift check enabled; the corpus gains a
//! small interface-drift snippet so that check has something to find.
//!
//! Environment:
//! * `IVY_CACHE_DIR` — persist directory (default `target/ivy-cache`).
//! * `IVY_DAEMON_STRICT=1` — exit non-zero if any *clean* function was
//!   invalidated, if the warm re-serve rate drops below 90%, if either
//!   `explain` returns an empty or non-replay-verified chain, or if the
//!   daemon is unreachable (used by CI to pin the daemon's contract).
//! * `IVY_TRACE_OUT=<path>` — record spans for the whole session and
//!   export them as Chrome trace-event JSON at exit. In strict mode the
//!   exported trace must contain engine, points-to solver, and daemon
//!   request spans, or the session exits non-zero (the CI tracing gate).
//!
//! Run with: `cargo run --release --example daemon_session`.

use ivy::cmir::pretty::pretty_program;
use ivy::daemon::{Client, Daemon, DaemonConfig};
use ivy::engine::json::Value;
use ivy::kernelgen::{KernelBuild, KernelConfig};
use std::process::ExitCode;
use std::time::Instant;

/// A driver with interface drift: two callbacks with incompatible
/// parameter signatures installed into one dispatch pointer. Appended to
/// the kernel corpus so Deputy's indirect-annotation check produces a
/// diagnostic whose cited points-to fact the session can `explain`.
const DRIFT_SNIPPET: &str = "\
global evdev_handler: fnptr(u8 *) -> void;\n\
fn evdev_handle_bytes(p: u8 *) { }\n\
fn evdev_handle_word(w: u32) { }\n\
fn evdev_install() { evdev_handler = evdev_handle_bytes; evdev_handler = evdev_handle_word; }\n\
fn evdev_fire(buf: u8[16]) { evdev_handler(&buf[0]); }\n";

fn fail(strict: bool, message: &str) -> ExitCode {
    eprintln!("error: {message}");
    if strict {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Exports the session's spans to `trace_out` and, in strict mode, checks
/// that the trace actually covers the serving path: at least one engine
/// span, one points-to solver span, and one daemon request span. A trace
/// with a silent hole in it is exactly the regression this gate exists for.
fn export_trace(strict: bool, trace_out: &str) -> Result<(), String> {
    let spans = ivy::telemetry::spans_snapshot();
    let covered = |prefix: &str| spans.iter().any(|s| s.cat.starts_with(prefix));
    if let Err(e) = ivy::telemetry::write_chrome_trace(std::path::Path::new(trace_out)) {
        return Err(format!("trace export to {trace_out} failed: {e}"));
    }
    println!("trace: {} spans -> {trace_out}", spans.len());
    if strict {
        for prefix in ["engine/", "pointsto/", "daemon/"] {
            if !covered(prefix) {
                return Err(format!(
                    "exported trace has no {prefix}* spans ({} spans total)",
                    spans.len()
                ));
            }
        }
    }
    Ok(())
}

/// Finds the first `deputy/indirect-annot` diagnostic in the stable
/// diagnostics JSON and returns the `(fn, lvalue, target)` triple its
/// `indirect-targets` evidence cites — the exact request `explain` needs
/// to expand the citation into a derivation chain.
fn deputy_citation(diagnostics_json: &str) -> Option<(String, String, String)> {
    let diags: Value = ivy::engine::json::from_str(diagnostics_json).ok()?;
    let diags = diags.as_array()?;
    for d in diags {
        if d.get("code").and_then(Value::as_str) != Some("deputy/indirect-annot") {
            continue;
        }
        for e in d
            .get("evidence")
            .and_then(Value::as_array)
            .into_iter()
            .flatten()
        {
            if e.get("kind").and_then(Value::as_str) != Some("indirect-targets") {
                continue;
            }
            let subject = e.get("subject").and_then(Value::as_str)?;
            let (func, lvalue) = subject.split_once("::")?;
            let detail = e.get("detail").and_then(Value::as_str)?;
            let target = detail.split(", ").next()?;
            return Some((func.to_string(), lvalue.to_string(), target.to_string()));
        }
    }
    None
}

fn main() -> ExitCode {
    let strict = std::env::var("IVY_DAEMON_STRICT").as_deref() == Ok("1");
    let trace_out = std::env::var("IVY_TRACE_OUT").ok();
    if trace_out.is_some() {
        ivy::telemetry::enable_spans();
    }
    let cache = std::env::var("IVY_CACHE_DIR").unwrap_or_else(|_| "target/ivy-cache".to_string());
    let socket = std::env::temp_dir().join(format!("ivy-session-{}.sock", std::process::id()));

    // Provenance on (the `explain` phase needs recorded derivations) and
    // Deputy's drift check on (it is the fleet checker whose diagnostic
    // the session explains).
    let deputy = ivy::deputy::DeputyConfig {
        check_indirect_annotations: true,
        ..Default::default()
    };
    let handle = match Daemon::spawn(
        DaemonConfig::new(&socket)
            .with_cache_dir(&cache)
            .with_provenance(true)
            .with_deputy(deputy),
    ) {
        Ok(handle) => handle,
        Err(e) => return fail(strict, &format!("daemon failed to start: {e}")),
    };
    let mut client = match Client::connect(handle.socket()) {
        Ok(client) => client,
        Err(e) => return fail(strict, &format!("daemon socket is dead: {e}")),
    };
    println!("daemon on {} (cache {cache})", handle.socket().display());

    let mut source = pretty_program(&KernelBuild::generate(&KernelConfig::small()).program);
    source.push_str(DRIFT_SNIPPET);
    let edited = source.replacen("watchdog_ticks + 1", "watchdog_ticks + 2", 1);

    // 1. Cold request: the daemon pays the full solve (or reloads shards a
    //    previous session left behind).
    let start = Instant::now();
    let cold = match client.analyze(&source) {
        Ok(cold) => cold,
        Err(e) => return fail(strict, &format!("analyze failed: {e}")),
    };
    println!(
        "cold:  {:>8.4}s  {} diagnostics, {} functions, persist_hit_rate={:.3}",
        start.elapsed().as_secs_f64(),
        cold.diagnostic_count,
        cold.stats.functions,
        cold.stats.persist_hit_rate()
    );

    // 2. Edit one leaf function; only its dependency-reachable cone may be
    //    invalidated.
    let outcome = match client.notify_edit(&edited) {
        Ok(outcome) => outcome,
        Err(e) => return fail(strict, &format!("notify_edit failed: {e}")),
    };
    let inv = &outcome.invalidation;
    println!(
        "edit:  changed=[{}] invalidated={} retained={} revalidated={} (retention {:.1}%)",
        inv.changed_functions.join(", "),
        inv.invalidated,
        inv.retained,
        inv.revalidated,
        inv.retention_rate() * 100.0
    );
    if inv.changed_functions != ["watchdog_tick".to_string()] {
        return fail(
            strict,
            &format!(
                "clean functions are dirty at the input layer: {:?}",
                inv.changed_functions
            ),
        );
    }
    // The input-layer diff being right is not enough: the graph walk must
    // not have dragged the clean majority down with the seed.
    if inv.invalidated * 3 >= inv.invalidated + inv.retained {
        return fail(
            strict,
            &format!(
                "clean queries were invalidated: {} dropped vs {} retained",
                inv.invalidated, inv.retained
            ),
        );
    }

    // 3. Warm request over the edited program: resident state plus the
    //    persist shards serve everything outside the dirty cone.
    let start = Instant::now();
    let warm = match client.analyze(&edited) {
        Ok(warm) => warm,
        Err(e) => return fail(strict, &format!("warm analyze failed: {e}")),
    };
    let lookups = warm.stats.cache_hits + warm.stats.persist_hits + warm.stats.cache_misses;
    let served = warm.stats.cache_hits + warm.stats.persist_hits;
    let reserve_rate = if lookups == 0 {
        0.0
    } else {
        served as f64 / lookups as f64
    };
    println!(
        "warm:  {:>8.4}s  {} diagnostics, re-serve rate {:.1}%, pointsto batches regenerated {}",
        start.elapsed().as_secs_f64(),
        warm.diagnostic_count,
        reserve_rate * 100.0,
        warm.stats.pointsto_batches_generated
    );
    if reserve_rate < 0.9 {
        return fail(
            strict,
            &format!("warm re-serve rate {reserve_rate:.3} below 0.9"),
        );
    }

    // 4a. Explain a raw points-to fact: why does the VFS read dispatch
    //     reach ext2? The chain walks from the address-of seed in the ops
    //     table to the call binding.
    let pts_fact = match client.explain("vfs_read", "ops->read", Some("ext2_read")) {
        Ok(outcome) => outcome,
        Err(e) => return fail(strict, &format!("explain of a pts fact failed: {e}")),
    };
    println!("explain: {}", pts_fact.fact);
    for line in &pts_fact.rendered {
        println!("    {line}");
    }
    if pts_fact.rendered.is_empty() || !pts_fact.replay_verified {
        return fail(
            strict,
            &format!(
                "pts-fact chain must be non-empty and replay-verified: {} link(s), verified={}",
                pts_fact.chain_len, pts_fact.replay_verified
            ),
        );
    }

    // 4b. Explain a Deputy diagnostic: find the drift finding in the
    //     report and expand the points-to fact it cites as evidence.
    let cited = deputy_citation(&warm.diagnostics_json);
    let Some((diag_fn, lvalue, target)) = cited else {
        return fail(strict, "no deputy/indirect-annot diagnostic with evidence");
    };
    let deputy_fact = match client.explain(&diag_fn, &lvalue, Some(&target)) {
        Ok(outcome) => outcome,
        Err(e) => {
            return fail(
                strict,
                &format!("explain of the Deputy evidence failed: {e}"),
            )
        }
    };
    println!(
        "explain: {} (cited by deputy/indirect-annot)",
        deputy_fact.fact
    );
    for line in &deputy_fact.rendered {
        println!("    {line}");
    }
    if deputy_fact.rendered.is_empty() || !deputy_fact.replay_verified {
        return fail(
            strict,
            &format!(
                "Deputy-evidence chain must be non-empty and replay-verified: {} link(s), verified={}",
                deputy_fact.chain_len, deputy_fact.replay_verified
            ),
        );
    }

    let _ = client.shutdown();
    handle.join();
    if let Some(path) = &trace_out {
        if let Err(message) = export_trace(strict, path) {
            return fail(strict, &message);
        }
    }
    ExitCode::SUCCESS
}
