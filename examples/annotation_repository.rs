//! Demonstrates the collaborative annotation repository of §3.2: run the
//! whole Ivy pipeline over the kernel, harvest function/type facts, absorb
//! the BlockStop results, and serialise the repository to JSON.
//!
//! Run with: `cargo run --example annotation_repository`

use ivy::core::pipeline::Pipeline;
use ivy::kernelgen::{KernelBuild, KernelConfig};

fn main() {
    let config = if cfg!(debug_assertions) {
        KernelConfig::small()
    } else {
        KernelConfig::paper()
    };
    let build = KernelBuild::generate(&config);
    println!(
        "Generated kernel: {} functions, {} lines of KC.",
        build.program.functions.len(),
        build.line_count()
    );

    let hardened = Pipeline::new().run(&build);
    println!(
        "Pipeline: {} Deputy checks, {} counted pointer writes, {} BlockStop assertions.",
        hardened.deputy.total_runtime_checks(),
        hardened.ccount.counted_pointer_writes,
        hardened.asserts_inserted
    );

    let repo = &hardened.repository;
    println!(
        "Repository: {} functions, {} types, {} known-blocking functions.",
        repo.functions.len(),
        repo.types.len(),
        repo.blocking_functions().len()
    );

    // Print a small excerpt of the JSON that would be shared.
    let json = repo.to_json();
    let excerpt: String = json.lines().take(40).collect::<Vec<_>>().join("\n");
    println!("\nJSON excerpt:\n{excerpt}\n...");
}
