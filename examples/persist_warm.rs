//! Cold-vs-warm demonstration of the cross-process persistent cache.
//!
//! Runs the full checker fleet over the generated kernel with a
//! [`PersistLayer`] attached. The first invocation of this example fills
//! `target/ivy-cache/` (cold); a second invocation — a separate process —
//! is served from disk without solving points-to.
//!
//! Environment:
//! * `IVY_CACHE_DIR` — persist directory (default `target/ivy-cache`).
//! * `IVY_EXPECT_WARM=1` — exit non-zero unless the run was actually
//!   served from the persist layer (used by CI to pin the warm start).
//!
//! Run with: `cargo run --release --example persist_warm` (twice).

use ivy::blockstop::BlockStopChecker;
use ivy::ccount::CCountChecker;
use ivy::deputy::DeputyChecker;
use ivy::engine::{Engine, PersistLayer};
use ivy::kernelgen::{KernelBuild, KernelConfig};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

fn main() -> ExitCode {
    let dir = std::env::var("IVY_CACHE_DIR").unwrap_or_else(|_| "target/ivy-cache".to_string());
    let layer = Arc::new(PersistLayer::open(&dir).expect("persist dir opens"));
    let build = KernelBuild::generate(&KernelConfig::small());
    let engine = Engine::new()
        .with_checker(Arc::new(DeputyChecker::new()))
        .with_checker(Arc::new(CCountChecker::new()))
        .with_checker(Arc::new(BlockStopChecker::new()))
        .with_persist(Arc::clone(&layer));

    let start = Instant::now();
    let report = engine.analyze(&build.program);
    let elapsed = start.elapsed().as_secs_f64();

    let stats = &report.stats;
    println!(
        "analyzed {} functions in {elapsed:.4}s: {} diagnostics",
        stats.functions,
        report.diagnostics.len()
    );
    println!(
        "persist layer at {dir}: persist_hits={} persist_misses={} persist_hit_rate={:.3}",
        stats.persist_hits,
        stats.persist_misses,
        stats.persist_hit_rate()
    );
    println!(
        "pointsto constraints solved this process: {}",
        stats.pointsto_constraints
    );

    if std::env::var("IVY_EXPECT_WARM").as_deref() == Ok("1") && stats.persist_hits == 0 {
        eprintln!("error: expected a warm start but no result was served from the persist layer");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
