//! The opt-in dynamic-fact tracing layer.
//!
//! A [`Tracer`] attached to a [`Vm`](crate::Vm) observes the concrete facts
//! a run produces — which objects pointers actually target, which functions
//! indirect calls actually reach, which allocator call produced each heap
//! object, and the defect events (blocking-in-atomic, bad frees, failed
//! run-time checks). `ivy-oracle` turns this stream into a *soundness
//! oracle* for the static analyses: every dynamic fact must be subsumed by
//! the corresponding static over-approximation, in the spirit of Klinger et
//! al.'s differential testing of program analyzers.
//!
//! Tracing is strictly opt-in: with no tracer attached the interpreter
//! takes none of these paths (a handful of `Option::is_some` checks), so
//! the cost-model numbers of untraced runs are unchanged.
//!
//! Hooks receive `&Vm`, which exposes [`Vm::resolve_addr`] to map a
//! concrete address back to the program entity that owns it (global,
//! stack local of a live frame, heap object, function address).

use crate::interp::Vm;
use ivy_cmir::ast::Expr;

/// The program entity a concrete address resolves to (see
/// [`Vm::resolve_addr`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolvedAddr {
    /// The null address.
    Null,
    /// Inside a global variable, at the given byte offset from its base.
    Global {
        /// Global variable name.
        name: String,
        /// Byte offset within the global.
        offset: u32,
    },
    /// Inside a local variable (or parameter) of a live frame. Only
    /// resolvable while a tracer is attached (the slot registry exists for
    /// the tracer).
    StackLocal {
        /// Function owning the frame.
        func: String,
        /// Variable name.
        var: String,
        /// Byte offset within the slot.
        offset: u32,
    },
    /// Inside a heap object.
    Heap {
        /// Base address of the allocation.
        base: u32,
        /// Byte offset within the object.
        offset: u32,
    },
    /// The synthetic address of a function (a function-pointer value).
    Code {
        /// Function name.
        func: String,
    },
    /// Inside read-only data (a string literal).
    Rodata,
    /// Not within any live object the VM knows about.
    Unknown,
}

/// One concrete fact observed during execution.
///
/// Pointer events fire only for stores whose *declared* type is a pointer
/// (or function pointer); integer traffic is never traced.
#[derive(Debug)]
pub enum TraceEvent<'a> {
    /// A pointer value was stored through a syntactic lvalue
    /// (an assignment, or a local declaration's initializer when `decl`).
    PtrAssign {
        /// Enclosing function.
        func: &'a str,
        /// The lvalue expression as written.
        lvalue: &'a Expr,
        /// True for `let x: T * = ...;` initializers (which the static
        /// analysis models as a definition of the local, never of a
        /// shadowed global).
        decl: bool,
        /// The stored pointer value.
        value: u32,
    },
    /// A pointer-typed argument was bound to a parameter at entry to a
    /// defined function (covers both direct and indirect calls).
    PtrParam {
        /// The callee.
        func: &'a str,
        /// Parameter name.
        param: &'a str,
        /// The bound pointer value.
        value: u32,
    },
    /// A pointer-typed value was returned from a defined function.
    PtrReturn {
        /// The returning function.
        func: &'a str,
        /// The returned pointer value.
        value: u32,
    },
    /// A call through a function pointer resolved to a concrete target.
    IndirectCall {
        /// The calling function.
        caller: &'a str,
        /// The callee expression as written (matches the static
        /// `indirect_targets` key).
        callee_text: String,
        /// The function actually invoked.
        target: &'a str,
    },
    /// A call to an `#[allocator]` function returned a fresh object.
    Alloc {
        /// The function containing the allocating call.
        func: &'a str,
        /// The call expression as written (keys the oracle's static
        /// allocation-site map).
        call_text: String,
        /// Base address of the object (0 when the allocator returned null).
        base: u32,
    },
    /// A blocking call was attempted in atomic context (interrupts
    /// disabled or a spinlock held).
    BlockedInAtomic {
        /// The immediate caller.
        caller: &'a str,
        /// The blocking function.
        callee: &'a str,
        /// Interrupt-disable depth at the time.
        irq_depth: u32,
        /// Number of spinlocks held at the time.
        locks_held: usize,
    },
    /// A free failed its CCount reference-count check.
    BadFree {
        /// Function in which the (possibly deferred) free completed.
        func: &'a str,
        /// Base address of the object.
        addr: u32,
        /// True when deferred by a delayed-free scope.
        delayed: bool,
    },
    /// A run-time check failed (bounds, nonnull, union tag, ...).
    CheckFailed {
        /// Function containing the check.
        func: &'a str,
        /// Check kind mnemonic.
        kind: &'a str,
    },
}

/// Observer of a VM run. Implementations must not re-enter the VM.
pub trait Tracer {
    /// Called for every traced event, with a read-only view of the VM for
    /// address resolution.
    fn on_event(&mut self, vm: &Vm, event: TraceEvent<'_>);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::VmConfig;
    use ivy_cmir::parser::parse_program;
    use ivy_cmir::pretty::expr_str;

    /// Records every event, pre-resolving pointer values.
    #[derive(Default)]
    struct Recorder {
        assigns: Vec<(String, String, bool, ResolvedAddr)>,
        params: Vec<(String, String, ResolvedAddr)>,
        returns: Vec<(String, ResolvedAddr)>,
        indirect: Vec<(String, String, String)>,
        allocs: Vec<(String, String, u32)>,
        blocked: Vec<(String, String)>,
        bad_frees: Vec<String>,
    }

    impl Tracer for Recorder {
        fn on_event(&mut self, vm: &Vm, event: TraceEvent<'_>) {
            match event {
                TraceEvent::PtrAssign {
                    func,
                    lvalue,
                    decl,
                    value,
                } => self.assigns.push((
                    func.to_string(),
                    expr_str(lvalue),
                    decl,
                    vm.resolve_addr(value),
                )),
                TraceEvent::PtrParam { func, param, value } => {
                    self.params
                        .push((func.to_string(), param.to_string(), vm.resolve_addr(value)))
                }
                TraceEvent::PtrReturn { func, value } => self
                    .returns
                    .push((func.to_string(), vm.resolve_addr(value))),
                TraceEvent::IndirectCall {
                    caller,
                    callee_text,
                    target,
                } => self
                    .indirect
                    .push((caller.to_string(), callee_text, target.to_string())),
                TraceEvent::Alloc {
                    func,
                    call_text,
                    base,
                } => self.allocs.push((func.to_string(), call_text, base)),
                TraceEvent::BlockedInAtomic { caller, callee, .. } => {
                    self.blocked.push((caller.to_string(), callee.to_string()))
                }
                TraceEvent::BadFree { func, .. } => self.bad_frees.push(func.to_string()),
                TraceEvent::CheckFailed { .. } => {}
            }
        }
    }

    /// Forwards events into a shared recorder the test keeps a handle to.
    struct Shared(std::rc::Rc<std::cell::RefCell<Recorder>>);

    impl Tracer for Shared {
        fn on_event(&mut self, vm: &Vm, event: TraceEvent<'_>) {
            self.0.borrow_mut().on_event(vm, event);
        }
    }

    fn traced_run(src: &str, entry: &str, config: VmConfig) -> (Recorder, Vm) {
        let p = parse_program(src).unwrap();
        let mut vm = Vm::new(p, config).unwrap();
        let shared = std::rc::Rc::new(std::cell::RefCell::new(Recorder::default()));
        vm.attach_tracer(Box::new(Shared(std::rc::Rc::clone(&shared))));
        vm.run(entry, vec![]).unwrap();
        vm.take_tracer().expect("tracer attached");
        (
            std::rc::Rc::try_unwrap(shared)
                .ok()
                .expect("sole owner")
                .into_inner(),
            vm,
        )
    }

    const SRC: &str = r#"
        #[allocator] #[blocking_if(flags)]
        extern fn kmalloc(size: u32, flags: u32) -> void *;
        extern fn kfree(p: void *);
        extern fn spin_lock(l: u32 *);
        extern fn spin_unlock(l: u32 *);
        struct ops { fire: fnptr(u8 *) -> u8 *; }
        global table: struct ops;
        global sink: u8 *;
        global guard: u32 = 0;
        global buf: u8[16];

        fn echo(p: u8 *) -> u8 * { sink = p; return p; }

        fn main() -> u32 {
            table.fire = echo;
            let q: u8 * = table.fire(&buf[0]);
            let h: u8 * = kmalloc(32, 0) as u8 *;
            spin_lock(&guard);
            let bad: u8 * = kmalloc(8, 0x10) as u8 *;
            spin_unlock(&guard);
            sink = null;
            kfree(h as void *);
            kfree(bad as void *);
            return 0;
        }
    "#;

    #[test]
    fn events_cover_assigns_params_returns_indirects_and_allocs() {
        let (r, _) = traced_run(SRC, "main", VmConfig::baseline());

        // Field store of a function pointer resolves to the code region.
        assert!(r.assigns.iter().any(|(f, lv, decl, v)| f == "main"
            && lv == "table.fire"
            && !decl
            && *v
                == ResolvedAddr::Code {
                    func: "echo".into()
                }));
        // The indirect call resolved to its concrete target.
        assert_eq!(
            r.indirect,
            vec![(
                "main".to_string(),
                "table.fire".to_string(),
                "echo".to_string()
            )]
        );
        // Parameter binding observed the global array target.
        assert!(r.params.iter().any(|(f, p, v)| f == "echo"
            && p == "p"
            && matches!(v, ResolvedAddr::Global { name, offset: 0 } if name == "buf")));
        // Return of a pointer traced against the same target.
        assert!(r
            .returns
            .iter()
            .any(|(f, v)| f == "echo"
                && matches!(v, ResolvedAddr::Global { name, .. } if name == "buf")));
        // Both allocator calls traced with their call text.
        assert_eq!(r.allocs.len(), 2);
        assert!(r.allocs[0].1.contains("kmalloc"));
        assert!(r
            .allocs
            .iter()
            .all(|(f, _, base)| f == "main" && *base != 0));
        // Declaration initialisers are flagged as decls, and the heap
        // pointer resolves to its object.
        assert!(r.assigns.iter().any(|(f, lv, decl, v)| f == "main"
            && lv == "h"
            && *decl
            && matches!(v, ResolvedAddr::Heap { offset: 0, .. })));
        // Null stores resolve to Null.
        assert!(r
            .assigns
            .iter()
            .any(|(_, lv, _, v)| lv == "sink" && *v == ResolvedAddr::Null));
        // The GFP_WAIT allocation under the spinlock is a blocking event.
        assert_eq!(r.blocked, vec![("main".to_string(), "kmalloc".to_string())]);
    }

    #[test]
    fn bad_frees_are_traced_and_stack_slots_resolve() {
        let src = r#"
            #[allocator]
            extern fn kmalloc(size: u32, flags: u32) -> void *;
            extern fn kfree(p: void *);
            global keep: u8 *;
            fn stash(v: u32) -> u32 {
                let local: u32 = v;
                let lp: u32 * = &local;
                keep = kmalloc(16, 0) as u8 *;
                kfree(keep as void *);
                return *lp;
            }
        "#;
        let (r, vm) = traced_run(src, "stash", VmConfig::ccounted(false));
        assert_eq!(r.bad_frees, vec!["stash".to_string()]);
        assert_eq!(vm.stats.frees_bad, 1);
        // `lp` observed its target as the live stack local.
        assert!(r.assigns.iter().any(|(f, lv, _, v)| f == "stash"
            && lv == "lp"
            && matches!(v, ResolvedAddr::StackLocal { func, var, offset: 0 }
                if func == "stash" && var == "local")));
    }

    #[test]
    fn untraced_runs_emit_nothing_and_stay_identical() {
        let p = parse_program(SRC).unwrap();
        let mut plain = Vm::new(p.clone(), VmConfig::baseline()).unwrap();
        plain.run("main", vec![]).unwrap();
        let (_, traced) = traced_run(SRC, "main", VmConfig::baseline());
        // Tracing must not perturb semantics or the cost model.
        assert_eq!(plain.cycles(), traced.cycles());
        assert_eq!(plain.stats, traced.stats);
        assert!(!plain.tracing());
    }
}
