//! Runtime values of the KC virtual machine.

use ivy_cmir::types::IntKind;
use std::fmt;

/// A runtime value.
///
/// KC is a 32-bit (i386-style) machine: pointers are 32-bit addresses into
/// the VM's flat memory. Integers are computed in 64 bits and truncated to
/// their declared width on store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Value {
    /// An integer (also used for booleans: 0 = false).
    Int(i64),
    /// A pointer: an address in VM memory. Address 0 is the null pointer.
    Ptr(u32),
}

impl Value {
    /// The null pointer.
    pub const NULL: Value = Value::Ptr(0);

    /// Interprets the value as an integer (pointers expose their address).
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            Value::Ptr(a) => *a as i64,
        }
    }

    /// Interprets the value as an address.
    pub fn as_ptr(&self) -> u32 {
        match self {
            Value::Int(v) => *v as u32,
            Value::Ptr(a) => *a,
        }
    }

    /// True if the value is "truthy" in the C sense (non-zero).
    pub fn truthy(&self) -> bool {
        self.as_int() != 0
    }

    /// Truncates an integer value to an integer kind's range; pointers are
    /// returned unchanged.
    pub fn truncate(self, kind: IntKind) -> Value {
        match self {
            Value::Int(v) => Value::Int(kind.truncate(v)),
            p => p,
        }
    }

    /// True if this is a pointer value.
    pub fn is_ptr(&self) -> bool {
        matches!(self, Value::Ptr(_))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Ptr(0) => write!(f, "null"),
            Value::Ptr(a) => write!(f, "0x{a:x}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::Int(0).truthy());
        assert!(Value::Int(-3).truthy());
        assert!(!Value::NULL.truthy());
        assert!(Value::Ptr(0x1000).truthy());
    }

    #[test]
    fn truncation_applies_to_ints_only() {
        assert_eq!(Value::Int(300).truncate(IntKind::U8), Value::Int(44));
        assert_eq!(Value::Ptr(300).truncate(IntKind::U8), Value::Ptr(300));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::NULL.to_string(), "null");
        assert_eq!(Value::Ptr(16).to_string(), "0x10");
    }
}
