//! Native kernel builtins.
//!
//! Functions declared `extern` in KC (or not defined at all) are dispatched
//! here by name. These model the handful of kernel primitives the paper's
//! analyses treat specially: the allocators (`kmalloc`/`kfree`), the bulk
//! memory operations that CCount must make type-aware, the user-copy and
//! sleeping primitives that seed BlockStop's `blocking` set, and the
//! interrupt/spinlock state changes that define atomic context.

use crate::error::{TrapKind, VmError, VmResult};
use crate::interp::{Vm, GFP_WAIT};
use crate::mem::Memory;
use crate::value::Value;

impl Vm {
    /// Dispatches a builtin (or unknown extern) call by name.
    pub(crate) fn call_builtin(&mut self, name: &str, args: &[Value]) -> VmResult<Value> {
        match name {
            "kmalloc" | "kzalloc" | "kmem_cache_alloc" | "__get_free_page" | "alloc_page"
            | "vmalloc" => self.builtin_alloc(name, args),
            "kfree" | "kmem_cache_free" | "free_page" | "vfree" => {
                let p = arg(args, 0).as_ptr();
                if p == 0 {
                    return Ok(Value::Int(0));
                }
                if self.config.ccount {
                    if let Some(scope) = self.delayed_free_stack.last_mut() {
                        scope.push(p);
                        self.stats.frees_delayed += 1;
                        return Ok(Value::Int(0));
                    }
                }
                self.finish_free(p, false)
            }
            "memcpy" | "memmove" => {
                let dst = arg(args, 0).as_ptr();
                let src = arg(args, 1).as_ptr();
                let n = arg(args, 2).as_int().max(0) as u32;
                self.charge(self.cost.copy_cost(n));
                self.ccount_transfer_slots(dst, src, n)?;
                self.mem.copy(dst, src, n)?;
                Ok(Value::Ptr(dst))
            }
            "memset" => {
                let dst = arg(args, 0).as_ptr();
                let byte = arg(args, 1).as_int() as u8;
                let n = arg(args, 2).as_int().max(0) as u32;
                self.charge(self.cost.copy_cost(n));
                self.ccount_clear_slots(dst, n)?;
                self.mem.fill(dst, byte, n)?;
                Ok(Value::Ptr(dst))
            }
            "memcmp" => {
                let a = arg(args, 0).as_ptr();
                let b = arg(args, 1).as_ptr();
                let n = arg(args, 2).as_int().max(0) as u32;
                self.charge(self.cost.copy_cost(n));
                for i in 0..n {
                    let x = self.mem.read(a + i, 1)?;
                    let y = self.mem.read(b + i, 1)?;
                    if x != y {
                        return Ok(Value::Int(if x < y { -1 } else { 1 }));
                    }
                }
                Ok(Value::Int(0))
            }
            "strlen" => {
                let p = arg(args, 0).as_ptr();
                let mut n = 0u32;
                while n < 1 << 20 {
                    self.charge(self.cost.load);
                    if self.mem.read(p + n, 1)? == 0 {
                        break;
                    }
                    n += 1;
                }
                Ok(Value::Int(i64::from(n)))
            }
            "copy_to_user" | "copy_from_user" => {
                self.note_block_attempt(name);
                let dst = arg(args, 0).as_ptr();
                let src = arg(args, 1).as_ptr();
                let n = arg(args, 2).as_int().max(0) as u32;
                self.charge(self.cost.copy_cost(n) + self.cost.syscall / 4);
                self.stats.user_copy_bytes += u64::from(n);
                self.ccount_transfer_slots(dst, src, n)?;
                self.mem.copy(dst, src, n)?;
                Ok(Value::Int(0))
            }
            "printk" => {
                self.charge(self.cost.syscall / 8);
                Ok(Value::Int(0))
            }
            "panic" | "BUG" => Err(VmError::new(TrapKind::Panic, "kernel panic requested")),
            "spin_lock" | "spin_lock_bh" => {
                self.charge(self.cost.spinlock);
                let lock = self.lock_name(arg(args, 0).as_ptr());
                self.locks_held.push(lock);
                Ok(Value::Int(0))
            }
            "spin_unlock" | "spin_unlock_bh" => {
                self.charge(self.cost.spinlock);
                let lock = self.lock_name(arg(args, 0).as_ptr());
                if let Some(pos) = self.locks_held.iter().rposition(|l| *l == lock) {
                    self.locks_held.remove(pos);
                }
                Ok(Value::Int(0))
            }
            "spin_lock_irqsave" | "spin_lock_irq" => {
                self.charge(self.cost.spinlock + self.cost.irq_toggle);
                let lock = self.lock_name(arg(args, 0).as_ptr());
                self.locks_held.push(lock);
                self.irq_depth += 1;
                Ok(Value::Int(0))
            }
            "spin_unlock_irqrestore" | "spin_unlock_irq" => {
                self.charge(self.cost.spinlock + self.cost.irq_toggle);
                let lock = self.lock_name(arg(args, 0).as_ptr());
                if let Some(pos) = self.locks_held.iter().rposition(|l| *l == lock) {
                    self.locks_held.remove(pos);
                }
                self.irq_depth = self.irq_depth.saturating_sub(1);
                Ok(Value::Int(0))
            }
            "local_irq_disable" | "local_irq_save" => {
                self.charge(self.cost.irq_toggle);
                self.irq_depth += 1;
                Ok(Value::Int(0))
            }
            "local_irq_enable" | "local_irq_restore" => {
                self.charge(self.cost.irq_toggle);
                self.irq_depth = self.irq_depth.saturating_sub(1);
                Ok(Value::Int(0))
            }
            "in_interrupt" | "irqs_disabled" => Ok(Value::Int(i64::from(self.irq_depth > 0))),
            "schedule" | "cond_resched" => {
                self.note_block_attempt(name);
                self.charge(self.cost.context_switch);
                self.stats.context_switches += 1;
                Ok(Value::Int(0))
            }
            "wait_for_completion" | "down" | "mutex_lock" => {
                self.note_block_attempt(name);
                self.charge(self.cost.context_switch / 2);
                Ok(Value::Int(0))
            }
            "complete" | "up" | "mutex_unlock" | "wake_up" => {
                self.charge(self.cost.spinlock);
                Ok(Value::Int(0))
            }
            "msleep" | "schedule_timeout" => {
                self.note_block_attempt(name);
                self.charge(self.cost.context_switch);
                self.stats.context_switches += 1;
                Ok(Value::Int(0))
            }
            "udelay" | "ndelay" | "cpu_relax" => {
                self.charge(self.cost.alu * 8);
                Ok(Value::Int(0))
            }
            "syscall_entry" | "syscall_exit" => {
                self.charge(self.cost.syscall / 2);
                Ok(Value::Int(0))
            }
            _ => {
                // Unknown extern: harmless no-op with a token cost. This models
                // stubs for the parts of the kernel the corpus does not build.
                self.charge(self.cost.alu);
                Ok(Value::Int(0))
            }
        }
    }

    fn builtin_alloc(&mut self, name: &str, args: &[Value]) -> VmResult<Value> {
        let size = arg(args, 0).as_int().max(1) as u32;
        let flags = arg(args, 1).as_int();
        if flags & GFP_WAIT != 0 || name == "vmalloc" {
            self.note_block_attempt(name);
        }
        let chunks = u64::from(Memory::chunks_of(0, size));
        self.charge(self.cost.alloc + self.cost.zero_per_chunk * chunks);
        let addr = self.mem.kmalloc(size);
        self.stats.allocs += 1;
        Ok(Value::Ptr(addr))
    }

    fn lock_name(&self, addr: u32) -> String {
        match self.global_names.get(&addr) {
            Some(n) => n.clone(),
            None => format!("lock@0x{addr:x}"),
        }
    }

    /// CCount bookkeeping for a type-aware `memcpy`: pointer slots of the
    /// source range are replicated into the destination range, incrementing
    /// the refcounts of the pointed-to objects; pointer slots previously in
    /// the destination range are released.
    fn ccount_transfer_slots(&mut self, dst: u32, src: u32, len: u32) -> VmResult<()> {
        if !self.config.ccount || len == 0 {
            return Ok(());
        }
        self.ccount_clear_slots(dst, len)?;
        if Memory::is_stack_addr(dst) {
            return Ok(());
        }
        let Some(src_obj) = self.mem.object_containing(src).copied() else {
            return Ok(());
        };
        let Some(dst_obj) = self.mem.object_containing(dst).copied() else {
            return Ok(());
        };
        let src_slots: Vec<u32> = self
            .ptr_slots
            .get(&src_obj.base)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        for off in src_slots {
            let a = src_obj.base + off;
            if a < src || a + 4 > src + len {
                continue;
            }
            let target = self.mem.read(a, 4)? as u32;
            if self.mem.rc_adjust(target, 1) {
                self.stats.rc_updates += 1;
                self.charge(self.cost.rc_update(self.config.machine));
            }
            let dst_off = dst + (a - src) - dst_obj.base;
            self.ptr_slots
                .entry(dst_obj.base)
                .or_default()
                .insert(dst_off);
        }
        Ok(())
    }

    /// CCount bookkeeping for a type-aware `memset`: pointer slots inside the
    /// cleared range lose their references.
    fn ccount_clear_slots(&mut self, dst: u32, len: u32) -> VmResult<()> {
        if !self.config.ccount || len == 0 || Memory::is_stack_addr(dst) {
            return Ok(());
        }
        let Some(obj) = self.mem.object_containing(dst).copied() else {
            return Ok(());
        };
        let slots: Vec<u32> = self
            .ptr_slots
            .get(&obj.base)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        for off in slots {
            let a = obj.base + off;
            if a < dst || a + 4 > dst + len {
                continue;
            }
            let target = self.mem.read(a, 4)? as u32;
            if self.mem.rc_adjust(target, -1) {
                self.stats.rc_updates += 1;
                self.charge(self.cost.rc_update(self.config.machine));
            }
            if let Some(s) = self.ptr_slots.get_mut(&obj.base) {
                s.remove(&off);
            }
        }
        Ok(())
    }
}

fn arg(args: &[Value], i: usize) -> Value {
    args.get(i).copied().unwrap_or(Value::Int(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::VmConfig;
    use ivy_cmir::parser::parse_program;

    fn vm_for(src: &str, config: VmConfig) -> Vm {
        let p = parse_program(src).unwrap();
        Vm::new(p, config).unwrap()
    }

    const PRELUDE: &str = r#"
        #[allocator] #[blocking_if(flags)]
        extern fn kmalloc(size: u32, flags: u32) -> void *;
        extern fn kfree(p: void *);
        extern fn memcpy(dst: void *, src: void *, n: u32) -> void *;
        extern fn memset(p: void *, c: i32, n: u32) -> void *;
        extern fn spin_lock(l: u32 *);
        extern fn spin_unlock(l: u32 *);
        #[blocking]
        extern fn copy_to_user(dst: void *, src: void *, n: u32) -> i32;
        global io_lock: u32 = 0;
    "#;

    #[test]
    fn kmalloc_with_gfp_wait_blocks_under_spinlock() {
        let src = format!(
            "{PRELUDE}
            fn bad() -> u32 {{
                spin_lock(&io_lock);
                let p: void * = kmalloc(64, 0x10);
                spin_unlock(&io_lock);
                kfree(p);
                return 0;
            }}
            fn fine() -> u32 {{
                spin_lock(&io_lock);
                let p: void * = kmalloc(64, 0);
                spin_unlock(&io_lock);
                kfree(p);
                return 0;
            }}"
        );
        let mut vm = vm_for(&src, VmConfig::baseline());
        vm.run("bad", vec![]).unwrap();
        assert_eq!(vm.stats.blocking_violations.len(), 1);
        assert_eq!(vm.stats.blocking_violations[0].callee, "kmalloc");
        assert_eq!(
            vm.stats.blocking_violations[0].locks_held,
            vec!["io_lock".to_string()]
        );

        let mut vm2 = vm_for(&src, VmConfig::baseline());
        vm2.run("fine", vec![]).unwrap();
        assert!(vm2.stats.blocking_violations.is_empty());
    }

    #[test]
    fn copy_to_user_counts_bytes_and_blocks() {
        let src = format!(
            "{PRELUDE}
            global kernel_buf: u8[128];
            global user_buf: u8[128];
            fn xfer() -> u32 {{
                return copy_to_user(&user_buf[0] as void *, &kernel_buf[0] as void *, 128) as u32;
            }}"
        );
        let mut vm = vm_for(&src, VmConfig::baseline());
        vm.run("xfer", vec![]).unwrap();
        assert_eq!(vm.stats.user_copy_bytes, 128);
    }

    #[test]
    fn type_aware_memcpy_preserves_refcount_soundness() {
        let src = format!(
            "{PRELUDE}
            struct holder {{ p: u8 *; pad: u32; }}
            fn dup_then_free() -> u32 {{
                let a: struct holder * = kmalloc(sizeof(struct holder), 0) as struct holder *;
                let b: struct holder * = kmalloc(sizeof(struct holder), 0) as struct holder *;
                let payload: u8 * = kmalloc(32, 0) as u8 *;
                a->p = payload;
                memcpy(b as void *, a as void *, sizeof(struct holder));
                // Now two heap references to payload exist; freeing it is bad.
                a->p = null;
                kfree(payload as void *);
                return 0;
            }}"
        );
        let mut vm = vm_for(&src, VmConfig::ccounted(false));
        vm.run("dup_then_free", vec![]).unwrap();
        assert_eq!(
            vm.stats.frees_bad, 1,
            "memcpy'd reference must keep the count"
        );
    }

    #[test]
    fn type_aware_memset_releases_references() {
        let src = format!(
            "{PRELUDE}
            struct holder {{ p: u8 *; pad: u32; }}
            fn clear_then_free() -> u32 {{
                let a: struct holder * = kmalloc(sizeof(struct holder), 0) as struct holder *;
                let payload: u8 * = kmalloc(32, 0) as u8 *;
                a->p = payload;
                memset(a as void *, 0, sizeof(struct holder));
                kfree(payload as void *);
                kfree(a as void *);
                return 0;
            }}"
        );
        let mut vm = vm_for(&src, VmConfig::ccounted(false));
        vm.run("clear_then_free", vec![]).unwrap();
        assert_eq!(vm.stats.frees_bad, 0);
        assert_eq!(vm.stats.frees_good, 2);
    }

    #[test]
    fn unknown_extern_is_a_noop() {
        let src = "extern fn totally_unknown(x: u32) -> u32; fn f() -> u32 { return totally_unknown(3); }";
        let mut vm = vm_for(src, VmConfig::baseline());
        assert_eq!(vm.run("f", vec![]).unwrap(), Value::Int(0));
    }

    #[test]
    fn panic_traps() {
        let src = "extern fn panic(msg: u8 *); fn f() { panic(\"boom\"); }";
        let mut vm = vm_for(src, VmConfig::baseline());
        let err = vm.run("f", vec![]).unwrap_err();
        assert_eq!(err.kind, TrapKind::Panic);
    }

    #[test]
    fn null_kfree_is_noop() {
        let src = format!("{PRELUDE} fn f() {{ kfree(null); }}");
        let mut vm = vm_for(&src, VmConfig::ccounted(false));
        vm.run("f", vec![]).unwrap();
        assert_eq!(vm.stats.frees_bad + vm.stats.frees_good, 0);
    }
}
