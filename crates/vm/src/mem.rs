//! The VM's memory model.
//!
//! Memory is a 32-bit, byte-addressable address space split into regions:
//!
//! | region  | base         | contents                                    |
//! |---------|--------------|---------------------------------------------|
//! | null    | `0x0000_0000`| never mapped (null-pointer dereferences trap)|
//! | globals | `0x0000_1000`| global variables and string literals         |
//! | stack   | `0x4000_0000`| locals of active frames                      |
//! | heap    | `0x8000_0000`| `kmalloc`/slab allocations                   |
//! | code    | `0xF000_0000`| function "addresses" for function pointers   |
//!
//! CCount's accounting state lives here too: an 8-bit reference count per
//! [`CHUNK_SIZE`]-byte chunk (6.25 % space overhead in the paper), maintained
//! only for globals and heap — the kernel CCount "does not track references
//! from local variables", so stack chunks have no counts.

use crate::error::{TrapKind, VmError, VmResult};
use ivy_cmir::types::CHUNK_SIZE;
use std::collections::{BTreeMap, HashMap};

/// Base address of the globals region.
pub const GLOBAL_BASE: u32 = 0x0000_1000;
/// Base address of the stack region.
pub const STACK_BASE: u32 = 0x4000_0000;
/// Base address of the heap region.
pub const HEAP_BASE: u32 = 0x8000_0000;
/// Base address of the synthetic code region (function pointers).
pub const CODE_BASE: u32 = 0xF000_0000;

/// What kind of object an address belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectKind {
    /// A global variable.
    Global,
    /// A string literal.
    Rodata,
    /// A stack slot of a live frame.
    Stack,
    /// A heap allocation.
    Heap,
}

/// Metadata about an allocated object (used by `auto` bounds checks and by
/// the CCount free checks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectInfo {
    /// First address of the object.
    pub base: u32,
    /// Size in bytes.
    pub size: u32,
    /// Region kind.
    pub kind: ObjectKind,
    /// False once freed (heap) or popped (stack).
    pub live: bool,
}

/// Memory statistics accumulated over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Number of heap allocations performed.
    pub allocs: u64,
    /// Number of heap frees requested.
    pub frees: u64,
    /// Bytes currently allocated on the heap.
    pub heap_bytes_live: u64,
    /// High-water mark of live heap bytes.
    pub heap_bytes_peak: u64,
    /// Bytes zeroed at allocation time (CCount requirement).
    pub bytes_zeroed: u64,
    /// Objects intentionally leaked after a failed free check.
    pub leaked_objects: u64,
}

#[derive(Debug, Default)]
struct Segment {
    data: Vec<u8>,
    base: u32,
}

impl Segment {
    fn new(base: u32) -> Self {
        Segment {
            data: Vec::new(),
            base,
        }
    }

    fn contains(&self, addr: u32) -> bool {
        addr >= self.base && (addr - self.base) < self.data.len() as u32
    }

    fn ensure(&mut self, upto: u32) {
        let need = (upto - self.base) as usize;
        if need > self.data.len() {
            self.data.resize(need, 0);
        }
    }
}

/// The VM memory: segments, object map, allocator, and refcount shadow.
#[derive(Debug)]
pub struct Memory {
    globals: Segment,
    stack: Segment,
    heap: Segment,
    global_top: u32,
    stack_top: u32,
    heap_top: u32,
    objects: BTreeMap<u32, ObjectInfo>,
    free_lists: HashMap<u32, Vec<u32>>,
    refcounts: HashMap<u32, u8>,
    /// Statistics for reporting.
    pub stats: MemStats,
}

impl Default for Memory {
    fn default() -> Self {
        Memory::new()
    }
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Memory {
            globals: Segment::new(GLOBAL_BASE),
            stack: Segment::new(STACK_BASE),
            heap: Segment::new(HEAP_BASE),
            global_top: GLOBAL_BASE,
            stack_top: STACK_BASE,
            heap_top: HEAP_BASE,
            objects: BTreeMap::new(),
            free_lists: HashMap::new(),
            refcounts: HashMap::new(),
            stats: MemStats::default(),
        }
    }

    fn segment(&self, addr: u32) -> Option<&Segment> {
        if self.globals.contains(addr) {
            Some(&self.globals)
        } else if self.stack.contains(addr) {
            Some(&self.stack)
        } else if self.heap.contains(addr) {
            Some(&self.heap)
        } else {
            None
        }
    }

    fn segment_mut(&mut self, addr: u32) -> Option<&mut Segment> {
        if self.globals.contains(addr) {
            Some(&mut self.globals)
        } else if self.stack.contains(addr) {
            Some(&mut self.stack)
        } else if self.heap.contains(addr) {
            Some(&mut self.heap)
        } else {
            None
        }
    }

    /// True if the address is inside the stack region.
    pub fn is_stack_addr(addr: u32) -> bool {
        (STACK_BASE..HEAP_BASE).contains(&addr)
    }

    /// True if the address is a synthetic function address.
    pub fn is_code_addr(addr: u32) -> bool {
        addr >= CODE_BASE
    }

    // ----- allocation -----

    /// Allocates a global variable of `size` bytes; returns its address.
    pub fn alloc_global(&mut self, size: u32) -> u32 {
        let size = size.max(1);
        let base = align_up(self.global_top, 8);
        self.global_top = base + size;
        self.globals.ensure(self.global_top);
        self.objects.insert(
            base,
            ObjectInfo {
                base,
                size,
                kind: ObjectKind::Global,
                live: true,
            },
        );
        base
    }

    /// Copies a string literal (plus NUL terminator) into rodata; returns its
    /// address.
    pub fn alloc_rodata(&mut self, bytes: &[u8]) -> u32 {
        let size = bytes.len() as u32 + 1;
        let base = align_up(self.global_top, 8);
        self.global_top = base + size;
        self.globals.ensure(self.global_top);
        let off = (base - GLOBAL_BASE) as usize;
        self.globals.data[off..off + bytes.len()].copy_from_slice(bytes);
        self.objects.insert(
            base,
            ObjectInfo {
                base,
                size,
                kind: ObjectKind::Rodata,
                live: true,
            },
        );
        base
    }

    /// Current stack pointer (used as a frame mark).
    pub fn stack_mark(&self) -> u32 {
        self.stack_top
    }

    /// Allocates a stack slot in the current frame.
    pub fn alloc_stack(&mut self, size: u32) -> u32 {
        let size = size.max(1);
        let base = align_up(self.stack_top, 8);
        self.stack_top = base + size;
        self.stack.ensure(self.stack_top);
        // Stack slots start zeroed (freshly grown segments are zero; reused
        // ones are cleared here so locals behave deterministically).
        let off = (base - STACK_BASE) as usize;
        for b in &mut self.stack.data[off..off + size as usize] {
            *b = 0;
        }
        self.objects.insert(
            base,
            ObjectInfo {
                base,
                size,
                kind: ObjectKind::Stack,
                live: true,
            },
        );
        base
    }

    /// Pops the stack back to a previous mark, retiring the frame's objects.
    pub fn pop_stack_frame(&mut self, mark: u32) {
        let dead: Vec<u32> = self
            .objects
            .range(mark..HEAP_BASE)
            .filter(|(_, o)| o.kind == ObjectKind::Stack)
            .map(|(b, _)| *b)
            .collect();
        for b in dead {
            self.objects.remove(&b);
        }
        self.stack_top = mark;
    }

    /// Allocates `size` bytes on the heap (the `kmalloc` backend). The block
    /// is always zeroed, as the paper's CCount requires ("zero all allocated
    /// storage"); the zeroing cost is charged by the caller.
    pub fn kmalloc(&mut self, size: u32) -> u32 {
        let size = size.max(1);
        let class = align_up(size, CHUNK_SIZE as u32);
        let base = if let Some(list) = self.free_lists.get_mut(&class) {
            list.pop()
        } else {
            None
        };
        let base = match base {
            Some(b) => b,
            None => {
                let b = align_up(self.heap_top, CHUNK_SIZE as u32);
                self.heap_top = b + class;
                self.heap.ensure(self.heap_top);
                b
            }
        };
        // Zero the storage (required so stale data never decrements random
        // refcounts when pointers are initialised).
        let off = (base - HEAP_BASE) as usize;
        for b in &mut self.heap.data[off..off + class as usize] {
            *b = 0;
        }
        self.stats.bytes_zeroed += u64::from(class);
        self.objects.insert(
            base,
            ObjectInfo {
                base,
                size,
                kind: ObjectKind::Heap,
                live: true,
            },
        );
        self.stats.allocs += 1;
        self.stats.heap_bytes_live += u64::from(class);
        self.stats.heap_bytes_peak = self.stats.heap_bytes_peak.max(self.stats.heap_bytes_live);
        base
    }

    /// Frees a heap object. Returns its size. The CCount free check is the
    /// caller's responsibility; `leak` requests log-and-leak behaviour (the
    /// object is marked dead but its storage is never reused, guaranteeing
    /// soundness after a failed check).
    pub fn kfree(&mut self, addr: u32, leak: bool) -> VmResult<u32> {
        self.stats.frees += 1;
        let obj = self.objects.get_mut(&addr).ok_or_else(|| {
            VmError::new(
                TrapKind::MemoryFault,
                format!("free of unallocated address 0x{addr:x}"),
            )
        })?;
        if obj.kind != ObjectKind::Heap {
            return Err(VmError::new(
                TrapKind::MemoryFault,
                format!("free of non-heap address 0x{addr:x}"),
            ));
        }
        if !obj.live {
            return Err(VmError::new(
                TrapKind::MemoryFault,
                format!("double free of 0x{addr:x}"),
            ));
        }
        obj.live = false;
        let size = obj.size;
        let class = align_up(size, CHUNK_SIZE as u32);
        self.stats.heap_bytes_live = self.stats.heap_bytes_live.saturating_sub(u64::from(class));
        if leak {
            self.stats.leaked_objects += 1;
        } else {
            self.free_lists.entry(class).or_default().push(addr);
        }
        Ok(size)
    }

    /// The object containing `addr`, if any.
    pub fn object_containing(&self, addr: u32) -> Option<&ObjectInfo> {
        let (_, obj) = self.objects.range(..=addr).next_back()?;
        if addr >= obj.base && addr < obj.base + obj.size.max(1) {
            Some(obj)
        } else {
            None
        }
    }

    /// The live object starting exactly at `addr`, if any.
    pub fn object_at(&self, addr: u32) -> Option<&ObjectInfo> {
        self.objects.get(&addr)
    }

    // ----- loads and stores -----

    /// Reads `size` bytes (1, 2, 4, or 8) at `addr`, little-endian.
    pub fn read(&self, addr: u32, size: u32) -> VmResult<u64> {
        let seg = self.segment(addr).ok_or_else(|| fault(addr))?;
        let off = (addr - seg.base) as usize;
        if off + size as usize > seg.data.len() {
            return Err(fault(addr));
        }
        let mut v: u64 = 0;
        for i in 0..size as usize {
            v |= u64::from(seg.data[off + i]) << (8 * i);
        }
        Ok(v)
    }

    /// Writes `size` bytes (1, 2, 4, or 8) at `addr`, little-endian.
    pub fn write(&mut self, addr: u32, size: u32, value: u64) -> VmResult<()> {
        let seg = self.segment_mut(addr).ok_or_else(|| fault(addr))?;
        let off = (addr - seg.base) as usize;
        if off + size as usize > seg.data.len() {
            return Err(fault(addr));
        }
        for i in 0..size as usize {
            seg.data[off + i] = ((value >> (8 * i)) & 0xff) as u8;
        }
        Ok(())
    }

    /// Copies `len` bytes from `src` to `dst` (the `memcpy` backend).
    pub fn copy(&mut self, dst: u32, src: u32, len: u32) -> VmResult<()> {
        // Byte-by-byte keeps the implementation simple and handles overlap
        // like memmove; the cost model charges per byte anyway.
        for i in 0..len {
            let b = self.read(src + i, 1)?;
            self.write(dst + i, 1, b)?;
        }
        Ok(())
    }

    /// Fills `len` bytes at `dst` with `byte` (the `memset` backend).
    pub fn fill(&mut self, dst: u32, byte: u8, len: u32) -> VmResult<()> {
        for i in 0..len {
            self.write(dst + i, 1, u64::from(byte))?;
        }
        Ok(())
    }

    // ----- CCount reference counts -----

    /// Adjusts the reference count of the chunk containing `target` by
    /// `delta`. Returns `true` if a count was actually maintained (stack and
    /// unmapped targets are not counted, matching the paper's kernel CCount).
    pub fn rc_adjust(&mut self, target: u32, delta: i32) -> bool {
        if target == 0 || Memory::is_stack_addr(target) || Memory::is_code_addr(target) {
            return false;
        }
        if self.segment(target).is_none() {
            return false;
        }
        let chunk = target / CHUNK_SIZE as u32;
        let rc = self.refcounts.entry(chunk).or_insert(0);
        if delta >= 0 {
            *rc = rc.wrapping_add(delta as u8);
        } else {
            *rc = rc.wrapping_sub((-delta) as u8);
        }
        true
    }

    /// The reference count of the chunk containing `addr`.
    pub fn rc_of(&self, addr: u32) -> u8 {
        *self
            .refcounts
            .get(&(addr / CHUNK_SIZE as u32))
            .unwrap_or(&0)
    }

    /// True if every chunk of the object `[base, base+size)` has a zero
    /// reference count (the CCount free-safety condition). Counts that have
    /// wrapped around at a multiple of 256 are missed, exactly as the paper
    /// concedes.
    pub fn rc_object_is_zero(&self, base: u32, size: u32) -> bool {
        let first = base / CHUNK_SIZE as u32;
        let last = (base + size.max(1) - 1) / CHUNK_SIZE as u32;
        (first..=last).all(|c| *self.refcounts.get(&c).unwrap_or(&0) == 0)
    }

    /// Number of chunks spanned by an object (used for cost accounting).
    pub fn chunks_of(base: u32, size: u32) -> u32 {
        let first = base / CHUNK_SIZE as u32;
        let last = (base + size.max(1) - 1) / CHUNK_SIZE as u32;
        last - first + 1
    }

    /// Clears every reference count (used between experiment runs).
    pub fn rc_reset(&mut self) {
        self.refcounts.clear();
    }
}

fn fault(addr: u32) -> VmError {
    if addr == 0 {
        VmError::new(TrapKind::MemoryFault, "null pointer dereference")
    } else {
        VmError::new(
            TrapKind::MemoryFault,
            format!("unmapped address 0x{addr:x}"),
        )
    }
}

fn align_up(v: u32, align: u32) -> u32 {
    v.div_ceil(align) * align
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn globals_read_write() {
        let mut m = Memory::new();
        let a = m.alloc_global(8);
        m.write(a, 4, 0xdeadbeef).unwrap();
        assert_eq!(m.read(a, 4).unwrap(), 0xdeadbeef);
        m.write(a + 4, 2, 0x1234).unwrap();
        assert_eq!(m.read(a + 4, 2).unwrap(), 0x1234);
    }

    #[test]
    fn null_and_unmapped_fault() {
        let m = Memory::new();
        assert!(m.read(0, 4).is_err());
        assert!(m.read(0x7000_0000, 4).is_err());
    }

    #[test]
    fn kmalloc_zeroes_and_tracks_objects() {
        let mut m = Memory::new();
        let a = m.kmalloc(40);
        assert_eq!(m.read(a, 8).unwrap(), 0);
        let obj = m.object_containing(a + 10).unwrap();
        assert_eq!(obj.base, a);
        assert_eq!(obj.size, 40);
        assert!(obj.live);
        assert_eq!(m.stats.allocs, 1);
    }

    #[test]
    fn kfree_and_reuse() {
        let mut m = Memory::new();
        let a = m.kmalloc(16);
        m.write(a, 4, 77).unwrap();
        m.kfree(a, false).unwrap();
        assert!(!m.object_at(a).unwrap().live);
        let b = m.kmalloc(16);
        assert_eq!(a, b, "freed block should be reused");
        assert_eq!(m.read(b, 4).unwrap(), 0, "reused block must be re-zeroed");
        // Leaked blocks are not reused.
        let c = m.kmalloc(16);
        m.kfree(c, true).unwrap();
        let d = m.kmalloc(16);
        assert_ne!(c, d);
        assert_eq!(m.stats.leaked_objects, 1);
    }

    #[test]
    fn double_free_detected() {
        let mut m = Memory::new();
        let a = m.kmalloc(16);
        m.kfree(a, false).unwrap();
        assert!(m.kfree(a, false).is_err());
        assert!(m.kfree(0x8000_1000, false).is_err());
    }

    #[test]
    fn stack_frames_pop() {
        let mut m = Memory::new();
        let mark = m.stack_mark();
        let a = m.alloc_stack(32);
        assert!(Memory::is_stack_addr(a));
        assert!(m.object_containing(a).is_some());
        m.pop_stack_frame(mark);
        assert!(m.object_containing(a).is_none());
        // Reuse of the same stack space starts zeroed.
        let b = m.alloc_stack(32);
        assert_eq!(b, a);
        assert_eq!(m.read(b, 8).unwrap(), 0);
    }

    #[test]
    fn refcounts_track_heap_and_globals_only() {
        let mut m = Memory::new();
        let h = m.kmalloc(64);
        let g = m.alloc_global(16);
        let s = m.alloc_stack(16);
        assert!(m.rc_adjust(h, 1));
        assert!(m.rc_adjust(g, 1));
        assert!(!m.rc_adjust(s, 1), "stack targets are not counted");
        assert!(!m.rc_adjust(0, 1), "null is not counted");
        assert_eq!(m.rc_of(h), 1);
        assert!(!m.rc_object_is_zero(h, 64));
        m.rc_adjust(h, -1);
        assert!(m.rc_object_is_zero(h, 64));
    }

    #[test]
    fn refcount_wraps_at_256() {
        let mut m = Memory::new();
        let h = m.kmalloc(16);
        for _ in 0..256 {
            m.rc_adjust(h, 1);
        }
        // 256 references look like zero: the k*256 caveat from the paper.
        assert!(m.rc_object_is_zero(h, 16));
    }

    #[test]
    fn copy_and_fill() {
        let mut m = Memory::new();
        let a = m.kmalloc(32);
        let b = m.kmalloc(32);
        m.fill(a, 0xab, 32).unwrap();
        m.copy(b, a, 32).unwrap();
        assert_eq!(m.read(b + 31, 1).unwrap(), 0xab);
    }

    #[test]
    fn chunk_arithmetic() {
        assert_eq!(Memory::chunks_of(0x8000_0000, 16), 1);
        assert_eq!(Memory::chunks_of(0x8000_0000, 17), 2);
        assert_eq!(Memory::chunks_of(0x8000_0008, 16), 2);
    }
}
