//! The cycle cost model.
//!
//! The paper reports *relative* performance (instrumented kernel vs. baseline
//! kernel) on real hardware; the VM replaces the hardware with a
//! deterministic cycle-accounting model. Absolute numbers are meaningless,
//! but ratios between a run with checks and a run without reproduce the
//! shape of Table 1 and the CCount overhead figures, because they are driven
//! by the same thing: how many extra operations the instrumentation adds per
//! unit of useful kernel work.
//!
//! The SMP/UP distinction matters for CCount: reference-count updates must be
//! atomic on SMP, and the paper measured them on a Pentium 4 "which has
//! relatively slow locked operations" — hence `locked_rmw` ≫ `rmw`.

use serde::{Deserialize, Serialize};

/// Machine configuration affecting instruction costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct MachineConfig {
    /// Symmetric multiprocessing: refcount updates use locked operations.
    pub smp: bool,
}

/// Cycle costs of VM operations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Arithmetic / logical operation.
    pub alu: u64,
    /// Memory load.
    pub load: u64,
    /// Memory store.
    pub store: u64,
    /// Conditional branch.
    pub branch: u64,
    /// Function call overhead (frame setup).
    pub call: u64,
    /// Function return overhead.
    pub ret: u64,
    /// Per-byte cost of bulk copies (`memcpy`, `copy_to_user`).
    pub copy_per_byte_x16: u64,
    /// Fixed cost of an allocator call (`kmalloc`), excluding zeroing.
    pub alloc: u64,
    /// Fixed cost of a `kfree`.
    pub free: u64,
    /// Per-chunk cost of zeroing freshly allocated memory.
    pub zero_per_chunk: u64,
    /// Cost of entering the scheduler / context switch.
    pub context_switch: u64,
    /// Cost of taking or releasing a spinlock.
    pub spinlock: u64,
    /// Cost of disabling or enabling interrupts.
    pub irq_toggle: u64,
    /// Syscall entry/exit overhead.
    pub syscall: u64,

    // ---- Deputy run-time checks ----
    /// Null check.
    pub check_nonnull: u64,
    /// Bounds check against an annotation-provided length.
    pub check_bounds: u64,
    /// Bounds check that must look up the object extent (`auto` bounds).
    pub check_bounds_auto: u64,
    /// Union tag check.
    pub check_union: u64,
    /// Null-termination scan check (fixed component).
    pub check_nullterm: u64,

    // ---- CCount instrumentation ----
    /// Non-atomic refcount increment or decrement (UP kernel).
    pub rmw: u64,
    /// Locked refcount increment or decrement (SMP kernel).
    pub locked_rmw: u64,
    /// Per-chunk cost of the free-time refcount verification.
    pub free_check_per_chunk: u64,

    // ---- BlockStop runtime assertion ----
    /// Cost of `assert_may_block` (one flag load and test).
    pub assert_may_block: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            alu: 1,
            load: 2,
            store: 2,
            branch: 1,
            call: 6,
            ret: 4,
            copy_per_byte_x16: 4,
            alloc: 60,
            free: 40,
            zero_per_chunk: 4,
            context_switch: 400,
            spinlock: 12,
            irq_toggle: 6,
            syscall: 80,
            check_nonnull: 1,
            check_bounds: 2,
            check_bounds_auto: 10,
            check_union: 2,
            check_nullterm: 4,
            rmw: 5,
            locked_rmw: 40,
            free_check_per_chunk: 2,
            assert_may_block: 2,
        }
    }
}

impl CostModel {
    /// The cost of one refcount update under the given machine configuration.
    pub fn rc_update(&self, machine: MachineConfig) -> u64 {
        if machine.smp {
            self.locked_rmw
        } else {
            self.rmw
        }
    }

    /// The cost of copying `len` bytes.
    pub fn copy_cost(&self, len: u32) -> u64 {
        // One unit per 16 bytes (cache-line-ish granularity), minimum one.
        let units = u64::from(len).div_ceil(16).max(1);
        units * self.copy_per_byte_x16
    }
}

/// A monotonically increasing cycle counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleCounter {
    cycles: u64,
}

impl CycleCounter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        CycleCounter { cycles: 0 }
    }

    /// Adds `n` cycles.
    pub fn charge(&mut self, n: u64) {
        self.cycles = self.cycles.saturating_add(n);
    }

    /// Total cycles so far.
    pub fn total(&self) -> u64 {
        self.cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smp_refcounts_cost_more() {
        let c = CostModel::default();
        assert!(
            c.rc_update(MachineConfig { smp: true }) > c.rc_update(MachineConfig { smp: false }),
            "locked RMW must dominate (Pentium 4 behaviour)"
        );
    }

    #[test]
    fn copy_cost_scales_with_length() {
        let c = CostModel::default();
        assert!(c.copy_cost(4096) > c.copy_cost(64));
        assert!(c.copy_cost(0) >= c.copy_per_byte_x16);
    }

    #[test]
    fn counter_accumulates() {
        let mut c = CycleCounter::new();
        c.charge(10);
        c.charge(5);
        assert_eq!(c.total(), 15);
    }

    #[test]
    fn auto_bounds_cost_exceeds_static_bounds() {
        let c = CostModel::default();
        assert!(c.check_bounds_auto > c.check_bounds);
    }
}
