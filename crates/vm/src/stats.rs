//! Run statistics collected by the VM.
//!
//! Every experiment in the paper is ultimately a question about these
//! numbers: how many cycles did a workload take with and without checks
//! (Table 1, E4), how many frees were verified good (E3), and where did the
//! kernel try to block with interrupts disabled (E5 ground truth).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A record of one failed run-time check.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckFailure {
    /// Check kind mnemonic (`bounds`, `nonnull`, `union_tag`, ...).
    pub kind: String,
    /// Function in which the check fired.
    pub function: String,
    /// Human-readable description.
    pub detail: String,
}

/// A record of a bad free detected by CCount.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BadFree {
    /// Function performing the free.
    pub function: String,
    /// Base address of the freed object.
    pub addr: u32,
    /// Residual reference count observed (per-chunk maximum).
    pub residual_refs: u32,
    /// Whether the free happened inside a delayed-free scope (checked at the
    /// end of the scope).
    pub delayed: bool,
}

/// A record of a blocking call attempted while interrupts were disabled.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockingViolation {
    /// The blocking function that was called.
    pub callee: String,
    /// The function that made the call.
    pub caller: String,
    /// Interrupt-disable nesting depth at the time.
    pub irq_depth: u32,
    /// Spinlocks held at the time.
    pub locks_held: Vec<String>,
}

/// Aggregated statistics for a single VM run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Total cycles charged.
    pub cycles: u64,
    /// Number of KC statements executed.
    pub steps: u64,
    /// Number of function calls executed.
    pub calls: u64,
    /// Run-time checks executed, by kind.
    pub checks_executed: BTreeMap<String, u64>,
    /// Failed checks (the run continues unless configured to trap).
    pub check_failures: Vec<CheckFailure>,
    /// Reference-count updates performed (CCount).
    pub rc_updates: u64,
    /// Frees whose refcount check passed.
    pub frees_good: u64,
    /// Frees whose refcount check failed (logged and leaked).
    pub frees_bad: u64,
    /// Details of bad frees.
    pub bad_frees: Vec<BadFree>,
    /// Frees deferred by delayed-free scopes.
    pub frees_delayed: u64,
    /// Heap allocations observed.
    pub allocs: u64,
    /// Blocking-while-atomic violations observed at run time.
    pub blocking_violations: Vec<BlockingViolation>,
    /// `assert_may_block` assertions that fired (interrupts were disabled).
    pub assert_failures: u64,
    /// Bytes copied to or from user space.
    pub user_copy_bytes: u64,
    /// Context switches performed.
    pub context_switches: u64,
}

impl RunStats {
    /// Records an executed check of the given kind.
    pub fn count_check(&mut self, kind: &str) {
        *self.checks_executed.entry(kind.to_string()).or_insert(0) += 1;
    }

    /// Total number of run-time checks executed.
    pub fn total_checks(&self) -> u64 {
        self.checks_executed.values().sum()
    }

    /// Fraction of frees that passed the CCount check (1.0 when no frees).
    pub fn good_free_ratio(&self) -> f64 {
        let total = self.frees_good + self.frees_bad;
        if total == 0 {
            1.0
        } else {
            self.frees_good as f64 / total as f64
        }
    }

    /// Merges another run's statistics into this one (used by multi-phase
    /// workloads such as boot followed by light use).
    pub fn merge(&mut self, other: &RunStats) {
        self.cycles += other.cycles;
        self.steps += other.steps;
        self.calls += other.calls;
        for (k, v) in &other.checks_executed {
            *self.checks_executed.entry(k.clone()).or_insert(0) += v;
        }
        self.check_failures
            .extend(other.check_failures.iter().cloned());
        self.rc_updates += other.rc_updates;
        self.frees_good += other.frees_good;
        self.frees_bad += other.frees_bad;
        self.bad_frees.extend(other.bad_frees.iter().cloned());
        self.frees_delayed += other.frees_delayed;
        self.allocs += other.allocs;
        self.blocking_violations
            .extend(other.blocking_violations.iter().cloned());
        self.assert_failures += other.assert_failures;
        self.user_copy_bytes += other.user_copy_bytes;
        self.context_switches += other.context_switches;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn good_free_ratio_handles_zero() {
        let s = RunStats::default();
        assert_eq!(s.good_free_ratio(), 1.0);
    }

    #[test]
    fn good_free_ratio_computes() {
        let s = RunStats {
            frees_good: 197,
            frees_bad: 3,
            ..RunStats::default()
        };
        assert!((s.good_free_ratio() - 0.985).abs() < 1e-9);
    }

    #[test]
    fn check_counting_and_total() {
        let mut s = RunStats::default();
        s.count_check("bounds");
        s.count_check("bounds");
        s.count_check("nonnull");
        assert_eq!(s.checks_executed["bounds"], 2);
        assert_eq!(s.total_checks(), 3);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = RunStats {
            cycles: 100,
            frees_good: 2,
            ..RunStats::default()
        };
        a.count_check("bounds");
        let mut b = RunStats {
            cycles: 50,
            frees_bad: 1,
            ..RunStats::default()
        };
        b.count_check("bounds");
        a.merge(&b);
        assert_eq!(a.cycles, 150);
        assert_eq!(a.frees_good, 2);
        assert_eq!(a.frees_bad, 1);
        assert_eq!(a.checks_executed["bounds"], 2);
    }
}
