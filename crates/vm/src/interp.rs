//! The KC interpreter: executes programs against the VM memory, kernel
//! runtime state, and cycle cost model.
//!
//! The interpreter is the "hardware + VMware" substitute for the paper's
//! evaluation: a deputized kernel is simply a program with `Check` statements
//! inserted (executed when [`VmConfig::deputy_checks`] is on), and a
//! CCount-instrumented kernel is one executed with [`VmConfig::ccount`] on,
//! which maintains per-chunk reference counts on every pointer store outside
//! the stack and verifies them at free time.

use crate::cost::{CostModel, CycleCounter, MachineConfig};
use crate::error::{TrapKind, VmError, VmResult};
use crate::mem::{Memory, ObjectKind, CODE_BASE};
use crate::stats::{BadFree, BlockingViolation, CheckFailure, RunStats};
use crate::trace::{ResolvedAddr, TraceEvent, Tracer};
use crate::value::Value;
use ivy_cmir::ast::{BinOp, Block, Check, Expr, Function, Program, Stmt, UnOp};
use ivy_cmir::layout::LayoutCtx;
use ivy_cmir::types::{IntKind, Type};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// The GFP flag bit that allows an allocation to sleep (`GFP_WAIT`).
pub const GFP_WAIT: i64 = 0x10;

/// Configuration of a VM run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VmConfig {
    /// Machine model (UP vs SMP refcount costs).
    pub machine: MachineConfig,
    /// Execute (and charge for) Deputy run-time checks.
    pub deputy_checks: bool,
    /// Maintain CCount reference counts and verify frees.
    pub ccount: bool,
    /// Execute BlockStop `assert_may_block` assertions.
    pub blockstop_asserts: bool,
    /// Trap (abort the run) when a Deputy check fails instead of logging.
    pub trap_on_check_failure: bool,
    /// Trap when a CCount free check fails instead of log-and-leak.
    pub trap_on_bad_free: bool,
    /// Maximum number of statements executed before aborting (runaway-loop
    /// protection for generated workloads).
    pub max_steps: u64,
    /// Maximum KC call-stack depth before aborting. Each KC frame costs
    /// several host frames, so harnesses running on small thread stacks
    /// (tests, the oracle's minimizer) should lower this well below the
    /// default of 512.
    pub max_call_depth: usize,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            machine: MachineConfig::default(),
            deputy_checks: false,
            ccount: false,
            blockstop_asserts: false,
            trap_on_check_failure: false,
            trap_on_bad_free: false,
            max_steps: 200_000_000,
            max_call_depth: 512,
        }
    }
}

impl VmConfig {
    /// Baseline kernel: no instrumentation at all.
    pub fn baseline() -> Self {
        VmConfig::default()
    }

    /// Deputized kernel: Deputy run-time checks enabled.
    pub fn deputized() -> Self {
        VmConfig {
            deputy_checks: true,
            ..VmConfig::default()
        }
    }

    /// CCount kernel: reference counting enabled.
    pub fn ccounted(smp: bool) -> Self {
        VmConfig {
            ccount: true,
            machine: MachineConfig { smp },
            ..VmConfig::default()
        }
    }

    /// Fully instrumented kernel: Deputy + CCount + BlockStop assertions.
    pub fn full(smp: bool) -> Self {
        VmConfig {
            deputy_checks: true,
            ccount: true,
            blockstop_asserts: true,
            machine: MachineConfig { smp },
            ..VmConfig::default()
        }
    }
}

/// Control-flow signal produced by statement execution.
enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

/// One activation record.
pub(crate) struct Frame {
    pub(crate) func: String,
    pub(crate) locals: HashMap<String, (u32, Type)>,
    stack_mark: u32,
}

/// The virtual machine.
pub struct Vm {
    pub(crate) program: Program,
    /// Memory (public for tests and tools that want to inspect the heap).
    pub mem: Memory,
    /// Cost model in effect.
    pub cost: CostModel,
    /// Run configuration.
    pub config: VmConfig,
    /// Statistics accumulated so far.
    pub stats: RunStats,
    pub(crate) cycles: CycleCounter,
    pub(crate) globals: HashMap<String, (u32, Type)>,
    pub(crate) global_names: HashMap<u32, String>,
    pub(crate) func_addrs: HashMap<String, u32>,
    pub(crate) addr_funcs: HashMap<u32, String>,
    pub(crate) string_cache: HashMap<String, u32>,
    pub(crate) call_stack: Vec<String>,
    pub(crate) irq_depth: u32,
    pub(crate) locks_held: Vec<String>,
    pub(crate) delayed_free_stack: Vec<Vec<u32>>,
    /// Offsets within heap/global objects where pointer values are stored
    /// (keyed by object base). Used for type-aware free/memset/memcpy.
    pub(crate) ptr_slots: HashMap<u32, BTreeSet<u32>>,
    /// Shared per-function definitions, so a call looks up an `Arc`
    /// instead of deep-cloning the function body (the seed interpreter
    /// cloned every body on every call).
    fns: HashMap<String, Arc<Function>>,
    /// Attached dynamic-fact tracer, if any (see [`crate::trace`]).
    tracer: Option<Box<dyn Tracer>>,
    /// Live stack slots, `base -> (size, function, variable)`; maintained
    /// only while a tracer is attached, so [`Vm::resolve_addr`] can map
    /// stack addresses back to locals.
    trace_locals: BTreeMap<u32, (u32, String, String)>,
    /// Dynamic-fact trace events delivered to the attached tracer. Kept
    /// out of [`RunStats`] so traced and untraced runs stay
    /// stats-identical (the tracing-transparency invariant).
    trace_events: u64,
}

impl Vm {
    /// Creates a VM for a program: lays out globals, interns nothing else.
    pub fn new(program: Program, config: VmConfig) -> VmResult<Vm> {
        let mut vm = Vm {
            mem: Memory::new(),
            cost: CostModel::default(),
            config,
            stats: RunStats::default(),
            cycles: CycleCounter::new(),
            globals: HashMap::new(),
            global_names: HashMap::new(),
            func_addrs: HashMap::new(),
            addr_funcs: HashMap::new(),
            string_cache: HashMap::new(),
            call_stack: Vec::new(),
            irq_depth: 0,
            locks_held: Vec::new(),
            delayed_free_stack: Vec::new(),
            ptr_slots: HashMap::new(),
            fns: HashMap::new(),
            tracer: None,
            trace_locals: BTreeMap::new(),
            trace_events: 0,
            program,
        };
        for f in &vm.program.functions {
            // First definition wins, matching `Program::function`.
            vm.fns
                .entry(f.name.clone())
                .or_insert_with(|| Arc::new(f.clone()));
        }
        vm.assign_function_addresses();
        vm.layout_globals()?;
        Ok(vm)
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Total cycles charged so far.
    pub fn cycles(&self) -> u64 {
        self.cycles.total()
    }

    /// The address of a global variable, if it exists.
    pub fn global_addr(&self, name: &str) -> Option<u32> {
        self.globals.get(name).map(|(a, _)| *a)
    }

    /// Current interrupt-disable nesting depth.
    pub fn irq_depth(&self) -> u32 {
        self.irq_depth
    }

    /// Attaches a dynamic-fact tracer. Attach before [`Vm::run`]; facts
    /// from global initialisers (which run in [`Vm::new`]) are not traced.
    pub fn attach_tracer(&mut self, tracer: Box<dyn Tracer>) {
        self.tracer = Some(tracer);
    }

    /// Detaches and returns the tracer, if one was attached.
    pub fn take_tracer(&mut self) -> Option<Box<dyn Tracer>> {
        self.tracer.take()
    }

    /// True while a tracer is attached (hooks and the stack-slot registry
    /// are active).
    pub fn tracing(&self) -> bool {
        self.tracer.is_some()
    }

    /// Delivers an event to the attached tracer (no-op without one). The
    /// tracer is taken out for the duration of the callback so it can
    /// borrow the VM immutably.
    fn trace_event(&mut self, event: TraceEvent<'_>) {
        if let Some(mut t) = self.tracer.take() {
            self.trace_events += 1;
            t.on_event(self, event);
            self.tracer = Some(t);
        }
    }

    /// Resolves a concrete address to the program entity that owns it.
    /// Stack addresses resolve only while a tracer is attached (the slot
    /// registry is tracer-gated); freed heap objects resolve to
    /// [`ResolvedAddr::Unknown`].
    pub fn resolve_addr(&self, addr: u32) -> ResolvedAddr {
        if addr == 0 {
            return ResolvedAddr::Null;
        }
        if Memory::is_code_addr(addr) {
            return match self.addr_funcs.get(&addr) {
                Some(f) => ResolvedAddr::Code { func: f.clone() },
                None => ResolvedAddr::Unknown,
            };
        }
        if Memory::is_stack_addr(addr) {
            if let Some((base, (size, func, var))) = self.trace_locals.range(..=addr).next_back() {
                if addr < base + size {
                    return ResolvedAddr::StackLocal {
                        func: func.clone(),
                        var: var.clone(),
                        offset: addr - base,
                    };
                }
            }
            return ResolvedAddr::Unknown;
        }
        match self.mem.object_containing(addr) {
            Some(obj) => match obj.kind {
                ObjectKind::Global => match self.global_names.get(&obj.base) {
                    Some(name) => ResolvedAddr::Global {
                        name: name.clone(),
                        offset: addr - obj.base,
                    },
                    None => ResolvedAddr::Rodata,
                },
                ObjectKind::Rodata => ResolvedAddr::Rodata,
                ObjectKind::Heap if obj.live => ResolvedAddr::Heap {
                    base: obj.base,
                    offset: addr - obj.base,
                },
                _ => ResolvedAddr::Unknown,
            },
            None => ResolvedAddr::Unknown,
        }
    }

    /// Runs `entry(args...)` to completion and returns its value.
    pub fn run(&mut self, entry: &str, args: Vec<Value>) -> VmResult<Value> {
        let _span = ivy_telemetry::span("vm/run", entry.to_string());
        let (cycles_before, events_before) = (self.stats.cycles, self.trace_events);
        let outcome = self.call_function(entry, args).map_err(|mut e| {
            if e.stack.is_empty() {
                e.stack = self.call_stack.clone();
            }
            e
        });
        ivy_telemetry::counter_labeled(
            "ivy_vm_cycles_total",
            "entry",
            entry,
            self.stats.cycles - cycles_before,
        );
        ivy_telemetry::counter_labeled(
            "ivy_vm_trace_events_total",
            "entry",
            entry,
            self.trace_events - events_before,
        );
        outcome
    }

    /// Dynamic-fact trace events delivered to the attached tracer so far
    /// (0 when no tracer was ever attached).
    pub fn trace_events(&self) -> u64 {
        self.trace_events
    }

    fn assign_function_addresses(&mut self) {
        for (i, f) in self.program.functions.iter().enumerate() {
            let addr = CODE_BASE + (i as u32 + 1) * 16;
            self.func_addrs.insert(f.name.clone(), addr);
            self.addr_funcs.insert(addr, f.name.clone());
        }
    }

    fn layout_globals(&mut self) -> VmResult<()> {
        let globals: Vec<_> = self.program.globals.clone();
        for g in &globals {
            let size = self.size_of(&g.decl.ty)? as u32;
            let addr = self.mem.alloc_global(size);
            self.globals
                .insert(g.decl.name.clone(), (addr, g.decl.ty.clone()));
            self.global_names.insert(addr, g.decl.name.clone());
        }
        // Initialisers may reference other globals, so run them after layout.
        for g in &globals {
            if let Some(init) = &g.init {
                let frame = Frame {
                    func: "<global-init>".to_string(),
                    locals: HashMap::new(),
                    stack_mark: self.mem.stack_mark(),
                };
                let v = self.eval(init, &frame)?;
                let (addr, ty) = self.globals[&g.decl.name].clone();
                self.store_typed(addr, &ty, v, false)?;
            }
        }
        Ok(())
    }

    // ----- type helpers -----

    pub(crate) fn size_of(&self, ty: &Type) -> VmResult<u64> {
        LayoutCtx::new(&self.program)
            .size_of(ty)
            .map_err(|e| VmError::new(TrapKind::IllFormed, format!("layout error: {e}")))
    }

    pub(crate) fn field_offset(&self, composite: &str, field: &str) -> VmResult<u64> {
        LayoutCtx::new(&self.program)
            .field_offset(composite, field)
            .map_err(|e| VmError::new(TrapKind::IllFormed, format!("layout error: {e}")))
    }

    fn resolve<'a>(&'a self, ty: &'a Type) -> &'a Type {
        self.program.resolve_type(ty)
    }

    /// Computes the static type of an expression in the context of a frame.
    pub(crate) fn type_of_expr(&self, e: &Expr, frame: &Frame) -> VmResult<Type> {
        match e {
            Expr::Int(_) => Ok(Type::Int(IntKind::I32)),
            Expr::Str(_) => Ok(Type::ptr(Type::u8())),
            Expr::Null => Ok(Type::ptr(Type::Void)),
            Expr::SizeOf(_) => Ok(Type::Int(IntKind::U32)),
            Expr::Var(name) => {
                if let Some((_, ty)) = frame.locals.get(name) {
                    Ok(ty.clone())
                } else if let Some((_, ty)) = self.globals.get(name) {
                    Ok(ty.clone())
                } else if let Some(f) = self.program.function(name) {
                    Ok(Type::Func(Box::new(f.func_type())))
                } else {
                    Err(undefined(name))
                }
            }
            Expr::Unary(UnOp::Not, _) => Ok(Type::Int(IntKind::I32)),
            Expr::Unary(_, inner) => self.type_of_expr(inner, frame),
            Expr::Binary(op, a, b) => {
                if op.is_comparison() || op.is_logical() {
                    return Ok(Type::Int(IntKind::I32));
                }
                let ta = self.type_of_expr(a, frame)?;
                if self.resolve(&ta).is_ptr() {
                    return Ok(ta);
                }
                let tb = self.type_of_expr(b, frame)?;
                if self.resolve(&tb).is_ptr() {
                    return Ok(tb);
                }
                Ok(ta)
            }
            Expr::Deref(inner) | Expr::Index(inner, _) => {
                let t = self.type_of_expr(inner, frame)?;
                match self.resolve(&t) {
                    Type::Ptr(p, _) => Ok((**p).clone()),
                    Type::Array(el, _) => Ok((**el).clone()),
                    other => Err(VmError::new(
                        TrapKind::IllFormed,
                        format!("dereference of non-pointer type `{other}`"),
                    )),
                }
            }
            Expr::Field(obj, field) => {
                let t = self.type_of_expr(obj, frame)?;
                self.field_type(&t, field)
            }
            Expr::Arrow(obj, field) => {
                let t = self.type_of_expr(obj, frame)?;
                match self.resolve(&t) {
                    Type::Ptr(p, _) => {
                        let inner = (**p).clone();
                        self.field_type(&inner, field)
                    }
                    other => Err(VmError::new(
                        TrapKind::IllFormed,
                        format!("`->` on non-pointer type `{other}`"),
                    )),
                }
            }
            Expr::AddrOf(inner) => Ok(Type::ptr(self.type_of_expr(inner, frame)?)),
            Expr::Cast(t, _) => Ok(t.clone()),
            Expr::Call(callee, _) => {
                let t = self.type_of_expr(callee, frame)?;
                match self.resolve(&t) {
                    Type::Func(ft) => Ok(ft.ret.clone()),
                    Type::Ptr(inner, _) => match self.resolve(inner) {
                        Type::Func(ft) => Ok(ft.ret.clone()),
                        _ => Ok(Type::Int(IntKind::I32)),
                    },
                    _ => Ok(Type::Int(IntKind::I32)),
                }
            }
        }
    }

    fn field_type(&self, obj_ty: &Type, field: &str) -> VmResult<Type> {
        match self.resolve(obj_ty) {
            Type::Struct(name) | Type::Union(name) => {
                let def = self.program.composite(name).ok_or_else(|| {
                    VmError::new(TrapKind::IllFormed, format!("undefined composite `{name}`"))
                })?;
                def.field(field).map(|f| f.ty.clone()).ok_or_else(|| {
                    VmError::new(
                        TrapKind::IllFormed,
                        format!("`{name}` has no field `{field}`"),
                    )
                })
            }
            other => Err(VmError::new(
                TrapKind::IllFormed,
                format!("field access on non-composite `{other}`"),
            )),
        }
    }

    // ----- loads and stores -----

    pub(crate) fn load_typed(&mut self, addr: u32, ty: &Type) -> VmResult<Value> {
        let resolved = self.resolve(ty).clone();
        match resolved {
            Type::Array(..) | Type::Struct(_) | Type::Union(_) => Ok(Value::Ptr(addr)),
            Type::Ptr(..) | Type::Func(_) => {
                self.charge(self.cost.load);
                let raw = self.mem.read(addr, 4)?;
                Ok(Value::Ptr(raw as u32))
            }
            Type::Bool => {
                self.charge(self.cost.load);
                Ok(Value::Int((self.mem.read(addr, 1)? != 0) as i64))
            }
            Type::Int(k) => {
                self.charge(self.cost.load);
                let raw = self.mem.read(addr, k.size() as u32)?;
                Ok(Value::Int(k.truncate(raw as i64)))
            }
            Type::Void => Ok(Value::Int(0)),
            Type::Named(_) => unreachable!("resolved above"),
        }
    }

    /// Stores a value of declared type `ty` at `addr`, maintaining CCount
    /// reference counts when enabled and the address is outside the stack.
    pub(crate) fn store_typed(
        &mut self,
        addr: u32,
        ty: &Type,
        value: Value,
        charge_rc: bool,
    ) -> VmResult<()> {
        let resolved = self.resolve(ty).clone();
        match resolved {
            Type::Ptr(..) | Type::Func(_) => {
                self.charge(self.cost.store);
                let new_target = value.as_ptr();
                if self.config.ccount && charge_rc && !Memory::is_stack_addr(addr) {
                    // RC(b)++, RC(*a)--, *a = b — increment first to avoid a
                    // transitory zero count (the paper's ordering rule).
                    let old = self.mem.read(addr, 4)? as u32;
                    let mut updates = 0;
                    if self.mem.rc_adjust(new_target, 1) {
                        updates += 1;
                    }
                    if self.mem.rc_adjust(old, -1) {
                        updates += 1;
                    }
                    if updates > 0 {
                        self.stats.rc_updates += updates;
                        self.charge(self.cost.rc_update(self.config.machine) * updates);
                    }
                }
                self.track_ptr_slot(addr, true);
                self.mem.write(addr, 4, u64::from(new_target))
            }
            Type::Bool => {
                self.charge(self.cost.store);
                self.track_ptr_slot(addr, false);
                self.mem.write(addr, 1, u64::from(value.truthy()))
            }
            Type::Int(k) => {
                self.charge(self.cost.store);
                self.untrack_overwritten_ptr(addr, charge_rc)?;
                self.mem.write(addr, k.size() as u32, value.as_int() as u64)
            }
            Type::Array(..) | Type::Struct(_) | Type::Union(_) => {
                // Whole-object assignment: copy bytes from the source object.
                let size = self.size_of(&resolved)? as u32;
                self.charge(self.cost.copy_cost(size));
                self.mem.copy(addr, value.as_ptr(), size)
            }
            Type::Void => Ok(()),
            Type::Named(_) => unreachable!("resolved above"),
        }
    }

    fn track_ptr_slot(&mut self, addr: u32, is_ptr: bool) {
        if Memory::is_stack_addr(addr) {
            return;
        }
        if let Some(obj) = self.mem.object_containing(addr) {
            let base = obj.base;
            let off = addr - base;
            let set = self.ptr_slots.entry(base).or_default();
            if is_ptr {
                set.insert(off);
            } else {
                set.remove(&off);
            }
        }
    }

    fn untrack_overwritten_ptr(&mut self, addr: u32, charge_rc: bool) -> VmResult<()> {
        if !self.config.ccount || Memory::is_stack_addr(addr) {
            return Ok(());
        }
        let Some(obj) = self.mem.object_containing(addr) else {
            return Ok(());
        };
        let base = obj.base;
        let off = addr - base;
        let tracked = self
            .ptr_slots
            .get(&base)
            .map(|s| s.contains(&off))
            .unwrap_or(false);
        if tracked {
            let old = self.mem.read(addr, 4)? as u32;
            if charge_rc && self.mem.rc_adjust(old, -1) {
                self.stats.rc_updates += 1;
                self.charge(self.cost.rc_update(self.config.machine));
            }
            if let Some(s) = self.ptr_slots.get_mut(&base) {
                s.remove(&off);
            }
        }
        Ok(())
    }

    // ----- evaluation -----

    pub(crate) fn charge(&mut self, cycles: u64) {
        self.cycles.charge(cycles);
        self.stats.cycles = self.cycles.total();
    }

    fn step(&mut self) -> VmResult<()> {
        self.stats.steps += 1;
        if self.stats.steps > self.config.max_steps {
            return Err(VmError::new(
                TrapKind::StepLimit,
                format!("exceeded {} statements", self.config.max_steps),
            ));
        }
        Ok(())
    }

    /// Evaluates an expression to a value.
    fn eval(&mut self, e: &Expr, frame: &Frame) -> VmResult<Value> {
        match e {
            Expr::Int(v) => Ok(Value::Int(*v)),
            Expr::Null => Ok(Value::NULL),
            Expr::Str(s) => {
                if let Some(addr) = self.string_cache.get(s) {
                    return Ok(Value::Ptr(*addr));
                }
                let addr = self.mem.alloc_rodata(s.as_bytes());
                self.string_cache.insert(s.clone(), addr);
                Ok(Value::Ptr(addr))
            }
            Expr::SizeOf(t) => Ok(Value::Int(self.size_of(t)? as i64)),
            Expr::Var(name) => {
                if let Some((addr, ty)) = frame.locals.get(name).cloned() {
                    self.load_typed(addr, &ty)
                } else if let Some((addr, ty)) = self.globals.get(name).cloned() {
                    self.load_typed(addr, &ty)
                } else if let Some(addr) = self.func_addrs.get(name) {
                    Ok(Value::Ptr(*addr))
                } else {
                    Err(undefined(name))
                }
            }
            Expr::Unary(op, inner) => {
                let v = self.eval(inner, frame)?;
                self.charge(self.cost.alu);
                Ok(match op {
                    UnOp::Neg => Value::Int(-v.as_int()),
                    UnOp::Not => Value::Int((!v.truthy()) as i64),
                    UnOp::BitNot => Value::Int(!v.as_int()),
                })
            }
            Expr::Binary(op, a, b) => self.eval_binary(*op, a, b, frame),
            Expr::Deref(_) | Expr::Index(..) | Expr::Field(..) | Expr::Arrow(..) => {
                let (addr, ty) = self.lval(e, frame)?;
                self.load_typed(addr, &ty)
            }
            Expr::AddrOf(inner) => {
                let (addr, _) = self.lval(inner, frame)?;
                Ok(Value::Ptr(addr))
            }
            Expr::Cast(t, inner) => {
                let v = self.eval(inner, frame)?;
                Ok(match self.resolve(t) {
                    Type::Int(k) => Value::Int(k.truncate(v.as_int())),
                    Type::Bool => Value::Int(v.truthy() as i64),
                    Type::Ptr(..) | Type::Func(_) => Value::Ptr(v.as_ptr()),
                    _ => v,
                })
            }
            Expr::Call(callee, args) => {
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval(a, frame)?);
                }
                let name = self.resolve_callee(callee, frame)?;
                let result = self.call_function(&name, argv)?;
                if self.tracer.is_some()
                    && self
                        .program
                        .function(&name)
                        .map(|f| f.attrs.allocator)
                        .unwrap_or(false)
                {
                    let func = frame.func.clone();
                    let call_text = ivy_cmir::pretty::expr_str(e);
                    let base = result.as_ptr();
                    self.trace_event(TraceEvent::Alloc {
                        func: &func,
                        call_text,
                        base,
                    });
                }
                Ok(result)
            }
        }
    }

    fn resolve_callee(&mut self, callee: &Expr, frame: &Frame) -> VmResult<String> {
        if let Expr::Var(name) = callee {
            if !frame.locals.contains_key(name)
                && !self.globals.contains_key(name)
                && self.program.function(name).is_some()
            {
                return Ok(name.clone());
            }
        }
        let v = self.eval(callee, frame)?;
        let addr = v.as_ptr();
        let target = self.addr_funcs.get(&addr).cloned().ok_or_else(|| {
            VmError::new(
                TrapKind::Undefined,
                format!("call through invalid function pointer 0x{addr:x}"),
            )
        })?;
        if self.tracer.is_some() {
            let caller = frame.func.clone();
            let callee_text = ivy_cmir::pretty::expr_str(callee);
            self.trace_event(TraceEvent::IndirectCall {
                caller: &caller,
                callee_text,
                target: &target,
            });
        }
        Ok(target)
    }

    fn eval_binary(&mut self, op: BinOp, a: &Expr, b: &Expr, frame: &Frame) -> VmResult<Value> {
        // Short-circuit operators.
        if op == BinOp::LAnd {
            let va = self.eval(a, frame)?;
            self.charge(self.cost.branch);
            if !va.truthy() {
                return Ok(Value::Int(0));
            }
            let vb = self.eval(b, frame)?;
            return Ok(Value::Int(vb.truthy() as i64));
        }
        if op == BinOp::LOr {
            let va = self.eval(a, frame)?;
            self.charge(self.cost.branch);
            if va.truthy() {
                return Ok(Value::Int(1));
            }
            let vb = self.eval(b, frame)?;
            return Ok(Value::Int(vb.truthy() as i64));
        }

        let va = self.eval(a, frame)?;
        let vb = self.eval(b, frame)?;
        self.charge(self.cost.alu);

        // Pointer arithmetic scales by the pointee size.
        if matches!(op, BinOp::Add | BinOp::Sub) {
            let ta = self.type_of_expr(a, frame)?;
            let ta_res = self.resolve(&ta).clone();
            if let Type::Ptr(pointee, _) = &ta_res {
                let elem = self.size_of(pointee).unwrap_or(1).max(1) as i64;
                let tb = self.type_of_expr(b, frame)?;
                if self.resolve(&tb).is_ptr() && op == BinOp::Sub {
                    let diff = i64::from(va.as_ptr()) - i64::from(vb.as_ptr());
                    return Ok(Value::Int(diff / elem));
                }
                let delta = vb.as_int() * elem;
                let base = i64::from(va.as_ptr());
                let out = if op == BinOp::Add {
                    base + delta
                } else {
                    base - delta
                };
                return Ok(Value::Ptr(out as u32));
            }
            // int + ptr
            if let Type::Ptr(pointee, _) = self.resolve(&self.type_of_expr(b, frame)?).clone() {
                if op == BinOp::Add {
                    let elem = self.size_of(&pointee).unwrap_or(1).max(1) as i64;
                    let out = i64::from(vb.as_ptr()) + va.as_int() * elem;
                    return Ok(Value::Ptr(out as u32));
                }
            }
        }

        let x = va.as_int();
        let y = vb.as_int();
        let r = match op {
            BinOp::Add => x.wrapping_add(y),
            BinOp::Sub => x.wrapping_sub(y),
            BinOp::Mul => x.wrapping_mul(y),
            BinOp::Div => {
                if y == 0 {
                    return Err(VmError::new(TrapKind::DivideByZero, "division by zero"));
                }
                x.wrapping_div(y)
            }
            BinOp::Rem => {
                if y == 0 {
                    return Err(VmError::new(TrapKind::DivideByZero, "remainder by zero"));
                }
                x.wrapping_rem(y)
            }
            BinOp::And => x & y,
            BinOp::Or => x | y,
            BinOp::Xor => x ^ y,
            BinOp::Shl => x.wrapping_shl(y as u32 & 63),
            BinOp::Shr => x.wrapping_shr(y as u32 & 63),
            BinOp::Eq => (va.as_int() == vb.as_int()) as i64,
            BinOp::Ne => (va.as_int() != vb.as_int()) as i64,
            BinOp::Lt => (x < y) as i64,
            BinOp::Le => (x <= y) as i64,
            BinOp::Gt => (x > y) as i64,
            BinOp::Ge => (x >= y) as i64,
            BinOp::LAnd | BinOp::LOr => unreachable!("handled above"),
        };
        Ok(Value::Int(r))
    }

    /// Evaluates an lvalue expression to (address, declared type).
    fn lval(&mut self, e: &Expr, frame: &Frame) -> VmResult<(u32, Type)> {
        match e {
            Expr::Var(name) => {
                if let Some((addr, ty)) = frame.locals.get(name) {
                    Ok((*addr, ty.clone()))
                } else if let Some((addr, ty)) = self.globals.get(name) {
                    Ok((*addr, ty.clone()))
                } else {
                    Err(undefined(name))
                }
            }
            Expr::Deref(inner) => {
                let v = self.eval(inner, frame)?;
                let t = self.type_of_expr(inner, frame)?;
                let pointee = match self.resolve(&t) {
                    Type::Ptr(p, _) => (**p).clone(),
                    Type::Array(el, _) => (**el).clone(),
                    other => {
                        return Err(VmError::new(
                            TrapKind::IllFormed,
                            format!("dereference of non-pointer `{other}`"),
                        ))
                    }
                };
                Ok((v.as_ptr(), pointee))
            }
            Expr::Index(base, idx) => {
                let t = self.type_of_expr(base, frame)?;
                let resolved = self.resolve(&t).clone();
                let (base_addr, elem_ty) = match resolved {
                    Type::Ptr(p, _) => (self.eval(base, frame)?.as_ptr(), (*p).clone()),
                    Type::Array(el, _) => {
                        let (addr, _) = self.lval(base, frame)?;
                        (addr, (*el).clone())
                    }
                    other => {
                        return Err(VmError::new(
                            TrapKind::IllFormed,
                            format!("indexing non-pointer `{other}`"),
                        ))
                    }
                };
                let i = self.eval(idx, frame)?.as_int();
                let elem = self.size_of(&elem_ty)?.max(1);
                self.charge(self.cost.alu);
                let addr = (i64::from(base_addr) + i * elem as i64) as u32;
                Ok((addr, elem_ty))
            }
            Expr::Field(obj, field) => {
                let (base, ty) = self.lval(obj, frame)?;
                let comp = match self.resolve(&ty) {
                    Type::Struct(n) | Type::Union(n) => n.clone(),
                    other => {
                        return Err(VmError::new(
                            TrapKind::IllFormed,
                            format!("field access on `{other}`"),
                        ))
                    }
                };
                let off = self.field_offset(&comp, field)? as u32;
                let fty = self
                    .field_type(&Type::Struct(comp.clone()), field)
                    .or_else(|_| self.field_type(&Type::Union(comp.clone()), field))?;
                Ok((base + off, fty))
            }
            Expr::Arrow(obj, field) => {
                let ptr = self.eval(obj, frame)?.as_ptr();
                let t = self.type_of_expr(obj, frame)?;
                let comp = match self.resolve(&t) {
                    Type::Ptr(inner, _) => match self.resolve(inner) {
                        Type::Struct(n) | Type::Union(n) => n.clone(),
                        other => {
                            return Err(VmError::new(
                                TrapKind::IllFormed,
                                format!("`->` on pointer to `{other}`"),
                            ))
                        }
                    },
                    other => {
                        return Err(VmError::new(
                            TrapKind::IllFormed,
                            format!("`->` on `{other}`"),
                        ))
                    }
                };
                let off = self.field_offset(&comp, field)? as u32;
                let fty = self
                    .field_type(&Type::Struct(comp.clone()), field)
                    .or_else(|_| self.field_type(&Type::Union(comp.clone()), field))?;
                Ok((ptr + off, fty))
            }
            Expr::Cast(_, inner) => self.lval(inner, frame),
            other => Err(VmError::new(
                TrapKind::IllFormed,
                format!(
                    "expression is not an lvalue: {}",
                    ivy_cmir::pretty::expr_str(other)
                ),
            )),
        }
    }

    // ----- calls -----

    /// Calls a function (KC-defined or builtin) with already-evaluated
    /// arguments.
    pub fn call_function(&mut self, name: &str, args: Vec<Value>) -> VmResult<Value> {
        self.stats.calls += 1;
        self.charge(self.cost.call);
        if self.call_stack.len() > self.config.max_call_depth {
            return Err(VmError::new(
                TrapKind::StepLimit,
                format!("call stack depth exceeded {}", self.config.max_call_depth),
            ));
        }

        let func = self.fns.get(name).cloned();
        match func {
            Some(f) if f.body.is_some() => {
                self.note_blocking_entry(&f, &args);
                self.exec_defined(&f, args)
            }
            _ => {
                // Builtin or extern: dispatch by name.
                self.call_builtin(name, &args)
            }
        }
    }

    fn note_blocking_entry(&mut self, f: &Function, args: &[Value]) {
        let mut may_block = f.attrs.blocking;
        if let Some(flag_param) = &f.attrs.blocking_if_flag {
            if let Some(idx) = f.params.iter().position(|p| &p.name == flag_param) {
                if let Some(v) = args.get(idx) {
                    if v.as_int() & GFP_WAIT != 0 {
                        may_block = true;
                    }
                }
            }
        }
        if may_block {
            self.note_block_attempt(&f.name);
        }
    }

    /// True when the declared type stores a pointer value (the events the
    /// tracer cares about).
    fn is_ptr_type(&self, ty: &Type) -> bool {
        matches!(self.resolve(ty), Type::Ptr(..) | Type::Func(_))
    }

    /// Records a blocking attempt; a violation if the kernel is in atomic
    /// context (interrupts disabled or holding a spinlock).
    pub(crate) fn note_block_attempt(&mut self, callee: &str) {
        if self.irq_depth > 0 || !self.locks_held.is_empty() {
            let caller = self
                .call_stack
                .last()
                .cloned()
                .unwrap_or_else(|| "<entry>".to_string());
            self.stats.blocking_violations.push(BlockingViolation {
                callee: callee.to_string(),
                caller: caller.clone(),
                irq_depth: self.irq_depth,
                locks_held: self.locks_held.clone(),
            });
            if self.tracer.is_some() {
                let (irq_depth, locks_held) = (self.irq_depth, self.locks_held.len());
                self.trace_event(TraceEvent::BlockedInAtomic {
                    caller: &caller,
                    callee,
                    irq_depth,
                    locks_held,
                });
            }
        }
    }

    fn exec_defined(&mut self, f: &Function, args: Vec<Value>) -> VmResult<Value> {
        let mark = self.mem.stack_mark();
        // Interrupt handlers (and functions annotated as disabling
        // interrupts) execute in atomic context for their whole body.
        let enters_atomic = f.attrs.interrupt_handler || f.attrs.disables_irq;
        if enters_atomic {
            self.irq_depth += 1;
        }
        let mut frame = Frame {
            func: f.name.clone(),
            locals: HashMap::new(),
            stack_mark: mark,
        };
        for (i, p) in f.params.iter().enumerate() {
            let size = self.size_of(&p.ty)? as u32;
            let addr = self.mem.alloc_stack(size.max(4));
            let v = args.get(i).copied().unwrap_or(Value::Int(0));
            self.store_typed(addr, &p.ty, v, false)?;
            frame.locals.insert(p.name.clone(), (addr, p.ty.clone()));
            if self.tracer.is_some() {
                self.trace_locals
                    .insert(addr, (size.max(4), f.name.clone(), p.name.clone()));
                if self.is_ptr_type(&p.ty) {
                    self.trace_event(TraceEvent::PtrParam {
                        func: &f.name,
                        param: &p.name,
                        value: v.as_ptr(),
                    });
                }
            }
        }
        self.call_stack.push(f.name.clone());
        let body = f.body.as_ref().expect("exec_defined requires a body");
        let flow = self.exec_block(body, &mut frame);
        self.call_stack.pop();
        self.mem.pop_stack_frame(frame.stack_mark);
        if self.tracer.is_some() {
            // Retire this frame's slots from the tracer's stack registry.
            self.trace_locals.split_off(&frame.stack_mark);
            if let Ok(Flow::Return(v)) = &flow {
                if self.is_ptr_type(&f.ret) {
                    let value = v.as_ptr();
                    self.trace_event(TraceEvent::PtrReturn {
                        func: &f.name,
                        value,
                    });
                }
            }
        }
        if enters_atomic {
            self.irq_depth = self.irq_depth.saturating_sub(1);
        }
        self.charge(self.cost.ret);
        match flow? {
            Flow::Return(v) => Ok(v),
            _ => Ok(Value::Int(0)),
        }
    }

    fn exec_block(&mut self, block: &Block, frame: &mut Frame) -> VmResult<Flow> {
        for stmt in &block.stmts {
            match self.exec_stmt(stmt, frame)? {
                Flow::Normal => continue,
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, stmt: &Stmt, frame: &mut Frame) -> VmResult<Flow> {
        self.step()?;
        match stmt {
            Stmt::Expr(e, _) => {
                self.eval(e, frame)?;
                Ok(Flow::Normal)
            }
            Stmt::Assign(lhs, rhs, _) => {
                let v = self.eval(rhs, frame)?;
                let (addr, ty) = self.lval(lhs, frame)?;
                self.store_typed(addr, &ty, v, true)?;
                if self.tracer.is_some() && self.is_ptr_type(&ty) {
                    let func = frame.func.clone();
                    self.trace_event(TraceEvent::PtrAssign {
                        func: &func,
                        lvalue: lhs,
                        decl: false,
                        value: v.as_ptr(),
                    });
                }
                Ok(Flow::Normal)
            }
            Stmt::Local(decl, init) => {
                let size = self.size_of(&decl.ty)? as u32;
                let addr = self.mem.alloc_stack(size.max(1));
                frame
                    .locals
                    .insert(decl.name.clone(), (addr, decl.ty.clone()));
                if self.tracer.is_some() {
                    self.trace_locals
                        .insert(addr, (size.max(1), frame.func.clone(), decl.name.clone()));
                }
                if let Some(e) = init {
                    let v = self.eval(e, frame)?;
                    self.store_typed(addr, &decl.ty, v, false)?;
                    if self.tracer.is_some() && self.is_ptr_type(&decl.ty) {
                        let func = frame.func.clone();
                        let lvalue = Expr::var(&decl.name);
                        self.trace_event(TraceEvent::PtrAssign {
                            func: &func,
                            lvalue: &lvalue,
                            decl: true,
                            value: v.as_ptr(),
                        });
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::If(cond, then_b, else_b, _) => {
                let c = self.eval(cond, frame)?;
                self.charge(self.cost.branch);
                if c.truthy() {
                    self.exec_block(then_b, frame)
                } else if let Some(b) = else_b {
                    self.exec_block(b, frame)
                } else {
                    Ok(Flow::Normal)
                }
            }
            Stmt::While(cond, body, _) => {
                loop {
                    let c = self.eval(cond, frame)?;
                    self.charge(self.cost.branch);
                    if !c.truthy() {
                        break;
                    }
                    match self.exec_block(body, frame)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                    self.step()?;
                }
                Ok(Flow::Normal)
            }
            Stmt::Return(e, _) => {
                let v = match e {
                    Some(e) => self.eval(e, frame)?,
                    None => Value::Int(0),
                };
                Ok(Flow::Return(v))
            }
            Stmt::Break(_) => Ok(Flow::Break),
            Stmt::Continue(_) => Ok(Flow::Continue),
            Stmt::Block(b) => self.exec_block(b, frame),
            Stmt::Check(check, _) => {
                self.exec_check(check, frame)?;
                Ok(Flow::Normal)
            }
            Stmt::DelayedFreeScope(b, _) => {
                if self.config.ccount {
                    self.delayed_free_stack.push(Vec::new());
                    let flow = self.exec_block(b, frame);
                    let deferred = self.delayed_free_stack.pop().unwrap_or_default();
                    for addr in deferred {
                        self.finish_free(addr, true)?;
                    }
                    flow
                } else {
                    self.exec_block(b, frame)
                }
            }
        }
    }

    fn exec_check(&mut self, check: &Check, frame: &mut Frame) -> VmResult<()> {
        let run_it = match check {
            Check::AssertMayBlock { .. } => self.config.blockstop_asserts,
            Check::RcFreeOk(_) => self.config.ccount,
            _ => self.config.deputy_checks,
        };
        if !run_it {
            return Ok(());
        }
        self.stats.count_check(check.kind());
        let failed: Option<String> = match check {
            Check::NonNull(e) => {
                self.charge(self.cost.check_nonnull);
                let v = self.eval(e, frame)?;
                (!v.truthy()).then(|| "null pointer".to_string())
            }
            Check::PtrBounds { ptr, index, len } => {
                let p = self.eval(ptr, frame)?.as_ptr();
                let i = self.eval(index, frame)?.as_int();
                match len {
                    Some(len_expr) => {
                        self.charge(self.cost.check_bounds);
                        let n = self.eval(len_expr, frame)?.as_int();
                        (i < 0 || i >= n).then(|| format!("index {i} outside count({n})"))
                    }
                    None => {
                        self.charge(self.cost.check_bounds_auto);
                        let ty = self.type_of_expr(ptr, frame)?;
                        let elem = match self.resolve(&ty) {
                            Type::Ptr(inner, _) => self.size_of(inner).unwrap_or(1).max(1),
                            _ => 1,
                        };
                        let target = (i64::from(p) + i * elem as i64) as u32;
                        match self.mem.object_containing(p) {
                            Some(obj)
                                if obj.live
                                    && target >= obj.base
                                    && target + elem as u32 <= obj.base + obj.size =>
                            {
                                None
                            }
                            Some(_) => Some(format!("index {i} outside object bounds")),
                            None => Some(format!("pointer 0x{p:x} not within any object")),
                        }
                    }
                }
            }
            Check::UnionTag {
                obj,
                field,
                tag,
                value,
            } => {
                self.charge(self.cost.check_union);
                let (base, ty) = self.lval(obj, frame)?;
                let comp = match self.resolve(&ty) {
                    Type::Struct(n) | Type::Union(n) => n.clone(),
                    _ => String::new(),
                };
                if comp.is_empty() {
                    None
                } else {
                    let tag_off = self.field_offset(&comp, tag).unwrap_or(0) as u32;
                    let tag_val = self.mem.read(base + tag_off, 4)? as i64;
                    (tag_val != *value).then(|| {
                        format!(
                            "union arm `{field}` read while {tag} == {tag_val} (expected {value})"
                        )
                    })
                }
            }
            Check::NullTerm(e) => {
                self.charge(self.cost.check_nullterm);
                let p = self.eval(e, frame)?.as_ptr();
                match self.mem.object_containing(p) {
                    Some(obj) => {
                        let mut found = false;
                        let mut a = p;
                        while a < obj.base + obj.size {
                            if self.mem.read(a, 1)? == 0 {
                                found = true;
                                break;
                            }
                            a += 1;
                        }
                        (!found).then(|| "missing null terminator within bounds".to_string())
                    }
                    None => Some(format!("pointer 0x{p:x} not within any object")),
                }
            }
            Check::AssertMayBlock { site } => {
                self.charge(self.cost.assert_may_block);
                if self.irq_depth > 0 {
                    self.stats.assert_failures += 1;
                    Some(format!("{site} entered with interrupts disabled"))
                } else {
                    None
                }
            }
            Check::RcFreeOk(e) => {
                let p = self.eval(e, frame)?.as_ptr();
                let obj = self.mem.object_containing(p).copied();
                let ok = match obj {
                    Some(obj) => {
                        self.charge(
                            self.cost.free_check_per_chunk
                                * u64::from(Memory::chunks_of(obj.base, obj.size)),
                        );
                        self.mem.rc_object_is_zero(obj.base, obj.size)
                    }
                    None => true,
                };
                (!ok).then(|| format!("object 0x{p:x} still referenced at free"))
            }
        };
        if let Some(detail) = failed {
            let failure = CheckFailure {
                kind: check.kind().to_string(),
                function: frame.func.clone(),
                detail,
            };
            self.stats.check_failures.push(failure.clone());
            if self.tracer.is_some() {
                let func = frame.func.clone();
                self.trace_event(TraceEvent::CheckFailed {
                    func: &func,
                    kind: check.kind(),
                });
            }
            if self.config.trap_on_check_failure {
                return Err(VmError::new(
                    TrapKind::CheckFailure,
                    format!(
                        "{} check failed in {}: {}",
                        failure.kind, failure.function, failure.detail
                    ),
                ));
            }
        }
        Ok(())
    }

    /// Completes a free (possibly deferred from a delayed-free scope):
    /// performs the CCount check, decrements outgoing references of the
    /// freed object, and releases or leaks the storage.
    pub(crate) fn finish_free(&mut self, addr: u32, delayed: bool) -> VmResult<Value> {
        if addr == 0 {
            return Ok(Value::Int(0));
        }
        self.charge(self.cost.free);
        let Some(obj) = self.mem.object_containing(addr).copied() else {
            return Err(VmError::new(
                TrapKind::MemoryFault,
                format!("kfree of unknown address 0x{addr:x}"),
            ));
        };
        if !self.config.ccount {
            self.mem.kfree(obj.base, false)?;
            return Ok(Value::Int(0));
        }

        // Type-aware free: drop the references held *by* the freed object.
        let slots: Vec<u32> = self
            .ptr_slots
            .get(&obj.base)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        for off in &slots {
            let target = self.mem.read(obj.base + off, 4)? as u32;
            if self.mem.rc_adjust(target, -1) {
                self.stats.rc_updates += 1;
                self.charge(self.cost.rc_update(self.config.machine));
            }
        }
        self.ptr_slots.remove(&obj.base);

        // The free-safety check: no chunk of the object may still be
        // referenced.
        let chunks = Memory::chunks_of(obj.base, obj.size);
        self.charge(self.cost.free_check_per_chunk * u64::from(chunks));
        let ok = self.mem.rc_object_is_zero(obj.base, obj.size);
        if ok {
            self.stats.frees_good += 1;
            self.mem.kfree(obj.base, false)?;
        } else {
            self.stats.frees_bad += 1;
            let residual = u32::from(self.mem.rc_of(obj.base));
            let in_func = self.call_stack.last().cloned().unwrap_or_default();
            self.stats.bad_frees.push(BadFree {
                function: in_func.clone(),
                addr: obj.base,
                residual_refs: residual,
                delayed,
            });
            if self.tracer.is_some() {
                self.trace_event(TraceEvent::BadFree {
                    func: &in_func,
                    addr: obj.base,
                    delayed,
                });
            }
            if self.config.trap_on_bad_free {
                return Err(VmError::new(
                    TrapKind::BadFree,
                    format!("freeing 0x{addr:x} with {residual} outstanding reference(s)"),
                ));
            }
            // Log and leak: never reuse the storage, preserving soundness.
            self.mem.kfree(obj.base, true)?;
        }
        Ok(Value::Int(0))
    }
}

fn undefined(name: &str) -> VmError {
    VmError::new(TrapKind::Undefined, format!("undefined name `{name}`"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivy_cmir::parser::parse_program;

    fn run_src(src: &str, entry: &str, config: VmConfig) -> (VmResult<Value>, Vm) {
        let p = parse_program(src).unwrap();
        let v = ivy_cmir::typecheck::validate_program(&p);
        assert!(v.is_ok(), "validation errors: {:?}", v.errors);
        let mut vm = Vm::new(p, config).unwrap();
        let r = vm.run(entry, vec![]);
        (r, vm)
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let src = r#"
            fn fib(n: u32) -> u32 {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            fn main() -> u32 { return fib(10); }
        "#;
        let (r, _) = run_src(src, "main", VmConfig::baseline());
        assert_eq!(r.unwrap(), Value::Int(55));
    }

    #[test]
    fn loops_pointers_and_arrays() {
        let src = r#"
            global table: u32[16];
            fn fill() -> u32 {
                let i: u32 = 0;
                while (i < 16) {
                    table[i] = i * i;
                    i = i + 1;
                }
                let p: u32 * = &table[3];
                return *p + table[4];
            }
        "#;
        let (r, _) = run_src(src, "fill", VmConfig::baseline());
        assert_eq!(r.unwrap(), Value::Int(9 + 16));
    }

    #[test]
    fn structs_fields_and_heap() {
        let src = r#"
            struct sk_buff {
                len: u32;
                data: u8 * count(len);
            }
            #[allocator] #[blocking_if(flags)]
            extern fn kmalloc(size: u32, flags: u32) -> void *;
            extern fn kfree(p: void *);
            fn mk() -> u32 {
                let len: u32 = 64;
                let skb: struct sk_buff * = kmalloc(sizeof(struct sk_buff), 0) as struct sk_buff *;
                skb->len = len;
                skb->data = kmalloc(len, 0) as u8 *;
                skb->data[2] = 7;
                let total: u32 = skb->len + skb->data[2] as u32;
                kfree(skb->data as void *);
                kfree(skb as void *);
                return total;
            }
        "#;
        let (r, vm) = run_src(src, "mk", VmConfig::baseline());
        assert_eq!(r.unwrap(), Value::Int(64 + 7));
        assert_eq!(vm.mem.stats.allocs, 2);
        assert_eq!(vm.mem.stats.frees, 2);
    }

    #[test]
    fn function_pointers_dispatch() {
        let src = r#"
            struct ops { handler: fnptr(u32) -> u32; }
            global table: struct ops;
            fn double_it(x: u32) -> u32 { return x * 2; }
            fn main() -> u32 {
                table.handler = double_it;
                return table.handler(21);
            }
        "#;
        let (r, _) = run_src(src, "main", VmConfig::baseline());
        assert_eq!(r.unwrap(), Value::Int(42));
    }

    #[test]
    fn deputy_checks_execute_and_fail() {
        let src = r#"
            global buf: u8[8];
            fn touch(i: u32) -> u32 {
                __check_bounds(&buf[0], i, 8);
                buf[i % 8] = 1;
                return 0;
            }
            fn ok() -> u32 { return touch(3); }
            fn bad() -> u32 { return touch(12); }
        "#;
        let (r, vm) = run_src(src, "ok", VmConfig::deputized());
        r.unwrap();
        assert_eq!(vm.stats.checks_executed["bounds"], 1);
        assert!(vm.stats.check_failures.is_empty());

        let (r2, vm2) = run_src(src, "bad", VmConfig::deputized());
        r2.unwrap();
        assert_eq!(vm2.stats.check_failures.len(), 1);

        // Checks cost nothing when disabled.
        let (_, vm3) = run_src(src, "bad", VmConfig::baseline());
        assert_eq!(vm3.stats.total_checks(), 0);
    }

    #[test]
    fn deputized_run_is_slower_than_baseline() {
        let src = r#"
            global buf: u8[64];
            fn work() -> u32 {
                let i: u32 = 0;
                while (i < 64) {
                    __check_bounds(&buf[0], i, 64);
                    buf[i] = i as u8;
                    i = i + 1;
                }
                return 0;
            }
        "#;
        let (_, base) = run_src(src, "work", VmConfig::baseline());
        let (_, dep) = run_src(src, "work", VmConfig::deputized());
        assert!(dep.cycles() > base.cycles());
        let ratio = dep.cycles() as f64 / base.cycles() as f64;
        assert!(
            ratio < 2.0,
            "bounds checks should be cheap relative to work, got {ratio}"
        );
    }

    #[test]
    fn ccount_detects_dangling_reference_at_free() {
        let src = r#"
            struct node { next: struct node *; payload: u32; }
            global list_head: struct node *;
            #[allocator]
            extern fn kmalloc(size: u32, flags: u32) -> void *;
            extern fn kfree(p: void *);
            fn bad_free() -> u32 {
                let n: struct node * = kmalloc(sizeof(struct node), 0) as struct node *;
                list_head = n;
                // BUG: freeing while list_head still points at the node.
                kfree(n as void *);
                return 0;
            }
            fn good_free() -> u32 {
                let n: struct node * = kmalloc(sizeof(struct node), 0) as struct node *;
                list_head = n;
                list_head = null;
                kfree(n as void *);
                return 0;
            }
        "#;
        let (r, vm) = run_src(src, "bad_free", VmConfig::ccounted(false));
        r.unwrap();
        assert_eq!(vm.stats.frees_bad, 1);
        assert_eq!(vm.stats.frees_good, 0);
        assert_eq!(
            vm.mem.stats.leaked_objects, 1,
            "bad frees leak for soundness"
        );

        let (r2, vm2) = run_src(src, "good_free", VmConfig::ccounted(false));
        r2.unwrap();
        assert_eq!(vm2.stats.frees_bad, 0);
        assert_eq!(vm2.stats.frees_good, 1);
        assert!(vm2.stats.rc_updates > 0);
    }

    #[test]
    fn ccount_delayed_free_scope_defers_check() {
        let src = r#"
            struct node { next: struct node *; payload: u32; }
            global head: struct node *;
            #[allocator]
            extern fn kmalloc(size: u32, flags: u32) -> void *;
            extern fn kfree(p: void *);
            fn cyclic_teardown() -> u32 {
                let a: struct node * = kmalloc(sizeof(struct node), 0) as struct node *;
                let b: struct node * = kmalloc(sizeof(struct node), 0) as struct node *;
                a->next = b;
                b->next = a;
                delayed_free {
                    kfree(a as void *);
                    kfree(b as void *);
                    a->next = null;
                    b->next = null;
                }
                return 0;
            }
        "#;
        let (r, vm) = run_src(src, "cyclic_teardown", VmConfig::ccounted(false));
        r.unwrap();
        assert_eq!(vm.stats.frees_delayed, 2);
        assert_eq!(vm.stats.frees_good, 2, "cycle broken before scope end");
        assert_eq!(vm.stats.frees_bad, 0);
    }

    #[test]
    fn smp_refcounting_costs_more_than_up() {
        let src = r#"
            struct holder { p: u8 *; }
            global slots: struct holder[32];
            #[allocator]
            extern fn kmalloc(size: u32, flags: u32) -> void *;
            fn churn() -> u32 {
                let buf: u8 * = kmalloc(64, 0) as u8 *;
                let i: u32 = 0;
                while (i < 32) {
                    slots[i].p = buf;
                    i = i + 1;
                }
                return 0;
            }
        "#;
        let (_, up) = run_src(src, "churn", VmConfig::ccounted(false));
        let (_, smp) = run_src(src, "churn", VmConfig::ccounted(true));
        assert!(smp.cycles() > up.cycles());
        assert_eq!(up.stats.rc_updates, smp.stats.rc_updates);
    }

    #[test]
    fn blocking_in_atomic_context_is_recorded() {
        let src = r#"
            extern fn local_irq_disable();
            extern fn local_irq_enable();
            #[blocking]
            fn might_sleep_kc() { }
            fn bad_path() -> u32 {
                local_irq_disable();
                might_sleep_kc();
                local_irq_enable();
                return 0;
            }
            fn good_path() -> u32 {
                might_sleep_kc();
                return 0;
            }
        "#;
        let (r, vm) = run_src(src, "bad_path", VmConfig::baseline());
        r.unwrap();
        assert_eq!(vm.stats.blocking_violations.len(), 1);
        assert_eq!(vm.stats.blocking_violations[0].callee, "might_sleep_kc");

        let (r2, vm2) = run_src(src, "good_path", VmConfig::baseline());
        r2.unwrap();
        assert!(vm2.stats.blocking_violations.is_empty());
    }

    #[test]
    fn assert_may_block_fires_only_with_irqs_off() {
        let src = r#"
            extern fn local_irq_disable();
            extern fn local_irq_enable();
            fn checked() -> u32 {
                __assert_may_block("read_chan");
                return 0;
            }
            fn bad() -> u32 {
                local_irq_disable();
                let r: u32 = checked();
                local_irq_enable();
                return r;
            }
        "#;
        let cfg = VmConfig {
            blockstop_asserts: true,
            ..VmConfig::baseline()
        };
        let (r, vm) = run_src(src, "checked", cfg);
        r.unwrap();
        assert_eq!(vm.stats.assert_failures, 0);
        let (r2, vm2) = run_src(src, "bad", cfg);
        r2.unwrap();
        assert_eq!(vm2.stats.assert_failures, 1);
    }

    #[test]
    fn union_tag_check() {
        let src = r#"
            struct packet {
                kind: u32;
                echo_id: u32 when(kind == 8);
                unreach_code: u32 when(kind == 3);
            }
            global pkt: struct packet;
            fn read_echo_checked() -> u32 {
                pkt.kind = 3;
                __check_union(pkt, echo_id, kind, 8);
                return pkt.echo_id;
            }
        "#;
        let (r, vm) = run_src(src, "read_echo_checked", VmConfig::deputized());
        r.unwrap();
        assert_eq!(vm.stats.check_failures.len(), 1);
        assert_eq!(vm.stats.check_failures[0].kind, "union_tag");
    }

    #[test]
    fn step_limit_stops_runaway_loops() {
        let src = "fn spin() { while (1) { } }";
        let p = parse_program(src).unwrap();
        let cfg = VmConfig {
            max_steps: 10_000,
            ..VmConfig::baseline()
        };
        let mut vm = Vm::new(p, cfg).unwrap();
        let err = vm.run("spin", vec![]).unwrap_err();
        assert_eq!(err.kind, TrapKind::StepLimit);
    }

    #[test]
    fn string_literals_and_strlen() {
        let src = r#"
            extern fn strlen(s: u8 * nullterm) -> u32;
            fn main() -> u32 { return strlen("hello"); }
        "#;
        let (r, _) = run_src(src, "main", VmConfig::baseline());
        assert_eq!(r.unwrap(), Value::Int(5));
    }

    #[test]
    fn trap_on_check_failure_mode() {
        let src = r#"
            fn f(p: u8 * nonnull) -> u32 {
                __check_nonnull(p);
                return 0;
            }
            fn main() -> u32 { return f(null as u8 *); }
        "#;
        let p = parse_program(src).unwrap();
        let cfg = VmConfig {
            deputy_checks: true,
            trap_on_check_failure: true,
            ..VmConfig::baseline()
        };
        let mut vm = Vm::new(p, cfg).unwrap();
        let err = vm.run("main", vec![]).unwrap_err();
        assert_eq!(err.kind, TrapKind::CheckFailure);
    }
}
