//! Error type for VM execution.

use std::fmt;

/// An execution error (trap) raised by the VM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmError {
    /// Classification of the trap.
    pub kind: TrapKind,
    /// Human-readable detail.
    pub message: String,
    /// Call stack (function names, innermost last) at the point of the trap.
    pub stack: Vec<String>,
}

/// Categories of VM traps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrapKind {
    /// Access to unmapped or out-of-object memory.
    MemoryFault,
    /// A Deputy run-time check failed.
    CheckFailure,
    /// A CCount free-safety check failed (only when configured to trap).
    BadFree,
    /// Explicit kernel panic (the `panic` builtin, or a BlockStop assertion).
    Panic,
    /// Division by zero.
    DivideByZero,
    /// Reference to an undefined function or variable.
    Undefined,
    /// The step/cycle budget was exhausted (runaway loop protection).
    StepLimit,
    /// Malformed program reached the interpreter (should have been caught by
    /// validation).
    IllFormed,
}

impl VmError {
    /// Creates an error with an empty stack (the interpreter fills it in).
    pub fn new(kind: TrapKind, message: impl Into<String>) -> Self {
        VmError {
            kind,
            message: message.into(),
            stack: Vec::new(),
        }
    }
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            TrapKind::MemoryFault => "memory fault",
            TrapKind::CheckFailure => "check failure",
            TrapKind::BadFree => "bad free",
            TrapKind::Panic => "kernel panic",
            TrapKind::DivideByZero => "divide by zero",
            TrapKind::Undefined => "undefined reference",
            TrapKind::StepLimit => "step limit exceeded",
            TrapKind::IllFormed => "ill-formed program",
        };
        write!(f, "{kind}: {}", self.message)?;
        if !self.stack.is_empty() {
            write!(f, " (in {})", self.stack.join(" <- "))?;
        }
        Ok(())
    }
}

impl std::error::Error for VmError {}

/// Result alias for VM operations.
pub type VmResult<T> = std::result::Result<T, VmError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_stack() {
        let mut e = VmError::new(TrapKind::MemoryFault, "address 0x10 not mapped");
        e.stack = vec!["sys_read".into(), "ext2_get_block".into()];
        let s = e.to_string();
        assert!(s.contains("memory fault"));
        assert!(s.contains("ext2_get_block"));
    }
}
