//! `ivy-vm` — execution substrate for KC programs.
//!
//! The paper evaluates its tools by running an instrumented Linux kernel on
//! real hardware; this crate replaces that testbed with a deterministic
//! virtual machine:
//!
//! * [`mem`] — a 32-bit byte-addressable memory with a kmalloc-style heap,
//!   per-frame stack, string rodata, and CCount's 8-bit-per-16-byte-chunk
//!   reference-count shadow.
//! * [`interp`] — the interpreter. It executes Deputy run-time checks (when
//!   enabled), maintains CCount reference counts on pointer stores, verifies
//!   frees (log-and-leak on failure), tracks interrupt/spinlock state, and
//!   records blocking-while-atomic violations.
//! * [`builtins`] — native kernel primitives (`kmalloc`, `kfree`, `memcpy`,
//!   `copy_to_user`, spinlocks, `schedule`, ...).
//! * [`cost`] — the cycle cost model that stands in for the Pentium M /
//!   Pentium 4 hardware, including the UP/SMP locked-operation distinction.
//! * [`stats`] — per-run statistics (cycles, checks, frees, violations) from
//!   which every experiment's numbers are derived.
//! * [`trace`] — the opt-in dynamic-fact tracing layer: a [`Tracer`]
//!   observes concrete pointer targets, indirect-call resolutions,
//!   allocation sites, and defect events; `ivy-oracle` builds its
//!   soundness oracle on this stream.
//!
//! # Examples
//!
//! ```
//! use ivy_cmir::parser::parse_program;
//! use ivy_vm::{Value, Vm, VmConfig};
//!
//! let program = parse_program(
//!     r#"
//!     fn sum(n: u32) -> u32 {
//!         let acc: u32 = 0;
//!         let i: u32 = 0;
//!         while (i < n) { acc = acc + i; i = i + 1; }
//!         return acc;
//!     }
//!     "#,
//! )
//! .unwrap();
//! let mut vm = Vm::new(program, VmConfig::baseline()).unwrap();
//! let result = vm.run("sum", vec![Value::Int(10)]).unwrap();
//! assert_eq!(result, Value::Int(45));
//! assert!(vm.cycles() > 0);
//! ```

#![warn(missing_docs)]

pub mod builtins;
pub mod cost;
pub mod error;
pub mod interp;
pub mod mem;
pub mod stats;
pub mod trace;
pub mod value;

pub use cost::{CostModel, CycleCounter, MachineConfig};
pub use error::{TrapKind, VmError, VmResult};
pub use interp::{Vm, VmConfig, GFP_WAIT};
pub use mem::{Memory, ObjectInfo, ObjectKind};
pub use stats::{BadFree, BlockingViolation, CheckFailure, RunStats};
pub use trace::{ResolvedAddr, TraceEvent, Tracer};
pub use value::Value;
