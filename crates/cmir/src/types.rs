//! The KC type language, including Deputy annotations.
//!
//! KC types mirror the subset of C that the paper's tools reason about:
//! integers of the i386 widths, pointers (optionally carrying Deputy bounds
//! annotations), fixed-size arrays, structs, unions, named typedefs, and
//! function types (used for function pointers).
//!
//! Deputy annotations are *part of the pointer type* ([`PtrAnnot`]), exactly
//! as in the paper: `u8 * count(len) data` declares a pointer to `len`
//! elements of `u8`. Annotations have erasure semantics — they never change
//! data representation — and are untrusted: `ivy-deputy` checks them.

use crate::span::Span;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Size of a machine pointer in bytes (the paper's kernel is i386).
pub const PTR_SIZE: u64 = 4;
/// Size of a CCount accounting chunk in bytes (one 8-bit refcount per chunk).
pub const CHUNK_SIZE: u64 = 16;

/// Integer kinds available in KC (i386 widths).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IntKind {
    /// Signed 8-bit (`i8` / `char`).
    I8,
    /// Unsigned 8-bit (`u8` / `unsigned char`).
    U8,
    /// Signed 16-bit.
    I16,
    /// Unsigned 16-bit.
    U16,
    /// Signed 32-bit (`int`, `long` on i386).
    I32,
    /// Unsigned 32-bit (`unsigned`, `size_t` on i386).
    U32,
    /// Signed 64-bit (`long long`).
    I64,
    /// Unsigned 64-bit (`unsigned long long`).
    U64,
}

impl IntKind {
    /// Width in bytes.
    pub fn size(self) -> u64 {
        match self {
            IntKind::I8 | IntKind::U8 => 1,
            IntKind::I16 | IntKind::U16 => 2,
            IntKind::I32 | IntKind::U32 => 4,
            IntKind::I64 | IntKind::U64 => 8,
        }
    }

    /// Whether the kind is signed.
    pub fn is_signed(self) -> bool {
        matches!(
            self,
            IntKind::I8 | IntKind::I16 | IntKind::I32 | IntKind::I64
        )
    }

    /// Wraps a 64-bit value into this kind's range (two's-complement).
    pub fn truncate(self, v: i64) -> i64 {
        let bits = self.size() * 8;
        if bits == 64 {
            return v;
        }
        let mask = (1u64 << bits) - 1;
        let uv = (v as u64) & mask;
        if self.is_signed() {
            let sign_bit = 1u64 << (bits - 1);
            if uv & sign_bit != 0 {
                (uv | !mask) as i64
            } else {
                uv as i64
            }
        } else {
            uv as i64
        }
    }

    /// The textual keyword used by the KC syntax.
    pub fn keyword(self) -> &'static str {
        match self {
            IntKind::I8 => "i8",
            IntKind::U8 => "u8",
            IntKind::I16 => "i16",
            IntKind::U16 => "u16",
            IntKind::I32 => "i32",
            IntKind::U32 => "u32",
            IntKind::I64 => "i64",
            IntKind::U64 => "u64",
        }
    }
}

/// A restricted expression language used inside Deputy annotations.
///
/// Deputy bounds are written "in terms of other variables in the
/// environment"; the restricted form keeps the type language decidable and
/// avoids mutual recursion with full [`crate::ast::Expr`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BoundExpr {
    /// Integer constant.
    Const(i64),
    /// A variable in scope (a parameter, local, or global).
    Var(String),
    /// A field of the enclosing struct (for annotations on struct members),
    /// e.g. `count(len)` on `data` inside `struct sk_buff`.
    SelfField(String),
    /// Sum of two bound expressions.
    Add(Box<BoundExpr>, Box<BoundExpr>),
    /// Difference of two bound expressions.
    Sub(Box<BoundExpr>, Box<BoundExpr>),
    /// Product of two bound expressions.
    Mul(Box<BoundExpr>, Box<BoundExpr>),
}

impl BoundExpr {
    /// Convenience constructor for a variable reference.
    pub fn var(name: impl Into<String>) -> Self {
        BoundExpr::Var(name.into())
    }

    /// Convenience constructor for a field of the enclosing struct.
    pub fn field(name: impl Into<String>) -> Self {
        BoundExpr::SelfField(name.into())
    }

    /// Convenience constructor for a constant.
    pub fn konst(v: i64) -> Self {
        BoundExpr::Const(v)
    }

    /// All variable names mentioned by this expression (free variables).
    pub fn free_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_free_vars(&mut out);
        out
    }

    fn collect_free_vars(&self, out: &mut Vec<String>) {
        match self {
            BoundExpr::Const(_) => {}
            BoundExpr::Var(v) | BoundExpr::SelfField(v) => {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
            BoundExpr::Add(a, b) | BoundExpr::Sub(a, b) | BoundExpr::Mul(a, b) => {
                a.collect_free_vars(out);
                b.collect_free_vars(out);
            }
        }
    }

    /// Evaluates the expression given a lookup function for variables.
    ///
    /// Returns `None` if a variable is missing from the environment.
    pub fn eval(&self, lookup: &dyn Fn(&str) -> Option<i64>) -> Option<i64> {
        match self {
            BoundExpr::Const(c) => Some(*c),
            BoundExpr::Var(v) | BoundExpr::SelfField(v) => lookup(v),
            BoundExpr::Add(a, b) => Some(a.eval(lookup)?.wrapping_add(b.eval(lookup)?)),
            BoundExpr::Sub(a, b) => Some(a.eval(lookup)?.wrapping_sub(b.eval(lookup)?)),
            BoundExpr::Mul(a, b) => Some(a.eval(lookup)?.wrapping_mul(b.eval(lookup)?)),
        }
    }

    /// Evaluates to a constant when no variables are involved.
    pub fn as_const(&self) -> Option<i64> {
        self.eval(&|_| None)
    }
}

impl fmt::Display for BoundExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", bound_expr_prec(self, 0))
    }
}

/// Renders a bound expression with enough parentheses that re-parsing yields
/// the same tree (`+`/`-` are left-associative; `*` binds tighter).
fn bound_expr_prec(e: &BoundExpr, parent_prec: u8) -> String {
    match e {
        BoundExpr::Const(c) => {
            if *c < 0 {
                format!("({c})")
            } else {
                c.to_string()
            }
        }
        BoundExpr::Var(v) | BoundExpr::SelfField(v) => v.clone(),
        BoundExpr::Add(a, b) | BoundExpr::Sub(a, b) => {
            let op = if matches!(e, BoundExpr::Add(..)) {
                "+"
            } else {
                "-"
            };
            let s = format!("{} {op} {}", bound_expr_prec(a, 1), bound_expr_prec(b, 2));
            if parent_prec > 1 {
                format!("({s})")
            } else {
                s
            }
        }
        BoundExpr::Mul(a, b) => {
            let s = format!("{} * {}", bound_expr_prec(a, 3), bound_expr_prec(b, 4));
            if parent_prec > 3 {
                format!("({s})")
            } else {
                s
            }
        }
    }
}

/// Bounds component of a Deputy pointer annotation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Bounds {
    /// Unannotated legacy pointer: Deputy does not yet know its extent.
    ///
    /// This is the state of every pointer in un-converted kernel code; the
    /// Deputy conversion pass must either infer an annotation, default to
    /// [`Bounds::Single`], or mark the enclosing code trusted.
    #[default]
    Unknown,
    /// A pointer to exactly one element (Deputy's `safe` default).
    Single,
    /// `count(e)`: points to `e` elements.
    Count(BoundExpr),
    /// `bound(lo, hi)`: the pointer lies between `lo` and `hi`.
    Bound(BoundExpr, BoundExpr),
    /// `auto`: bounds carried implicitly (Deputy inserts run-time metadata
    /// lookups instead of static reasoning). Used where no variable in the
    /// environment describes the extent.
    Auto,
}

impl Bounds {
    /// Whether these bounds were written by a programmer (i.e. count towards
    /// the annotation-burden statistics of experiment E2).
    pub fn is_annotation(&self) -> bool {
        !matches!(self, Bounds::Unknown)
    }
}

/// The full set of Deputy annotations attachable to a pointer type.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct PtrAnnot {
    /// Bounds information.
    pub bounds: Bounds,
    /// `nullterm`: the sequence is terminated by a zero element.
    pub nullterm: bool,
    /// `nonnull`: the pointer may never be null.
    pub nonnull: bool,
    /// `opt`: the pointer is explicitly allowed to be null.
    pub opt: bool,
    /// `trusted`: Deputy must not check uses of this pointer (escape hatch).
    pub trusted: bool,
    /// `poly`: points to polymorphic data (e.g. `void *` container payloads).
    pub poly: bool,
}

impl PtrAnnot {
    /// Annotation set for a completely unannotated legacy pointer.
    pub fn unknown() -> Self {
        PtrAnnot::default()
    }

    /// Annotation for a single-element (`safe`) pointer.
    pub fn single() -> Self {
        PtrAnnot {
            bounds: Bounds::Single,
            ..PtrAnnot::default()
        }
    }

    /// Annotation for a `count(e)` pointer.
    pub fn count(e: BoundExpr) -> Self {
        PtrAnnot {
            bounds: Bounds::Count(e),
            ..PtrAnnot::default()
        }
    }

    /// Annotation for a trusted pointer.
    pub fn trusted() -> Self {
        PtrAnnot {
            trusted: true,
            ..PtrAnnot::default()
        }
    }

    /// True if the programmer wrote any non-default annotation here.
    pub fn is_annotated(&self) -> bool {
        self.bounds.is_annotation()
            || self.nullterm
            || self.nonnull
            || self.opt
            || self.trusted
            || self.poly
    }

    /// Free variables referenced by the bounds expressions.
    pub fn free_vars(&self) -> Vec<String> {
        match &self.bounds {
            Bounds::Count(e) => e.free_vars(),
            Bounds::Bound(a, b) => {
                let mut v = a.free_vars();
                for x in b.free_vars() {
                    if !v.contains(&x) {
                        v.push(x);
                    }
                }
                v
            }
            _ => Vec::new(),
        }
    }
}

/// A KC type.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Type {
    /// `void`.
    Void,
    /// `bool` (used by generated code for flags; 1 byte).
    Bool,
    /// Integer of a given kind.
    Int(IntKind),
    /// Pointer to `pointee` with Deputy annotations.
    Ptr(Box<Type>, PtrAnnot),
    /// Fixed-size array.
    Array(Box<Type>, u64),
    /// Named struct (definition lives in the program's struct table).
    Struct(String),
    /// Named union.
    Union(String),
    /// Function type (only meaningful behind a pointer or as a declaration).
    Func(Box<FuncType>),
    /// A typedef name, resolved against the program's typedef table.
    Named(String),
}

/// Parameter and return types of a function or function pointer.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FuncType {
    /// Parameter types, in order.
    pub params: Vec<Type>,
    /// Return type.
    pub ret: Type,
}

impl Type {
    /// `u8`.
    pub fn u8() -> Type {
        Type::Int(IntKind::U8)
    }
    /// `i8`.
    pub fn i8() -> Type {
        Type::Int(IntKind::I8)
    }
    /// `u16`.
    pub fn u16() -> Type {
        Type::Int(IntKind::U16)
    }
    /// `i32` (C `int`).
    pub fn i32() -> Type {
        Type::Int(IntKind::I32)
    }
    /// `u32` (C `unsigned` / `size_t`).
    pub fn u32() -> Type {
        Type::Int(IntKind::U32)
    }
    /// `i64`.
    pub fn i64() -> Type {
        Type::Int(IntKind::I64)
    }
    /// `u64`.
    pub fn u64() -> Type {
        Type::Int(IntKind::U64)
    }

    /// An unannotated (legacy) pointer to `t`.
    pub fn ptr(t: Type) -> Type {
        Type::Ptr(Box::new(t), PtrAnnot::unknown())
    }

    /// A single-element (`safe`) pointer to `t`.
    pub fn ptr_single(t: Type) -> Type {
        Type::Ptr(Box::new(t), PtrAnnot::single())
    }

    /// A `count(e)` pointer to `t`.
    pub fn ptr_count(t: Type, e: BoundExpr) -> Type {
        Type::Ptr(Box::new(t), PtrAnnot::count(e))
    }

    /// A trusted pointer to `t`.
    pub fn ptr_trusted(t: Type) -> Type {
        Type::Ptr(Box::new(t), PtrAnnot::trusted())
    }

    /// A pointer with explicit annotations.
    pub fn ptr_ann(t: Type, ann: PtrAnnot) -> Type {
        Type::Ptr(Box::new(t), ann)
    }

    /// A pointer to a named struct.
    pub fn struct_ptr(name: impl Into<String>) -> Type {
        Type::ptr(Type::Struct(name.into()))
    }

    /// Returns true if this is any pointer type.
    pub fn is_ptr(&self) -> bool {
        matches!(self, Type::Ptr(..))
    }

    /// Returns true if this is an integer or bool type.
    pub fn is_integral(&self) -> bool {
        matches!(self, Type::Int(_) | Type::Bool)
    }

    /// Returns the pointee type if this is a pointer.
    pub fn pointee(&self) -> Option<&Type> {
        match self {
            Type::Ptr(t, _) => Some(t),
            _ => None,
        }
    }

    /// Returns the pointer annotations if this is a pointer.
    pub fn ptr_annot(&self) -> Option<&PtrAnnot> {
        match self {
            Type::Ptr(_, a) => Some(a),
            _ => None,
        }
    }

    /// Returns a mutable reference to the pointer annotations if a pointer.
    pub fn ptr_annot_mut(&mut self) -> Option<&mut PtrAnnot> {
        match self {
            Type::Ptr(_, a) => Some(a),
            _ => None,
        }
    }

    /// True if this type (or any nested component) carries a programmer
    /// annotation. Used by the burden statistics.
    pub fn is_annotated(&self) -> bool {
        match self {
            Type::Ptr(inner, ann) => ann.is_annotated() || inner.is_annotated(),
            Type::Array(inner, _) => inner.is_annotated(),
            Type::Func(ft) => ft.ret.is_annotated() || ft.params.iter().any(Type::is_annotated),
            _ => false,
        }
    }

    /// Strips every Deputy annotation from the type (erasure semantics).
    pub fn erased(&self) -> Type {
        match self {
            Type::Ptr(inner, _) => Type::Ptr(Box::new(inner.erased()), PtrAnnot::unknown()),
            Type::Array(inner, n) => Type::Array(Box::new(inner.erased()), *n),
            Type::Func(ft) => Type::Func(Box::new(FuncType {
                params: ft.params.iter().map(Type::erased).collect(),
                ret: ft.ret.erased(),
            })),
            other => other.clone(),
        }
    }

    /// Structural equality ignoring Deputy annotations.
    ///
    /// The paper requires that annotations never change data representation,
    /// so representation compatibility is always judged on erased types.
    pub fn same_repr(&self, other: &Type) -> bool {
        self.erased() == other.erased()
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::Bool => write!(f, "bool"),
            Type::Int(k) => write!(f, "{}", k.keyword()),
            Type::Ptr(inner, ann) => {
                write!(f, "{inner} *")?;
                write_annot(f, ann)
            }
            Type::Array(inner, n) => write!(f, "{inner}[{n}]"),
            Type::Struct(name) => write!(f, "struct {name}"),
            Type::Union(name) => write!(f, "union {name}"),
            Type::Func(ft) => {
                write!(f, "fn(")?;
                for (i, p) in ft.params.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ") -> {}", ft.ret)
            }
            Type::Named(n) => write!(f, "{n}"),
        }
    }
}

fn write_annot(f: &mut fmt::Formatter<'_>, ann: &PtrAnnot) -> fmt::Result {
    match &ann.bounds {
        Bounds::Unknown => {}
        Bounds::Single => write!(f, " single")?,
        Bounds::Count(e) => write!(f, " count({e})")?,
        Bounds::Bound(a, b) => write!(f, " bound({a}, {b})")?,
        Bounds::Auto => write!(f, " auto")?,
    }
    if ann.nullterm {
        write!(f, " nullterm")?;
    }
    if ann.nonnull {
        write!(f, " nonnull")?;
    }
    if ann.opt {
        write!(f, " opt")?;
    }
    if ann.trusted {
        write!(f, " trusted")?;
    }
    if ann.poly {
        write!(f, " poly")?;
    }
    Ok(())
}

/// A field of a struct or union, possibly carrying a `when(tag == v)`
/// discriminator for checked unions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: Type,
    /// For union members: the arm is valid only when the named sibling tag
    /// field (in the enclosing struct) equals the given value.
    pub when: Option<(String, i64)>,
    /// Source span of the declaration.
    pub span: Span,
}

impl Field {
    /// Creates a plain field.
    pub fn new(name: impl Into<String>, ty: Type) -> Self {
        Field {
            name: name.into(),
            ty,
            when: None,
            span: Span::synthetic(),
        }
    }

    /// Creates a union arm guarded by `when(tag == value)`.
    pub fn when(name: impl Into<String>, ty: Type, tag: impl Into<String>, value: i64) -> Self {
        Field {
            name: name.into(),
            ty,
            when: Some((tag.into(), value)),
            span: Span::synthetic(),
        }
    }

    /// True if the field declaration carries any Deputy annotation.
    pub fn is_annotated(&self) -> bool {
        self.ty.is_annotated() || self.when.is_some()
    }
}

/// A struct or union definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompositeDef {
    /// Type name.
    pub name: String,
    /// Whether this is a union (fields overlap) or a struct (fields laid out
    /// sequentially, no padding beyond natural alignment).
    pub is_union: bool,
    /// The fields, in declaration order.
    pub fields: Vec<Field>,
    /// Source span.
    pub span: Span,
}

impl CompositeDef {
    /// Creates a struct definition.
    pub fn strukt(name: impl Into<String>, fields: Vec<Field>) -> Self {
        CompositeDef {
            name: name.into(),
            is_union: false,
            fields,
            span: Span::synthetic(),
        }
    }

    /// Creates a union definition.
    pub fn union(name: impl Into<String>, fields: Vec<Field>) -> Self {
        CompositeDef {
            name: name.into(),
            is_union: true,
            fields,
            span: Span::synthetic(),
        }
    }

    /// Finds a field by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_kind_sizes() {
        assert_eq!(IntKind::U8.size(), 1);
        assert_eq!(IntKind::I16.size(), 2);
        assert_eq!(IntKind::U32.size(), 4);
        assert_eq!(IntKind::I64.size(), 8);
    }

    #[test]
    fn truncate_wraps_unsigned() {
        assert_eq!(IntKind::U8.truncate(256), 0);
        assert_eq!(IntKind::U8.truncate(257), 1);
        assert_eq!(IntKind::U8.truncate(-1), 255);
        assert_eq!(IntKind::U16.truncate(65536 + 5), 5);
    }

    #[test]
    fn truncate_sign_extends_signed() {
        assert_eq!(IntKind::I8.truncate(255), -1);
        assert_eq!(IntKind::I8.truncate(127), 127);
        assert_eq!(IntKind::I8.truncate(128), -128);
        assert_eq!(
            IntKind::I32.truncate(i64::from(i32::MIN)),
            i64::from(i32::MIN)
        );
    }

    #[test]
    fn bound_expr_eval_and_vars() {
        let e = BoundExpr::Add(
            Box::new(BoundExpr::var("n")),
            Box::new(BoundExpr::Mul(
                Box::new(BoundExpr::konst(2)),
                Box::new(BoundExpr::var("m")),
            )),
        );
        let vars = e.free_vars();
        assert_eq!(vars, vec!["n".to_string(), "m".to_string()]);
        let env = |name: &str| match name {
            "n" => Some(3),
            "m" => Some(4),
            _ => None,
        };
        assert_eq!(e.eval(&env), Some(11));
        assert_eq!(e.as_const(), None);
        assert_eq!(BoundExpr::konst(7).as_const(), Some(7));
    }

    #[test]
    fn erasure_strips_annotations() {
        let t = Type::ptr_count(Type::u8(), BoundExpr::var("len"));
        assert!(t.is_annotated());
        let e = t.erased();
        assert!(!e.is_annotated());
        assert!(t.same_repr(&e));
        assert!(t.same_repr(&Type::ptr(Type::u8())));
        assert!(!t.same_repr(&Type::ptr(Type::u32())));
    }

    #[test]
    fn annotation_detection_nested() {
        let t = Type::ptr(Type::ptr_count(Type::u32(), BoundExpr::konst(4)));
        assert!(t.is_annotated());
        let plain = Type::ptr(Type::ptr(Type::u32()));
        assert!(!plain.is_annotated());
    }

    #[test]
    fn display_round_readable() {
        let t = Type::ptr_count(Type::u8(), BoundExpr::var("len"));
        assert_eq!(format!("{t}"), "u8 * count(len)");
        let t2 = Type::Array(Box::new(Type::i32()), 8);
        assert_eq!(format!("{t2}"), "i32[8]");
    }

    #[test]
    fn composite_field_lookup() {
        let s = CompositeDef::strukt(
            "sk_buff",
            vec![
                Field::new("len", Type::u32()),
                Field::new("data", Type::ptr_count(Type::u8(), BoundExpr::field("len"))),
            ],
        );
        assert!(s.field("data").unwrap().is_annotated());
        assert!(!s.field("len").unwrap().is_annotated());
        assert!(s.field("missing").is_none());
    }
}
