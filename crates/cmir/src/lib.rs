//! `ivy-cmir` — the KC (kernel C) language front end.
//!
//! This crate plays the role CIL played for the paper's tools: it defines a
//! C-subset intermediate representation with Deputy annotations as first-class
//! type attributes, plus everything needed to produce and consume it:
//!
//! * [`ast`] / [`types`] — the program representation and the annotation
//!   language (`count`, `bound`, `nullterm`, `nonnull`, `opt`, `trusted`,
//!   `poly`, union `when` tags, function attributes such as `blocking`).
//! * [`lexer`] / [`parser`] — a deterministic textual surface syntax, so the
//!   synthetic kernel corpus is inspectable and round-trippable.
//! * [`pretty`] — pretty printer producing that same syntax.
//! * [`builder`] — fluent builders used by `ivy-kernelgen`.
//! * [`typecheck`] — ordinary C-level validation and expression typing
//!   (Deputy's memory-safety checking lives in `ivy-deputy`).
//! * [`cfg`] — basic-block control-flow graphs for the dataflow analyses.
//! * [`layout`] — i386 data layout (sizes, alignment, field offsets).
//! * [`visit`] — traversal/rewriting helpers and the erasure transformation.
//!
//! # Examples
//!
//! ```
//! use ivy_cmir::parser::parse_program;
//! use ivy_cmir::typecheck::validate_program;
//!
//! let program = parse_program(
//!     r#"
//!     struct sk_buff {
//!         len: u32;
//!         data: u8 * count(len);
//!     }
//!     fn skb_first_byte(skb: struct sk_buff * nonnull) -> u8 {
//!         return skb->data[0];
//!     }
//!     "#,
//! )
//! .unwrap();
//! assert!(validate_program(&program).is_ok());
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod builder;
pub mod cfg;
pub mod content;
pub mod error;
pub mod layout;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod span;
pub mod token;
pub mod typecheck;
pub mod types;
pub mod visit;

pub use ast::{
    BinOp, Block, Check, Expr, FuncAttrs, Function, GlobalDef, Program, Stmt, UnOp, VarDecl,
};
pub use error::{CmirError, Result};
pub use span::{Pos, Span};
pub use types::{BoundExpr, Bounds, CompositeDef, Field, FuncType, IntKind, PtrAnnot, Type};
