//! Control-flow graph construction for KC function bodies.
//!
//! The structured AST (`if`/`while`/blocks) is lowered into basic blocks with
//! explicit edges so that the dataflow framework in `ivy-analysis` can run
//! classic worklist algorithms. Statements inside a basic block are the
//! "simple" statements only (assignments, calls, declarations, checks);
//! control constructs become terminators.

use crate::ast::{Block, Expr, Function, Stmt};
use serde::{Deserialize, Serialize};

/// Index of a basic block within a [`Cfg`].
pub type BlockId = usize;

/// A basic block: straight-line statements plus one terminator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BasicBlock {
    /// Simple statements executed in order.
    pub stmts: Vec<Stmt>,
    /// How control leaves the block.
    pub term: Terminator,
}

/// Block terminators.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way branch on a condition: (cond, then-target, else-target).
    Branch(Expr, BlockId, BlockId),
    /// Function return.
    Return(Option<Expr>),
    /// Placeholder used during construction; never present in a finished CFG.
    Unterminated,
}

/// A control-flow graph for one function body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cfg {
    /// Basic blocks; block 0 is the entry block.
    pub blocks: Vec<BasicBlock>,
}

impl Cfg {
    /// The entry block id.
    pub const ENTRY: BlockId = 0;

    /// Builds the CFG of a function. Functions without a body produce a
    /// single empty block that immediately returns.
    pub fn build(func: &Function) -> Cfg {
        let mut b = Builder {
            blocks: Vec::new(),
            loop_stack: Vec::new(),
        };
        let entry = b.new_block();
        debug_assert_eq!(entry, Cfg::ENTRY);
        let mut cur = entry;
        if let Some(body) = &func.body {
            cur = b.lower_block(body, cur);
        }
        if matches!(b.blocks[cur].term, Terminator::Unterminated) {
            b.blocks[cur].term = Terminator::Return(None);
        }
        // Any block left unterminated (e.g. after `break` lowering) falls
        // through to a return.
        for blk in &mut b.blocks {
            if matches!(blk.term, Terminator::Unterminated) {
                blk.term = Terminator::Return(None);
            }
        }
        Cfg { blocks: b.blocks }
    }

    /// Successor block ids of a block.
    pub fn successors(&self, id: BlockId) -> Vec<BlockId> {
        match &self.blocks[id].term {
            Terminator::Jump(t) => vec![*t],
            Terminator::Branch(_, a, b) => {
                if a == b {
                    vec![*a]
                } else {
                    vec![*a, *b]
                }
            }
            Terminator::Return(_) | Terminator::Unterminated => vec![],
        }
    }

    /// Predecessor map: for each block, the blocks that can jump to it.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (id, _) in self.blocks.iter().enumerate() {
            for s in self.successors(id) {
                preds[s].push(id);
            }
        }
        preds
    }

    /// Reverse post-order of reachable blocks starting from the entry block
    /// (a good iteration order for forward dataflow).
    pub fn reverse_post_order(&self) -> Vec<BlockId> {
        let mut visited = vec![false; self.blocks.len()];
        let mut post = Vec::new();
        self.dfs(Cfg::ENTRY, &mut visited, &mut post);
        post.reverse();
        post
    }

    fn dfs(&self, id: BlockId, visited: &mut Vec<bool>, post: &mut Vec<BlockId>) {
        if visited[id] {
            return;
        }
        visited[id] = true;
        for s in self.successors(id) {
            self.dfs(s, visited, post);
        }
        post.push(id);
    }

    /// Total number of simple statements across all blocks.
    pub fn stmt_count(&self) -> usize {
        self.blocks.iter().map(|b| b.stmts.len()).sum()
    }

    /// Ids of blocks that end in a return.
    pub fn exit_blocks(&self) -> Vec<BlockId> {
        self.blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| matches!(b.term, Terminator::Return(_)))
            .map(|(i, _)| i)
            .collect()
    }
}

struct Builder {
    blocks: Vec<BasicBlock>,
    /// Stack of (continue-target, break-target) for nested loops.
    loop_stack: Vec<(BlockId, BlockId)>,
}

impl Builder {
    fn new_block(&mut self) -> BlockId {
        self.blocks.push(BasicBlock {
            stmts: Vec::new(),
            term: Terminator::Unterminated,
        });
        self.blocks.len() - 1
    }

    fn terminate(&mut self, id: BlockId, term: Terminator) {
        if matches!(self.blocks[id].term, Terminator::Unterminated) {
            self.blocks[id].term = term;
        }
    }

    /// Lowers a structured block starting in `cur`; returns the block where
    /// control continues afterwards.
    fn lower_block(&mut self, block: &Block, mut cur: BlockId) -> BlockId {
        for stmt in &block.stmts {
            cur = self.lower_stmt(stmt, cur);
        }
        cur
    }

    fn lower_stmt(&mut self, stmt: &Stmt, cur: BlockId) -> BlockId {
        // If the current block is already terminated (dead code after
        // return/break), keep appending into a fresh unreachable block so the
        // statements are still represented.
        let cur = if matches!(self.blocks[cur].term, Terminator::Unterminated) {
            cur
        } else {
            self.new_block()
        };
        match stmt {
            Stmt::Expr(..) | Stmt::Assign(..) | Stmt::Local(..) | Stmt::Check(..) => {
                self.blocks[cur].stmts.push(stmt.clone());
                cur
            }
            Stmt::Block(b) => self.lower_block(b, cur),
            Stmt::DelayedFreeScope(b, _) => {
                // For control-flow purposes a delayed-free scope is a block;
                // the scope marker itself matters only to the CCount runtime,
                // which works on the structured AST.
                self.lower_block(b, cur)
            }
            Stmt::If(cond, then_b, else_b, _) => {
                let then_id = self.new_block();
                let else_id = self.new_block();
                let join = self.new_block();
                self.terminate(cur, Terminator::Branch(cond.clone(), then_id, else_id));
                let then_end = self.lower_block(then_b, then_id);
                self.terminate(then_end, Terminator::Jump(join));
                let else_end = match else_b {
                    Some(b) => self.lower_block(b, else_id),
                    None => else_id,
                };
                self.terminate(else_end, Terminator::Jump(join));
                join
            }
            Stmt::While(cond, body, _) => {
                let head = self.new_block();
                let body_id = self.new_block();
                let exit = self.new_block();
                self.terminate(cur, Terminator::Jump(head));
                self.terminate(head, Terminator::Branch(cond.clone(), body_id, exit));
                self.loop_stack.push((head, exit));
                let body_end = self.lower_block(body, body_id);
                self.loop_stack.pop();
                self.terminate(body_end, Terminator::Jump(head));
                exit
            }
            Stmt::Return(e, _) => {
                self.terminate(cur, Terminator::Return(e.clone()));
                cur
            }
            Stmt::Break(_) => {
                if let Some(&(_, brk)) = self.loop_stack.last() {
                    self.terminate(cur, Terminator::Jump(brk));
                }
                cur
            }
            Stmt::Continue(_) => {
                if let Some(&(cont, _)) = self.loop_stack.last() {
                    self.terminate(cur, Terminator::Jump(cont));
                }
                cur
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn cfg_of(src: &str, name: &str) -> Cfg {
        let p = parse_program(src).unwrap();
        Cfg::build(p.function(name).unwrap())
    }

    #[test]
    fn straight_line_single_block() {
        let cfg = cfg_of(
            "fn f() -> i32 { let x: i32 = 1; x = x + 1; return x; }",
            "f",
        );
        assert_eq!(cfg.blocks[Cfg::ENTRY].stmts.len(), 2);
        assert!(matches!(
            cfg.blocks[Cfg::ENTRY].term,
            Terminator::Return(Some(_))
        ));
        assert_eq!(cfg.exit_blocks(), vec![Cfg::ENTRY]);
    }

    #[test]
    fn if_creates_diamond() {
        let cfg = cfg_of(
            "fn f(x: i32) -> i32 { let r: i32 = 0; if (x > 0) { r = 1; } else { r = 2; } return r; }",
            "f",
        );
        // entry, then, else, join = at least 4 blocks, join has 2 preds.
        assert!(cfg.blocks.len() >= 4);
        let preds = cfg.predecessors();
        assert!(preds.iter().any(|p| p.len() == 2));
    }

    #[test]
    fn while_has_back_edge() {
        let cfg = cfg_of(
            "fn f(n: u32) -> u32 { let i: u32 = 0; while (i < n) { i = i + 1; } return i; }",
            "f",
        );
        let preds = cfg.predecessors();
        // The loop head must have two predecessors: entry and the body.
        let head = cfg
            .blocks
            .iter()
            .position(|b| matches!(b.term, Terminator::Branch(..)))
            .unwrap();
        assert_eq!(preds[head].len(), 2);
    }

    #[test]
    fn break_jumps_to_exit() {
        let cfg = cfg_of(
            "fn f(n: u32) -> u32 { let i: u32 = 0; while (1) { if (i >= n) { break; } i = i + 1; } return i; }",
            "f",
        );
        // All reachable blocks must appear in the RPO; the function returns.
        let rpo = cfg.reverse_post_order();
        assert!(rpo.contains(&Cfg::ENTRY));
        assert!(!cfg.exit_blocks().is_empty());
    }

    #[test]
    fn missing_return_gets_synthesised() {
        let cfg = cfg_of("fn f() { let x: i32 = 0; }", "f");
        assert!(matches!(
            cfg.blocks[Cfg::ENTRY].term,
            Terminator::Return(None)
        ));
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let cfg = cfg_of(
            "fn f(x: i32) -> i32 { if (x) { return 1; } return 0; }",
            "f",
        );
        let rpo = cfg.reverse_post_order();
        assert_eq!(rpo[0], Cfg::ENTRY);
        for id in &rpo {
            assert!(*id < cfg.blocks.len());
        }
    }

    #[test]
    fn stmt_count_counts_simple_statements() {
        let cfg = cfg_of(
            "fn f(n: u32) -> u32 { let i: u32 = 0; while (i < n) { i = i + 1; } return i; }",
            "f",
        );
        assert_eq!(cfg.stmt_count(), 2);
    }
}
