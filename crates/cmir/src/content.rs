//! Span-insensitive structural content hashing of AST nodes.
//!
//! `pretty_function` + FNV gives a correct content identity, but it
//! allocates the full source text of every function just to hash it — on
//! the incremental points-to path that string building dominates the whole
//! re-solve. This module hashes the AST directly, skipping source spans
//! (they shift for *every* function downstream of an edit, so a
//! span-sensitive hash would dirty the whole program).
//!
//! Two nodes hash equal only if they are structurally equal up to spans,
//! which implies they pretty-print identically — so a content hash from
//! here is at least as fine as the pretty-text hash it replaces, and safe
//! for any cache keyed on definition content.
//!
//! Every match below destructures all fields explicitly: adding a field or
//! variant to the AST breaks compilation here rather than silently
//! weakening cache keys.

use crate::ast::{Block, Check, Expr, Function, Stmt, VarDecl};
use std::hash::{Hash, Hasher};

/// 64-bit FNV-1a [`Hasher`], deterministic across processes.
#[derive(Debug, Clone)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Content hash of a function definition: name, signature, attributes,
/// subsystem, and body — everything except source spans.
pub fn function_content_hash(f: &Function) -> u64 {
    let mut h = FnvHasher::default();
    hash_function(f, &mut h);
    h.finish()
}

/// Hash of the whole-program type environment: composites, typedefs,
/// globals (with initializers), and every function *signature* (name,
/// parameters, return type, attributes, subsystem) — bodies and spans
/// excluded. The environment is everything an analysis of one function may
/// consult about the rest of the program short of reading callee bodies.
pub fn program_env_hash(p: &crate::ast::Program) -> u64 {
    let crate::ast::Program {
        composites,
        typedefs,
        globals,
        functions,
    } = p;
    let mut h = FnvHasher::default();
    composites.len().hash(&mut h);
    for c in composites {
        let crate::types::CompositeDef {
            name,
            is_union,
            fields,
            span: _,
        } = c;
        name.hash(&mut h);
        is_union.hash(&mut h);
        fields.len().hash(&mut h);
        for f in fields {
            let crate::types::Field {
                name,
                ty,
                when,
                span: _,
            } = f;
            name.hash(&mut h);
            ty.hash(&mut h);
            when.hash(&mut h);
        }
    }
    typedefs.hash(&mut h);
    globals.len().hash(&mut h);
    for g in globals {
        let crate::ast::GlobalDef { decl, init } = g;
        hash_decl(decl, &mut h);
        match init {
            None => h.write_u8(0),
            Some(e) => {
                h.write_u8(1);
                hash_expr(e, &mut h);
            }
        }
    }
    functions.len().hash(&mut h);
    for f in functions {
        let Function {
            name,
            params,
            ret,
            body: _,
            attrs,
            subsystem,
            span: _,
        } = f;
        name.hash(&mut h);
        params.len().hash(&mut h);
        for p in params {
            hash_decl(p, &mut h);
        }
        ret.hash(&mut h);
        attrs.hash(&mut h);
        subsystem.hash(&mut h);
    }
    h.finish()
}

/// Hashes a function into an existing hasher (span-insensitive).
pub fn hash_function(f: &Function, h: &mut impl Hasher) {
    let Function {
        name,
        params,
        ret,
        body,
        attrs,
        subsystem,
        span: _,
    } = f;
    name.hash(h);
    params.len().hash(h);
    for p in params {
        hash_decl(p, h);
    }
    ret.hash(h);
    attrs.hash(h);
    subsystem.hash(h);
    match body {
        None => h.write_u8(0),
        Some(b) => {
            h.write_u8(1);
            hash_block(b, h);
        }
    }
}

fn hash_decl(d: &VarDecl, h: &mut impl Hasher) {
    let VarDecl { name, ty, span: _ } = d;
    name.hash(h);
    ty.hash(h);
}

fn hash_block(b: &Block, h: &mut impl Hasher) {
    let Block { stmts } = b;
    stmts.len().hash(h);
    for s in stmts {
        hash_stmt(s, h);
    }
}

fn hash_stmt(s: &Stmt, h: &mut impl Hasher) {
    match s {
        Stmt::Expr(e, _span) => {
            h.write_u8(0);
            hash_expr(e, h);
        }
        Stmt::Assign(lhs, rhs, _span) => {
            h.write_u8(1);
            hash_expr(lhs, h);
            hash_expr(rhs, h);
        }
        Stmt::Local(d, init) => {
            h.write_u8(2);
            hash_decl(d, h);
            match init {
                None => h.write_u8(0),
                Some(e) => {
                    h.write_u8(1);
                    hash_expr(e, h);
                }
            }
        }
        Stmt::If(cond, then_b, else_b, _span) => {
            h.write_u8(3);
            hash_expr(cond, h);
            hash_block(then_b, h);
            match else_b {
                None => h.write_u8(0),
                Some(b) => {
                    h.write_u8(1);
                    hash_block(b, h);
                }
            }
        }
        Stmt::While(cond, body, _span) => {
            h.write_u8(4);
            hash_expr(cond, h);
            hash_block(body, h);
        }
        Stmt::Return(e, _span) => {
            h.write_u8(5);
            match e {
                None => h.write_u8(0),
                Some(e) => {
                    h.write_u8(1);
                    hash_expr(e, h);
                }
            }
        }
        Stmt::Break(_span) => h.write_u8(6),
        Stmt::Continue(_span) => h.write_u8(7),
        Stmt::Block(b) => {
            h.write_u8(8);
            hash_block(b, h);
        }
        Stmt::Check(c, _span) => {
            h.write_u8(9);
            hash_check(c, h);
        }
        Stmt::DelayedFreeScope(b, _span) => {
            h.write_u8(10);
            hash_block(b, h);
        }
    }
}

fn hash_check(c: &Check, h: &mut impl Hasher) {
    match c {
        Check::NonNull(e) => {
            h.write_u8(0);
            hash_expr(e, h);
        }
        Check::PtrBounds { ptr, index, len } => {
            h.write_u8(1);
            hash_expr(ptr, h);
            hash_expr(index, h);
            match len {
                None => h.write_u8(0),
                Some(e) => {
                    h.write_u8(1);
                    hash_expr(e, h);
                }
            }
        }
        Check::UnionTag {
            obj,
            field,
            tag,
            value,
        } => {
            h.write_u8(2);
            hash_expr(obj, h);
            field.hash(h);
            tag.hash(h);
            value.hash(h);
        }
        Check::NullTerm(e) => {
            h.write_u8(3);
            hash_expr(e, h);
        }
        Check::AssertMayBlock { site } => {
            h.write_u8(4);
            site.hash(h);
        }
        Check::RcFreeOk(e) => {
            h.write_u8(5);
            hash_expr(e, h);
        }
    }
}

fn hash_expr(e: &Expr, h: &mut impl Hasher) {
    match e {
        Expr::Int(v) => {
            h.write_u8(0);
            v.hash(h);
        }
        Expr::Str(s) => {
            h.write_u8(1);
            s.hash(h);
        }
        Expr::Null => h.write_u8(2),
        Expr::Var(name) => {
            h.write_u8(3);
            name.hash(h);
        }
        Expr::Unary(op, inner) => {
            h.write_u8(4);
            op.hash(h);
            hash_expr(inner, h);
        }
        Expr::Binary(op, a, b) => {
            h.write_u8(5);
            op.hash(h);
            hash_expr(a, h);
            hash_expr(b, h);
        }
        Expr::Deref(inner) => {
            h.write_u8(6);
            hash_expr(inner, h);
        }
        Expr::AddrOf(inner) => {
            h.write_u8(7);
            hash_expr(inner, h);
        }
        Expr::Index(base, idx) => {
            h.write_u8(8);
            hash_expr(base, h);
            hash_expr(idx, h);
        }
        Expr::Field(obj, field) => {
            h.write_u8(9);
            hash_expr(obj, h);
            field.hash(h);
        }
        Expr::Arrow(obj, field) => {
            h.write_u8(10);
            hash_expr(obj, h);
            field.hash(h);
        }
        Expr::Cast(ty, inner) => {
            h.write_u8(11);
            ty.hash(h);
            hash_expr(inner, h);
        }
        Expr::Call(callee, args) => {
            h.write_u8(12);
            hash_expr(callee, h);
            args.len().hash(h);
            for a in args {
                hash_expr(a, h);
            }
        }
        Expr::SizeOf(ty) => {
            h.write_u8(13);
            ty.hash(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::Span;

    const SRC: &str = r#"
        global g: u32 = 0;
        fn f(n: u32) -> u32 { let x: u32 = n + 1; return x; }
        fn other(n: u32) -> u32 { return n; }
    "#;

    #[test]
    fn spans_do_not_affect_the_hash() {
        let p = parse_program(SRC).unwrap();
        let f = p.function("f").unwrap();
        let mut shifted = f.clone();
        shifted.span = Span::synthetic();
        if let Some(body) = shifted.body.as_mut() {
            if let Stmt::Return(_, span) = &mut body.stmts[1] {
                *span = Span::synthetic();
            }
        }
        assert_eq!(function_content_hash(f), function_content_hash(&shifted));
    }

    #[test]
    fn content_changes_change_the_hash() {
        let p = parse_program(SRC).unwrap();
        let q = parse_program(&SRC.replace("n + 1", "n + 2")).unwrap();
        let f = p.function("f").unwrap();
        assert_ne!(
            function_content_hash(f),
            function_content_hash(q.function("f").unwrap())
        );
        assert_ne!(
            function_content_hash(f),
            function_content_hash(p.function("other").unwrap())
        );
        // Same pretty text, different spans, same hash.
        let reparsed = parse_program(&crate::pretty::pretty_program(&p)).unwrap();
        assert_eq!(
            function_content_hash(f),
            function_content_hash(reparsed.function("f").unwrap())
        );
    }
}
