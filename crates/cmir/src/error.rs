//! Error types shared by the KC front end.

use crate::span::Span;
use std::fmt;

/// An error produced while lexing, parsing, or validating a KC program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CmirError {
    /// Which phase produced the error.
    pub kind: ErrorKind,
    /// Human readable message.
    pub message: String,
    /// Location of the offending construct, if known.
    pub span: Span,
}

/// The front-end phase that produced a [`CmirError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Invalid character sequence or malformed literal.
    Lex,
    /// Syntax error.
    Parse,
    /// Name-resolution or structural validation error.
    Resolve,
    /// C-level type error (not a Deputy error; those live in `ivy-deputy`).
    Type,
}

impl CmirError {
    /// Creates a lexer error.
    pub fn lex(message: impl Into<String>, span: Span) -> Self {
        CmirError {
            kind: ErrorKind::Lex,
            message: message.into(),
            span,
        }
    }

    /// Creates a parser error.
    pub fn parse(message: impl Into<String>, span: Span) -> Self {
        CmirError {
            kind: ErrorKind::Parse,
            message: message.into(),
            span,
        }
    }

    /// Creates a resolution/validation error.
    pub fn resolve(message: impl Into<String>, span: Span) -> Self {
        CmirError {
            kind: ErrorKind::Resolve,
            message: message.into(),
            span,
        }
    }

    /// Creates a C-level type error.
    pub fn ty(message: impl Into<String>, span: Span) -> Self {
        CmirError {
            kind: ErrorKind::Type,
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for CmirError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let phase = match self.kind {
            ErrorKind::Lex => "lex",
            ErrorKind::Parse => "parse",
            ErrorKind::Resolve => "resolve",
            ErrorKind::Type => "type",
        };
        write!(f, "{} error at {}: {}", phase, self.span, self.message)
    }
}

impl std::error::Error for CmirError {}

/// Convenience result alias used throughout the front end.
pub type Result<T> = std::result::Result<T, CmirError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Pos, Span};

    #[test]
    fn display_includes_phase_and_location() {
        let e = CmirError::parse("expected `;`", Span::new(Pos::new(2, 3), Pos::new(2, 4)));
        let s = format!("{e}");
        assert!(s.contains("parse error"));
        assert!(s.contains("2:3"));
        assert!(s.contains("expected `;`"));
    }

    #[test]
    fn constructors_set_kind() {
        assert_eq!(CmirError::lex("x", Span::synthetic()).kind, ErrorKind::Lex);
        assert_eq!(
            CmirError::resolve("x", Span::synthetic()).kind,
            ErrorKind::Resolve
        );
        assert_eq!(CmirError::ty("x", Span::synthetic()).kind, ErrorKind::Type);
    }
}
