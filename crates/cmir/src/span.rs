//! Source locations and spans for KC programs.
//!
//! Every AST node produced by the parser carries a [`Span`] so that the
//! analysis tools (Deputy, CCount, BlockStop) can report findings against a
//! file / line position, and so that the annotation-burden experiment (E2)
//! can count annotated lines the way the paper does.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A position in a source file (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Pos {
    /// Creates a new position.
    pub fn new(line: u32, col: u32) -> Self {
        Pos { line, col }
    }

    /// The synthetic position used for programmatically built nodes.
    pub fn synthetic() -> Self {
        Pos { line: 0, col: 0 }
    }
}

impl Default for Pos {
    fn default() -> Self {
        Pos::synthetic()
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A half-open region of a source file.
///
/// Spans are carried for diagnostics only; they never affect program
/// semantics, and two nodes that differ only in spans compare equal for the
/// purposes of the structural-equality helpers in [`crate::ast`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Span {
    /// Start position (inclusive).
    pub start: Pos,
    /// End position (exclusive).
    pub end: Pos,
}

impl Span {
    /// Creates a span from two positions.
    pub fn new(start: Pos, end: Pos) -> Self {
        Span { start, end }
    }

    /// A span for nodes constructed by the builder API rather than the parser.
    pub fn synthetic() -> Self {
        Span::default()
    }

    /// Returns true if this span was produced by the parser (has a real line).
    pub fn is_real(&self) -> bool {
        self.start.line != 0
    }

    /// Produces the smallest span covering both `self` and `other`.
    pub fn merge(&self, other: Span) -> Span {
        if !self.is_real() {
            return other;
        }
        if !other.is_real() {
            return *self;
        }
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Number of source lines covered by this span (at least 1 for real spans).
    pub fn line_count(&self) -> u32 {
        if !self.is_real() {
            return 0;
        }
        self.end.line.saturating_sub(self.start.line) + 1
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_real() {
            write!(f, "{}-{}", self.start, self.end)
        } else {
            write!(f, "<builtin>")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_prefers_real_spans() {
        let a = Span::new(Pos::new(3, 1), Pos::new(3, 10));
        let s = Span::synthetic().merge(a);
        assert_eq!(s, a);
        let s2 = a.merge(Span::synthetic());
        assert_eq!(s2, a);
    }

    #[test]
    fn merge_covers_both() {
        let a = Span::new(Pos::new(3, 5), Pos::new(3, 10));
        let b = Span::new(Pos::new(5, 1), Pos::new(6, 2));
        let m = a.merge(b);
        assert_eq!(m.start, Pos::new(3, 5));
        assert_eq!(m.end, Pos::new(6, 2));
    }

    #[test]
    fn line_count_is_inclusive() {
        let a = Span::new(Pos::new(3, 1), Pos::new(5, 2));
        assert_eq!(a.line_count(), 3);
        assert_eq!(Span::synthetic().line_count(), 0);
    }

    #[test]
    fn display_formats() {
        let a = Span::new(Pos::new(3, 1), Pos::new(5, 2));
        assert_eq!(format!("{a}"), "3:1-5:2");
        assert_eq!(format!("{}", Span::synthetic()), "<builtin>");
    }
}
