//! Data layout: sizes, alignments, and field offsets for KC types.
//!
//! The layout rules follow the i386 System V ABI that the paper's kernel
//! targets: natural alignment up to 4 bytes, 4-byte pointers, structs padded
//! to the maximum member alignment, unions as large as their largest member.
//!
//! CCount's 16-byte chunk accounting ([`crate::types::CHUNK_SIZE`]) and the
//! 6.25 % space-overhead figure both derive from these sizes.

use crate::ast::Program;
use crate::error::{CmirError, Result};
use crate::span::Span;
use crate::types::{CompositeDef, Type, PTR_SIZE};

/// Computed layout of a type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Size in bytes (already rounded up to alignment for composites).
    pub size: u64,
    /// Alignment in bytes.
    pub align: u64,
}

impl Layout {
    /// Creates a layout.
    pub fn new(size: u64, align: u64) -> Self {
        Layout { size, align }
    }
}

/// Layout oracle for a program: resolves typedefs and composite definitions.
pub struct LayoutCtx<'p> {
    program: &'p Program,
}

impl<'p> LayoutCtx<'p> {
    /// Creates a layout context for a program.
    pub fn new(program: &'p Program) -> Self {
        LayoutCtx { program }
    }

    /// Computes the layout of a type.
    ///
    /// Returns an error for `void`, bare function types, and references to
    /// undefined structs/unions/typedefs.
    pub fn layout_of(&self, ty: &Type) -> Result<Layout> {
        self.layout_of_depth(ty, 0)
    }

    fn layout_of_depth(&self, ty: &Type, depth: u32) -> Result<Layout> {
        if depth > 64 {
            return Err(CmirError::ty(
                "type nesting too deep (recursive struct by value?)",
                Span::synthetic(),
            ));
        }
        match ty {
            Type::Void => Err(CmirError::ty("void has no size", Span::synthetic())),
            Type::Bool => Ok(Layout::new(1, 1)),
            Type::Int(k) => {
                let s = k.size();
                // i386: 8-byte integers are only 4-byte aligned.
                let a = s.min(4);
                Ok(Layout::new(s, a))
            }
            Type::Ptr(..) => Ok(Layout::new(PTR_SIZE, PTR_SIZE)),
            Type::Array(inner, n) => {
                let el = self.layout_of_depth(inner, depth + 1)?;
                Ok(Layout::new(el.size * n, el.align))
            }
            Type::Struct(name) | Type::Union(name) => {
                let def = self.program.composite(name).ok_or_else(|| {
                    CmirError::ty(format!("undefined composite `{name}`"), Span::synthetic())
                })?;
                self.composite_layout(def, depth)
            }
            // A function type only ever appears as the target of a pointer
            // (KC's `fnptr(...)` syntax denotes a function pointer), so its
            // stored representation is pointer-sized.
            Type::Func(_) => Ok(Layout::new(PTR_SIZE, PTR_SIZE)),
            Type::Named(n) => {
                let resolved = self.program.resolve_type(ty);
                if matches!(resolved, Type::Named(m) if m == n) {
                    return Err(CmirError::ty(
                        format!("undefined typedef `{n}`"),
                        Span::synthetic(),
                    ));
                }
                self.layout_of_depth(resolved, depth + 1)
            }
        }
    }

    fn composite_layout(&self, def: &CompositeDef, depth: u32) -> Result<Layout> {
        let mut size: u64 = 0;
        let mut align: u64 = 1;
        for field in &def.fields {
            let fl = self.layout_of_depth(&field.ty, depth + 1)?;
            align = align.max(fl.align);
            if def.is_union {
                size = size.max(fl.size);
            } else {
                size = round_up(size, fl.align) + fl.size;
            }
        }
        if size == 0 {
            size = 1;
        }
        Ok(Layout::new(round_up(size, align), align))
    }

    /// Computes the byte offset of `field` within the composite type `name`.
    ///
    /// For unions every field is at offset zero.
    pub fn field_offset(&self, name: &str, field: &str) -> Result<u64> {
        let def = self.program.composite(name).ok_or_else(|| {
            CmirError::ty(format!("undefined composite `{name}`"), Span::synthetic())
        })?;
        if def.is_union {
            if def.field(field).is_some() {
                return Ok(0);
            }
            return Err(CmirError::ty(
                format!("union `{name}` has no field `{field}`"),
                Span::synthetic(),
            ));
        }
        let mut off: u64 = 0;
        for f in &def.fields {
            let fl = self.layout_of(&f.ty)?;
            off = round_up(off, fl.align);
            if f.name == field {
                return Ok(off);
            }
            off += fl.size;
        }
        Err(CmirError::ty(
            format!("struct `{name}` has no field `{field}`"),
            Span::synthetic(),
        ))
    }

    /// Size of a type in bytes (convenience wrapper over [`Self::layout_of`]).
    pub fn size_of(&self, ty: &Type) -> Result<u64> {
        Ok(self.layout_of(ty)?.size)
    }

    /// Resolves a byte offset within a value of type `ty` to the chain of
    /// `(composite, field)` pairs whose storage covers that offset,
    /// outermost first. Arrays are transparent (the offset is folded into
    /// the element); every union arm covering the offset is included.
    ///
    /// The dynamic soundness oracle uses this to enumerate the field-level
    /// abstract locations a concrete address inside a global or heap object
    /// may legitimately stand for.
    pub fn field_path_at(&self, ty: &Type, offset: u64) -> Vec<(String, String)> {
        let mut out = Vec::new();
        self.field_path_at_depth(ty, offset, 0, &mut out);
        out
    }

    fn field_path_at_depth(
        &self,
        ty: &Type,
        offset: u64,
        depth: u32,
        out: &mut Vec<(String, String)>,
    ) {
        if depth > 64 {
            return;
        }
        match self.program.resolve_type(ty) {
            Type::Array(inner, n) => {
                let Ok(el) = self.layout_of(inner) else {
                    return;
                };
                if el.size == 0 || offset >= el.size * n {
                    return;
                }
                self.field_path_at_depth(inner, offset % el.size, depth + 1, out);
            }
            Type::Struct(name) => {
                let Some(def) = self.program.composite(name) else {
                    return;
                };
                let name = name.clone();
                let mut off: u64 = 0;
                for f in &def.fields {
                    let Ok(fl) = self.layout_of(&f.ty) else {
                        return;
                    };
                    off = round_up(off, fl.align);
                    if offset >= off && offset < off + fl.size {
                        out.push((name.clone(), f.name.clone()));
                        let fty = f.ty.clone();
                        self.field_path_at_depth(&fty, offset - off, depth + 1, out);
                        return;
                    }
                    off += fl.size;
                }
            }
            Type::Union(name) => {
                let Some(def) = self.program.composite(name) else {
                    return;
                };
                let name = name.clone();
                let fields: Vec<_> = def.fields.clone();
                for f in &fields {
                    let Ok(fl) = self.layout_of(&f.ty) else {
                        continue;
                    };
                    if offset < fl.size {
                        out.push((name.clone(), f.name.clone()));
                        self.field_path_at_depth(&f.ty, offset, depth + 1, out);
                    }
                }
            }
            _ => {}
        }
    }
}

/// Rounds `v` up to the next multiple of `align` (which must be a power of
/// two or 1; callers only pass layout alignments).
pub fn round_up(v: u64, align: u64) -> u64 {
    if align <= 1 {
        return v;
    }
    v.div_ceil(align) * align
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{BoundExpr, Field};

    fn program_with_structs() -> Program {
        let mut p = Program::new();
        p.add_composite(CompositeDef::strukt(
            "sk_buff",
            vec![
                Field::new("len", Type::u32()),
                Field::new("proto", Type::u8()),
                Field::new("data", Type::ptr_count(Type::u8(), BoundExpr::field("len"))),
            ],
        ));
        p.add_composite(CompositeDef::union(
            "payload",
            vec![
                Field::new("word", Type::u64()),
                Field::new("bytes", Type::Array(Box::new(Type::u8()), 12)),
            ],
        ));
        p.typedefs.push(("size_t".into(), Type::u32()));
        p
    }

    #[test]
    fn scalar_layouts() {
        let p = Program::new();
        let ctx = LayoutCtx::new(&p);
        assert_eq!(ctx.layout_of(&Type::u8()).unwrap(), Layout::new(1, 1));
        assert_eq!(ctx.layout_of(&Type::u32()).unwrap(), Layout::new(4, 4));
        // i386: 64-bit ints are 4-byte aligned.
        assert_eq!(ctx.layout_of(&Type::u64()).unwrap(), Layout::new(8, 4));
        assert_eq!(
            ctx.layout_of(&Type::ptr(Type::Void)).unwrap(),
            Layout::new(4, 4)
        );
    }

    #[test]
    fn struct_layout_with_padding() {
        let p = program_with_structs();
        let ctx = LayoutCtx::new(&p);
        // len(4) + proto(1) + pad(3) + data(4) = 12, align 4.
        let l = ctx.layout_of(&Type::Struct("sk_buff".into())).unwrap();
        assert_eq!(l, Layout::new(12, 4));
        assert_eq!(ctx.field_offset("sk_buff", "len").unwrap(), 0);
        assert_eq!(ctx.field_offset("sk_buff", "proto").unwrap(), 4);
        assert_eq!(ctx.field_offset("sk_buff", "data").unwrap(), 8);
    }

    #[test]
    fn union_layout_is_max_member() {
        let p = program_with_structs();
        let ctx = LayoutCtx::new(&p);
        let l = ctx.layout_of(&Type::Union("payload".into())).unwrap();
        assert_eq!(l.size, 12);
        assert_eq!(l.align, 4);
        assert_eq!(ctx.field_offset("payload", "bytes").unwrap(), 0);
    }

    #[test]
    fn typedef_resolution() {
        let p = program_with_structs();
        let ctx = LayoutCtx::new(&p);
        assert_eq!(ctx.size_of(&Type::Named("size_t".into())).unwrap(), 4);
        assert!(ctx.size_of(&Type::Named("missing".into())).is_err());
    }

    #[test]
    fn array_layout() {
        let p = Program::new();
        let ctx = LayoutCtx::new(&p);
        let l = ctx
            .layout_of(&Type::Array(Box::new(Type::u32()), 16))
            .unwrap();
        assert_eq!(l, Layout::new(64, 4));
    }

    #[test]
    fn errors_for_unsized() {
        let p = Program::new();
        let ctx = LayoutCtx::new(&p);
        assert!(ctx.layout_of(&Type::Void).is_err());
        assert!(ctx.layout_of(&Type::Struct("nope".into())).is_err());
    }

    #[test]
    fn field_path_resolution() {
        let mut p = program_with_structs();
        p.add_composite(CompositeDef::strukt(
            "ring",
            vec![
                Field::new("id", Type::u32()),
                Field::new(
                    "bufs",
                    Type::Array(Box::new(Type::Struct("sk_buff".into())), 4),
                ),
            ],
        ));
        let ctx = LayoutCtx::new(&p);
        let sk = Type::Struct("sk_buff".into());
        assert_eq!(
            ctx.field_path_at(&sk, 0),
            vec![("sk_buff".to_string(), "len".to_string())]
        );
        assert_eq!(
            ctx.field_path_at(&sk, 8),
            vec![("sk_buff".to_string(), "data".to_string())]
        );
        // Padding bytes resolve to no field.
        assert!(ctx.field_path_at(&sk, 5).is_empty());
        // Nested array-of-struct: offset folds into the element.
        let ring = Type::Struct("ring".into());
        assert_eq!(
            ctx.field_path_at(&ring, 4 + 12 + 8),
            vec![
                ("ring".to_string(), "bufs".to_string()),
                ("sk_buff".to_string(), "data".to_string())
            ]
        );
        // Unions: every covering arm is reported.
        let u = Type::Union("payload".into());
        let arms = ctx.field_path_at(&u, 0);
        assert!(arms.contains(&("payload".to_string(), "word".to_string())));
        assert!(arms.contains(&("payload".to_string(), "bytes".to_string())));
    }

    #[test]
    fn round_up_behaviour() {
        assert_eq!(round_up(0, 4), 0);
        assert_eq!(round_up(1, 4), 4);
        assert_eq!(round_up(4, 4), 4);
        assert_eq!(round_up(5, 1), 5);
        assert_eq!(round_up(17, 16), 32);
    }
}
