//! Fluent builders for constructing KC programs programmatically.
//!
//! The synthetic kernel corpus (`ivy-kernelgen`) builds hundreds of functions;
//! these builders keep that code compact and readable. Everything produced
//! here is ordinary AST — the same structures the parser yields.

use crate::ast::{Block, Expr, FuncAttrs, Function, GlobalDef, Program, Stmt, VarDecl};
use crate::types::{BoundExpr, CompositeDef, Field, Type};

/// Builder for a [`Function`].
#[derive(Debug, Clone)]
pub struct FnBuilder {
    name: String,
    params: Vec<VarDecl>,
    ret: Type,
    body: Vec<Stmt>,
    attrs: FuncAttrs,
    subsystem: String,
}

impl FnBuilder {
    /// Starts a new function with `void` return type in the `kernel`
    /// subsystem.
    pub fn new(name: impl Into<String>) -> Self {
        FnBuilder {
            name: name.into(),
            params: Vec::new(),
            ret: Type::Void,
            body: Vec::new(),
            attrs: FuncAttrs::default(),
            subsystem: "kernel".to_string(),
        }
    }

    /// Adds a parameter.
    pub fn param(mut self, name: impl Into<String>, ty: Type) -> Self {
        self.params.push(VarDecl::new(name, ty));
        self
    }

    /// Sets the return type.
    pub fn ret(mut self, ty: Type) -> Self {
        self.ret = ty;
        self
    }

    /// Sets the subsystem label.
    pub fn subsystem(mut self, s: impl Into<String>) -> Self {
        self.subsystem = s.into();
        self
    }

    /// Marks the function as blocking.
    pub fn blocking(mut self) -> Self {
        self.attrs.blocking = true;
        self
    }

    /// Marks the function as blocking when the named flag argument carries
    /// `GFP_WAIT`.
    pub fn blocking_if(mut self, flag: impl Into<String>) -> Self {
        self.attrs.blocking_if_flag = Some(flag.into());
        self
    }

    /// Marks the function as an interrupt handler.
    pub fn irq_handler(mut self) -> Self {
        self.attrs.interrupt_handler = true;
        self
    }

    /// Marks the whole function as trusted.
    pub fn trusted(mut self) -> Self {
        self.attrs.trusted = true;
        self
    }

    /// Marks the function as containing inline assembly.
    pub fn inline_asm(mut self) -> Self {
        self.attrs.inline_asm = true;
        self
    }

    /// Marks the function as an allocator.
    pub fn allocator(mut self) -> Self {
        self.attrs.allocator = true;
        self
    }

    /// Marks the function as a deallocator.
    pub fn deallocator(mut self) -> Self {
        self.attrs.deallocator = true;
        self
    }

    /// Marks the function as disabling interrupts for its duration.
    pub fn disables_irq(mut self) -> Self {
        self.attrs.disables_irq = true;
        self
    }

    /// Records that the function acquires the named lock.
    pub fn acquires(mut self, lock: impl Into<String>) -> Self {
        self.attrs.acquires.push(lock.into());
        self
    }

    /// Records that the function releases the named lock.
    pub fn releases(mut self, lock: impl Into<String>) -> Self {
        self.attrs.releases.push(lock.into());
        self
    }

    /// Records the error codes the function may return.
    pub fn error_codes(mut self, codes: &[i64]) -> Self {
        self.attrs.error_codes.extend_from_slice(codes);
        self
    }

    /// Appends one statement to the body.
    pub fn stmt(mut self, s: Stmt) -> Self {
        self.body.push(s);
        self
    }

    /// Appends several statements to the body.
    pub fn stmts(mut self, s: Vec<Stmt>) -> Self {
        self.body.extend(s);
        self
    }

    /// Replaces the whole body.
    pub fn body(mut self, s: Vec<Stmt>) -> Self {
        self.body = s;
        self
    }

    /// Finishes the function (with a body).
    pub fn build(self) -> Function {
        Function {
            name: self.name,
            params: self.params,
            ret: self.ret,
            body: Some(Block::new(self.body)),
            attrs: self.attrs,
            subsystem: self.subsystem,
            span: crate::span::Span::synthetic(),
        }
    }

    /// Finishes the function as an extern declaration (drops any body).
    pub fn build_extern(self) -> Function {
        Function {
            name: self.name,
            params: self.params,
            ret: self.ret,
            body: None,
            attrs: self.attrs,
            subsystem: self.subsystem,
            span: crate::span::Span::synthetic(),
        }
    }
}

/// Builder for a whole [`Program`] (one synthetic "source file" / module).
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    program: Program,
}

impl ProgramBuilder {
    /// Starts an empty program.
    pub fn new() -> Self {
        ProgramBuilder {
            program: Program::new(),
        }
    }

    /// Adds a struct definition.
    pub fn strukt(mut self, name: impl Into<String>, fields: Vec<Field>) -> Self {
        self.program
            .add_composite(CompositeDef::strukt(name, fields));
        self
    }

    /// Adds a union definition.
    pub fn union(mut self, name: impl Into<String>, fields: Vec<Field>) -> Self {
        self.program
            .add_composite(CompositeDef::union(name, fields));
        self
    }

    /// Adds a typedef.
    pub fn typedef(mut self, name: impl Into<String>, ty: Type) -> Self {
        self.program.typedefs.push((name.into(), ty));
        self
    }

    /// Adds a global variable.
    pub fn global(mut self, name: impl Into<String>, ty: Type, init: Option<Expr>) -> Self {
        self.program.globals.push(GlobalDef::new(name, ty, init));
        self
    }

    /// Adds a function.
    pub fn func(mut self, f: Function) -> Self {
        self.program.add_function(f);
        self
    }

    /// Adds every function from an iterator.
    pub fn funcs(mut self, fs: impl IntoIterator<Item = Function>) -> Self {
        for f in fs {
            self.program.add_function(f);
        }
        self
    }

    /// Finishes the program.
    pub fn build(self) -> Program {
        self.program
    }
}

/// Shorthand helpers used pervasively by the corpus generator.
pub mod dsl {
    use super::*;

    /// `let name: ty = init;`
    pub fn decl(name: &str, ty: Type, init: Expr) -> Stmt {
        Stmt::local(name, ty, Some(init))
    }

    /// `let name: ty;`
    pub fn decl_uninit(name: &str, ty: Type) -> Stmt {
        Stmt::local(name, ty, None)
    }

    /// `lhs = rhs;`
    pub fn assign(lhs: Expr, rhs: Expr) -> Stmt {
        Stmt::assign(lhs, rhs)
    }

    /// `name(args...);` as a statement.
    pub fn call_stmt(name: &str, args: Vec<Expr>) -> Stmt {
        Stmt::expr(Expr::call(name, args))
    }

    /// `name(args...)` as an expression.
    pub fn call(name: &str, args: Vec<Expr>) -> Expr {
        Expr::call(name, args)
    }

    /// Variable reference.
    pub fn v(name: &str) -> Expr {
        Expr::var(name)
    }

    /// Integer literal.
    pub fn n(value: i64) -> Expr {
        Expr::int(value)
    }

    /// `count(var)` pointer to `ty`.
    pub fn ptr_count(ty: Type, var: &str) -> Type {
        Type::ptr_count(ty, BoundExpr::var(var))
    }

    /// Classic counted loop: `let i = 0; while (i < limit) { body; i = i + 1; }`.
    pub fn count_loop(i: &str, limit: Expr, body: Vec<Stmt>) -> Vec<Stmt> {
        let mut loop_body = body;
        loop_body.push(Stmt::assign(v(i), Expr::add(v(i), n(1))));
        vec![
            Stmt::local(i, Type::u32(), Some(n(0))),
            Stmt::while_loop(Expr::lt(v(i), limit), loop_body),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::dsl::*;
    use super::*;
    use crate::pretty::pretty_program;
    use crate::typecheck::validate_program;

    #[test]
    fn builder_produces_valid_program() {
        let memcpy = FnBuilder::new("memcpy_kc")
            .param("dst", ptr_count(Type::u8(), "len"))
            .param("src", ptr_count(Type::u8(), "len"))
            .param("len", Type::u32())
            .subsystem("lib")
            .stmts(count_loop(
                "i",
                v("len"),
                vec![assign(
                    Expr::index(v("dst"), v("i")),
                    Expr::index(v("src"), v("i")),
                )],
            ))
            .build();
        let kmalloc = FnBuilder::new("kmalloc")
            .param("size", Type::u32())
            .param("flags", Type::u32())
            .ret(Type::ptr(Type::Void))
            .allocator()
            .blocking_if("flags")
            .stmt(Stmt::ret(Expr::Null))
            .build();
        let p = ProgramBuilder::new()
            .global("jiffies", Type::u64(), Some(n(0)))
            .func(memcpy)
            .func(kmalloc)
            .build();
        let v = validate_program(&p);
        assert!(v.is_ok(), "{:?}", v.errors);
        // And the pretty-printed output must re-parse.
        let printed = pretty_program(&p);
        let reparsed = crate::parser::parse_program(&printed).unwrap();
        assert_eq!(reparsed.functions.len(), 2);
        assert!(reparsed.function("kmalloc").unwrap().attrs.allocator);
    }

    #[test]
    fn builder_extern_has_no_body() {
        let f = FnBuilder::new("panic")
            .param("msg", Type::ptr(Type::u8()))
            .build_extern();
        assert!(f.body.is_none());
    }

    #[test]
    fn count_loop_shape() {
        let stmts = count_loop("i", n(8), vec![call_stmt("touch", vec![v("i")])]);
        assert_eq!(stmts.len(), 2);
        assert!(matches!(stmts[1], Stmt::While(..)));
    }
}
