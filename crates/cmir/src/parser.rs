//! Recursive-descent parser for the KC surface syntax.
//!
//! The grammar is a small, unambiguous C-flavoured language:
//!
//! ```text
//! item    := struct | union | typedef | global | function
//! struct  := "struct" NAME "{" (field ";")* "}"
//! field   := NAME ":" type ("when" "(" NAME "==" INT ")")?
//! typedef := "typedef" NAME "=" type ";"
//! global  := "global" NAME ":" type ("=" expr)? ";"
//! func    := attr* "extern"? "fn" NAME "(" params ")" ("->" type)? (block | ";")
//! attr    := "#" "[" NAME ("(" args ")")? "]"
//! type    := base ("*" annots | "[" INT "]")*
//! annots  := ("count" "(" bexpr ")" | "bound" "(" bexpr "," bexpr ")"
//!            | "single" | "auto" | "nullterm" | "nonnull" | "opt"
//!            | "trusted" | "poly")*
//! ```
//!
//! Statements use `let x: T = e;` declarations, `if`/`else`, `while`, `for`
//! (desugared into `while`), `return`, `break`, `continue`, assignment and
//! expression statements, `delayed_free { ... }` scopes, and the `__check_*`
//! / `__assert_may_block` forms that print inserted run-time checks.

use crate::ast::BinOp;
use crate::ast::{
    Block, Check, Expr, FuncAttrs, Function, GlobalDef, Program, Stmt, UnOp, VarDecl,
};
use crate::error::{CmirError, Result};
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Token, TokenKind};
use crate::types::{BoundExpr, Bounds, CompositeDef, Field, FuncType, IntKind, PtrAnnot, Type};

/// Parses a complete KC source string into a [`Program`].
pub fn parse_program(src: &str) -> Result<Program> {
    let tokens = lex(src)?;
    Parser::new(tokens).program()
}

/// Parses a single expression (used by tests and tools).
pub fn parse_expr(src: &str) -> Result<Expr> {
    let tokens = lex(src)?;
    let mut p = Parser::new(tokens);
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

/// Parses a single type (used by tests and the annotation repository).
pub fn parse_type(src: &str) -> Result<Type> {
    let tokens = lex(src)?;
    let mut p = Parser::new(tokens);
    let t = p.ty()?;
    p.expect_eof()?;
    Ok(t)
}

struct Parser {
    tokens: Vec<Token>,
    idx: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, idx: 0 }
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.idx.min(self.tokens.len() - 1)].kind
    }

    fn peek_span(&self) -> Span {
        self.tokens[self.idx.min(self.tokens.len() - 1)].span
    }

    fn peek_ident(&self) -> Option<&str> {
        self.peek().as_ident()
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.idx.min(self.tokens.len() - 1)].clone();
        if self.idx < self.tokens.len() - 1 {
            self.idx += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_ident() == Some(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token> {
        if self.peek() == &kind {
            Ok(self.bump())
        } else {
            Err(CmirError::parse(
                format!("expected {kind}, found {}", self.peek()),
                self.peek_span(),
            ))
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(CmirError::parse(
                format!("expected `{kw}`, found {}", self.peek()),
                self.peek_span(),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.peek() {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            other => Err(CmirError::parse(
                format!("expected identifier, found {other}"),
                self.peek_span(),
            )),
        }
    }

    fn expect_int(&mut self) -> Result<i64> {
        // Allow a leading minus so attribute arguments like `-12` work.
        let neg = self.eat(&TokenKind::Minus);
        match self.peek() {
            TokenKind::Int(v) => {
                let v = *v;
                self.bump();
                Ok(if neg { -v } else { v })
            }
            other => Err(CmirError::parse(
                format!("expected integer, found {other}"),
                self.peek_span(),
            )),
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(CmirError::parse(
                format!("expected end of input, found {}", self.peek()),
                self.peek_span(),
            ))
        }
    }

    // ----- items -----

    fn program(&mut self) -> Result<Program> {
        let mut program = Program::new();
        loop {
            match self.peek() {
                TokenKind::Eof => return Ok(program),
                TokenKind::Ident(kw) if kw == "struct" => {
                    let c = self.composite(false)?;
                    program.composites.push(c);
                }
                TokenKind::Ident(kw) if kw == "union" => {
                    let c = self.composite(true)?;
                    program.composites.push(c);
                }
                TokenKind::Ident(kw) if kw == "typedef" => {
                    self.bump();
                    let name = self.expect_ident()?;
                    self.expect(TokenKind::Assign)?;
                    let ty = self.ty()?;
                    self.expect(TokenKind::Semi)?;
                    program.typedefs.push((name, ty));
                }
                TokenKind::Ident(kw) if kw == "global" => {
                    self.bump();
                    let name = self.expect_ident()?;
                    self.expect(TokenKind::Colon)?;
                    let ty = self.ty()?;
                    let init = if self.eat(&TokenKind::Assign) {
                        Some(self.expr()?)
                    } else {
                        None
                    };
                    self.expect(TokenKind::Semi)?;
                    program.globals.push(GlobalDef {
                        decl: VarDecl::new(name, ty),
                        init,
                    });
                }
                TokenKind::Hash | TokenKind::Ident(_) => {
                    let f = self.function()?;
                    program.functions.push(f);
                }
                other => {
                    return Err(CmirError::parse(
                        format!("expected item, found {other}"),
                        self.peek_span(),
                    ))
                }
            }
        }
    }

    fn composite(&mut self, is_union: bool) -> Result<CompositeDef> {
        let start = self.peek_span();
        self.bump(); // struct / union
        let name = self.expect_ident()?;
        self.expect(TokenKind::LBrace)?;
        let mut fields = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            let fstart = self.peek_span();
            let fname = self.expect_ident()?;
            self.expect(TokenKind::Colon)?;
            let fty = self.ty()?;
            let when = if self.eat_kw("when") {
                self.expect(TokenKind::LParen)?;
                let tag = self.expect_ident()?;
                self.expect(TokenKind::EqEq)?;
                let v = self.expect_int()?;
                self.expect(TokenKind::RParen)?;
                Some((tag, v))
            } else {
                None
            };
            self.expect(TokenKind::Semi)?;
            fields.push(Field {
                name: fname,
                ty: fty,
                when,
                span: fstart.merge(self.peek_span()),
            });
        }
        Ok(CompositeDef {
            name,
            is_union,
            fields,
            span: start.merge(self.peek_span()),
        })
    }

    fn attributes(&mut self) -> Result<(FuncAttrs, Option<String>)> {
        let mut attrs = FuncAttrs::default();
        let mut subsystem = None;
        while self.eat(&TokenKind::Hash) {
            self.expect(TokenKind::LBracket)?;
            let name = self.expect_ident()?;
            match name.as_str() {
                "blocking" => attrs.blocking = true,
                "irq_handler" => attrs.interrupt_handler = true,
                "trusted" => attrs.trusted = true,
                "inline_asm" => attrs.inline_asm = true,
                "allocator" => attrs.allocator = true,
                "deallocator" => attrs.deallocator = true,
                "disables_irq" => attrs.disables_irq = true,
                "blocking_if" => {
                    self.expect(TokenKind::LParen)?;
                    attrs.blocking_if_flag = Some(self.expect_ident()?);
                    self.expect(TokenKind::RParen)?;
                }
                "acquires" => {
                    self.expect(TokenKind::LParen)?;
                    attrs.acquires.push(self.expect_ident()?);
                    self.expect(TokenKind::RParen)?;
                }
                "releases" => {
                    self.expect(TokenKind::LParen)?;
                    attrs.releases.push(self.expect_ident()?);
                    self.expect(TokenKind::RParen)?;
                }
                "error_codes" => {
                    self.expect(TokenKind::LParen)?;
                    loop {
                        attrs.error_codes.push(self.expect_int()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(TokenKind::RParen)?;
                }
                "subsystem" => {
                    self.expect(TokenKind::LParen)?;
                    match self.peek().clone() {
                        TokenKind::Str(s) => {
                            self.bump();
                            subsystem = Some(s);
                        }
                        _ => subsystem = Some(self.expect_ident()?),
                    }
                    self.expect(TokenKind::RParen)?;
                }
                other => {
                    return Err(CmirError::parse(
                        format!("unknown attribute `{other}`"),
                        self.peek_span(),
                    ))
                }
            }
            self.expect(TokenKind::RBracket)?;
        }
        Ok((attrs, subsystem))
    }

    fn function(&mut self) -> Result<Function> {
        let start = self.peek_span();
        let (attrs, subsystem) = self.attributes()?;
        let is_extern = self.eat_kw("extern");
        self.expect_kw("fn")?;
        let name = self.expect_ident()?;
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                let pspan = self.peek_span();
                let pname = self.expect_ident()?;
                self.expect(TokenKind::Colon)?;
                let pty = self.ty()?;
                params.push(VarDecl {
                    name: pname,
                    ty: pty,
                    span: pspan,
                });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::RParen)?;
        }
        let ret = if self.eat(&TokenKind::Arrow) {
            self.ty()?
        } else {
            Type::Void
        };
        let body = if is_extern || self.peek() == &TokenKind::Semi {
            self.expect(TokenKind::Semi)?;
            None
        } else {
            Some(self.block()?)
        };
        Ok(Function {
            name,
            params,
            ret,
            body,
            attrs,
            subsystem: subsystem.unwrap_or_else(|| "kernel".to_string()),
            span: start.merge(self.peek_span()),
        })
    }

    // ----- types -----

    fn ty(&mut self) -> Result<Type> {
        let mut base = self.base_type()?;
        loop {
            if self.eat(&TokenKind::Star) {
                let ann = self.ptr_annots()?;
                base = Type::Ptr(Box::new(base), ann);
            } else if self.peek() == &TokenKind::LBracket {
                self.bump();
                let n = self.expect_int()?;
                if n < 0 {
                    return Err(CmirError::parse("negative array length", self.peek_span()));
                }
                self.expect(TokenKind::RBracket)?;
                base = Type::Array(Box::new(base), n as u64);
            } else {
                return Ok(base);
            }
        }
    }

    fn base_type(&mut self) -> Result<Type> {
        let span = self.peek_span();
        let name = self.expect_ident()?;
        Ok(match name.as_str() {
            "void" => Type::Void,
            "bool" => Type::Bool,
            "i8" => Type::Int(IntKind::I8),
            "u8" => Type::Int(IntKind::U8),
            "i16" => Type::Int(IntKind::I16),
            "u16" => Type::Int(IntKind::U16),
            "i32" => Type::Int(IntKind::I32),
            "u32" => Type::Int(IntKind::U32),
            "i64" => Type::Int(IntKind::I64),
            "u64" => Type::Int(IntKind::U64),
            "struct" => Type::Struct(self.expect_ident()?),
            "union" => Type::Union(self.expect_ident()?),
            "fnptr" => {
                self.expect(TokenKind::LParen)?;
                let mut params = Vec::new();
                if !self.eat(&TokenKind::RParen) {
                    loop {
                        params.push(self.ty()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(TokenKind::RParen)?;
                }
                self.expect(TokenKind::Arrow)?;
                let ret = self.ty()?;
                Type::Func(Box::new(FuncType { params, ret }))
            }
            "let" | "if" | "while" | "for" | "return" => {
                return Err(CmirError::parse(format!("`{name}` is not a type"), span))
            }
            other => Type::Named(other.to_string()),
        })
    }

    fn ptr_annots(&mut self) -> Result<PtrAnnot> {
        let mut ann = PtrAnnot::unknown();
        loop {
            let Some(kw) = self.peek_ident() else {
                return Ok(ann);
            };
            match kw {
                "count" => {
                    self.bump();
                    self.expect(TokenKind::LParen)?;
                    let e = self.bound_expr()?;
                    self.expect(TokenKind::RParen)?;
                    ann.bounds = Bounds::Count(e);
                }
                "bound" => {
                    self.bump();
                    self.expect(TokenKind::LParen)?;
                    let lo = self.bound_expr()?;
                    self.expect(TokenKind::Comma)?;
                    let hi = self.bound_expr()?;
                    self.expect(TokenKind::RParen)?;
                    ann.bounds = Bounds::Bound(lo, hi);
                }
                "single" => {
                    self.bump();
                    ann.bounds = Bounds::Single;
                }
                "auto" => {
                    self.bump();
                    ann.bounds = Bounds::Auto;
                }
                "nullterm" => {
                    self.bump();
                    ann.nullterm = true;
                }
                "nonnull" => {
                    self.bump();
                    ann.nonnull = true;
                }
                "opt" => {
                    self.bump();
                    ann.opt = true;
                }
                "trusted" => {
                    self.bump();
                    ann.trusted = true;
                }
                "poly" => {
                    self.bump();
                    ann.poly = true;
                }
                _ => return Ok(ann),
            }
        }
    }

    fn bound_expr(&mut self) -> Result<BoundExpr> {
        self.bound_add()
    }

    fn bound_add(&mut self) -> Result<BoundExpr> {
        let mut lhs = self.bound_mul()?;
        loop {
            if self.eat(&TokenKind::Plus) {
                lhs = BoundExpr::Add(Box::new(lhs), Box::new(self.bound_mul()?));
            } else if self.eat(&TokenKind::Minus) {
                lhs = BoundExpr::Sub(Box::new(lhs), Box::new(self.bound_mul()?));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn bound_mul(&mut self) -> Result<BoundExpr> {
        let mut lhs = self.bound_atom()?;
        while self.eat(&TokenKind::Star) {
            lhs = BoundExpr::Mul(Box::new(lhs), Box::new(self.bound_atom()?));
        }
        Ok(lhs)
    }

    fn bound_atom(&mut self) -> Result<BoundExpr> {
        if self.eat(&TokenKind::Minus) {
            return Ok(match self.bound_atom()? {
                BoundExpr::Const(v) => BoundExpr::Const(-v),
                other => BoundExpr::Sub(Box::new(BoundExpr::Const(0)), Box::new(other)),
            });
        }
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(BoundExpr::Const(v))
            }
            TokenKind::Ident(name) => {
                self.bump();
                Ok(BoundExpr::Var(name))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.bound_expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            other => Err(CmirError::parse(
                format!("expected bound expression, found {other}"),
                self.peek_span(),
            )),
        }
    }

    // ----- statements -----

    fn block(&mut self) -> Result<Block> {
        self.expect(TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            stmts.push(self.stmt()?);
        }
        Ok(Block::new(stmts))
    }

    fn stmt(&mut self) -> Result<Stmt> {
        let span = self.peek_span();
        match self.peek() {
            TokenKind::LBrace => Ok(Stmt::Block(self.block()?)),
            TokenKind::Ident(kw) => match kw.as_str() {
                "let" => {
                    self.bump();
                    let name = self.expect_ident()?;
                    self.expect(TokenKind::Colon)?;
                    let ty = self.ty()?;
                    let init = if self.eat(&TokenKind::Assign) {
                        Some(self.expr()?)
                    } else {
                        None
                    };
                    self.expect(TokenKind::Semi)?;
                    Ok(Stmt::Local(VarDecl { name, ty, span }, init))
                }
                "if" => {
                    self.bump();
                    self.expect(TokenKind::LParen)?;
                    let cond = self.expr()?;
                    self.expect(TokenKind::RParen)?;
                    let then = self.block()?;
                    let els = if self.eat_kw("else") {
                        if self.peek_ident() == Some("if") {
                            Some(Block::new(vec![self.stmt()?]))
                        } else {
                            Some(self.block()?)
                        }
                    } else {
                        None
                    };
                    Ok(Stmt::If(cond, then, els, span))
                }
                "while" => {
                    self.bump();
                    self.expect(TokenKind::LParen)?;
                    let cond = self.expr()?;
                    self.expect(TokenKind::RParen)?;
                    let body = self.block()?;
                    Ok(Stmt::While(cond, body, span))
                }
                "for" => {
                    self.bump();
                    self.expect(TokenKind::LParen)?;
                    let init = if self.peek() == &TokenKind::Semi {
                        None
                    } else {
                        Some(self.simple_stmt()?)
                    };
                    self.expect(TokenKind::Semi)?;
                    let cond = if self.peek() == &TokenKind::Semi {
                        Expr::Int(1)
                    } else {
                        self.expr()?
                    };
                    self.expect(TokenKind::Semi)?;
                    let step = if self.peek() == &TokenKind::RParen {
                        None
                    } else {
                        Some(self.simple_stmt()?)
                    };
                    self.expect(TokenKind::RParen)?;
                    let mut body = self.block()?;
                    if let Some(step) = step {
                        body.stmts.push(step);
                    }
                    let mut stmts = Vec::new();
                    if let Some(init) = init {
                        stmts.push(init);
                    }
                    stmts.push(Stmt::While(cond, body, span));
                    Ok(Stmt::Block(Block::new(stmts)))
                }
                "return" => {
                    self.bump();
                    let e = if self.peek() == &TokenKind::Semi {
                        None
                    } else {
                        Some(self.expr()?)
                    };
                    self.expect(TokenKind::Semi)?;
                    Ok(Stmt::Return(e, span))
                }
                "break" => {
                    self.bump();
                    self.expect(TokenKind::Semi)?;
                    Ok(Stmt::Break(span))
                }
                "continue" => {
                    self.bump();
                    self.expect(TokenKind::Semi)?;
                    Ok(Stmt::Continue(span))
                }
                "delayed_free" => {
                    self.bump();
                    let b = self.block()?;
                    Ok(Stmt::DelayedFreeScope(b, span))
                }
                "__check_nonnull" => {
                    self.bump();
                    self.expect(TokenKind::LParen)?;
                    let e = self.expr()?;
                    self.expect(TokenKind::RParen)?;
                    self.expect(TokenKind::Semi)?;
                    Ok(Stmt::Check(Check::NonNull(e), span))
                }
                "__check_nullterm" => {
                    self.bump();
                    self.expect(TokenKind::LParen)?;
                    let e = self.expr()?;
                    self.expect(TokenKind::RParen)?;
                    self.expect(TokenKind::Semi)?;
                    Ok(Stmt::Check(Check::NullTerm(e), span))
                }
                "__check_rc_free" => {
                    self.bump();
                    self.expect(TokenKind::LParen)?;
                    let e = self.expr()?;
                    self.expect(TokenKind::RParen)?;
                    self.expect(TokenKind::Semi)?;
                    Ok(Stmt::Check(Check::RcFreeOk(e), span))
                }
                "__check_bounds" => {
                    self.bump();
                    self.expect(TokenKind::LParen)?;
                    let ptr = self.expr()?;
                    self.expect(TokenKind::Comma)?;
                    let index = self.expr()?;
                    let len = if self.eat(&TokenKind::Comma) {
                        Some(self.expr()?)
                    } else {
                        None
                    };
                    self.expect(TokenKind::RParen)?;
                    self.expect(TokenKind::Semi)?;
                    Ok(Stmt::Check(Check::PtrBounds { ptr, index, len }, span))
                }
                "__check_union" => {
                    self.bump();
                    self.expect(TokenKind::LParen)?;
                    let obj = self.expr()?;
                    self.expect(TokenKind::Comma)?;
                    let field = self.expect_ident()?;
                    self.expect(TokenKind::Comma)?;
                    let tag = self.expect_ident()?;
                    self.expect(TokenKind::Comma)?;
                    let value = self.expect_int()?;
                    self.expect(TokenKind::RParen)?;
                    self.expect(TokenKind::Semi)?;
                    Ok(Stmt::Check(
                        Check::UnionTag {
                            obj,
                            field,
                            tag,
                            value,
                        },
                        span,
                    ))
                }
                "__assert_may_block" => {
                    self.bump();
                    self.expect(TokenKind::LParen)?;
                    let site = match self.peek().clone() {
                        TokenKind::Str(s) => {
                            self.bump();
                            s
                        }
                        _ => self.expect_ident()?,
                    };
                    self.expect(TokenKind::RParen)?;
                    self.expect(TokenKind::Semi)?;
                    Ok(Stmt::Check(Check::AssertMayBlock { site }, span))
                }
                _ => {
                    let s = self.simple_stmt()?;
                    self.expect(TokenKind::Semi)?;
                    Ok(s)
                }
            },
            _ => {
                let s = self.simple_stmt()?;
                self.expect(TokenKind::Semi)?;
                Ok(s)
            }
        }
    }

    /// An assignment or expression statement, without the trailing `;`
    /// (shared by ordinary statements and `for` headers).
    fn simple_stmt(&mut self) -> Result<Stmt> {
        let span = self.peek_span();
        let lhs = self.expr()?;
        if self.eat(&TokenKind::Assign) {
            let rhs = self.expr()?;
            if !lhs.is_lvalue() {
                return Err(CmirError::parse("left side of `=` is not an lvalue", span));
            }
            Ok(Stmt::Assign(lhs, rhs, span))
        } else {
            Ok(Stmt::Expr(lhs, span))
        }
    }

    // ----- expressions -----

    fn expr(&mut self) -> Result<Expr> {
        self.binary(0)
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr> {
        let mut lhs = self.cast_expr()?;
        loop {
            let Some((op, prec)) = self.peek_binop() else {
                return Ok(lhs);
            };
            if prec < min_prec {
                return Ok(lhs);
            }
            self.bump();
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn peek_binop(&self) -> Option<(BinOp, u8)> {
        Some(match self.peek() {
            TokenKind::OrOr => (BinOp::LOr, 1),
            TokenKind::AndAnd => (BinOp::LAnd, 2),
            TokenKind::Pipe => (BinOp::Or, 3),
            TokenKind::Caret => (BinOp::Xor, 4),
            TokenKind::Amp => (BinOp::And, 5),
            TokenKind::EqEq => (BinOp::Eq, 6),
            TokenKind::NotEq => (BinOp::Ne, 6),
            TokenKind::Lt => (BinOp::Lt, 7),
            TokenKind::Le => (BinOp::Le, 7),
            TokenKind::Gt => (BinOp::Gt, 7),
            TokenKind::Ge => (BinOp::Ge, 7),
            TokenKind::Shl => (BinOp::Shl, 8),
            TokenKind::Shr => (BinOp::Shr, 8),
            TokenKind::Plus => (BinOp::Add, 9),
            TokenKind::Minus => (BinOp::Sub, 9),
            TokenKind::Star => (BinOp::Mul, 10),
            TokenKind::Slash => (BinOp::Div, 10),
            TokenKind::Percent => (BinOp::Rem, 10),
            _ => return None,
        })
    }

    fn cast_expr(&mut self) -> Result<Expr> {
        let mut e = self.unary()?;
        while self.peek_ident() == Some("as") {
            self.bump();
            let t = self.ty()?;
            e = Expr::Cast(t, Box::new(e));
        }
        Ok(e)
    }

    fn unary(&mut self) -> Result<Expr> {
        match self.peek() {
            TokenKind::Minus => {
                self.bump();
                // Fold negation of literals so `-1` is a literal, matching
                // what the pretty printer emits.
                Ok(match self.unary()? {
                    Expr::Int(v) => Expr::Int(-v),
                    other => Expr::Unary(UnOp::Neg, Box::new(other)),
                })
            }
            TokenKind::Bang => {
                self.bump();
                Ok(Expr::Unary(UnOp::Not, Box::new(self.unary()?)))
            }
            TokenKind::Tilde => {
                self.bump();
                Ok(Expr::Unary(UnOp::BitNot, Box::new(self.unary()?)))
            }
            TokenKind::Star => {
                self.bump();
                Ok(Expr::Deref(Box::new(self.unary()?)))
            }
            TokenKind::Amp => {
                self.bump();
                Ok(Expr::AddrOf(Box::new(self.unary()?)))
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr> {
        let mut e = self.primary()?;
        loop {
            match self.peek() {
                TokenKind::LParen => {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                        self.expect(TokenKind::RParen)?;
                    }
                    e = Expr::Call(Box::new(e), args);
                }
                TokenKind::LBracket => {
                    self.bump();
                    let i = self.expr()?;
                    self.expect(TokenKind::RBracket)?;
                    e = Expr::Index(Box::new(e), Box::new(i));
                }
                TokenKind::Dot => {
                    self.bump();
                    let f = self.expect_ident()?;
                    e = Expr::Field(Box::new(e), f);
                }
                TokenKind::Arrow => {
                    self.bump();
                    let f = self.expect_ident()?;
                    e = Expr::Arrow(Box::new(e), f);
                }
                _ => return Ok(e),
            }
        }
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Str(s))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.bump();
                match name.as_str() {
                    "null" => Ok(Expr::Null),
                    "sizeof" => {
                        self.expect(TokenKind::LParen)?;
                        let t = self.ty()?;
                        self.expect(TokenKind::RParen)?;
                        Ok(Expr::SizeOf(t))
                    }
                    _ => Ok(Expr::Var(name)),
                }
            }
            other => Err(CmirError::parse(
                format!("expected expression, found {other}"),
                self.peek_span(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_expression_precedence() {
        let e = parse_expr("1 + 2 * 3 == 7 && x < 4").unwrap();
        // Expect: ((1 + (2*3)) == 7) && (x < 4)
        match e {
            Expr::Binary(BinOp::LAnd, l, _) => match *l {
                Expr::Binary(BinOp::Eq, ll, _) => match *ll {
                    Expr::Binary(BinOp::Add, _, r) => {
                        assert!(matches!(*r, Expr::Binary(BinOp::Mul, _, _)))
                    }
                    other => panic!("unexpected {other:?}"),
                },
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_postfix_chains() {
        let e = parse_expr("ops->read(buf, n)[0].field").unwrap();
        assert!(matches!(e, Expr::Field(..)));
    }

    #[test]
    fn parses_cast_and_sizeof() {
        let e = parse_expr("kmalloc(sizeof(struct inode), 0) as struct inode *").unwrap();
        match e {
            Expr::Cast(Type::Ptr(inner, _), _) => {
                assert_eq!(*inner, Type::Struct("inode".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_annotated_types() {
        let t = parse_type("u8 * count(len) nullterm nonnull").unwrap();
        let ann = t.ptr_annot().unwrap();
        assert_eq!(ann.bounds, Bounds::Count(BoundExpr::var("len")));
        assert!(ann.nullterm);
        assert!(ann.nonnull);

        let t2 = parse_type("i32 * bound(lo, hi + 4)").unwrap();
        assert!(matches!(t2.ptr_annot().unwrap().bounds, Bounds::Bound(..)));

        // Type suffixes after a `fnptr(...) -> T` bind to the return type;
        // use a typedef to name a function type before adding suffixes.
        let t3 = parse_type("fnptr(u32, u8 *) -> i32 *").unwrap();
        match t3 {
            Type::Func(ft) => assert!(ft.ret.is_ptr()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_struct_with_when() {
        let src = r#"
            struct icmp_packet {
                kind: u32;
                echo: u32 when(kind == 8);
                unreach_code: u32 when(kind == 3);
            }
        "#;
        let p = parse_program(src).unwrap();
        let c = p.composite("icmp_packet").unwrap();
        assert_eq!(c.fields.len(), 3);
        assert_eq!(c.fields[1].when, Some(("kind".into(), 8)));
    }

    #[test]
    fn parses_function_with_attributes() {
        let src = r#"
            #[blocking] #[allocator] #[subsystem("mm")]
            fn kmalloc(size: u32, flags: u32) -> void * {
                return null;
            }
            #[blocking_if(flags)]
            extern fn __alloc_pages(flags: u32) -> void *;
            #[error_codes(-12, -22)]
            fn do_mmap(len: u32) -> i32 {
                if (len == 0) { return -22; }
                return 0;
            }
        "#;
        let p = parse_program(src).unwrap();
        let km = p.function("kmalloc").unwrap();
        assert!(km.attrs.blocking && km.attrs.allocator);
        assert_eq!(km.subsystem, "mm");
        assert!(p.function("__alloc_pages").unwrap().body.is_none());
        assert_eq!(
            p.function("__alloc_pages").unwrap().attrs.blocking_if_flag,
            Some("flags".into())
        );
        assert_eq!(
            p.function("do_mmap").unwrap().attrs.error_codes,
            vec![-12, -22]
        );
    }

    #[test]
    fn parses_statements_and_for_desugar() {
        let src = r#"
            fn sum(buf: u32 * count(n), n: u32) -> u32 {
                let total: u32 = 0;
                for (let i: u32 = 0; i < n; i = i + 1) {
                    total = total + buf[i];
                }
                return total;
            }
        "#;
        // `for` headers with `let` are not supported; use an assignment.
        assert!(parse_program(src).is_err());
        let src2 = r#"
            fn sum(buf: u32 * count(n), n: u32) -> u32 {
                let total: u32 = 0;
                let i: u32 = 0;
                for (i = 0; i < n; i = i + 1) {
                    total = total + buf[i];
                }
                return total;
            }
        "#;
        let p = parse_program(src2).unwrap();
        let f = p.function("sum").unwrap();
        // The for loop desugars into a block containing a while.
        let body = f.body.as_ref().unwrap();
        assert!(body.stmts.iter().any(|s| matches!(s, Stmt::Block(b) if b
            .stmts
            .iter()
            .any(|s| matches!(s, Stmt::While(..))))));
    }

    #[test]
    fn parses_checks_and_delayed_free() {
        let src = r#"
            fn f(p: u8 * count(n), n: u32) {
                __check_nonnull(p);
                __check_bounds(p, 0, n);
                __assert_may_block("read_chan");
                delayed_free {
                    kfree(p);
                }
            }
        "#;
        let p = parse_program(src).unwrap();
        let f = p.function("f").unwrap();
        let b = f.body.as_ref().unwrap();
        assert!(matches!(b.stmts[0], Stmt::Check(Check::NonNull(_), _)));
        assert!(matches!(
            b.stmts[1],
            Stmt::Check(Check::PtrBounds { .. }, _)
        ));
        assert!(matches!(
            b.stmts[2],
            Stmt::Check(Check::AssertMayBlock { .. }, _)
        ));
        assert!(matches!(b.stmts[3], Stmt::DelayedFreeScope(..)));
    }

    #[test]
    fn parses_globals_and_typedefs() {
        let src = r#"
            typedef size_t = u32;
            typedef irq_fn = fnptr(u32) -> i32;
            global jiffies: u64 = 0;
            global table: irq_fn[8];
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.typedefs.len(), 2);
        assert_eq!(p.globals.len(), 2);
        assert!(matches!(
            p.global("table").unwrap().decl.ty,
            Type::Array(..)
        ));
    }

    #[test]
    fn rejects_bad_syntax() {
        assert!(parse_program("fn f( { }").is_err());
        assert!(parse_program("struct S { x u32; }").is_err());
        assert!(parse_expr("1 +").is_err());
        assert!(parse_program("fn f() { 1 + 2 = 3; }").is_err());
        assert!(parse_program("#[made_up] fn f() { }").is_err());
    }

    #[test]
    fn else_if_chains() {
        let src = r#"
            fn classify(x: i32) -> i32 {
                if (x < 0) { return -1; }
                else if (x == 0) { return 0; }
                else { return 1; }
            }
        "#;
        let p = parse_program(src).unwrap();
        assert!(p.function("classify").is_some());
    }
}
