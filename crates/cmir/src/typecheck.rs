//! C-level validation and expression typing for KC programs.
//!
//! This module implements the checks an ordinary C compiler would perform:
//! every name must be defined, struct fields must exist, calls must match
//! arity, assignments must target lvalues, and `break`/`continue` must appear
//! inside loops. It deliberately does **not** enforce memory safety — that is
//! Deputy's job (`ivy-deputy`), which builds on [`TypeCtx::type_of`] here.
//!
//! The checker is permissive about implicit integer conversions and
//! pointer/integer casts, mirroring C: those are reported in
//! [`Validation::warnings`] rather than as errors.

use crate::ast::{BinOp, Block, Expr, Function, Program, Stmt, UnOp};
use crate::error::{CmirError, Result};
use crate::span::Span;
use crate::types::{IntKind, PtrAnnot, Type};
use std::collections::HashMap;

/// Outcome of validating a program.
#[derive(Debug, Default, Clone)]
pub struct Validation {
    /// Hard errors (undefined names, bad calls, non-lvalue assignments, ...).
    pub errors: Vec<CmirError>,
    /// Soft C-compatibility warnings (suspicious casts, implicit narrowing).
    pub warnings: Vec<String>,
}

impl Validation {
    /// True when no hard errors were found.
    pub fn is_ok(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Validates an entire program.
pub fn validate_program(program: &Program) -> Validation {
    let mut v = Validation::default();
    // Duplicate definitions.
    let mut seen = HashMap::new();
    for f in &program.functions {
        if f.body.is_some() && seen.insert(f.name.clone(), ()).is_some() {
            v.errors.push(CmirError::resolve(
                format!("function `{}` defined more than once", f.name),
                f.span,
            ));
        }
    }
    for c in &program.composites {
        let mut fields = HashMap::new();
        for fld in &c.fields {
            if fields.insert(fld.name.clone(), ()).is_some() {
                v.errors.push(CmirError::resolve(
                    format!("duplicate field `{}` in `{}`", fld.name, c.name),
                    fld.span,
                ));
            }
            check_type_defined(program, &fld.ty, fld.span, &mut v);
        }
    }
    for g in &program.globals {
        check_type_defined(program, &g.decl.ty, g.decl.span, &mut v);
    }
    for f in &program.functions {
        validate_function(program, f, &mut v);
    }
    v
}

fn check_type_defined(program: &Program, ty: &Type, span: Span, v: &mut Validation) {
    match ty {
        Type::Struct(n) | Type::Union(n) if program.composite(n).is_none() => {
            v.errors.push(CmirError::resolve(
                format!("undefined composite `{n}`"),
                span,
            ));
        }
        Type::Named(n) if !program.typedefs.iter().any(|(name, _)| name == n) => {
            v.errors
                .push(CmirError::resolve(format!("undefined typedef `{n}`"), span));
        }
        Type::Ptr(inner, _) | Type::Array(inner, _) => check_type_defined(program, inner, span, v),
        Type::Func(ft) => {
            check_type_defined(program, &ft.ret, span, v);
            for p in &ft.params {
                check_type_defined(program, p, span, v);
            }
        }
        _ => {}
    }
}

fn validate_function(program: &Program, func: &Function, v: &mut Validation) {
    let Some(body) = &func.body else { return };
    let mut ctx = TypeCtx::new(program);
    for p in &func.params {
        check_type_defined(program, &p.ty, p.span, v);
        ctx.bind(&p.name, p.ty.clone());
    }
    validate_block(&mut ctx, func, body, 0, v);
}

fn validate_block(
    ctx: &mut TypeCtx<'_>,
    func: &Function,
    block: &Block,
    loop_depth: u32,
    v: &mut Validation,
) {
    let mark = ctx.scope_mark();
    for stmt in &block.stmts {
        validate_stmt(ctx, func, stmt, loop_depth, v);
    }
    ctx.scope_reset(mark);
}

fn validate_stmt(
    ctx: &mut TypeCtx<'_>,
    func: &Function,
    stmt: &Stmt,
    loop_depth: u32,
    v: &mut Validation,
) {
    match stmt {
        Stmt::Expr(e, span) => {
            if let Err(err) = ctx.type_of(e) {
                v.errors.push(locate(err, *span));
            }
        }
        Stmt::Assign(lhs, rhs, span) => {
            if !lhs.is_lvalue() {
                v.errors.push(CmirError::resolve(
                    "assignment target is not an lvalue",
                    *span,
                ));
            }
            match (ctx.type_of(lhs), ctx.type_of(rhs)) {
                (Ok(lt), Ok(rt)) => {
                    if lt.is_ptr() && rt.is_integral() && !matches!(rhs, Expr::Int(0) | Expr::Null)
                    {
                        v.warnings.push(format!(
                            "{}: assigning integer to pointer `{}`",
                            span,
                            crate::pretty::expr_str(lhs)
                        ));
                    }
                }
                (Err(e), _) | (_, Err(e)) => v.errors.push(locate(e, *span)),
            }
        }
        Stmt::Local(decl, init) => {
            check_type_defined(ctx.program, &decl.ty, decl.span, v);
            if let Some(e) = init {
                if let Err(err) = ctx.type_of(e) {
                    v.errors.push(locate(err, decl.span));
                }
            }
            ctx.bind(&decl.name, decl.ty.clone());
        }
        Stmt::If(c, then, els, span) => {
            if let Err(err) = ctx.type_of(c) {
                v.errors.push(locate(err, *span));
            }
            validate_block(ctx, func, then, loop_depth, v);
            if let Some(e) = els {
                validate_block(ctx, func, e, loop_depth, v);
            }
        }
        Stmt::While(c, body, span) => {
            if let Err(err) = ctx.type_of(c) {
                v.errors.push(locate(err, *span));
            }
            validate_block(ctx, func, body, loop_depth + 1, v);
        }
        Stmt::Return(e, span) => match (e, &func.ret) {
            (None, Type::Void) => {}
            (None, _) => v.errors.push(CmirError::ty(
                format!("`{}` must return a value", func.name),
                *span,
            )),
            (Some(e), ret) => match ctx.type_of(e) {
                Err(err) => v.errors.push(locate(err, *span)),
                Ok(t) => {
                    if *ret == Type::Void {
                        v.warnings.push(format!(
                            "{span}: returning a value from void function `{}`",
                            func.name
                        ));
                    } else if t.is_ptr() && ret.is_integral() {
                        v.warnings.push(format!(
                            "{span}: returning pointer from integer function `{}`",
                            func.name
                        ));
                    }
                }
            },
        },
        Stmt::Break(span) | Stmt::Continue(span) => {
            if loop_depth == 0 {
                v.errors.push(CmirError::resolve(
                    "`break`/`continue` outside of a loop",
                    *span,
                ));
            }
        }
        Stmt::Block(b) => validate_block(ctx, func, b, loop_depth, v),
        Stmt::Check(c, span) => {
            crate::visit::walk_check_exprs(c, &mut |e| {
                if let Err(err) = ctx.type_of(e) {
                    v.errors.push(locate(err, *span));
                }
            });
        }
        Stmt::DelayedFreeScope(b, _) => validate_block(ctx, func, b, loop_depth, v),
    }
}

fn locate(mut err: CmirError, span: Span) -> CmirError {
    if !err.span.is_real() {
        err.span = span;
    }
    err
}

/// Expression typing context: a program plus a stack of local bindings.
///
/// The analysis tools create one per function body and push/pop bindings as
/// they walk scopes.
pub struct TypeCtx<'p> {
    /// The program providing globals, functions, composites, and typedefs.
    pub program: &'p Program,
    locals: Vec<(String, Type)>,
}

impl<'p> TypeCtx<'p> {
    /// Creates an empty context over a program.
    pub fn new(program: &'p Program) -> Self {
        TypeCtx {
            program,
            locals: Vec::new(),
        }
    }

    /// Creates a context pre-populated with a function's parameters.
    pub fn for_function(program: &'p Program, func: &Function) -> Self {
        let mut ctx = TypeCtx::new(program);
        for p in &func.params {
            ctx.bind(&p.name, p.ty.clone());
        }
        ctx
    }

    /// Binds a local variable (shadowing any previous binding).
    pub fn bind(&mut self, name: &str, ty: Type) {
        self.locals.push((name.to_string(), ty));
    }

    /// Returns a marker for the current scope depth.
    pub fn scope_mark(&self) -> usize {
        self.locals.len()
    }

    /// Pops bindings back to a previous marker.
    pub fn scope_reset(&mut self, mark: usize) {
        self.locals.truncate(mark);
    }

    /// Looks up the type of a name: locals, then globals, then functions.
    pub fn lookup(&self, name: &str) -> Option<Type> {
        if let Some((_, t)) = self.locals.iter().rev().find(|(n, _)| n == name) {
            return Some(t.clone());
        }
        if let Some(g) = self.program.global(name) {
            return Some(g.decl.ty.clone());
        }
        if let Some(f) = self.program.function(name) {
            return Some(Type::Func(Box::new(f.func_type())));
        }
        None
    }

    /// Computes the static type of an expression.
    pub fn type_of(&self, expr: &Expr) -> Result<Type> {
        match expr {
            Expr::Int(_) => Ok(Type::Int(IntKind::I32)),
            Expr::Str(_) => Ok(Type::Ptr(
                Box::new(Type::u8()),
                PtrAnnot {
                    nullterm: true,
                    ..PtrAnnot::single()
                },
            )),
            Expr::Null => Ok(Type::Ptr(Box::new(Type::Void), PtrAnnot::unknown())),
            Expr::Var(name) => self.lookup(name).ok_or_else(|| {
                CmirError::resolve(format!("undefined name `{name}`"), Span::synthetic())
            }),
            Expr::Unary(op, e) => {
                let t = self.type_of(e)?;
                Ok(match op {
                    UnOp::Not => Type::Int(IntKind::I32),
                    UnOp::Neg | UnOp::BitNot => t,
                })
            }
            Expr::Binary(op, a, b) => {
                let ta = self.type_of(a)?;
                let tb = self.type_of(b)?;
                if op.is_comparison() || op.is_logical() {
                    return Ok(Type::Int(IntKind::I32));
                }
                let ta_r = self.program.resolve_type(&ta).clone();
                let tb_r = self.program.resolve_type(&tb).clone();
                // Pointer arithmetic keeps the pointer type; ptr - ptr is an
                // integer.
                match (ta_r.is_ptr(), tb_r.is_ptr()) {
                    (true, true) if *op == BinOp::Sub => Ok(Type::Int(IntKind::I32)),
                    (true, _) => Ok(ta),
                    (_, true) => Ok(tb),
                    _ => {
                        // Usual arithmetic conversions, approximated by the
                        // wider operand.
                        let sa = int_rank(&ta_r);
                        let sb = int_rank(&tb_r);
                        Ok(if sa >= sb { ta } else { tb })
                    }
                }
            }
            Expr::Deref(e) => {
                let t = self.type_of(e)?;
                match self.program.resolve_type(&t) {
                    Type::Ptr(inner, _) => Ok((**inner).clone()),
                    Type::Array(inner, _) => Ok((**inner).clone()),
                    other => Err(CmirError::ty(
                        format!("cannot dereference non-pointer type `{other}`"),
                        Span::synthetic(),
                    )),
                }
            }
            Expr::AddrOf(e) => {
                let t = self.type_of(e)?;
                Ok(Type::Ptr(Box::new(t), PtrAnnot::single()))
            }
            Expr::Index(base, _) => {
                let t = self.type_of(base)?;
                match self.program.resolve_type(&t) {
                    Type::Ptr(inner, _) | Type::Array(inner, _) => Ok((**inner).clone()),
                    other => Err(CmirError::ty(
                        format!("cannot index non-pointer type `{other}`"),
                        Span::synthetic(),
                    )),
                }
            }
            Expr::Field(obj, field) => {
                let t = self.type_of(obj)?;
                self.field_type(&t, field)
            }
            Expr::Arrow(obj, field) => {
                let t = self.type_of(obj)?;
                match self.program.resolve_type(&t) {
                    Type::Ptr(inner, _) => {
                        let inner = (**inner).clone();
                        self.field_type(&inner, field)
                    }
                    other => Err(CmirError::ty(
                        format!("`->` applied to non-pointer type `{other}`"),
                        Span::synthetic(),
                    )),
                }
            }
            Expr::Cast(t, _) => Ok(t.clone()),
            Expr::Call(callee, args) => {
                let ft = self.callee_type(callee)?;
                if ft.params.len() != args.len() {
                    return Err(CmirError::ty(
                        format!(
                            "call passes {} arguments but callee expects {}",
                            args.len(),
                            ft.params.len()
                        ),
                        Span::synthetic(),
                    ));
                }
                for a in args {
                    self.type_of(a)?;
                }
                Ok(ft.ret)
            }
            Expr::SizeOf(_) => Ok(Type::Int(IntKind::U32)),
        }
    }

    /// Computes the type of a call's callee as a function type, following
    /// function pointers.
    pub fn callee_type(&self, callee: &Expr) -> Result<crate::types::FuncType> {
        let t = self.type_of(callee)?;
        match self.program.resolve_type(&t) {
            Type::Func(ft) => Ok((**ft).clone()),
            Type::Ptr(inner, _) => match self.program.resolve_type(inner) {
                Type::Func(ft) => Ok((**ft).clone()),
                other => Err(CmirError::ty(
                    format!("called object has non-function type `{other}`"),
                    Span::synthetic(),
                )),
            },
            other => Err(CmirError::ty(
                format!("called object has non-function type `{other}`"),
                Span::synthetic(),
            )),
        }
    }

    fn field_type(&self, obj_ty: &Type, field: &str) -> Result<Type> {
        match self.program.resolve_type(obj_ty) {
            Type::Struct(name) | Type::Union(name) => {
                let def = self.program.composite(name).ok_or_else(|| {
                    CmirError::resolve(format!("undefined composite `{name}`"), Span::synthetic())
                })?;
                def.field(field).map(|f| f.ty.clone()).ok_or_else(|| {
                    CmirError::ty(
                        format!("`{name}` has no field `{field}`"),
                        Span::synthetic(),
                    )
                })
            }
            other => Err(CmirError::ty(
                format!("field access on non-composite type `{other}`"),
                Span::synthetic(),
            )),
        }
    }

    /// Returns the composite (struct/union) name behind an expression's type,
    /// if any — used by Deputy's union checking and CCount's layout lookups.
    pub fn composite_name_of(&self, expr: &Expr) -> Option<String> {
        let t = self.type_of(expr).ok()?;
        match self.program.resolve_type(&t) {
            Type::Struct(n) | Type::Union(n) => Some(n.clone()),
            Type::Ptr(inner, _) => match self.program.resolve_type(inner) {
                Type::Struct(n) | Type::Union(n) => Some(n.clone()),
                _ => None,
            },
            _ => None,
        }
    }
}

fn int_rank(t: &Type) -> u64 {
    match t {
        Type::Int(k) => k.size(),
        Type::Bool => 1,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    const KERNEL_SNIPPET: &str = r#"
        struct sk_buff {
            len: u32;
            data: u8 * count(len);
            next: struct sk_buff *;
        }
        struct net_ops {
            xmit: fnptr(struct sk_buff *) -> i32;
        }
        global packet_count: u64 = 0;
        #[allocator]
        fn kmalloc(size: u32, flags: u32) -> void * { return null; }
        fn skb_push(skb: struct sk_buff *, n: u32) -> u8 * {
            skb->len = skb->len + n;
            return skb->data;
        }
        fn dispatch(ops: struct net_ops *, skb: struct sk_buff *) -> i32 {
            packet_count = packet_count + 1;
            return ops->xmit(skb);
        }
    "#;

    #[test]
    fn valid_program_passes() {
        let p = parse_program(KERNEL_SNIPPET).unwrap();
        let v = validate_program(&p);
        assert!(v.is_ok(), "unexpected errors: {:?}", v.errors);
    }

    #[test]
    fn undefined_variable_is_error() {
        let p = parse_program("fn f() -> i32 { return missing + 1; }").unwrap();
        let v = validate_program(&p);
        assert!(!v.is_ok());
        assert!(v.errors[0].message.contains("missing"));
    }

    #[test]
    fn undefined_struct_and_field_errors() {
        let p = parse_program("fn f(x: struct nothere *) -> i32 { return 0; }").unwrap();
        let v = validate_program(&p);
        assert!(!v.is_ok());

        let p2 = parse_program("struct a { x: u32; } fn f(p: struct a *) -> u32 { return p->y; }")
            .unwrap();
        let v2 = validate_program(&p2);
        assert!(v2.errors.iter().any(|e| e.message.contains("no field `y`")));
    }

    #[test]
    fn call_arity_checked() {
        let p = parse_program(
            "fn g(a: u32, b: u32) -> u32 { return a + b; } fn f() -> u32 { return g(1); }",
        )
        .unwrap();
        let v = validate_program(&p);
        assert!(v.errors.iter().any(|e| e.message.contains("arguments")));
    }

    #[test]
    fn break_outside_loop_is_error() {
        let p = parse_program("fn f() { break; }").unwrap();
        let v = validate_program(&p);
        assert!(!v.is_ok());
    }

    #[test]
    fn expression_types() {
        let p = parse_program(KERNEL_SNIPPET).unwrap();
        let f = p.function("skb_push").unwrap();
        let ctx = TypeCtx::for_function(&p, f);
        let t = ctx
            .type_of(&crate::parser::parse_expr("skb->data").unwrap())
            .unwrap();
        assert!(t.is_ptr());
        let t2 = ctx
            .type_of(&crate::parser::parse_expr("skb->data[3]").unwrap())
            .unwrap();
        assert_eq!(t2, Type::u8());
        let t3 = ctx
            .type_of(&crate::parser::parse_expr("&skb->len").unwrap())
            .unwrap();
        assert_eq!(t3.pointee(), Some(&Type::u32()));
    }

    #[test]
    fn function_pointer_call_types() {
        let p = parse_program(KERNEL_SNIPPET).unwrap();
        let f = p.function("dispatch").unwrap();
        let ctx = TypeCtx::for_function(&p, f);
        let e = crate::parser::parse_expr("ops->xmit(skb)").unwrap();
        assert_eq!(ctx.type_of(&e).unwrap(), Type::i32());
    }

    #[test]
    fn pointer_arithmetic_types() {
        let p = parse_program(KERNEL_SNIPPET).unwrap();
        let f = p.function("skb_push").unwrap();
        let ctx = TypeCtx::for_function(&p, f);
        let e = crate::parser::parse_expr("skb->data + n").unwrap();
        assert!(ctx.type_of(&e).unwrap().is_ptr());
    }

    #[test]
    fn duplicate_definitions_rejected() {
        let p = parse_program("fn f() { } fn f() { }").unwrap();
        let v = validate_program(&p);
        assert!(v
            .errors
            .iter()
            .any(|e| e.message.contains("more than once")));
    }
}
