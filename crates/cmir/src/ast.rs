//! Abstract syntax for KC programs.
//!
//! The AST is the common currency of the whole workspace: the parser and the
//! builder API produce it, the analyses (`ivy-analysis`, `ivy-deputy`,
//! `ivy-ccount`, `ivy-blockstop`) read and rewrite it, and the VM executes it.
//!
//! Two node kinds exist purely for the tools: [`Stmt::Check`] carries an
//! inserted run-time check (erased by `ivy-deputy::erase`), and
//! [`Stmt::DelayedFreeScope`] marks a CCount delayed-free region.

use crate::span::Span;
use crate::types::{BoundExpr, CompositeDef, Type};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
    /// Bitwise complement.
    BitNot,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// Addition (also pointer arithmetic when the left operand is a pointer).
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (traps on divide-by-zero in the VM).
    Div,
    /// Remainder.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift.
    Shl,
    /// Logical/arithmetic right shift (by signedness of the left operand).
    Shr,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less than.
    Lt,
    /// Less or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater or equal.
    Ge,
    /// Short-circuit logical and.
    LAnd,
    /// Short-circuit logical or.
    LOr,
}

impl BinOp {
    /// True for the comparison operators (result is 0/1).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// True for the short-circuit logical operators.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::LAnd | BinOp::LOr)
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// String literal (decays to a nullterm `u8` pointer into rodata).
    Str(String),
    /// The null pointer constant.
    Null,
    /// Reference to a variable (local, parameter, global, or function name).
    Var(String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Pointer dereference `*e`.
    Deref(Box<Expr>),
    /// Address-of `&e` (the operand must be an lvalue).
    AddrOf(Box<Expr>),
    /// Array/pointer indexing `e[i]`.
    Index(Box<Expr>, Box<Expr>),
    /// Struct field access `e.f`.
    Field(Box<Expr>, String),
    /// Pointer field access `e->f`.
    Arrow(Box<Expr>, String),
    /// Type cast `(T) e`.
    Cast(Type, Box<Expr>),
    /// Function call. The callee is an expression so calls through function
    /// pointers (`ops->read(...)`) are first-class; BlockStop's points-to
    /// analysis resolves them.
    Call(Box<Expr>, Vec<Expr>),
    /// `sizeof(T)`.
    SizeOf(Type),
}

// `add`/`sub`/`mul` are AST constructors, not arithmetic on `Expr` values;
// implementing `std::ops` here would be misleading.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// Integer literal helper.
    pub fn int(v: i64) -> Expr {
        Expr::Int(v)
    }

    /// Variable reference helper.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Direct call helper: `name(args...)`.
    pub fn call(name: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Call(Box::new(Expr::Var(name.into())), args)
    }

    /// Binary operation helper.
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Binary(op, Box::new(a), Box::new(b))
    }

    /// `a + b`.
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Add, a, b)
    }

    /// `a - b`.
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Sub, a, b)
    }

    /// `a * b`.
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Mul, a, b)
    }

    /// `a < b`.
    pub fn lt(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Lt, a, b)
    }

    /// `a == b`.
    pub fn eq(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Eq, a, b)
    }

    /// `a != b`.
    pub fn ne(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Ne, a, b)
    }

    /// `e[i]`.
    pub fn index(e: Expr, i: Expr) -> Expr {
        Expr::Index(Box::new(e), Box::new(i))
    }

    /// `e->f`.
    pub fn arrow(e: Expr, f: impl Into<String>) -> Expr {
        Expr::Arrow(Box::new(e), f.into())
    }

    /// `e.f`.
    pub fn field(e: Expr, f: impl Into<String>) -> Expr {
        Expr::Field(Box::new(e), f.into())
    }

    /// `*e`.
    pub fn deref(e: Expr) -> Expr {
        Expr::Deref(Box::new(e))
    }

    /// `&e`.
    pub fn addr_of(e: Expr) -> Expr {
        Expr::AddrOf(Box::new(e))
    }

    /// `(t) e`.
    pub fn cast(t: Type, e: Expr) -> Expr {
        Expr::Cast(t, Box::new(e))
    }

    /// True if the expression is a syntactic lvalue.
    pub fn is_lvalue(&self) -> bool {
        matches!(
            self,
            Expr::Var(_) | Expr::Deref(_) | Expr::Index(..) | Expr::Field(..) | Expr::Arrow(..)
        )
    }

    /// Converts this expression into a [`BoundExpr`] if it lies in the
    /// restricted annotation language (constants, variables, `+`, `-`, `*`).
    pub fn to_bound_expr(&self) -> Option<BoundExpr> {
        match self {
            Expr::Int(v) => Some(BoundExpr::Const(*v)),
            Expr::Var(v) => Some(BoundExpr::Var(v.clone())),
            Expr::Binary(BinOp::Add, a, b) => Some(BoundExpr::Add(
                Box::new(a.to_bound_expr()?),
                Box::new(b.to_bound_expr()?),
            )),
            Expr::Binary(BinOp::Sub, a, b) => Some(BoundExpr::Sub(
                Box::new(a.to_bound_expr()?),
                Box::new(b.to_bound_expr()?),
            )),
            Expr::Binary(BinOp::Mul, a, b) => Some(BoundExpr::Mul(
                Box::new(a.to_bound_expr()?),
                Box::new(b.to_bound_expr()?),
            )),
            _ => None,
        }
    }

    /// Collects every variable name read by this expression.
    pub fn vars_read(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Var(v) => {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
            Expr::Unary(_, e) | Expr::Deref(e) | Expr::AddrOf(e) | Expr::Cast(_, e) => {
                e.collect_vars(out)
            }
            Expr::Field(e, _) | Expr::Arrow(e, _) => e.collect_vars(out),
            Expr::Binary(_, a, b) | Expr::Index(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Call(callee, args) => {
                callee.collect_vars(out);
                for a in args {
                    a.collect_vars(out);
                }
            }
            Expr::Int(_) | Expr::Str(_) | Expr::Null | Expr::SizeOf(_) => {}
        }
    }

    /// Collects every direct callee name and every call made through a
    /// non-trivial callee expression (function pointer).
    pub fn calls(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        self.collect_calls(&mut out);
        out
    }

    fn collect_calls<'a>(&'a self, out: &mut Vec<&'a Expr>) {
        if let Expr::Call(callee, args) = self {
            out.push(self);
            callee.collect_calls(out);
            for a in args {
                a.collect_calls(out);
            }
            return;
        }
        match self {
            Expr::Unary(_, e) | Expr::Deref(e) | Expr::AddrOf(e) | Expr::Cast(_, e) => {
                e.collect_calls(out)
            }
            Expr::Field(e, _) | Expr::Arrow(e, _) => e.collect_calls(out),
            Expr::Binary(_, a, b) | Expr::Index(a, b) => {
                a.collect_calls(out);
                b.collect_calls(out);
            }
            _ => {}
        }
    }
}

/// A run-time check inserted by one of the analysis tools.
///
/// Checks are observationally pure except that a failed check traps (in the
/// paper: prints a warning / panics). The erasure pass removes them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Check {
    /// The pointer must not be null.
    NonNull(Expr),
    /// The access `ptr[index]` must be within `len` elements.
    ///
    /// `len` is the Deputy bound expression lowered into the local
    /// environment; when it is `None`, the VM validates against the extent of
    /// the underlying allocation (Deputy's `auto` bounds).
    PtrBounds {
        /// The pointer being accessed.
        ptr: Expr,
        /// The element index of the access.
        index: Expr,
        /// Static bound, when one is available from annotations.
        len: Option<Expr>,
    },
    /// The union arm `field` of `obj` may only be read when its `when` tag
    /// matches.
    UnionTag {
        /// The union-typed lvalue.
        obj: Expr,
        /// The arm being accessed.
        field: String,
        /// The tag field name.
        tag: String,
        /// The tag value that makes the arm valid.
        value: i64,
    },
    /// The null-terminated sequence starting at the pointer must contain a
    /// terminator within its bounds before being traversed.
    NullTerm(Expr),
    /// BlockStop runtime assertion: interrupts must be enabled here.
    ///
    /// Matches the paper's "special function that panics if interrupts are
    /// disabled", inserted to silence false positives.
    AssertMayBlock {
        /// The function the assertion protects (e.g. `read_chan`).
        site: String,
    },
    /// CCount free-safety check: the refcount of the object must be exactly
    /// the references held by the freer.
    RcFreeOk(Expr),
}

impl Check {
    /// A short stable mnemonic for reports and cost accounting.
    pub fn kind(&self) -> &'static str {
        match self {
            Check::NonNull(_) => "nonnull",
            Check::PtrBounds { .. } => "bounds",
            Check::UnionTag { .. } => "union_tag",
            Check::NullTerm(_) => "nullterm",
            Check::AssertMayBlock { .. } => "assert_may_block",
            Check::RcFreeOk(_) => "rc_free_ok",
        }
    }
}

/// A declared variable (parameter, local, or global).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VarDecl {
    /// Variable name.
    pub name: String,
    /// Declared type (with annotations, if any).
    pub ty: Type,
    /// Source span of the declaration.
    pub span: Span,
}

impl VarDecl {
    /// Creates a declaration with a synthetic span.
    pub fn new(name: impl Into<String>, ty: Type) -> Self {
        VarDecl {
            name: name.into(),
            ty,
            span: Span::synthetic(),
        }
    }
}

/// A block: a sequence of statements.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
}

impl Block {
    /// Creates a block from statements.
    pub fn new(stmts: Vec<Stmt>) -> Self {
        Block { stmts }
    }

    /// An empty block.
    pub fn empty() -> Self {
        Block { stmts: Vec::new() }
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// Evaluate an expression for its side effects (usually a call).
    Expr(Expr, Span),
    /// `lhs = rhs;` — the only mutation primitive; CCount instruments these.
    Assign(Expr, Expr, Span),
    /// Local variable declaration with optional initializer.
    Local(VarDecl, Option<Expr>),
    /// `if (cond) { then } else { els }`.
    If(Expr, Block, Option<Block>, Span),
    /// `while (cond) { body }`.
    While(Expr, Block, Span),
    /// `return e;` / `return;`.
    Return(Option<Expr>, Span),
    /// `break;`
    Break(Span),
    /// `continue;`
    Continue(Span),
    /// A nested block scope.
    Block(Block),
    /// A run-time check inserted by a tool (erasable).
    Check(Check, Span),
    /// A CCount delayed-free scope: frees inside are deferred (and their
    /// refcount checks re-run) at the end of the scope.
    DelayedFreeScope(Block, Span),
}

impl Stmt {
    /// Expression-statement helper.
    pub fn expr(e: Expr) -> Stmt {
        Stmt::Expr(e, Span::synthetic())
    }

    /// Assignment helper.
    pub fn assign(lhs: Expr, rhs: Expr) -> Stmt {
        Stmt::Assign(lhs, rhs, Span::synthetic())
    }

    /// Local-declaration helper.
    pub fn local(name: impl Into<String>, ty: Type, init: Option<Expr>) -> Stmt {
        Stmt::Local(VarDecl::new(name, ty), init)
    }

    /// `if` helper without an else branch.
    pub fn if_then(cond: Expr, then: Vec<Stmt>) -> Stmt {
        Stmt::If(cond, Block::new(then), None, Span::synthetic())
    }

    /// `if`/`else` helper.
    pub fn if_else(cond: Expr, then: Vec<Stmt>, els: Vec<Stmt>) -> Stmt {
        Stmt::If(
            cond,
            Block::new(then),
            Some(Block::new(els)),
            Span::synthetic(),
        )
    }

    /// `while` helper.
    pub fn while_loop(cond: Expr, body: Vec<Stmt>) -> Stmt {
        Stmt::While(cond, Block::new(body), Span::synthetic())
    }

    /// `return e;` helper.
    pub fn ret(e: Expr) -> Stmt {
        Stmt::Return(Some(e), Span::synthetic())
    }

    /// `return;` helper.
    pub fn ret_void() -> Stmt {
        Stmt::Return(None, Span::synthetic())
    }

    /// The primary span of the statement, if it has one.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Expr(_, s)
            | Stmt::Assign(_, _, s)
            | Stmt::If(_, _, _, s)
            | Stmt::While(_, _, s)
            | Stmt::Return(_, s)
            | Stmt::Break(s)
            | Stmt::Continue(s)
            | Stmt::Check(_, s)
            | Stmt::DelayedFreeScope(_, s) => *s,
            Stmt::Local(d, _) => d.span,
            Stmt::Block(_) => Span::synthetic(),
        }
    }
}

/// Function-level attributes.
///
/// These correspond to the paper's seed annotations (`blocking`, allocator
/// GFP behaviour, interrupt handlers) plus the escape hatch (`trusted`) and
/// the soundness caveat for inline assembly.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct FuncAttrs {
    /// The function may block (sleep). Seed annotation for BlockStop.
    pub blocking: bool,
    /// The function may block only when the named flag parameter has the
    /// `GFP_WAIT` bit set (the paper's `kmalloc` special case).
    pub blocking_if_flag: Option<String>,
    /// The function is an interrupt handler (runs with interrupts disabled).
    pub interrupt_handler: bool,
    /// The whole function body is trusted (excluded from Deputy checking but
    /// counted in the trusted-lines statistic).
    pub trusted: bool,
    /// The function contains inline assembly; call edges out of it are not
    /// visible to the call-graph construction (soundness caveat from §2.3).
    pub inline_asm: bool,
    /// The function is an allocator (returns fresh memory); used by CCount
    /// and by Deputy's bounds reasoning for allocation sites.
    pub allocator: bool,
    /// The function frees its pointer argument; used by CCount.
    pub deallocator: bool,
    /// Names of spinlocks this function acquires (for the lockcheck
    /// extension analysis).
    pub acquires: Vec<String>,
    /// Names of spinlocks this function releases.
    pub releases: Vec<String>,
    /// Set of error codes this function may return (for errcheck).
    pub error_codes: Vec<i64>,
    /// The function disables interrupts for the duration of its body
    /// (e.g. `spin_lock_irqsave` wrappers).
    pub disables_irq: bool,
}

impl FuncAttrs {
    /// True if any attribute is set (counts as an annotated declaration).
    pub fn is_annotated(&self) -> bool {
        self.blocking
            || self.blocking_if_flag.is_some()
            || self.interrupt_handler
            || self.trusted
            || self.inline_asm
            || self.allocator
            || self.deallocator
            || !self.acquires.is_empty()
            || !self.releases.is_empty()
            || !self.error_codes.is_empty()
            || self.disables_irq
    }
}

/// A function definition or declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Function {
    /// Function name (globally unique).
    pub name: String,
    /// Parameters in order.
    pub params: Vec<VarDecl>,
    /// Return type.
    pub ret: Type,
    /// Body; `None` for extern declarations and VM builtins.
    pub body: Option<Block>,
    /// Function attributes.
    pub attrs: FuncAttrs,
    /// The subsystem ("kernel", "mm", "fs/ext2", "net/ipv4", "drivers/...")
    /// this function belongs to; used by per-subsystem statistics.
    pub subsystem: String,
    /// Source span of the whole definition.
    pub span: Span,
}

impl Function {
    /// Creates a function definition with a body.
    pub fn new(name: impl Into<String>, params: Vec<VarDecl>, ret: Type, body: Vec<Stmt>) -> Self {
        Function {
            name: name.into(),
            params,
            ret,
            body: Some(Block::new(body)),
            attrs: FuncAttrs::default(),
            subsystem: "kernel".to_string(),
            span: Span::synthetic(),
        }
    }

    /// Creates an extern declaration (no body).
    pub fn extern_decl(name: impl Into<String>, params: Vec<VarDecl>, ret: Type) -> Self {
        Function {
            name: name.into(),
            params,
            ret,
            body: None,
            attrs: FuncAttrs::default(),
            subsystem: "extern".to_string(),
            span: Span::synthetic(),
        }
    }

    /// The function's type as a [`FuncType`] (for function-pointer matching).
    pub fn func_type(&self) -> crate::types::FuncType {
        crate::types::FuncType {
            params: self.params.iter().map(|p| p.ty.clone()).collect(),
            ret: self.ret.clone(),
        }
    }

    /// True if the declaration or any parameter type carries annotations.
    pub fn is_annotated(&self) -> bool {
        self.attrs.is_annotated()
            || self.ret.is_annotated()
            || self.params.iter().any(|p| p.ty.is_annotated())
    }
}

/// A global variable definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GlobalDef {
    /// Declaration (name and type).
    pub decl: VarDecl,
    /// Optional constant initializer.
    pub init: Option<Expr>,
}

impl GlobalDef {
    /// Creates a global definition.
    pub fn new(name: impl Into<String>, ty: Type, init: Option<Expr>) -> Self {
        GlobalDef {
            decl: VarDecl::new(name, ty),
            init,
        }
    }
}

/// A complete KC translation unit (whole program, in the paper's terms the
/// whole stripped-down kernel).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Program {
    /// Struct and union definitions.
    pub composites: Vec<CompositeDef>,
    /// Typedefs: name → underlying type.
    pub typedefs: Vec<(String, Type)>,
    /// Global variables.
    pub globals: Vec<GlobalDef>,
    /// Functions (definitions and extern declarations).
    pub functions: Vec<Function>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Looks up a function by name, mutably.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions.iter_mut().find(|f| f.name == name)
    }

    /// Looks up a struct or union definition by name.
    pub fn composite(&self, name: &str) -> Option<&CompositeDef> {
        self.composites.iter().find(|c| c.name == name)
    }

    /// Looks up a global by name.
    pub fn global(&self, name: &str) -> Option<&GlobalDef> {
        self.globals.iter().find(|g| g.decl.name == name)
    }

    /// Resolves typedefs until a non-`Named` type is reached.
    ///
    /// Unknown names resolve to themselves so callers can report the error at
    /// a better location.
    pub fn resolve_type<'a>(&'a self, ty: &'a Type) -> &'a Type {
        let mut t = ty;
        let mut depth = 0;
        while let Type::Named(n) = t {
            match self.typedefs.iter().find(|(name, _)| name == n) {
                Some((_, under)) if depth < 32 => {
                    t = under;
                    depth += 1;
                }
                _ => break,
            }
        }
        t
    }

    /// Builds a map from function name to index for fast lookups.
    pub fn function_index(&self) -> HashMap<String, usize> {
        self.functions
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), i))
            .collect()
    }

    /// Names of all functions that have bodies.
    pub fn defined_functions(&self) -> impl Iterator<Item = &Function> {
        self.functions.iter().filter(|f| f.body.is_some())
    }

    /// Adds a function, replacing any existing one with the same name.
    pub fn add_function(&mut self, f: Function) {
        if let Some(existing) = self.functions.iter_mut().find(|g| g.name == f.name) {
            *existing = f;
        } else {
            self.functions.push(f);
        }
    }

    /// Adds a composite definition, replacing any existing one with the same name.
    pub fn add_composite(&mut self, c: CompositeDef) {
        if let Some(existing) = self.composites.iter_mut().find(|g| g.name == c.name) {
            *existing = c;
        } else {
            self.composites.push(c);
        }
    }

    /// Merges another program into this one (later definitions win).
    ///
    /// This models the paper's file-at-a-time incremental conversion: each
    /// converted "file" (module) can be re-linked into the kernel image.
    pub fn link(&mut self, other: Program) {
        for c in other.composites {
            self.add_composite(c);
        }
        for (name, ty) in other.typedefs {
            if let Some(existing) = self.typedefs.iter_mut().find(|(n, _)| *n == name) {
                existing.1 = ty;
            } else {
                self.typedefs.push((name, ty));
            }
        }
        for g in other.globals {
            if let Some(existing) = self.globals.iter_mut().find(|e| e.decl.name == g.decl.name) {
                *existing = g;
            } else {
                self.globals.push(g);
            }
        }
        for f in other.functions {
            self.add_function(f);
        }
    }

    /// Returns a pointer-annotation-free copy of the whole program, with all
    /// inserted checks removed (full erasure, per the paper's erasure
    /// semantics). Function attributes are preserved: they are declarative
    /// and already ignored by a traditional build.
    pub fn erased(&self) -> Program {
        crate::visit::erase_program(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::IntKind;

    fn sample_fn() -> Function {
        Function::new(
            "memcpy_kc",
            vec![
                VarDecl::new("dst", Type::ptr_count(Type::u8(), BoundExpr::var("n"))),
                VarDecl::new("src", Type::ptr_count(Type::u8(), BoundExpr::var("n"))),
                VarDecl::new("n", Type::u32()),
            ],
            Type::Void,
            vec![
                Stmt::local("i", Type::u32(), Some(Expr::int(0))),
                Stmt::while_loop(
                    Expr::lt(Expr::var("i"), Expr::var("n")),
                    vec![
                        Stmt::assign(
                            Expr::index(Expr::var("dst"), Expr::var("i")),
                            Expr::index(Expr::var("src"), Expr::var("i")),
                        ),
                        Stmt::assign(Expr::var("i"), Expr::add(Expr::var("i"), Expr::int(1))),
                    ],
                ),
                Stmt::ret_void(),
            ],
        )
    }

    #[test]
    fn function_annotation_detection() {
        let f = sample_fn();
        assert!(f.is_annotated());
        let mut plain = f.clone();
        for p in &mut plain.params {
            p.ty = p.ty.erased();
        }
        assert!(!plain.is_annotated());
    }

    #[test]
    fn expr_vars_read() {
        let e = Expr::add(
            Expr::var("a"),
            Expr::index(Expr::var("buf"), Expr::var("a")),
        );
        assert_eq!(e.vars_read(), vec!["a".to_string(), "buf".to_string()]);
    }

    #[test]
    fn expr_calls_nested() {
        let e = Expr::call("outer", vec![Expr::call("inner", vec![Expr::int(1)])]);
        let calls = e.calls();
        assert_eq!(calls.len(), 2);
    }

    #[test]
    fn to_bound_expr_restricted() {
        let ok = Expr::add(Expr::var("n"), Expr::int(1));
        assert!(ok.to_bound_expr().is_some());
        let not_ok = Expr::call("f", vec![]);
        assert!(not_ok.to_bound_expr().is_none());
    }

    #[test]
    fn program_link_replaces_and_adds() {
        let mut p = Program::new();
        p.add_function(Function::extern_decl(
            "kmalloc",
            vec![],
            Type::ptr(Type::Void),
        ));
        let mut q = Program::new();
        let mut km = Function::new(
            "kmalloc",
            vec![],
            Type::ptr(Type::Void),
            vec![Stmt::ret(Expr::Null)],
        );
        km.attrs.allocator = true;
        q.add_function(km);
        q.add_function(Function::extern_decl("kfree", vec![], Type::Void));
        p.link(q);
        assert_eq!(p.functions.len(), 2);
        assert!(p.function("kmalloc").unwrap().body.is_some());
        assert!(p.function("kmalloc").unwrap().attrs.allocator);
    }

    #[test]
    fn resolve_typedef_chain() {
        let mut p = Program::new();
        p.typedefs.push(("size_t".into(), Type::Int(IntKind::U32)));
        p.typedefs
            .push(("len_t".into(), Type::Named("size_t".into())));
        let t = Type::Named("len_t".into());
        assert_eq!(p.resolve_type(&t), &Type::Int(IntKind::U32));
        let unknown = Type::Named("missing".into());
        assert_eq!(p.resolve_type(&unknown), &unknown);
    }

    #[test]
    fn check_kinds_are_stable() {
        assert_eq!(Check::NonNull(Expr::var("p")).kind(), "nonnull");
        assert_eq!(
            Check::PtrBounds {
                ptr: Expr::var("p"),
                index: Expr::int(0),
                len: None
            }
            .kind(),
            "bounds"
        );
        assert_eq!(
            Check::AssertMayBlock {
                site: "read_chan".into()
            }
            .kind(),
            "assert_may_block"
        );
    }

    #[test]
    fn func_attrs_annotated() {
        let mut a = FuncAttrs::default();
        assert!(!a.is_annotated());
        a.blocking = true;
        assert!(a.is_annotated());
    }
}
