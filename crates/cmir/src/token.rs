//! Tokens produced by the KC lexer.

use crate::span::Span;
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Where the token appears in the source.
    pub span: Span,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are distinguished by the parser so
    /// annotation names like `count` can still be used as identifiers).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// String literal (contents, unescaped).
    Str(String),

    // Punctuation.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `->`
    Arrow,
    /// `=>` (unused today, reserved)
    FatArrow,
    /// `#`
    Hash,

    // Operators.
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `!`
    Bang,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Returns the identifier text if this token is an identifier.
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Int(v) => write!(f, "integer `{v}`"),
            TokenKind::Str(_) => write!(f, "string literal"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::Dot => write!(f, "`.`"),
            TokenKind::Arrow => write!(f, "`->`"),
            TokenKind::FatArrow => write!(f, "`=>`"),
            TokenKind::Hash => write!(f, "`#`"),
            TokenKind::Assign => write!(f, "`=`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Percent => write!(f, "`%`"),
            TokenKind::Amp => write!(f, "`&`"),
            TokenKind::Pipe => write!(f, "`|`"),
            TokenKind::Caret => write!(f, "`^`"),
            TokenKind::Tilde => write!(f, "`~`"),
            TokenKind::Bang => write!(f, "`!`"),
            TokenKind::Shl => write!(f, "`<<`"),
            TokenKind::Shr => write!(f, "`>>`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Le => write!(f, "`<=`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Ge => write!(f, "`>=`"),
            TokenKind::EqEq => write!(f, "`==`"),
            TokenKind::NotEq => write!(f, "`!=`"),
            TokenKind::AndAnd => write!(f, "`&&`"),
            TokenKind::OrOr => write!(f, "`||`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}
