//! AST traversal helpers: read-only walkers, in-place mutators, and the
//! erasure transformation.
//!
//! The analysis tools rewrite programs by mapping statements; the helpers
//! here keep that boilerplate in one place so the tool passes stay focused on
//! their actual logic.

use crate::ast::{Block, Check, Expr, Function, Program, Stmt};

/// Calls `f` on every expression in the statement, including nested ones,
/// in evaluation order.
pub fn walk_stmt_exprs<'a>(stmt: &'a Stmt, f: &mut dyn FnMut(&'a Expr)) {
    match stmt {
        Stmt::Expr(e, _) => walk_expr(e, f),
        Stmt::Assign(lhs, rhs, _) => {
            walk_expr(lhs, f);
            walk_expr(rhs, f);
        }
        Stmt::Local(_, Some(init)) => walk_expr(init, f),
        Stmt::Local(_, None) => {}
        Stmt::If(cond, then, els, _) => {
            walk_expr(cond, f);
            walk_block_exprs(then, f);
            if let Some(e) = els {
                walk_block_exprs(e, f);
            }
        }
        Stmt::While(cond, body, _) => {
            walk_expr(cond, f);
            walk_block_exprs(body, f);
        }
        Stmt::Return(Some(e), _) => walk_expr(e, f),
        Stmt::Return(None, _) | Stmt::Break(_) | Stmt::Continue(_) => {}
        Stmt::Block(b) => walk_block_exprs(b, f),
        Stmt::Check(c, _) => walk_check_exprs(c, f),
        Stmt::DelayedFreeScope(b, _) => walk_block_exprs(b, f),
    }
}

/// Calls `f` on every expression in a block.
pub fn walk_block_exprs<'a>(block: &'a Block, f: &mut dyn FnMut(&'a Expr)) {
    for s in &block.stmts {
        walk_stmt_exprs(s, f);
    }
}

/// Calls `f` on the expressions inside a check.
pub fn walk_check_exprs<'a>(check: &'a Check, f: &mut dyn FnMut(&'a Expr)) {
    match check {
        Check::NonNull(e) | Check::NullTerm(e) | Check::RcFreeOk(e) => walk_expr(e, f),
        Check::PtrBounds { ptr, index, len } => {
            walk_expr(ptr, f);
            walk_expr(index, f);
            if let Some(l) = len {
                walk_expr(l, f);
            }
        }
        Check::UnionTag { obj, .. } => walk_expr(obj, f),
        Check::AssertMayBlock { .. } => {}
    }
}

/// Calls `f` on `expr` and then on every sub-expression.
pub fn walk_expr<'a>(expr: &'a Expr, f: &mut dyn FnMut(&'a Expr)) {
    f(expr);
    match expr {
        Expr::Unary(_, e) | Expr::Deref(e) | Expr::AddrOf(e) | Expr::Cast(_, e) => walk_expr(e, f),
        Expr::Field(e, _) | Expr::Arrow(e, _) => walk_expr(e, f),
        Expr::Binary(_, a, b) | Expr::Index(a, b) => {
            walk_expr(a, f);
            walk_expr(b, f);
        }
        Expr::Call(callee, args) => {
            walk_expr(callee, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::Int(_) | Expr::Str(_) | Expr::Null | Expr::Var(_) | Expr::SizeOf(_) => {}
    }
}

/// Calls `f` on every statement in the function body (pre-order), including
/// statements nested inside `if`/`while`/blocks.
pub fn walk_fn_stmts<'a>(func: &'a Function, f: &mut dyn FnMut(&'a Stmt)) {
    if let Some(body) = &func.body {
        walk_block_stmts(body, f);
    }
}

/// Calls `f` on every statement in a block (pre-order).
pub fn walk_block_stmts<'a>(block: &'a Block, f: &mut dyn FnMut(&'a Stmt)) {
    for s in &block.stmts {
        f(s);
        match s {
            Stmt::If(_, then, els, _) => {
                walk_block_stmts(then, f);
                if let Some(e) = els {
                    walk_block_stmts(e, f);
                }
            }
            Stmt::While(_, body, _) => walk_block_stmts(body, f),
            Stmt::Block(b) | Stmt::DelayedFreeScope(b, _) => walk_block_stmts(b, f),
            _ => {}
        }
    }
}

/// Rewrites every statement of a block with `f`, bottom-up.
///
/// `f` receives each (already recursively rewritten) statement and returns
/// the list of statements that replace it — so a pass can delete a statement
/// (return `vec![]`), keep it (`vec![s]`), or expand it into an
/// instrumentation sequence.
pub fn map_block(block: &Block, f: &mut dyn FnMut(Stmt) -> Vec<Stmt>) -> Block {
    let mut out = Vec::with_capacity(block.stmts.len());
    for s in &block.stmts {
        let rewritten = match s {
            Stmt::If(c, then, els, sp) => Stmt::If(
                c.clone(),
                map_block(then, f),
                els.as_ref().map(|b| map_block(b, f)),
                *sp,
            ),
            Stmt::While(c, body, sp) => Stmt::While(c.clone(), map_block(body, f), *sp),
            Stmt::Block(b) => Stmt::Block(map_block(b, f)),
            Stmt::DelayedFreeScope(b, sp) => Stmt::DelayedFreeScope(map_block(b, f), *sp),
            other => other.clone(),
        };
        out.extend(f(rewritten));
    }
    Block::new(out)
}

/// Rewrites every statement of a function body with `f` (see [`map_block`]).
pub fn map_fn_body(func: &Function, f: &mut dyn FnMut(Stmt) -> Vec<Stmt>) -> Function {
    let mut out = func.clone();
    if let Some(body) = &func.body {
        out.body = Some(map_block(body, f));
    }
    out
}

/// Rewrites every expression of a statement with `f`, bottom-up.
pub fn map_stmt_exprs(stmt: &Stmt, f: &mut dyn FnMut(Expr) -> Expr) -> Stmt {
    match stmt {
        Stmt::Expr(e, sp) => Stmt::Expr(map_expr(e, f), *sp),
        Stmt::Assign(l, r, sp) => Stmt::Assign(map_expr(l, f), map_expr(r, f), *sp),
        Stmt::Local(d, init) => Stmt::Local(d.clone(), init.as_ref().map(|e| map_expr(e, f))),
        Stmt::If(c, then, els, sp) => Stmt::If(
            map_expr(c, f),
            map_block_exprs(then, f),
            els.as_ref().map(|b| map_block_exprs(b, f)),
            *sp,
        ),
        Stmt::While(c, b, sp) => Stmt::While(map_expr(c, f), map_block_exprs(b, f), *sp),
        Stmt::Return(e, sp) => Stmt::Return(e.as_ref().map(|e| map_expr(e, f)), *sp),
        Stmt::Break(sp) => Stmt::Break(*sp),
        Stmt::Continue(sp) => Stmt::Continue(*sp),
        Stmt::Block(b) => Stmt::Block(map_block_exprs(b, f)),
        Stmt::Check(c, sp) => Stmt::Check(map_check_exprs(c, f), *sp),
        Stmt::DelayedFreeScope(b, sp) => Stmt::DelayedFreeScope(map_block_exprs(b, f), *sp),
    }
}

/// Rewrites every expression in a block.
pub fn map_block_exprs(block: &Block, f: &mut dyn FnMut(Expr) -> Expr) -> Block {
    Block::new(block.stmts.iter().map(|s| map_stmt_exprs(s, f)).collect())
}

/// Rewrites the expressions inside a check.
pub fn map_check_exprs(check: &Check, f: &mut dyn FnMut(Expr) -> Expr) -> Check {
    match check {
        Check::NonNull(e) => Check::NonNull(map_expr(e, f)),
        Check::NullTerm(e) => Check::NullTerm(map_expr(e, f)),
        Check::RcFreeOk(e) => Check::RcFreeOk(map_expr(e, f)),
        Check::PtrBounds { ptr, index, len } => Check::PtrBounds {
            ptr: map_expr(ptr, f),
            index: map_expr(index, f),
            len: len.as_ref().map(|l| map_expr(l, f)),
        },
        Check::UnionTag {
            obj,
            field,
            tag,
            value,
        } => Check::UnionTag {
            obj: map_expr(obj, f),
            field: field.clone(),
            tag: tag.clone(),
            value: *value,
        },
        Check::AssertMayBlock { site } => Check::AssertMayBlock { site: site.clone() },
    }
}

/// Rewrites an expression bottom-up: children first, then `f` on the rebuilt
/// node.
pub fn map_expr(expr: &Expr, f: &mut dyn FnMut(Expr) -> Expr) -> Expr {
    let rebuilt = match expr {
        Expr::Unary(op, e) => Expr::Unary(*op, Box::new(map_expr(e, f))),
        Expr::Binary(op, a, b) => {
            Expr::Binary(*op, Box::new(map_expr(a, f)), Box::new(map_expr(b, f)))
        }
        Expr::Deref(e) => Expr::Deref(Box::new(map_expr(e, f))),
        Expr::AddrOf(e) => Expr::AddrOf(Box::new(map_expr(e, f))),
        Expr::Index(a, b) => Expr::Index(Box::new(map_expr(a, f)), Box::new(map_expr(b, f))),
        Expr::Field(e, n) => Expr::Field(Box::new(map_expr(e, f)), n.clone()),
        Expr::Arrow(e, n) => Expr::Arrow(Box::new(map_expr(e, f)), n.clone()),
        Expr::Cast(t, e) => Expr::Cast(t.clone(), Box::new(map_expr(e, f))),
        Expr::Call(callee, args) => Expr::Call(
            Box::new(map_expr(callee, f)),
            args.iter().map(|a| map_expr(a, f)).collect(),
        ),
        other => other.clone(),
    };
    f(rebuilt)
}

/// Produces a fully erased copy of a program: all pointer annotations become
/// [`crate::types::Bounds::Unknown`], all inserted [`Stmt::Check`]s are
/// removed, and delayed-free scopes become ordinary blocks.
pub fn erase_program(program: &Program) -> Program {
    let mut out = program.clone();
    for c in &mut out.composites {
        for field in &mut c.fields {
            field.ty = field.ty.erased();
            field.when = None;
        }
    }
    for (_, ty) in &mut out.typedefs {
        *ty = ty.erased();
    }
    for g in &mut out.globals {
        g.decl.ty = g.decl.ty.erased();
    }
    out.functions = out
        .functions
        .iter()
        .map(|func| {
            let mut f2 = map_fn_body(func, &mut |s| match s {
                Stmt::Check(..) => vec![],
                Stmt::DelayedFreeScope(b, _) => vec![Stmt::Block(b)],
                other => vec![other],
            });
            f2.ret = f2.ret.erased();
            for p in &mut f2.params {
                p.ty = p.ty.erased();
            }
            if let Some(body) = &f2.body {
                f2.body = Some(map_block_exprs(body, &mut |e| match e {
                    Expr::Cast(t, inner) => Expr::Cast(t.erased(), inner),
                    other => other,
                }));
                // Erase types on local declarations too.
                f2.body = Some(map_block(f2.body.as_ref().unwrap(), &mut |s| match s {
                    Stmt::Local(mut d, init) => {
                        d.ty = d.ty.erased();
                        vec![Stmt::Local(d, init)]
                    }
                    other => vec![other],
                }));
            }
            f2
        })
        .collect();
    out
}

/// Counts statements in a function body (a proxy for "lines of code" used by
/// the burden statistics when spans are synthetic).
pub fn count_stmts(func: &Function) -> usize {
    let mut n = 0;
    walk_fn_stmts(func, &mut |_| n += 1);
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Expr, Function, Stmt, VarDecl};
    use crate::types::{BoundExpr, Type};

    fn checked_fn() -> Function {
        Function::new(
            "f",
            vec![
                VarDecl::new("p", Type::ptr_count(Type::u8(), BoundExpr::var("n"))),
                VarDecl::new("n", Type::u32()),
            ],
            Type::Void,
            vec![
                Stmt::Check(
                    Check::PtrBounds {
                        ptr: Expr::var("p"),
                        index: Expr::int(0),
                        len: None,
                    },
                    crate::span::Span::synthetic(),
                ),
                Stmt::assign(Expr::index(Expr::var("p"), Expr::int(0)), Expr::int(1)),
                Stmt::DelayedFreeScope(
                    Block::new(vec![Stmt::expr(Expr::call("kfree", vec![Expr::var("p")]))]),
                    crate::span::Span::synthetic(),
                ),
            ],
        )
    }

    #[test]
    fn erase_removes_checks_and_annotations() {
        let mut p = Program::new();
        p.add_function(checked_fn());
        let e = erase_program(&p);
        let f = e.function("f").unwrap();
        assert!(!f.is_annotated());
        let mut has_check = false;
        let mut has_dfs = false;
        walk_fn_stmts(f, &mut |s| match s {
            Stmt::Check(..) => has_check = true,
            Stmt::DelayedFreeScope(..) => has_dfs = true,
            _ => {}
        });
        assert!(!has_check);
        assert!(!has_dfs);
        // The free call inside the delayed scope must survive as a plain block.
        let mut has_free = false;
        walk_fn_stmts(f, &mut |s| {
            walk_stmt_exprs(s, &mut |e| {
                if let Expr::Call(callee, _) = e {
                    if matches!(&**callee, Expr::Var(n) if n == "kfree") {
                        has_free = true;
                    }
                }
            });
        });
        assert!(has_free);
    }

    #[test]
    fn map_block_can_delete_and_expand() {
        let b = Block::new(vec![
            Stmt::expr(Expr::call("a", vec![])),
            Stmt::expr(Expr::call("b", vec![])),
        ]);
        let out = map_block(&b, &mut |s| {
            if let Stmt::Expr(Expr::Call(callee, _), _) = &s {
                if matches!(&**callee, Expr::Var(n) if n == "a") {
                    return vec![];
                }
            }
            vec![s.clone(), s]
        });
        assert_eq!(out.stmts.len(), 2);
    }

    #[test]
    fn map_expr_bottom_up_rewrites() {
        let e = Expr::add(Expr::int(1), Expr::int(2));
        let out = map_expr(&e, &mut |e| match e {
            Expr::Int(v) => Expr::Int(v * 10),
            other => other,
        });
        assert_eq!(out, Expr::add(Expr::int(10), Expr::int(20)));
    }

    #[test]
    fn walk_counts_statements() {
        let f = checked_fn();
        assert_eq!(count_stmts(&f), 4);
    }
}
