//! Pretty printer for KC programs.
//!
//! The output is valid KC surface syntax: `parse_program(pretty(p))`
//! reproduces the same program (up to source spans). The corpus generator
//! uses this to materialise the synthetic kernel as readable source files,
//! and the round-trip property tests use it to exercise the parser.

use crate::ast::{BinOp, Block, Check, Expr, Function, Program, Stmt, UnOp};
use crate::types::{Bounds, CompositeDef, PtrAnnot, Type};
use std::fmt::Write as _;

/// Pretty-prints a whole program.
pub fn pretty_program(p: &Program) -> String {
    let mut out = String::new();
    for (name, ty) in &p.typedefs {
        let _ = writeln!(out, "typedef {name} = {};", type_str(ty));
    }
    if !p.typedefs.is_empty() {
        out.push('\n');
    }
    for c in &p.composites {
        out.push_str(&pretty_composite(c));
        out.push('\n');
    }
    for g in &p.globals {
        match &g.init {
            Some(e) => {
                let _ = writeln!(
                    out,
                    "global {}: {} = {};",
                    g.decl.name,
                    type_str(&g.decl.ty),
                    expr_str(e)
                );
            }
            None => {
                let _ = writeln!(out, "global {}: {};", g.decl.name, type_str(&g.decl.ty));
            }
        }
    }
    if !p.globals.is_empty() {
        out.push('\n');
    }
    for f in &p.functions {
        out.push_str(&pretty_function(f));
        out.push('\n');
    }
    out
}

/// Pretty-prints a struct or union definition.
pub fn pretty_composite(c: &CompositeDef) -> String {
    let mut out = String::new();
    let kw = if c.is_union { "union" } else { "struct" };
    let _ = writeln!(out, "{kw} {} {{", c.name);
    for f in &c.fields {
        let when = match &f.when {
            Some((tag, v)) => format!(" when({tag} == {v})"),
            None => String::new(),
        };
        let _ = writeln!(out, "    {}: {}{};", f.name, type_str(&f.ty), when);
    }
    out.push_str("}\n");
    out
}

/// Pretty-prints a function definition or declaration.
pub fn pretty_function(f: &Function) -> String {
    let mut out = String::new();
    let a = &f.attrs;
    if a.blocking {
        out.push_str("#[blocking]\n");
    }
    if let Some(flag) = &a.blocking_if_flag {
        let _ = writeln!(out, "#[blocking_if({flag})]");
    }
    if a.interrupt_handler {
        out.push_str("#[irq_handler]\n");
    }
    if a.trusted {
        out.push_str("#[trusted]\n");
    }
    if a.inline_asm {
        out.push_str("#[inline_asm]\n");
    }
    if a.allocator {
        out.push_str("#[allocator]\n");
    }
    if a.deallocator {
        out.push_str("#[deallocator]\n");
    }
    if a.disables_irq {
        out.push_str("#[disables_irq]\n");
    }
    for l in &a.acquires {
        let _ = writeln!(out, "#[acquires({l})]");
    }
    for l in &a.releases {
        let _ = writeln!(out, "#[releases({l})]");
    }
    if !a.error_codes.is_empty() {
        let codes: Vec<String> = a.error_codes.iter().map(|c| c.to_string()).collect();
        let _ = writeln!(out, "#[error_codes({})]", codes.join(", "));
    }
    if f.subsystem != "kernel" {
        let _ = writeln!(out, "#[subsystem(\"{}\")]", f.subsystem);
    }
    let params: Vec<String> = f
        .params
        .iter()
        .map(|p| format!("{}: {}", p.name, type_str(&p.ty)))
        .collect();
    let ret = if f.ret == Type::Void {
        String::new()
    } else {
        format!(" -> {}", type_str(&f.ret))
    };
    match &f.body {
        Some(body) => {
            let _ = writeln!(out, "fn {}({}){} {{", f.name, params.join(", "), ret);
            out.push_str(&pretty_block(body, 1));
            out.push_str("}\n");
        }
        None => {
            let _ = writeln!(out, "extern fn {}({}){};", f.name, params.join(", "), ret);
        }
    }
    out
}

fn indent(level: usize) -> String {
    "    ".repeat(level)
}

/// Pretty-prints the statements of a block at the given indentation level.
pub fn pretty_block(b: &Block, level: usize) -> String {
    let mut out = String::new();
    for s in &b.stmts {
        out.push_str(&pretty_stmt(s, level));
    }
    out
}

/// Pretty-prints one statement.
pub fn pretty_stmt(s: &Stmt, level: usize) -> String {
    let ind = indent(level);
    match s {
        Stmt::Expr(e, _) => format!("{ind}{};\n", expr_str(e)),
        Stmt::Assign(l, r, _) => format!("{ind}{} = {};\n", expr_str(l), expr_str(r)),
        Stmt::Local(d, Some(init)) => {
            format!(
                "{ind}let {}: {} = {};\n",
                d.name,
                type_str(&d.ty),
                expr_str(init)
            )
        }
        Stmt::Local(d, None) => format!("{ind}let {}: {};\n", d.name, type_str(&d.ty)),
        Stmt::If(c, then, els, _) => {
            let mut out = format!(
                "{ind}if ({}) {{\n{}",
                expr_str(c),
                pretty_block(then, level + 1)
            );
            match els {
                Some(e) => {
                    out.push_str(&format!(
                        "{ind}}} else {{\n{}{ind}}}\n",
                        pretty_block(e, level + 1)
                    ));
                }
                None => out.push_str(&format!("{ind}}}\n")),
            }
            out
        }
        Stmt::While(c, body, _) => format!(
            "{ind}while ({}) {{\n{}{ind}}}\n",
            expr_str(c),
            pretty_block(body, level + 1)
        ),
        Stmt::Return(Some(e), _) => format!("{ind}return {};\n", expr_str(e)),
        Stmt::Return(None, _) => format!("{ind}return;\n"),
        Stmt::Break(_) => format!("{ind}break;\n"),
        Stmt::Continue(_) => format!("{ind}continue;\n"),
        Stmt::Block(b) => format!("{ind}{{\n{}{ind}}}\n", pretty_block(b, level + 1)),
        Stmt::Check(c, _) => format!("{ind}{}\n", check_str(c)),
        Stmt::DelayedFreeScope(b, _) => format!(
            "{ind}delayed_free {{\n{}{ind}}}\n",
            pretty_block(b, level + 1)
        ),
    }
}

fn check_str(c: &Check) -> String {
    match c {
        Check::NonNull(e) => format!("__check_nonnull({});", expr_str(e)),
        Check::NullTerm(e) => format!("__check_nullterm({});", expr_str(e)),
        Check::RcFreeOk(e) => format!("__check_rc_free({});", expr_str(e)),
        Check::PtrBounds { ptr, index, len } => match len {
            Some(l) => format!(
                "__check_bounds({}, {}, {});",
                expr_str(ptr),
                expr_str(index),
                expr_str(l)
            ),
            None => format!("__check_bounds({}, {});", expr_str(ptr), expr_str(index)),
        },
        Check::UnionTag {
            obj,
            field,
            tag,
            value,
        } => {
            format!("__check_union({}, {field}, {tag}, {value});", expr_str(obj))
        }
        Check::AssertMayBlock { site } => format!("__assert_may_block(\"{site}\");"),
    }
}

/// Renders a type in KC surface syntax.
pub fn type_str(t: &Type) -> String {
    match t {
        Type::Void => "void".into(),
        Type::Bool => "bool".into(),
        Type::Int(k) => k.keyword().into(),
        Type::Ptr(inner, ann) => format!("{} *{}", type_str(inner), annot_str(ann)),
        Type::Array(inner, n) => format!("{}[{n}]", type_str(inner)),
        Type::Struct(n) => format!("struct {n}"),
        Type::Union(n) => format!("union {n}"),
        Type::Func(ft) => {
            let params: Vec<String> = ft.params.iter().map(type_str).collect();
            format!("fnptr({}) -> {}", params.join(", "), type_str(&ft.ret))
        }
        Type::Named(n) => n.clone(),
    }
}

fn annot_str(a: &PtrAnnot) -> String {
    let mut out = String::new();
    match &a.bounds {
        Bounds::Unknown => {}
        Bounds::Single => out.push_str(" single"),
        Bounds::Count(e) => {
            let _ = write!(out, " count({e})");
        }
        Bounds::Bound(lo, hi) => {
            let _ = write!(out, " bound({lo}, {hi})");
        }
        Bounds::Auto => out.push_str(" auto"),
    }
    if a.nullterm {
        out.push_str(" nullterm");
    }
    if a.nonnull {
        out.push_str(" nonnull");
    }
    if a.opt {
        out.push_str(" opt");
    }
    if a.trusted {
        out.push_str(" trusted");
    }
    if a.poly {
        out.push_str(" poly");
    }
    out
}

/// Renders an expression in KC surface syntax (fully parenthesised where
/// needed so that re-parsing yields the same tree).
pub fn expr_str(e: &Expr) -> String {
    expr_prec(e, 0)
}

fn bin_prec(op: BinOp) -> u8 {
    match op {
        BinOp::LOr => 1,
        BinOp::LAnd => 2,
        BinOp::Or => 3,
        BinOp::Xor => 4,
        BinOp::And => 5,
        BinOp::Eq | BinOp::Ne => 6,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 7,
        BinOp::Shl | BinOp::Shr => 8,
        BinOp::Add | BinOp::Sub => 9,
        BinOp::Mul | BinOp::Div | BinOp::Rem => 10,
    }
}

fn bin_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::And => "&",
        BinOp::Or => "|",
        BinOp::Xor => "^",
        BinOp::Shl => "<<",
        BinOp::Shr => ">>",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::LAnd => "&&",
        BinOp::LOr => "||",
    }
}

fn expr_prec(e: &Expr, parent_prec: u8) -> String {
    match e {
        Expr::Int(v) => {
            if *v < 0 {
                // A negative literal needs parens when it would bind with a
                // preceding operator (e.g. `a - -1`); always wrap for safety.
                format!("({v})")
            } else {
                v.to_string()
            }
        }
        Expr::Str(s) => format!("\"{}\"", escape(s)),
        Expr::Null => "null".into(),
        Expr::Var(v) => v.clone(),
        Expr::Unary(op, inner) => {
            let o = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
                UnOp::BitNot => "~",
            };
            let s = format!("{o}{}", expr_prec(inner, 12));
            if parent_prec > 12 {
                format!("({s})")
            } else {
                s
            }
        }
        Expr::Binary(op, a, b) => {
            let prec = bin_prec(*op);
            let s = format!(
                "{} {} {}",
                expr_prec(a, prec),
                bin_str(*op),
                expr_prec(b, prec + 1)
            );
            if prec < parent_prec {
                format!("({s})")
            } else {
                s
            }
        }
        Expr::Deref(inner) => {
            let s = format!("*{}", expr_prec(inner, 12));
            if parent_prec > 12 {
                format!("({s})")
            } else {
                s
            }
        }
        Expr::AddrOf(inner) => {
            let s = format!("&{}", expr_prec(inner, 12));
            if parent_prec > 12 {
                format!("({s})")
            } else {
                s
            }
        }
        Expr::Index(a, i) => format!("{}[{}]", expr_prec(a, 13), expr_str(i)),
        Expr::Field(a, f) => format!("{}.{f}", expr_prec(a, 13)),
        Expr::Arrow(a, f) => format!("{}->{f}", expr_prec(a, 13)),
        Expr::Cast(t, inner) => {
            // Always parenthesise: a `*` or `[N]` after the target type would
            // otherwise be absorbed into the type when re-parsing.
            format!("({} as {})", expr_prec(inner, 12), type_str(t))
        }
        Expr::Call(callee, args) => {
            let a: Vec<String> = args.iter().map(expr_str).collect();
            format!("{}({})", expr_prec(callee, 13), a.join(", "))
        }
        Expr::SizeOf(t) => format!("sizeof({})", type_str(t)),
    }
}

fn escape(s: &str) -> String {
    let mut out = String::new();
    for c in s.chars() {
        match c {
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\0' => out.push_str("\\0"),
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::VarDecl;
    use crate::parser::{parse_expr, parse_program};
    use crate::types::BoundExpr;

    #[test]
    fn expr_round_trip() {
        let cases = [
            "1 + 2 * 3",
            "(1 + 2) * 3",
            "a->b.c[i + 1]",
            "f(g(x), y + 1)",
            "*p + buf[n - 1]",
            "x as u32 + 1",
            "!(a && b) || c",
            "-x * ~y",
            "sizeof(struct inode) + 4",
        ];
        for src in cases {
            let e = parse_expr(src).unwrap();
            let printed = expr_str(&e);
            let reparsed = parse_expr(&printed).unwrap();
            assert_eq!(e, reparsed, "round trip failed for `{src}` -> `{printed}`");
        }
    }

    #[test]
    fn program_round_trip() {
        let src = r#"
            typedef size_t = u32;
            struct sk_buff {
                len: u32;
                data: u8 * count(len);
            }
            global jiffies: u64 = 0;
            #[blocking] #[allocator]
            fn kmalloc(size: u32, flags: u32) -> void * {
                return null;
            }
            fn fill(buf: u8 * count(n), n: u32) {
                let i: u32 = 0;
                while (i < n) {
                    buf[i] = i as u8;
                    i = i + 1;
                }
                if (n == 0) { return; } else { buf[0] = 0; }
            }
        "#;
        let p = parse_program(src).unwrap();
        let printed = pretty_program(&p);
        let reparsed = parse_program(&printed).unwrap();
        let reprinted = pretty_program(&reparsed);
        assert_eq!(printed, reprinted);
        assert_eq!(p.functions.len(), reparsed.functions.len());
        assert_eq!(p.composites.len(), reparsed.composites.len());
    }

    #[test]
    fn prints_annotations() {
        let f = Function::new(
            "f",
            vec![VarDecl::new(
                "p",
                Type::ptr_count(Type::u8(), BoundExpr::var("n")),
            )],
            Type::Void,
            vec![],
        );
        let s = pretty_function(&f);
        assert!(s.contains("p: u8 * count(n)"));
    }

    #[test]
    fn negative_literal_parenthesised() {
        let e = Expr::sub(Expr::var("a"), Expr::Int(-1));
        let s = expr_str(&e);
        let reparsed = parse_expr(&s).unwrap();
        assert_eq!(e, reparsed);
    }
}
