//! Lexer for the KC surface syntax.
//!
//! KC source is plain ASCII; `//` line comments and `/* ... */` block
//! comments are skipped. Integer literals may be decimal, hexadecimal
//! (`0x...`), or character literals (`'a'`, `'\n'`, `'\0'`).

use crate::error::{CmirError, Result};
use crate::span::{Pos, Span};
use crate::token::{Token, TokenKind};

/// Lexes a complete source string into tokens (including a trailing `Eof`).
pub fn lex(src: &str) -> Result<Vec<Token>> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    idx: usize,
    line: u32,
    col: u32,
    src_len: usize,
    _src: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        let chars: Vec<char> = src.chars().collect();
        Lexer {
            src_len: chars.len(),
            chars,
            idx: 0,
            line: 1,
            col: 1,
            _src: src,
        }
    }

    fn pos(&self) -> Pos {
        Pos::new(self.line, self.col)
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.idx).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.idx + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.idx += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::with_capacity(self.src_len / 4);
        loop {
            self.skip_trivia()?;
            let start = self.pos();
            let Some(c) = self.peek() else {
                out.push(Token {
                    kind: TokenKind::Eof,
                    span: Span::new(start, start),
                });
                return Ok(out);
            };
            let kind = if c.is_ascii_alphabetic() || c == '_' {
                self.lex_ident()
            } else if c.is_ascii_digit() {
                self.lex_number(start)?
            } else if c == '"' {
                self.lex_string(start)?
            } else if c == '\'' {
                self.lex_char(start)?
            } else {
                self.lex_punct(start)?
            };
            let end = self.pos();
            out.push(Token {
                kind,
                span: Span::new(start, end),
            });
        }
    }

    fn skip_trivia(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some('/') if self.peek2() == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('/') if self.peek2() == Some('*') => {
                    let start = self.pos();
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            Some('*') if self.peek2() == Some('/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(_) => {
                                self.bump();
                            }
                            None => {
                                return Err(CmirError::lex(
                                    "unterminated block comment",
                                    Span::new(start, self.pos()),
                                ))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_ident(&mut self) -> TokenKind {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        TokenKind::Ident(s)
    }

    fn lex_number(&mut self, start: Pos) -> Result<TokenKind> {
        let mut s = String::new();
        if self.peek() == Some('0') && matches!(self.peek2(), Some('x') | Some('X')) {
            self.bump();
            self.bump();
            while let Some(c) = self.peek() {
                if c.is_ascii_hexdigit() || c == '_' {
                    if c != '_' {
                        s.push(c);
                    }
                    self.bump();
                } else {
                    break;
                }
            }
            if s.is_empty() {
                return Err(CmirError::lex(
                    "empty hex literal",
                    Span::new(start, self.pos()),
                ));
            }
            return i64::from_str_radix(&s, 16)
                .map(TokenKind::Int)
                .map_err(|_| {
                    CmirError::lex("hex literal out of range", Span::new(start, self.pos()))
                });
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == '_' {
                if c != '_' {
                    s.push(c);
                }
                self.bump();
            } else {
                break;
            }
        }
        s.parse::<i64>().map(TokenKind::Int).map_err(|_| {
            CmirError::lex("integer literal out of range", Span::new(start, self.pos()))
        })
    }

    fn lex_string(&mut self, start: Pos) -> Result<TokenKind> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(TokenKind::Str(s)),
                Some('\\') => {
                    let esc = self.bump().ok_or_else(|| {
                        CmirError::lex("unterminated escape", Span::new(start, self.pos()))
                    })?;
                    s.push(unescape(esc, start, self.pos())?);
                }
                Some('\n') | None => {
                    return Err(CmirError::lex(
                        "unterminated string literal",
                        Span::new(start, self.pos()),
                    ))
                }
                Some(c) => s.push(c),
            }
        }
    }

    fn lex_char(&mut self, start: Pos) -> Result<TokenKind> {
        self.bump(); // opening quote
        let c = match self.bump() {
            Some('\\') => {
                let esc = self.bump().ok_or_else(|| {
                    CmirError::lex(
                        "unterminated character literal",
                        Span::new(start, self.pos()),
                    )
                })?;
                unescape(esc, start, self.pos())?
            }
            Some(c) if c != '\'' => c,
            _ => {
                return Err(CmirError::lex(
                    "empty character literal",
                    Span::new(start, self.pos()),
                ))
            }
        };
        if self.bump() != Some('\'') {
            return Err(CmirError::lex(
                "unterminated character literal",
                Span::new(start, self.pos()),
            ));
        }
        Ok(TokenKind::Int(c as i64))
    }

    fn lex_punct(&mut self, start: Pos) -> Result<TokenKind> {
        let c = self.bump().expect("peeked before");
        let two = |l: &mut Lexer<'_>, next: char, yes: TokenKind, no: TokenKind| {
            if l.peek() == Some(next) {
                l.bump();
                yes
            } else {
                no
            }
        };
        let kind = match c {
            '(' => TokenKind::LParen,
            ')' => TokenKind::RParen,
            '{' => TokenKind::LBrace,
            '}' => TokenKind::RBrace,
            '[' => TokenKind::LBracket,
            ']' => TokenKind::RBracket,
            ';' => TokenKind::Semi,
            ',' => TokenKind::Comma,
            ':' => TokenKind::Colon,
            '.' => TokenKind::Dot,
            '#' => TokenKind::Hash,
            '+' => TokenKind::Plus,
            '*' => TokenKind::Star,
            '/' => TokenKind::Slash,
            '%' => TokenKind::Percent,
            '^' => TokenKind::Caret,
            '~' => TokenKind::Tilde,
            '-' => two(self, '>', TokenKind::Arrow, TokenKind::Minus),
            '=' => {
                if self.peek() == Some('=') {
                    self.bump();
                    TokenKind::EqEq
                } else if self.peek() == Some('>') {
                    self.bump();
                    TokenKind::FatArrow
                } else {
                    TokenKind::Assign
                }
            }
            '!' => two(self, '=', TokenKind::NotEq, TokenKind::Bang),
            '<' => {
                if self.peek() == Some('<') {
                    self.bump();
                    TokenKind::Shl
                } else if self.peek() == Some('=') {
                    self.bump();
                    TokenKind::Le
                } else {
                    TokenKind::Lt
                }
            }
            '>' => {
                if self.peek() == Some('>') {
                    self.bump();
                    TokenKind::Shr
                } else if self.peek() == Some('=') {
                    self.bump();
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                }
            }
            '&' => two(self, '&', TokenKind::AndAnd, TokenKind::Amp),
            '|' => two(self, '|', TokenKind::OrOr, TokenKind::Pipe),
            other => {
                return Err(CmirError::lex(
                    format!("unexpected character `{other}`"),
                    Span::new(start, self.pos()),
                ))
            }
        };
        Ok(kind)
    }
}

fn unescape(esc: char, start: Pos, end: Pos) -> Result<char> {
    Ok(match esc {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        '\\' => '\\',
        '"' => '"',
        '\'' => '\'',
        other => {
            return Err(CmirError::lex(
                format!("unknown escape `\\{other}`"),
                Span::new(start, end),
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind as T;

    fn kinds(src: &str) -> Vec<T> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_identifiers_and_ints() {
        assert_eq!(
            kinds("foo 42 0x1F _bar9"),
            vec![
                T::Ident("foo".into()),
                T::Int(42),
                T::Int(31),
                T::Ident("_bar9".into()),
                T::Eof
            ]
        );
    }

    #[test]
    fn lexes_operators() {
        assert_eq!(
            kinds("a->b == c && d != e << 2 >= 1"),
            vec![
                T::Ident("a".into()),
                T::Arrow,
                T::Ident("b".into()),
                T::EqEq,
                T::Ident("c".into()),
                T::AndAnd,
                T::Ident("d".into()),
                T::NotEq,
                T::Ident("e".into()),
                T::Shl,
                T::Int(2),
                T::Ge,
                T::Int(1),
                T::Eof
            ]
        );
    }

    #[test]
    fn skips_comments() {
        let src = "a // line comment\n/* block\ncomment */ b";
        assert_eq!(
            kinds(src),
            vec![T::Ident("a".into()), T::Ident("b".into()), T::Eof]
        );
    }

    #[test]
    fn string_and_char_literals() {
        assert_eq!(
            kinds(r#""hello\n" 'x' '\0'"#),
            vec![T::Str("hello\n".into()), T::Int(120), T::Int(0), T::Eof]
        );
    }

    #[test]
    fn tracks_line_numbers() {
        let toks = lex("a\nb\n  c").unwrap();
        assert_eq!(toks[0].span.start.line, 1);
        assert_eq!(toks[1].span.start.line, 2);
        assert_eq!(toks[2].span.start.line, 3);
        assert_eq!(toks[2].span.start.col, 3);
    }

    #[test]
    fn reports_bad_input() {
        assert!(lex("a $ b").is_err());
        assert!(lex("\"unterminated").is_err());
        assert!(lex("/* unterminated").is_err());
        assert!(lex("0x").is_err());
    }

    #[test]
    fn underscores_in_numbers() {
        assert_eq!(kinds("1_000_000"), vec![T::Int(1_000_000), T::Eof]);
    }
}
