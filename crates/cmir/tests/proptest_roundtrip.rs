//! Property-based tests for the KC front end: randomly generated expressions
//! and types must survive a pretty-print / re-parse round trip, and erasure
//! must be idempotent and annotation-free.

use ivy_cmir::ast::{BinOp, Expr, UnOp};
use ivy_cmir::parser::{parse_expr, parse_type};
use ivy_cmir::pretty::{expr_str, type_str};
use ivy_cmir::types::{BoundExpr, Bounds, IntKind, PtrAnnot, Type};
use proptest::prelude::*;

fn arb_intkind() -> impl Strategy<Value = IntKind> {
    prop_oneof![
        Just(IntKind::I8),
        Just(IntKind::U8),
        Just(IntKind::I16),
        Just(IntKind::U16),
        Just(IntKind::I32),
        Just(IntKind::U32),
        Just(IntKind::I64),
        Just(IntKind::U64),
    ]
}

fn arb_ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_filter("avoid keywords", |s| {
        !matches!(
            s.as_str(),
            "let"
                | "if"
                | "else"
                | "while"
                | "for"
                | "return"
                | "break"
                | "continue"
                | "null"
                | "sizeof"
                | "as"
                | "struct"
                | "union"
                | "fn"
                | "extern"
                | "global"
                | "typedef"
                | "void"
                | "bool"
                | "i8"
                | "u8"
                | "i16"
                | "u16"
                | "i32"
                | "u32"
                | "i64"
                | "u64"
                | "count"
                | "bound"
                | "single"
                | "auto"
                | "nullterm"
                | "nonnull"
                | "opt"
                | "trusted"
                | "poly"
                | "when"
                | "fnptr"
                | "delayed_free"
        )
    })
}

fn arb_bound_expr() -> impl Strategy<Value = BoundExpr> {
    let leaf = prop_oneof![
        (0i64..1024).prop_map(BoundExpr::Const),
        arb_ident().prop_map(BoundExpr::Var),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| BoundExpr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| BoundExpr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| BoundExpr::Mul(Box::new(a), Box::new(b))),
        ]
    })
}

fn arb_annot() -> impl Strategy<Value = PtrAnnot> {
    (
        prop_oneof![
            Just(Bounds::Unknown),
            Just(Bounds::Single),
            Just(Bounds::Auto),
            arb_bound_expr().prop_map(Bounds::Count),
            (arb_bound_expr(), arb_bound_expr()).prop_map(|(a, b)| Bounds::Bound(a, b)),
        ],
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(bounds, nullterm, nonnull, opt, trusted)| PtrAnnot {
            bounds,
            nullterm,
            nonnull,
            opt,
            trusted,
            poly: false,
        })
}

fn arb_type() -> impl Strategy<Value = Type> {
    let leaf = prop_oneof![
        Just(Type::Void),
        Just(Type::Bool),
        arb_intkind().prop_map(Type::Int),
        arb_ident().prop_map(Type::Struct),
        arb_ident().prop_map(Type::Union),
        arb_ident().prop_map(Type::Named),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), arb_annot()).prop_map(|(t, a)| Type::Ptr(Box::new(t), a)),
            (inner, 1u64..64).prop_map(|(t, n)| Type::Array(Box::new(t), n)),
        ]
    })
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0i64..100_000).prop_map(Expr::Int),
        arb_ident().prop_map(Expr::Var),
        Just(Expr::Null),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::add(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Mul, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Shl, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::lt(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::LAnd, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Index(Box::new(a), Box::new(b))),
            inner
                .clone()
                .prop_map(|a| Expr::Unary(UnOp::Not, Box::new(a))),
            inner.clone().prop_map(|a| Expr::Deref(Box::new(a))),
            (inner.clone(), arb_ident()).prop_map(|(a, f)| Expr::Arrow(Box::new(a), f)),
            (inner.clone(), arb_ident()).prop_map(|(a, f)| Expr::Field(Box::new(a), f)),
            (arb_ident(), prop::collection::vec(inner.clone(), 0..3))
                .prop_map(|(f, args)| Expr::call(f, args)),
            (arb_type(), inner).prop_map(|(t, e)| Expr::Cast(t, Box::new(e))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn expr_pretty_parse_roundtrip(e in arb_expr()) {
        let printed = expr_str(&e);
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("failed to reparse `{printed}`: {err}"));
        prop_assert_eq!(e, reparsed);
    }

    #[test]
    fn type_pretty_parse_roundtrip(t in arb_type()) {
        let printed = type_str(&t);
        let reparsed = parse_type(&printed)
            .unwrap_or_else(|err| panic!("failed to reparse `{printed}`: {err}"));
        prop_assert_eq!(t, reparsed);
    }

    #[test]
    fn erasure_is_idempotent_and_clean(t in arb_type()) {
        let once = t.erased();
        prop_assert!(!once.is_annotated());
        prop_assert_eq!(once.clone(), once.erased());
        prop_assert!(t.same_repr(&once));
    }

    #[test]
    fn bound_expr_eval_matches_structure(e in arb_bound_expr()) {
        // Evaluating with every variable bound to 1 must succeed.
        let v = e.eval(&|_| Some(1));
        prop_assert!(v.is_some());
        // And free variables are exactly the names eval needs.
        let missing = std::cell::RefCell::new(Vec::new());
        let _ = e.eval(&|name: &str| {
            missing.borrow_mut().push(name.to_string());
            None
        });
        for m in missing.into_inner() {
            prop_assert!(e.free_vars().contains(&m));
        }
    }

    #[test]
    fn int_truncate_fits_width(k in arb_intkind(), v in any::<i64>()) {
        let t = k.truncate(v);
        let bits = k.size() * 8;
        if bits < 64 {
            if k.is_signed() {
                let max = (1i64 << (bits - 1)) - 1;
                let min = -(1i64 << (bits - 1));
                prop_assert!(t >= min && t <= max);
            } else {
                prop_assert!(t >= 0 && (t as u64) < (1u64 << bits));
            }
        }
        // Truncation is idempotent.
        prop_assert_eq!(t, k.truncate(t));
    }
}
