//! Differential testing of the worklist points-to solver against the
//! retained naive reference, in the spirit of Klinger et al.'s differential
//! program-analysis testing: generate random programs, run both solvers at
//! every sensitivity, and require *identical* `pts` and `indirect_targets`.
//!
//! Programs are derived from `ivy-kernelgen` corpora: a generated kernel is
//! randomly sub-sampled (whole functions dropped, bodies of others turned
//! extern) so every case exercises a different constraint graph — dangling
//! direct calls, unresolved indirect sites, orphaned function pointers —
//! while staying realistic kernel code. The incremental path re-solves each
//! case against one shared [`ConstraintCache`], so cross-program batch and
//! interner reuse is under the same identity check.
//!
//! CI runs this file explicitly and fails if these tests are filtered out
//! or skipped (see `.github/workflows/ci.yml`).

use ivy_analysis::pointsto::{
    analyze, analyze_incremental, analyze_incremental_with, analyze_naive, analyze_with,
    verify_derivations, ConstraintCache, Sensitivity, SolveMode, SolveOptions, SolverChoice,
};
use ivy_cmir::ast::Program;
use ivy_kernelgen::{subsample_program, KernelBuild, KernelConfig};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Cases per property; each case checks all three sensitivities, so every
/// sensitivity level sees this many generated programs (the acceptance
/// floor is 100 per level).
const CASES: u32 = 110;

/// Base kernels, generated once for the whole run.
fn base_kernels() -> &'static Vec<Program> {
    static BASES: OnceLock<Vec<Program>> = OnceLock::new();
    BASES.get_or_init(|| {
        let mut tiny = KernelConfig::small();
        tiny.drivers = 1;
        tiny.fp_groups = 1;
        tiny.cache_defects = 1;
        tiny.ring_defects = 1;
        vec![
            KernelBuild::generate(&tiny).program,
            KernelBuild::generate(&KernelConfig::small()).program,
        ]
    })
}

/// One constraint cache per sensitivity, shared across *all* generated
/// cases so the incremental path is exercised with genuine cross-program
/// batch and interner reuse.
fn shared_caches() -> &'static [ConstraintCache; 3] {
    static CACHES: OnceLock<[ConstraintCache; 3]> = OnceLock::new();
    CACHES.get_or_init(|| {
        [
            ConstraintCache::new(),
            ConstraintCache::new(),
            ConstraintCache::new(),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    #[test]
    fn worklist_and_incremental_match_naive_on_generated_programs(
        seed in any::<u64>(),
        base_idx in 0usize..2,
        drop_pct in 0u64..40,
        strip_pct in 0u64..35,
    ) {
        let bases = base_kernels();
        let caches = shared_caches();
        let program = subsample_program(&bases[base_idx], seed, drop_pct, strip_pct);
        for (i, s) in [
            Sensitivity::Steensgaard,
            Sensitivity::Andersen,
            Sensitivity::AndersenField,
        ]
        .into_iter()
        .enumerate()
        {
            let slow = analyze_naive(&program, s);
            let fast = analyze(&program, s);
            prop_assert_eq!(fast.pts(), slow.pts(), "pts diverge at {}", s.name());
            prop_assert_eq!(
                &fast.indirect_targets, &slow.indirect_targets,
                "indirect targets diverge at {}", s.name()
            );
            prop_assert_eq!(fast.initial_constraints, slow.initial_constraints);
            prop_assert_eq!(fast.constraint_count, slow.constraint_count);

            // The cache-backed path must agree too (shared interner,
            // cross-program batch reuse).
            let incr = analyze_incremental(&program, s, &caches[i]);
            prop_assert_eq!(incr.pts(), slow.pts(), "cached pts diverge at {}", s.name());
            prop_assert_eq!(
                &incr.indirect_targets, &slow.indirect_targets,
                "cached indirect targets diverge at {}", s.name()
            );
        }
    }

    /// The new solver family — parallel wavefront, union-find Steensgaard,
    /// and DRed delta repair — against the same naive reference, on the
    /// same generated-program distribution. Delta repair is exercised with
    /// genuine cross-program diffs: each case repairs the previous case's
    /// fixpoint in the shared cache, so retraction sets range from empty
    /// to "most of the plan" (where the dispatcher must fall back).
    #[test]
    fn parallel_unionfind_and_delta_match_naive_on_generated_programs(
        seed in any::<u64>(),
        base_idx in 0usize..2,
        drop_pct in 0u64..40,
        strip_pct in 0u64..35,
    ) {
        static DELTA_CACHES: OnceLock<[ConstraintCache; 3]> = OnceLock::new();
        let caches = DELTA_CACHES.get_or_init(|| {
            [
                ConstraintCache::new(),
                ConstraintCache::new(),
                ConstraintCache::new(),
            ]
        });
        let bases = base_kernels();
        let program = subsample_program(&bases[base_idx], seed, drop_pct, strip_pct);
        for (i, s) in [
            Sensitivity::Steensgaard,
            Sensitivity::Andersen,
            Sensitivity::AndersenField,
        ]
        .into_iter()
        .enumerate()
        {
            let slow = analyze_naive(&program, s);

            let par = analyze_with(&program, s, SolveOptions {
                solver: SolverChoice::Parallel,
                threads: 4,
                ..SolveOptions::default()
            });
            prop_assert_eq!(par.pts(), slow.pts(), "parallel pts diverge at {}", s.name());
            prop_assert_eq!(
                &par.indirect_targets, &slow.indirect_targets,
                "parallel indirect targets diverge at {}", s.name()
            );
            prop_assert_eq!(par.initial_constraints, slow.initial_constraints);
            prop_assert_eq!(par.constraint_count, slow.constraint_count);

            if s == Sensitivity::Steensgaard {
                let uf = analyze_with(&program, s, SolveOptions {
                    solver: SolverChoice::UnionFind,
                    threads: 1,
                    ..SolveOptions::default()
                });
                prop_assert_eq!(uf.pts(), slow.pts(), "union-find pts diverge");
                prop_assert_eq!(
                    &uf.indirect_targets, &slow.indirect_targets,
                    "union-find indirect targets diverge"
                );
                prop_assert_eq!(uf.constraint_count, slow.constraint_count);
            }

            // Auto dispatch against a long-lived cache: after the first
            // case this is a delta repair whenever the plan diff is small
            // enough, a re-propagation otherwise — both must be identical
            // to the reference.
            let incr = analyze_incremental_with(&program, s, &caches[i], SolveOptions {
                solver: SolverChoice::Auto,
                threads: if seed.is_multiple_of(2) { 4 } else { 1 },
                ..SolveOptions::default()
            });
            if incr.mode == SolveMode::DeltaRepair {
                prop_assert_eq!(incr.constraint_count, slow.constraint_count);
            }
            prop_assert_eq!(incr.pts(), slow.pts(), "delta pts diverge at {}", s.name());
            prop_assert_eq!(
                &incr.indirect_targets, &slow.indirect_targets,
                "delta indirect targets diverge at {}", s.name()
            );
        }
    }

    /// Provenance recording changes nothing: at every sensitivity, both the
    /// serial worklist and the parallel wavefront produce byte-identical
    /// answers with tracing on, and every recorded derivation replays —
    /// each step's conclusion follows from its premises by a real rule
    /// (AddrOf seed, static copy, or a justified dynamic edge), premises
    /// strictly precede conclusions in the arena, and the recorded facts
    /// are exactly the final sets.
    #[test]
    fn provenance_solves_are_identical_and_replay_on_generated_programs(
        seed in any::<u64>(),
        base_idx in 0usize..2,
        drop_pct in 0u64..40,
        strip_pct in 0u64..35,
    ) {
        let bases = base_kernels();
        let program = subsample_program(&bases[base_idx], seed, drop_pct, strip_pct);
        for s in [
            Sensitivity::Steensgaard,
            Sensitivity::Andersen,
            Sensitivity::AndersenField,
        ] {
            let plain = analyze_with(&program, s, SolveOptions::default());
            for threads in [1usize, 4] {
                let traced = analyze_with(&program, s, SolveOptions {
                    solver: SolverChoice::Auto,
                    threads,
                    provenance: true,
                });
                prop_assert_eq!(
                    traced.pts(), plain.pts(),
                    "provenance pts diverge at {} t={}", s.name(), threads
                );
                prop_assert_eq!(
                    &traced.indirect_targets, &plain.indirect_targets,
                    "provenance indirect targets diverge at {} t={}", s.name(), threads
                );
                prop_assert_eq!(traced.initial_constraints, plain.initial_constraints);
                prop_assert_eq!(traced.constraint_count, plain.constraint_count);
                let replayed = verify_derivations(&program, &traced);
                prop_assert!(
                    replayed.is_ok(),
                    "replay failed at {} t={}: {}", s.name(), threads,
                    replayed.unwrap_err()
                );
                prop_assert_eq!(replayed.unwrap(), traced.provenance_facts());
            }
        }
    }
}
