//! Ad-hoc solver timing harness for comparing the worklist, union-find,
//! and parallel-wavefront solvers phase by phase (intern vs seed vs
//! propagate, via telemetry spans). Ignored by default — not a correctness
//! test; run with
//! `cargo test -p ivy-analysis --release --test solver_timing -- --ignored --nocapture`.
//! Note that wall-clock thread scaling only shows up when the machine has
//! real cores to spare (`nproc` > 1); on a single-CPU container the
//! parallel solver's supersteps time-slice onto one core.

use ivy_analysis::pointsto::{analyze_with, Sensitivity, SolveOptions, SolverChoice};
use ivy_kernelgen::{KernelBuild, KernelConfig};
use std::time::Instant;

#[test]
#[ignore]
fn steensgaard_solver_phase_timing() {
    let build = KernelBuild::generate(&KernelConfig::paper());
    ivy_telemetry::enable_all();
    for round in 0..3 {
        for (label, solver) in [
            ("worklist", SolverChoice::Worklist),
            ("unify", SolverChoice::UnionFind),
        ] {
            let start = Instant::now();
            let r = analyze_with(
                &build.program,
                Sensitivity::Steensgaard,
                SolveOptions {
                    solver,
                    threads: 1,
                    provenance: false,
                },
            );
            let total = start.elapsed();
            eprintln!(
                "round {round} {label}: total {total:?} pops {} constraints {}",
                r.iterations, r.constraint_count
            );
        }
    }
    let spans = ivy_telemetry::spans_snapshot();
    for cat in ["pointsto/intern", "pointsto/seed", "pointsto/propagate"] {
        let times: Vec<u64> = spans
            .iter()
            .filter(|s| s.cat == cat)
            .map(|s| s.dur_us)
            .collect();
        eprintln!("{cat}: {times:?} us");
    }
}

#[test]
#[ignore]
fn parallel_solver_phase_timing() {
    let mut config = KernelConfig::paper();
    config.drivers = 256;
    config.fp_groups = 128;
    config.cache_defects = 256;
    config.ring_defects = 256;
    let build = KernelBuild::generate(&config);
    eprintln!("functions: {}", build.program.functions.len());
    for round in 0..3 {
        for (label, solver, threads) in [
            ("worklist ", SolverChoice::Worklist, 1),
            ("parallel1", SolverChoice::Parallel, 1),
            ("parallel4", SolverChoice::Parallel, 4),
        ] {
            ivy_telemetry::reset();
            ivy_telemetry::enable_all();
            let start = Instant::now();
            let r = analyze_with(
                &build.program,
                Sensitivity::AndersenField,
                SolveOptions {
                    solver,
                    threads,
                    provenance: false,
                },
            );
            let total = start.elapsed();
            let spans = ivy_telemetry::spans_snapshot();
            let sum_cat = |cat: &str| -> u64 {
                spans
                    .iter()
                    .filter(|s| s.cat == cat)
                    .map(|s| s.dur_us)
                    .sum()
            };
            let solve = sum_cat("pointsto/seed") + sum_cat("pointsto/propagate");
            let setup = sum_cat("pointsto/wavesetup");
            let cv = |name: &'static str| ivy_telemetry::counter_value(name, None);
            ivy_telemetry::disable_all();
            eprintln!(
                "round {round} {label}: total {total:?} solve {solve}us setup {setup}us \
                 pops {} supersteps {} shardpops {} merges {}",
                r.iterations,
                cv("ivy_pointsto_parallel_waves_total"),
                cv("ivy_pointsto_parallel_shard_pops_total"),
                cv("ivy_pointsto_parallel_merges_total"),
            );
        }
    }
}
