//! A generic worklist dataflow solver over KC control-flow graphs.
//!
//! Analyses implement [`Transfer`]; the solver computes the fixpoint of the
//! per-block facts in reverse post-order (for forward problems) or post-order
//! (for backward problems). The extension analyses in `ivy-core` (errcheck)
//! and BlockStop's interrupt-context tracking are built on this.

use crate::lattice::Lattice;
use ivy_cmir::cfg::{BlockId, Cfg, Terminator};
use ivy_cmir::Stmt;

/// Direction of a dataflow problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from predecessors to successors.
    Forward,
    /// Facts flow from successors to predecessors.
    Backward,
}

/// A dataflow transfer function.
pub trait Transfer {
    /// The lattice of facts.
    type Fact: Lattice;

    /// Direction of the analysis.
    fn direction(&self) -> Direction;

    /// The fact at the boundary (function entry for forward problems, exits
    /// for backward problems).
    fn boundary(&self) -> Self::Fact;

    /// Applies one statement to a fact (in program order for forward
    /// problems; the solver reverses the statement order for backward ones).
    fn stmt(&self, stmt: &Stmt, fact: &mut Self::Fact);

    /// Applies a block terminator to a fact. The default does nothing.
    fn terminator(&self, _term: &Terminator, _fact: &mut Self::Fact) {}
}

/// The per-block solution of a dataflow problem.
#[derive(Debug, Clone)]
pub struct Solution<F> {
    /// Fact holding at entry to each block.
    pub entry: Vec<F>,
    /// Fact holding at exit of each block.
    pub exit: Vec<F>,
}

impl<F: Lattice> Solution<F> {
    /// The joined fact over every block exit (useful for "anywhere in the
    /// function" queries).
    pub fn join_all_exits(&self) -> F {
        let mut acc = F::bottom();
        for f in &self.exit {
            acc.join(f);
        }
        acc
    }
}

/// Runs a dataflow analysis to fixpoint over a CFG.
pub fn solve<T: Transfer>(cfg: &Cfg, transfer: &T) -> Solution<T::Fact> {
    let n = cfg.blocks.len();
    let mut entry = vec![T::Fact::bottom(); n];
    let mut exit = vec![T::Fact::bottom(); n];
    let preds = cfg.predecessors();

    match transfer.direction() {
        Direction::Forward => {
            entry[Cfg::ENTRY] = transfer.boundary();
            let order = cfg.reverse_post_order();
            let mut changed = true;
            let mut iterations = 0usize;
            while changed && iterations < 4 * n + 16 {
                changed = false;
                iterations += 1;
                for &b in &order {
                    // Join predecessors.
                    let mut in_fact = if b == Cfg::ENTRY {
                        transfer.boundary()
                    } else {
                        T::Fact::bottom()
                    };
                    for &p in &preds[b] {
                        in_fact.join(&exit[p]);
                    }
                    let mut out_fact = in_fact.clone();
                    for s in &cfg.blocks[b].stmts {
                        transfer.stmt(s, &mut out_fact);
                    }
                    transfer.terminator(&cfg.blocks[b].term, &mut out_fact);
                    if entry[b] != in_fact {
                        entry[b] = in_fact;
                        changed = true;
                    }
                    if exit[b] != out_fact {
                        exit[b] = out_fact;
                        changed = true;
                    }
                }
            }
        }
        Direction::Backward => {
            let exits = cfg.exit_blocks();
            let mut order = cfg.reverse_post_order();
            order.reverse();
            let mut changed = true;
            let mut iterations = 0usize;
            while changed && iterations < 4 * n + 16 {
                changed = false;
                iterations += 1;
                for &b in &order {
                    // Join successors into the block's exit fact.
                    let mut out_fact = if exits.contains(&b) {
                        transfer.boundary()
                    } else {
                        T::Fact::bottom()
                    };
                    for s in cfg.successors(b) {
                        out_fact.join(&entry[s]);
                    }
                    let mut in_fact = out_fact.clone();
                    transfer.terminator(&cfg.blocks[b].term, &mut in_fact);
                    for s in cfg.blocks[b].stmts.iter().rev() {
                        transfer.stmt(s, &mut in_fact);
                    }
                    if exit[b] != out_fact {
                        exit[b] = out_fact;
                        changed = true;
                    }
                    if entry[b] != in_fact {
                        entry[b] = in_fact;
                        changed = true;
                    }
                }
            }
        }
    }
    Solution { entry, exit }
}

/// Convenience: runs a forward analysis and returns the fact at a block's
/// entry.
pub fn fact_at_entry<T: Transfer>(cfg: &Cfg, transfer: &T, block: BlockId) -> T::Fact {
    solve(cfg, transfer).entry[block].clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::SetLattice;
    use ivy_cmir::parser::parse_program;
    use ivy_cmir::Expr;

    /// A simple "defined variables" forward analysis used to exercise the
    /// solver: a variable is in the set once a `let` or assignment to it has
    /// executed on every path... joined as may-analysis (union).
    struct DefinedVars;

    impl Transfer for DefinedVars {
        type Fact = SetLattice<String>;

        fn direction(&self) -> Direction {
            Direction::Forward
        }

        fn boundary(&self) -> Self::Fact {
            SetLattice::new()
        }

        fn stmt(&self, stmt: &Stmt, fact: &mut Self::Fact) {
            match stmt {
                Stmt::Local(d, _) => {
                    fact.insert(d.name.clone());
                }
                Stmt::Assign(Expr::Var(v), _, _) => {
                    fact.insert(v.clone());
                }
                _ => {}
            }
        }
    }

    /// A backward "calls that still lie ahead" analysis used to exercise the
    /// backward direction.
    struct UpcomingCalls;

    impl Transfer for UpcomingCalls {
        type Fact = SetLattice<String>;

        fn direction(&self) -> Direction {
            Direction::Backward
        }

        fn boundary(&self) -> Self::Fact {
            SetLattice::new()
        }

        fn stmt(&self, stmt: &Stmt, fact: &mut Self::Fact) {
            ivy_cmir::visit::walk_stmt_exprs(stmt, &mut |e| {
                if let Expr::Call(callee, _) = e {
                    if let Expr::Var(name) = &**callee {
                        fact.insert(name.clone());
                    }
                }
            });
        }
    }

    fn cfg_for(src: &str, name: &str) -> Cfg {
        let p = parse_program(src).unwrap();
        Cfg::build(p.function(name).unwrap())
    }

    #[test]
    fn forward_reaches_fixpoint_on_loop() {
        let cfg = cfg_for(
            "fn f(n: u32) -> u32 { let i: u32 = 0; let acc: u32 = 0; \
             while (i < n) { acc = acc + i; i = i + 1; } return acc; }",
            "f",
        );
        let sol = solve(&cfg, &DefinedVars);
        let all = sol.join_all_exits();
        assert!(all.contains(&"i".to_string()));
        assert!(all.contains(&"acc".to_string()));
    }

    #[test]
    fn forward_entry_block_starts_from_boundary() {
        let cfg = cfg_for("fn f() { let x: u32 = 1; }", "f");
        let sol = solve(&cfg, &DefinedVars);
        assert!(sol.entry[Cfg::ENTRY].items.is_empty());
        assert!(sol.exit[Cfg::ENTRY].contains(&"x".to_string()));
    }

    #[test]
    fn backward_collects_upcoming_calls() {
        let cfg = cfg_for(
            "fn g() { } fn h() { } fn f(x: i32) { if (x) { g(); } else { h(); } g(); }",
            "f",
        );
        let sol = solve(&cfg, &UpcomingCalls);
        // At function entry, both g and h lie ahead on some path.
        let at_entry = &sol.entry[Cfg::ENTRY];
        assert!(at_entry.contains(&"g".to_string()));
        assert!(at_entry.contains(&"h".to_string()));
    }

    #[test]
    fn solver_terminates_on_nested_loops() {
        let cfg = cfg_for(
            "fn f(n: u32) { let i: u32 = 0; while (i < n) { let j: u32 = 0; \
             while (j < n) { j = j + 1; } i = i + 1; } }",
            "f",
        );
        let sol = solve(&cfg, &DefinedVars);
        assert!(sol.join_all_exits().contains(&"j".to_string()));
    }
}
