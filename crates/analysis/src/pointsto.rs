//! Whole-program points-to analysis.
//!
//! BlockStop needs to know "which functions can this function pointer refer
//! to" (§2.3 of the paper); Deputy and CCount reuse the same results for
//! alias queries. Three precision levels are provided, matching the paper's
//! observation that replacing the "simple points-to analysis with one that is
//! field- and context-sensitive would improve the results":
//!
//! * [`Sensitivity::Steensgaard`] — equality-based (assignments unify both
//!   sides), the coarsest and fastest.
//! * [`Sensitivity::Andersen`] — subset-based, struct fields collapsed per
//!   composite type.
//! * [`Sensitivity::AndersenField`] — subset-based with field-based
//!   field-sensitivity (one abstract location per `(composite, field)` pair).
//!
//! The analysis is flow-insensitive and context-insensitive, as in the paper.

use ivy_cmir::ast::{Expr, Function, Program, Stmt};
use ivy_cmir::typecheck::TypeCtx;
use ivy_cmir::types::Type;
use ivy_cmir::visit;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Precision level of the points-to analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Sensitivity {
    /// Equality-based unification (Steensgaard-style).
    #[default]
    Steensgaard,
    /// Subset-based, field-insensitive (all fields of a composite collapse).
    Andersen,
    /// Subset-based, field-based field-sensitivity.
    AndersenField,
}

impl Sensitivity {
    /// Human-readable name used in reports and the ablation benchmark.
    pub fn name(self) -> &'static str {
        match self {
            Sensitivity::Steensgaard => "steensgaard",
            Sensitivity::Andersen => "andersen",
            Sensitivity::AndersenField => "andersen+field",
        }
    }
}

/// An abstract memory location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Loc {
    /// A global variable.
    Global(String),
    /// A local variable or parameter of a function.
    Local {
        /// Enclosing function.
        func: String,
        /// Variable name.
        var: String,
    },
    /// A field of a composite type (field-sensitive mode).
    Field {
        /// Composite type name.
        composite: String,
        /// Field name.
        field: String,
    },
    /// A whole composite type (field-insensitive mode).
    Composite(String),
    /// A heap allocation site.
    Alloc {
        /// `function#index` of the allocating call.
        site: String,
    },
    /// The address of a function (the targets of function pointers).
    Func(String),
    /// The return value of a function.
    Ret(String),
    /// An analysis-internal temporary.
    Temp {
        /// Enclosing function.
        func: String,
        /// Sequential id.
        id: u32,
    },
}

/// Result of the points-to analysis.
#[derive(Debug, Clone, Default)]
pub struct PointsToResult {
    /// Points-to sets for every abstract location with a non-empty set.
    pub pts: BTreeMap<Loc, BTreeSet<Loc>>,
    /// For every indirect call, keyed by `(function, callee expression
    /// text)`, the set of function names the callee may refer to.
    pub indirect_targets: HashMap<(String, String), BTreeSet<String>>,
    /// Precision level that produced this result.
    pub sensitivity: Sensitivity,
    /// Number of constraints generated (reported by the ablation bench).
    pub constraint_count: usize,
    /// Number of solver iterations to fixpoint.
    pub iterations: usize,
}

impl PointsToResult {
    /// The points-to set of a location (empty if unknown).
    pub fn points_to(&self, loc: &Loc) -> BTreeSet<Loc> {
        self.pts.get(loc).cloned().unwrap_or_default()
    }

    /// The functions a given location may point to.
    pub fn functions_pointed_by(&self, loc: &Loc) -> BTreeSet<String> {
        self.points_to(loc)
            .into_iter()
            .filter_map(|l| match l {
                Loc::Func(f) => Some(f),
                _ => None,
            })
            .collect()
    }

    /// The possible targets of an indirect call, identified by the enclosing
    /// function and the callee expression's printed form.
    pub fn indirect_call_targets(&self, func: &str, callee_text: &str) -> BTreeSet<String> {
        self.indirect_targets
            .get(&(func.to_string(), callee_text.to_string()))
            .cloned()
            .unwrap_or_default()
    }

    /// Average size of the points-to sets of indirect-call callees (a
    /// precision metric used by the E6 ablation).
    pub fn mean_indirect_fanout(&self) -> f64 {
        if self.indirect_targets.is_empty() {
            return 0.0;
        }
        let total: usize = self.indirect_targets.values().map(|s| s.len()).sum();
        total as f64 / self.indirect_targets.len() as f64
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Constraint {
    AddrOf { dst: Loc, loc: Loc },
    Copy { dst: Loc, src: Loc },
    Load { dst: Loc, src: Loc },
    Store { dst: Loc, src: Loc },
}

#[derive(Debug, Clone)]
struct IndirectSite {
    func: String,
    callee_text: String,
    callee_loc: Loc,
    arg_locs: Vec<Loc>,
    result_loc: Loc,
}

/// Runs the points-to analysis over a whole program.
pub fn analyze(program: &Program, sensitivity: Sensitivity) -> PointsToResult {
    let mut gen = ConstraintGen {
        program,
        sensitivity,
        constraints: Vec::new(),
        indirect_sites: Vec::new(),
        temp_counter: 0,
        alloc_counter: 0,
        current_func: String::new(),
    };
    // Global initialisers.
    for g in &program.globals {
        if let Some(init) = &g.init {
            gen.current_func = format!("__global_init_{}", g.decl.name);
            gen.temp_counter = 0;
            let mut ctx = TypeCtx::new(program);
            let src = gen.gen_value(init, &mut ctx);
            gen.constraints.push(Constraint::Copy {
                dst: Loc::Global(g.decl.name.clone()),
                src,
            });
        }
    }
    for f in program.functions.iter().filter(|f| f.body.is_some()) {
        gen.gen_function(f);
    }
    let constraints = gen.constraints;
    let indirect_sites = gen.indirect_sites;
    solve(program, sensitivity, constraints, indirect_sites)
}

fn solve(
    program: &Program,
    sensitivity: Sensitivity,
    mut constraints: Vec<Constraint>,
    indirect_sites: Vec<IndirectSite>,
) -> PointsToResult {
    let constraint_count = constraints.len();
    let mut pts: BTreeMap<Loc, BTreeSet<Loc>> = BTreeMap::new();
    let mut bound: BTreeSet<(usize, String)> = BTreeSet::new();
    let mut iterations = 0usize;

    loop {
        iterations += 1;
        let mut changed = false;

        for c in &constraints {
            match c {
                Constraint::AddrOf { dst, loc } => {
                    changed |= pts.entry(dst.clone()).or_default().insert(loc.clone());
                }
                Constraint::Copy { dst, src } => {
                    changed |= copy_into(&mut pts, dst, src);
                }
                Constraint::Load { dst, src } => {
                    let targets = pts.get(src).cloned().unwrap_or_default();
                    for t in targets {
                        changed |= copy_into(&mut pts, dst, &t);
                    }
                }
                Constraint::Store { dst, src } => {
                    let targets = pts.get(dst).cloned().unwrap_or_default();
                    for t in targets {
                        changed |= copy_into(&mut pts, &t, src);
                    }
                }
            }
        }

        // Resolve indirect calls discovered so far: bind arguments and return
        // values for every function the callee may point to.
        let mut new_constraints = Vec::new();
        for (i, site) in indirect_sites.iter().enumerate() {
            let callees: Vec<String> = pts
                .get(&site.callee_loc)
                .map(|s| {
                    s.iter()
                        .filter_map(|l| match l {
                            Loc::Func(f) => Some(f.clone()),
                            _ => None,
                        })
                        .collect()
                })
                .unwrap_or_default();
            for callee in callees {
                if !bound.insert((i, callee.clone())) {
                    continue;
                }
                changed = true;
                if let Some(f) = program.function(&callee) {
                    for (idx, param) in f.params.iter().enumerate() {
                        if let Some(arg_loc) = site.arg_locs.get(idx) {
                            new_constraints.push(Constraint::Copy {
                                dst: Loc::Local {
                                    func: callee.clone(),
                                    var: param.name.clone(),
                                },
                                src: arg_loc.clone(),
                            });
                        }
                    }
                    new_constraints.push(Constraint::Copy {
                        dst: site.result_loc.clone(),
                        src: Loc::Ret(callee.clone()),
                    });
                }
            }
        }
        if sensitivity == Sensitivity::Steensgaard {
            // Equality-based: every copy constraint is bidirectional.
            let reversed: Vec<Constraint> = new_constraints
                .iter()
                .filter_map(|c| match c {
                    Constraint::Copy { dst, src } => Some(Constraint::Copy {
                        dst: src.clone(),
                        src: dst.clone(),
                    }),
                    _ => None,
                })
                .collect();
            new_constraints.extend(reversed);
        }
        constraints.extend(new_constraints);

        if !changed || iterations > 256 {
            break;
        }
    }

    let mut indirect_targets: HashMap<(String, String), BTreeSet<String>> = HashMap::new();
    for site in &indirect_sites {
        let targets: BTreeSet<String> = pts
            .get(&site.callee_loc)
            .map(|s| {
                s.iter()
                    .filter_map(|l| match l {
                        Loc::Func(f) => Some(f.clone()),
                        _ => None,
                    })
                    .collect()
            })
            .unwrap_or_default();
        indirect_targets
            .entry((site.func.clone(), site.callee_text.clone()))
            .or_default()
            .extend(targets);
    }

    PointsToResult {
        pts,
        indirect_targets,
        sensitivity,
        constraint_count,
        iterations,
    }
}

fn copy_into(pts: &mut BTreeMap<Loc, BTreeSet<Loc>>, dst: &Loc, src: &Loc) -> bool {
    if dst == src {
        return false;
    }
    let src_set = pts.get(src).cloned().unwrap_or_default();
    if src_set.is_empty() {
        return false;
    }
    let dst_set = pts.entry(dst.clone()).or_default();
    let before = dst_set.len();
    dst_set.extend(src_set);
    dst_set.len() != before
}

struct ConstraintGen<'p> {
    program: &'p Program,
    sensitivity: Sensitivity,
    constraints: Vec<Constraint>,
    indirect_sites: Vec<IndirectSite>,
    temp_counter: u32,
    alloc_counter: u32,
    current_func: String,
}

impl<'p> ConstraintGen<'p> {
    fn fresh(&mut self) -> Loc {
        self.temp_counter += 1;
        Loc::Temp {
            func: self.current_func.clone(),
            id: self.temp_counter,
        }
    }

    fn push(&mut self, c: Constraint) {
        if self.sensitivity == Sensitivity::Steensgaard {
            if let Constraint::Copy { dst, src } = &c {
                self.constraints.push(Constraint::Copy {
                    dst: src.clone(),
                    src: dst.clone(),
                });
            }
        }
        self.constraints.push(c);
    }

    fn var_loc(&self, ctx: &TypeCtx<'_>, name: &str) -> Option<Loc> {
        if ctx.lookup(name).is_some() {
            if self.program.global(name).is_some() {
                return Some(Loc::Global(name.to_string()));
            }
            if self.program.function(name).is_some()
                && !matches!(ctx.lookup(name), Some(t) if !matches!(t, Type::Func(_)))
            {
                // A bare function name: handled by the caller (AddrOf(Func)).
                return None;
            }
            return Some(Loc::Local {
                func: self.current_func.clone(),
                var: name.to_string(),
            });
        }
        if self.program.global(name).is_some() {
            return Some(Loc::Global(name.to_string()));
        }
        None
    }

    fn field_loc(&self, composite: Option<String>, field: &str) -> Loc {
        match (self.sensitivity, composite) {
            (Sensitivity::AndersenField, Some(c)) => Loc::Field {
                composite: c,
                field: field.to_string(),
            },
            (_, Some(c)) => Loc::Composite(c),
            (_, None) => Loc::Composite("<unknown>".to_string()),
        }
    }

    fn gen_function(&mut self, func: &Function) {
        self.current_func = func.name.clone();
        self.temp_counter = 0;
        let mut ctx = TypeCtx::for_function(self.program, func);
        let body = func
            .body
            .clone()
            .expect("only called for defined functions");
        self.gen_block(&body, func, &mut ctx);
    }

    fn gen_block(&mut self, block: &ivy_cmir::Block, func: &Function, ctx: &mut TypeCtx<'_>) {
        for stmt in &block.stmts {
            self.gen_stmt(stmt, func, ctx);
        }
    }

    fn gen_stmt(&mut self, stmt: &Stmt, func: &Function, ctx: &mut TypeCtx<'_>) {
        match stmt {
            Stmt::Local(d, init) => {
                if let Some(init) = init {
                    let src = self.gen_value(init, ctx);
                    self.push(Constraint::Copy {
                        dst: Loc::Local {
                            func: self.current_func.clone(),
                            var: d.name.clone(),
                        },
                        src,
                    });
                }
                ctx.bind(&d.name, d.ty.clone());
            }
            Stmt::Assign(lhs, rhs, _) => {
                let src = self.gen_value(rhs, ctx);
                self.gen_store(lhs, src, ctx);
            }
            Stmt::Expr(e, _) => {
                let _ = self.gen_value(e, ctx);
            }
            Stmt::Return(Some(e), _) => {
                let src = self.gen_value(e, ctx);
                self.push(Constraint::Copy {
                    dst: Loc::Ret(self.current_func.clone()),
                    src,
                });
            }
            Stmt::Return(None, _) | Stmt::Break(_) | Stmt::Continue(_) => {}
            Stmt::If(c, then_b, else_b, _) => {
                let _ = self.gen_value(c, ctx);
                self.gen_block(then_b, func, ctx);
                if let Some(b) = else_b {
                    self.gen_block(b, func, ctx);
                }
            }
            Stmt::While(c, body, _) => {
                let _ = self.gen_value(c, ctx);
                self.gen_block(body, func, ctx);
            }
            Stmt::Block(b) | Stmt::DelayedFreeScope(b, _) => self.gen_block(b, func, ctx),
            Stmt::Check(c, _) => {
                visit::walk_check_exprs(c, &mut |_| {});
            }
        }
    }

    fn gen_store(&mut self, lhs: &Expr, src: Loc, ctx: &mut TypeCtx<'_>) {
        match lhs {
            Expr::Var(name) => {
                if let Some(dst) = self.var_loc(ctx, name) {
                    self.push(Constraint::Copy { dst, src });
                }
            }
            Expr::Deref(inner) | Expr::Index(inner, _) => {
                let dst = self.gen_value(inner, ctx);
                self.push(Constraint::Store { dst, src });
            }
            Expr::Arrow(obj, field) => {
                let comp = ctx.composite_name_of(obj);
                let _ = self.gen_value(obj, ctx);
                let dst = self.field_loc(comp, field);
                self.push(Constraint::Copy { dst, src });
            }
            Expr::Field(obj, field) => {
                let comp = ctx.composite_name_of(obj);
                let _ = self.gen_value(obj, ctx);
                let dst = self.field_loc(comp, field);
                self.push(Constraint::Copy { dst, src });
            }
            Expr::Cast(_, inner) => self.gen_store(inner, src, ctx),
            _ => {
                // Not an lvalue the analysis models; evaluate for calls.
                let _ = self.gen_value(lhs, ctx);
            }
        }
    }

    fn gen_value(&mut self, e: &Expr, ctx: &mut TypeCtx<'_>) -> Loc {
        match e {
            Expr::Int(_) | Expr::Str(_) | Expr::Null | Expr::SizeOf(_) => self.fresh(),
            Expr::Var(name) => {
                if self.program.function(name).is_some() && ctx_local_shadows(ctx, name).is_none() {
                    let t = self.fresh();
                    self.push(Constraint::AddrOf {
                        dst: t.clone(),
                        loc: Loc::Func(name.clone()),
                    });
                    t
                } else if let Some(l) = self.var_loc(ctx, name) {
                    // Arrays decay to a pointer to their own storage when used
                    // as a value.
                    let is_array = ctx
                        .lookup(name)
                        .map(|t| matches!(self.program.resolve_type(&t), Type::Array(..)))
                        .unwrap_or(false);
                    if is_array {
                        let t = self.fresh();
                        self.push(Constraint::AddrOf {
                            dst: t.clone(),
                            loc: l,
                        });
                        t
                    } else {
                        l
                    }
                } else {
                    self.fresh()
                }
            }
            Expr::Unary(_, inner) => self.gen_value(inner, ctx),
            Expr::Binary(_, a, b) => {
                let la = self.gen_value(a, ctx);
                let lb = self.gen_value(b, ctx);
                let t = self.fresh();
                self.push(Constraint::Copy {
                    dst: t.clone(),
                    src: la,
                });
                self.push(Constraint::Copy {
                    dst: t.clone(),
                    src: lb,
                });
                t
            }
            Expr::Cast(_, inner) => self.gen_value(inner, ctx),
            Expr::Deref(inner) | Expr::Index(inner, _) => {
                let src = self.gen_value(inner, ctx);
                let t = self.fresh();
                self.push(Constraint::Load {
                    dst: t.clone(),
                    src,
                });
                t
            }
            Expr::Arrow(obj, field) => {
                let comp = ctx.composite_name_of(obj);
                let _ = self.gen_value(obj, ctx);
                let t = self.fresh();
                let f = self.field_loc(comp, field);
                self.push(Constraint::Copy {
                    dst: t.clone(),
                    src: f,
                });
                t
            }
            Expr::Field(obj, field) => {
                let comp = ctx.composite_name_of(obj);
                let _ = self.gen_value(obj, ctx);
                let t = self.fresh();
                let f = self.field_loc(comp, field);
                self.push(Constraint::Copy {
                    dst: t.clone(),
                    src: f,
                });
                t
            }
            Expr::AddrOf(inner) => match &**inner {
                Expr::Var(name) => {
                    let t = self.fresh();
                    let loc = if self.program.function(name).is_some()
                        && ctx_local_shadows(ctx, name).is_none()
                    {
                        Loc::Func(name.clone())
                    } else if let Some(l) = self.var_loc(ctx, name) {
                        l
                    } else {
                        return t;
                    };
                    self.push(Constraint::AddrOf {
                        dst: t.clone(),
                        loc,
                    });
                    t
                }
                Expr::Arrow(obj, field) | Expr::Field(obj, field) => {
                    let comp = ctx.composite_name_of(obj);
                    let _ = self.gen_value(obj, ctx);
                    let t = self.fresh();
                    let loc = self.field_loc(comp, field);
                    self.push(Constraint::AddrOf {
                        dst: t.clone(),
                        loc,
                    });
                    t
                }
                Expr::Index(base, _) => self.gen_value(base, ctx),
                Expr::Deref(p) => self.gen_value(p, ctx),
                other => self.gen_value(other, ctx),
            },
            Expr::Call(callee, args) => {
                let arg_locs: Vec<Loc> = args.iter().map(|a| self.gen_value(a, ctx)).collect();
                let result = self.fresh();
                match &**callee {
                    Expr::Var(name)
                        if self.program.function(name).is_some()
                            && ctx_local_shadows(ctx, name).is_none() =>
                    {
                        let f = self.program.function(name).expect("checked above").clone();
                        if f.attrs.allocator {
                            self.alloc_counter += 1;
                            let site = format!("{}#{}", self.current_func, self.alloc_counter);
                            self.push(Constraint::AddrOf {
                                dst: result.clone(),
                                loc: Loc::Alloc { site },
                            });
                        }
                        for (idx, param) in f.params.iter().enumerate() {
                            if let Some(arg_loc) = arg_locs.get(idx) {
                                self.push(Constraint::Copy {
                                    dst: Loc::Local {
                                        func: name.clone(),
                                        var: param.name.clone(),
                                    },
                                    src: arg_loc.clone(),
                                });
                            }
                        }
                        if !f.attrs.allocator {
                            self.push(Constraint::Copy {
                                dst: result.clone(),
                                src: Loc::Ret(name.clone()),
                            });
                        }
                    }
                    other => {
                        let callee_loc = self.gen_value(other, ctx);
                        self.indirect_sites.push(IndirectSite {
                            func: self.current_func.clone(),
                            callee_text: ivy_cmir::pretty::expr_str(other),
                            callee_loc,
                            arg_locs,
                            result_loc: result.clone(),
                        });
                    }
                }
                result
            }
        }
    }
}

fn ctx_local_shadows(ctx: &TypeCtx<'_>, name: &str) -> Option<Type> {
    // A local variable with the same name as a function shadows it; in that
    // case the variable is not a function constant.
    match ctx.lookup(name) {
        Some(Type::Func(_)) | None => None,
        Some(t) => Some(t),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivy_cmir::parser::parse_program;

    const OPS_TABLE: &str = r#"
        struct file_ops {
            read: fnptr(u32) -> i32;
            write: fnptr(u32) -> i32;
        }
        global ext2_ops: struct file_ops;
        global pipe_ops: struct file_ops;

        fn ext2_read(n: u32) -> i32 { return 1; }
        fn ext2_write(n: u32) -> i32 { return 2; }
        fn pipe_read(n: u32) -> i32 { return 3; }

        fn register_ops() {
            ext2_ops.read = ext2_read;
            ext2_ops.write = ext2_write;
            pipe_ops.read = pipe_read;
        }

        fn vfs_read(ops: struct file_ops *, n: u32) -> i32 {
            return ops->read(n);
        }

        fn do_read(n: u32) -> i32 {
            return vfs_read(&ext2_ops, n);
        }
    "#;

    #[test]
    fn resolves_function_pointers_through_struct_fields() {
        let p = parse_program(OPS_TABLE).unwrap();
        let r = analyze(&p, Sensitivity::AndersenField);
        let targets = r.indirect_call_targets("vfs_read", "ops->read");
        assert!(targets.contains("ext2_read"), "targets: {targets:?}");
        assert!(
            targets.contains("pipe_read"),
            "field-based merging expected"
        );
        // Field sensitivity separates read from write.
        assert!(!targets.contains("ext2_write"), "targets: {targets:?}");
    }

    #[test]
    fn field_insensitive_merges_fields() {
        let p = parse_program(OPS_TABLE).unwrap();
        let r = analyze(&p, Sensitivity::Andersen);
        let targets = r.indirect_call_targets("vfs_read", "ops->read");
        // Without field sensitivity read and write collapse.
        assert!(targets.contains("ext2_write"), "targets: {targets:?}");
    }

    #[test]
    fn steensgaard_is_no_more_precise_than_andersen() {
        let p = parse_program(OPS_TABLE).unwrap();
        let st = analyze(&p, Sensitivity::Steensgaard);
        let an = analyze(&p, Sensitivity::Andersen);
        let t_st = st.indirect_call_targets("vfs_read", "ops->read");
        let t_an = an.indirect_call_targets("vfs_read", "ops->read");
        assert!(t_an.is_subset(&t_st) || t_an == t_st);
    }

    #[test]
    fn direct_call_binds_parameters() {
        let src = r#"
            fn callee(p: u8 *) -> u8 * { return p; }
            global buffer: u8[64];
            fn caller() -> u8 * {
                let q: u8 * = callee(&buffer[0]);
                return q;
            }
        "#;
        let p = parse_program(src).unwrap();
        let r = analyze(&p, Sensitivity::Andersen);
        let q = Loc::Local {
            func: "caller".into(),
            var: "q".into(),
        };
        let pts = r.points_to(&q);
        assert!(
            pts.iter()
                .any(|l| matches!(l, Loc::Global(g) if g == "buffer")),
            "q should point to buffer, got {pts:?}"
        );
    }

    #[test]
    fn allocation_sites_are_distinct() {
        let src = r#"
            #[allocator]
            fn kmalloc(size: u32, flags: u32) -> void * { return null; }
            fn f() {
                let a: u8 * = kmalloc(16, 0) as u8 *;
                let b: u8 * = kmalloc(32, 0) as u8 *;
                a = b;
            }
        "#;
        let p = parse_program(src).unwrap();
        let r = analyze(&p, Sensitivity::Andersen);
        let a = Loc::Local {
            func: "f".into(),
            var: "a".into(),
        };
        let b = Loc::Local {
            func: "f".into(),
            var: "b".into(),
        };
        // `a` sees both sites after `a = b`; `b` sees only its own.
        assert_eq!(r.points_to(&a).len(), 2, "{:?}", r.points_to(&a));
        assert_eq!(r.points_to(&b).len(), 1);
    }

    #[test]
    fn function_pointer_call_binds_arguments() {
        let src = r#"
            global sink: u8 *;
            fn store(p: u8 *) { sink = p; }
            global hook: fnptr(u8 *) -> void;
            global data: u8[8];
            fn setup() { hook = store; }
            fn fire() { hook(&data[0]); }
        "#;
        let p = parse_program(src).unwrap();
        let r = analyze(&p, Sensitivity::Andersen);
        let sink = Loc::Global("sink".into());
        let pts = r.points_to(&sink);
        assert!(
            pts.iter()
                .any(|l| matches!(l, Loc::Global(g) if g == "data")),
            "indirect call must bind args: {pts:?}"
        );
        let targets = r.indirect_call_targets("fire", "hook");
        assert_eq!(
            targets.into_iter().collect::<Vec<_>>(),
            vec!["store".to_string()]
        );
    }

    #[test]
    fn reports_constraint_statistics() {
        let p = parse_program(OPS_TABLE).unwrap();
        let r = analyze(&p, Sensitivity::AndersenField);
        assert!(r.constraint_count > 0);
        assert!(r.iterations >= 1);
        assert!(r.mean_indirect_fanout() >= 1.0);
    }
}
