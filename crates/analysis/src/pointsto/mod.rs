//! Whole-program points-to analysis.
//!
//! BlockStop needs to know "which functions can this function pointer refer
//! to" (§2.3 of the paper); Deputy and CCount reuse the same results for
//! alias queries. Three precision levels are provided, matching the paper's
//! observation that replacing the "simple points-to analysis with one that is
//! field- and context-sensitive would improve the results":
//!
//! * [`Sensitivity::Steensgaard`] — equality-based (assignments unify both
//!   sides), the coarsest and fastest.
//! * [`Sensitivity::Andersen`] — subset-based, struct fields collapsed per
//!   composite type.
//! * [`Sensitivity::AndersenField`] — subset-based with field-based
//!   field-sensitivity (one abstract location per `(composite, field)` pair).
//!
//! The analysis is flow-insensitive and context-insensitive, as in the paper.
//!
//! # The substrate
//!
//! The analysis is split into layered modules:
//!
//! * [`constraints`](self) — syntax-directed constraint generation, batched
//!   per function; a batch depends only on the function's own definition
//!   plus the whole-program type environment.
//! * `intern` — [`Loc`] ↔ dense `u32` interning, so the solver runs on
//!   integer indices and `Vec` adjacency instead of string-keyed maps.
//! * `solve` — the serial worklist solver with **difference propagation**
//!   (only newly-added locations flow along edges) and online
//!   indirect-call resolution (discovering a function-pointer target adds
//!   its binding edges inside the worklist). The fixpoint terminates by
//!   construction; there is no iteration cap anywhere.
//! * `parallel` — the **parallel wavefront** solver: the copy graph is
//!   condensed into SCCs, nodes are partitioned once into ownership
//!   shards of whole SCCs contiguous in topological order, and the solve
//!   runs in supersteps (shards drain local worklists in parallel, a
//!   serial merge barrier routes cross-shard deltas and installs
//!   dynamically discovered edges). The inclusion fixpoint is unique, so
//!   the result is byte-identical to `solve` at any thread count.
//! * `unify` — **union-find Steensgaard**: path-compressed, union-by-rank
//!   unification, the native representation for equality constraints
//!   (the worklist encodes them as mirrored subset edges).
//! * `delta` — **DRed-style delta re-solve**: after an edit, retracted
//!   batches' facts are over-approximately deleted, survivors re-derived,
//!   and the new batches' facts inserted by difference propagation —
//!   instead of re-propagating the whole cached graph.
//!
//! Entry points share those layers:
//!
//! * [`analyze`] / [`analyze_with`] — one-shot solve; [`SolveOptions`]
//!   picks the solver ([`SolverChoice`], `IVY_THREADS`) or lets dispatch
//!   choose (union-find for Steensgaard, wavefront at >1 thread).
//! * [`analyze_incremental`] / [`analyze_incremental_with`] — solve
//!   against a [`ConstraintCache`]: per-function constraint batches are
//!   keyed by `mix(content_hash, env_hash)` and reused across programs,
//!   so re-analyzing an edited program regenerates constraints only for
//!   the dirty functions; small edits are delta-repaired, large ones
//!   re-propagated ([`SolveMode`] reports which path ran).
//! * [`analyze_naive`] — the retained naive reference solver, kept for
//!   differential testing (Klinger et al.-style) and the ablation bench.
//!
//! All paths produce identical `pts` / `indirect_targets`; the differential
//! property tests in `crates/analysis/tests/differential_pointsto.rs` pin
//! that down on generated programs across every sensitivity and solver.

mod constraints;
mod delta;
mod intern;
mod naive;
mod parallel;
mod solve;
mod unify;

use crate::summary::{env_hash, fnv1a, mix};
use constraints::{
    gen_function_batch, gen_globals, gen_program, intern_batch, IConstraint, InternedBatch,
};
use intern::SharedInterner;
use ivy_cmir::ast::Program;
use ivy_cmir::content::function_content_hash;
use ivy_provenance::{EdgeKind, ProvStore, SEED};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Precision level of the points-to analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Sensitivity {
    /// Equality-based unification (Steensgaard-style).
    #[default]
    Steensgaard,
    /// Subset-based, field-insensitive (all fields of a composite collapse).
    Andersen,
    /// Subset-based, field-based field-sensitivity.
    AndersenField,
}

impl Sensitivity {
    /// Human-readable name used in reports and the ablation benchmark.
    pub fn name(self) -> &'static str {
        match self {
            Sensitivity::Steensgaard => "steensgaard",
            Sensitivity::Andersen => "andersen",
            Sensitivity::AndersenField => "andersen+field",
        }
    }
}

/// Which solver implementation a solve should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SolverChoice {
    /// Pick automatically: union-find for Steensgaard, delta repair when a
    /// cached fixpoint covers the edit, the parallel wavefront when more
    /// than one thread is configured, the serial worklist otherwise.
    #[default]
    Auto,
    /// The serial difference-propagating worklist.
    Worklist,
    /// Union-find unification (Steensgaard only; other sensitivities fall
    /// back to the worklist).
    UnionFind,
    /// The parallel wavefront solver.
    Parallel,
}

/// How a solve should run. [`SolveOptions::from_env`] reads `IVY_THREADS`
/// and `IVY_PROVENANCE` so deployments opt into parallel solving and
/// derivation tracing without an API change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveOptions {
    /// Solver implementation to use.
    pub solver: SolverChoice,
    /// Worker threads for the parallel wavefront solver (1 = serial).
    pub threads: usize,
    /// Record a derivation step for every points-to fact (see
    /// [`PointsToResult::why`]). Only the worklist family records
    /// provenance, so dispatch never picks union-find or delta repair
    /// while this is set — sound, because every solver path produces
    /// byte-identical output.
    pub provenance: bool,
}

impl Default for SolveOptions {
    fn default() -> SolveOptions {
        SolveOptions {
            solver: SolverChoice::Auto,
            threads: 1,
            provenance: false,
        }
    }
}

impl SolveOptions {
    /// Options driven by the environment: `IVY_THREADS` sets the thread
    /// count (default 1), `IVY_PROVENANCE` (`1`/`true`/`on`) turns on
    /// derivation tracing, solver choice stays automatic.
    pub fn from_env() -> SolveOptions {
        let threads = std::env::var("IVY_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&t| t >= 1)
            .unwrap_or(1);
        let provenance =
            std::env::var("IVY_PROVENANCE").is_ok_and(|v| matches!(v.trim(), "1" | "true" | "on"));
        SolveOptions {
            solver: SolverChoice::Auto,
            threads,
            provenance,
        }
    }

    /// `self` with derivation tracing switched on or off.
    pub fn with_provenance(mut self, on: bool) -> SolveOptions {
        self.provenance = on;
        self
    }
}

/// How a points-to result was actually computed (the solve-mode
/// discriminator surfaced through engine stats and the daemon).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SolveMode {
    /// Solved from scratch: every constraint batch was generated fresh.
    #[default]
    Cold,
    /// Re-propagated the full cached constraint graph (batches reused,
    /// but the fixpoint was recomputed from empty sets).
    Repropagate,
    /// DRed-style repair of a previous fixpoint: delete the
    /// over-approximate deletion set, re-derive survivors, insert.
    DeltaRepair,
}

impl SolveMode {
    /// Stable name used in stats, metrics labels, and bench reports.
    pub fn name(self) -> &'static str {
        match self {
            SolveMode::Cold => "cold",
            SolveMode::Repropagate => "incremental-repropagate",
            SolveMode::DeltaRepair => "delta-repair",
        }
    }
}

/// A logged fixpoint: everything the delta re-solver needs to repair the
/// previous solution instead of re-propagating from scratch. The sets are
/// shared (`Arc`) with the [`PointsToResult`] that produced them — capture
/// is O(plan length), not a copy of the solution.
#[derive(Debug)]
struct FixpointState {
    /// The solve plan that produced this fixpoint, as `(batch key, batch)`.
    plan: Vec<(u64, Arc<InternedBatch>)>,
    /// Non-empty points-to sets at the fixpoint.
    sets: Arc<Vec<(u32, Vec<u32>)>>,
    /// Dynamic copy edges `(src, dst, trigger)` the solve spawned while
    /// processing loads, stores, and indirect-call bindings.
    dyn_edges: Vec<solve::DynEdge>,
}

/// An abstract memory location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Loc {
    /// A global variable.
    Global(String),
    /// A local variable or parameter of a function.
    Local {
        /// Enclosing function.
        func: String,
        /// Variable name.
        var: String,
    },
    /// A field of a composite type (field-sensitive mode).
    Field {
        /// Composite type name.
        composite: String,
        /// Field name.
        field: String,
    },
    /// A whole composite type (field-insensitive mode).
    Composite(String),
    /// A heap allocation site.
    Alloc {
        /// `function#index` of the allocating call (index counted within
        /// the function, so a function's constraints are position
        /// independent).
        site: String,
    },
    /// The address of a function (the targets of function pointers).
    Func(String),
    /// The return value of a function.
    Ret(String),
    /// An analysis-internal temporary.
    Temp {
        /// Enclosing function.
        func: String,
        /// Sequential id.
        id: u32,
    },
}

impl std::fmt::Display for Loc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Loc::Global(g) => write!(f, "global {g}"),
            Loc::Local { func, var } => write!(f, "{func}::{var}"),
            Loc::Field { composite, field } => write!(f, "{composite}.{field}"),
            Loc::Composite(c) => write!(f, "struct {c}"),
            Loc::Alloc { site } => write!(f, "alloc@{site}"),
            Loc::Func(name) => write!(f, "fn {name}"),
            Loc::Ret(name) => write!(f, "ret {name}"),
            Loc::Temp { func, id } => write!(f, "{func}::$t{id}"),
        }
    }
}

/// One link of a rendered derivation chain (see [`PointsToResult::why`]):
/// the fact "`dst` may point to `pointee`" plus the rule that derived it.
/// Chains are seed-first — the first link is always an `addr-of` seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainLink {
    /// The location whose points-to set gained `pointee` at this step.
    pub dst: Loc,
    /// The pointee.
    pub pointee: Loc,
    /// The location the fact flowed from (`None` for an `addr-of` seed).
    pub src: Option<Loc>,
    /// The rule that justified the step: `"addr-of"` for seeds, `"copy"`
    /// for static assignment edges, and `"load"` / `"store"` /
    /// `"call-bind"` for edges the solver discovered dynamically.
    pub rule: &'static str,
    /// For dynamically discovered edges, the `(trigger, aux)` premise:
    /// the pointer (or callee) node whose points-to fact spawned the edge,
    /// and the pointee that fact contributed.
    pub via: Option<(Loc, Loc)>,
}

impl ChainLink {
    /// One human-readable line for reports and the `explain` daemon verb.
    pub fn render(&self) -> String {
        match (&self.src, &self.via) {
            (None, _) => format!("{} may point to {}  [addr-of seed]", self.dst, self.pointee),
            (Some(src), None) => format!(
                "{} may point to {}  [{} from {}]",
                self.dst, self.pointee, self.rule, src
            ),
            (Some(src), Some((trigger, aux))) => format!(
                "{} may point to {}  [{} from {}; edge spawned by \"{} may point to {}\"]",
                self.dst, self.pointee, self.rule, src, trigger, aux
            ),
        }
    }
}

/// The interned solution a worklist solve produces: final sets per location
/// id plus the interner that gives the ids meaning. The `Loc`-keyed view is
/// materialized lazily (see [`PointsToResult::pts`]); incremental re-solves
/// that never get asked for the full map never pay for building it.
#[derive(Debug, Clone)]
struct Solution {
    interner: Arc<SharedInterner>,
    /// Non-empty points-to sets, `(location id, sorted pointee ids)`.
    sets: Arc<Vec<(u32, Vec<u32>)>>,
}

impl Solution {
    fn materialize(&self) -> BTreeMap<Loc, BTreeSet<Loc>> {
        let interner = self.interner.lock();
        self.sets
            .iter()
            .map(|(id, set)| {
                (
                    interner.resolve(*id).clone(),
                    set.iter().map(|&p| interner.resolve(p).clone()).collect(),
                )
            })
            .collect()
    }
}

/// Result of the points-to analysis.
#[derive(Debug, Clone, Default)]
pub struct PointsToResult {
    /// Interned solution (absent for results of the naive reference, which
    /// computes the `Loc`-keyed map directly).
    solution: Option<Solution>,
    /// Lazily materialized `Loc`-keyed view of the solution.
    pts_cache: OnceLock<BTreeMap<Loc, BTreeSet<Loc>>>,
    /// For every indirect call, keyed by `(function, callee expression
    /// text)`, the set of function names the callee may refer to.
    pub indirect_targets: HashMap<(String, String), BTreeSet<String>>,
    /// Precision level that produced this result.
    pub sensitivity: Sensitivity,
    /// Constraints generated from syntax, before indirect-call resolution
    /// appended bindings (the number the seed's ablation bench
    /// under-reported as its total).
    pub initial_constraints: usize,
    /// Total constraints solved, *including* the argument/return bindings
    /// added while resolving indirect calls.
    pub constraint_count: usize,
    /// Solver steps to fixpoint: full rescan rounds for the naive
    /// reference, worklist pops for the difference-propagating solver.
    pub iterations: usize,
    /// Per-function constraint batches served from a [`ConstraintCache`]
    /// (0 for non-incremental runs).
    pub batches_reused: usize,
    /// Per-function constraint batches generated fresh in this run.
    pub batches_generated: usize,
    /// How this result was computed (cold / re-propagate / delta repair).
    pub mode: SolveMode,
    /// Worker threads the solve actually used.
    pub threads_used: usize,
    /// Facts discarded by the delta re-solver's deletion phase (0 unless
    /// `mode` is [`SolveMode::DeltaRepair`]).
    pub delta_deleted: u64,
    /// Delta locations re-propagated while repairing (0 unless `mode` is
    /// [`SolveMode::DeltaRepair`]).
    pub delta_rederived: u64,
    /// Derivation arena recorded during the solve (`None` unless the solve
    /// ran with [`SolveOptions::provenance`]).
    provenance: Option<Arc<ProvStore>>,
}

impl PointsToResult {
    fn from_solution(
        interner: Arc<SharedInterner>,
        out: solve::SolveOutput,
        sensitivity: Sensitivity,
        batches_reused: usize,
        batches_generated: usize,
    ) -> PointsToResult {
        let provenance = out.provenance.map(Arc::new);
        let sets: Vec<(u32, Vec<u32>)> = out
            .sets
            .into_iter()
            .enumerate()
            .filter(|(_, s)| !s.is_empty())
            .map(|(id, s)| (id as u32, s))
            .collect();
        PointsToResult {
            solution: Some(Solution {
                interner,
                sets: Arc::new(sets),
            }),
            pts_cache: OnceLock::new(),
            indirect_targets: out.indirect_targets,
            sensitivity,
            initial_constraints: out.initial_constraints,
            constraint_count: out.total_constraints,
            iterations: out.pops,
            batches_reused,
            batches_generated,
            mode: SolveMode::Cold,
            threads_used: 1,
            delta_deleted: 0,
            delta_rederived: 0,
            provenance,
        }
    }

    pub(crate) fn from_naive(
        pts: BTreeMap<Loc, BTreeSet<Loc>>,
        indirect_targets: HashMap<(String, String), BTreeSet<String>>,
        sensitivity: Sensitivity,
        initial_constraints: usize,
        constraint_count: usize,
        iterations: usize,
    ) -> PointsToResult {
        PointsToResult {
            solution: None,
            pts_cache: OnceLock::from(pts),
            indirect_targets,
            sensitivity,
            initial_constraints,
            constraint_count,
            iterations,
            batches_reused: 0,
            batches_generated: 0,
            mode: SolveMode::Cold,
            threads_used: 1,
            delta_deleted: 0,
            delta_rederived: 0,
            provenance: None,
        }
    }

    /// Points-to sets for every abstract location with a non-empty set,
    /// materialized from the interned solution on first use and cached.
    pub fn pts(&self) -> &BTreeMap<Loc, BTreeSet<Loc>> {
        self.pts_cache.get_or_init(|| {
            self.solution
                .as_ref()
                .map(Solution::materialize)
                .unwrap_or_default()
        })
    }

    /// The points-to set of a location (empty if unknown).
    pub fn points_to(&self, loc: &Loc) -> BTreeSet<Loc> {
        self.pts().get(loc).cloned().unwrap_or_default()
    }

    /// The functions a given location may point to.
    pub fn functions_pointed_by(&self, loc: &Loc) -> BTreeSet<String> {
        self.points_to(loc)
            .into_iter()
            .filter_map(|l| match l {
                Loc::Func(f) => Some(f),
                _ => None,
            })
            .collect()
    }

    /// Borrowed view of the possible targets of an indirect call (`None`
    /// when the site is unknown). This is the query path for call-graph
    /// construction and checkers — no set clone per call site.
    pub fn indirect_targets_for(&self, func: &str, callee_text: &str) -> Option<&BTreeSet<String>> {
        self.indirect_targets
            .get(&(func.to_string(), callee_text.to_string()))
    }

    /// The possible targets of an indirect call, identified by the enclosing
    /// function and the callee expression's printed form.
    pub fn indirect_call_targets(&self, func: &str, callee_text: &str) -> BTreeSet<String> {
        self.indirect_targets_for(func, callee_text)
            .cloned()
            .unwrap_or_default()
    }

    /// Average size of the points-to sets of indirect-call callees (a
    /// precision metric used by the E6 ablation).
    pub fn mean_indirect_fanout(&self) -> f64 {
        if self.indirect_targets.is_empty() {
            return 0.0;
        }
        let total: usize = self.indirect_targets.values().map(|s| s.len()).sum();
        total as f64 / self.indirect_targets.len() as f64
    }

    /// Whether this result carries a derivation arena.
    pub fn has_provenance(&self) -> bool {
        self.provenance.is_some()
    }

    /// Number of derivation steps recorded (0 when provenance was off).
    /// One step per derived fact, so this also counts the facts.
    pub fn provenance_facts(&self) -> usize {
        self.provenance.as_ref().map_or(0, |p| p.facts())
    }

    /// Number of dynamically-discovered graph edges whose justification
    /// was recorded (0 when provenance was off). Together with
    /// [`PointsToResult::provenance_facts`] this counts every recording
    /// call the solver made — what a disabled-mode overhead budget has to
    /// price.
    pub fn provenance_edges(&self) -> usize {
        self.provenance.as_ref().map_or(0, |p| p.dyn_edges())
    }

    /// Approximate heap footprint of the derivation arena in bytes (0 when
    /// provenance was off).
    pub fn provenance_bytes(&self) -> usize {
        self.provenance.as_ref().map_or(0, |p| p.bytes())
    }

    /// The derivation chain of the fact "`loc` may point to `target`",
    /// seed-first: the first link is an `addr-of` seed and every later
    /// link names the source set the fact flowed from plus the rule that
    /// carried it. `None` when provenance was not recorded, either
    /// location is unknown, or the fact does not hold.
    pub fn why(&self, loc: &Loc, target: &Loc) -> Option<Vec<ChainLink>> {
        let (dst, tgt) = {
            let sol = self.solution.as_ref()?;
            let interner = sol.interner.lock();
            (interner.lookup(loc)?, interner.lookup(target)?)
        };
        self.why_ids(dst, tgt)
    }

    /// The derivation chain behind one resolved indirect-call target: why
    /// the call through `callee_text` in `func` may reach `target_fn`.
    /// Regenerates the program's constraints to locate the call site's
    /// callee node (interning is append-only and idempotent, so the ids
    /// match the solve's).
    pub fn why_indirect(
        &self,
        program: &Program,
        func: &str,
        callee_text: &str,
        target_fn: &str,
    ) -> Option<Vec<ChainLink>> {
        let (callee, tgt) = {
            let sol = self.solution.as_ref()?;
            let mut interner = sol.interner.lock();
            let mut callee = None;
            'batches: for batch in gen_program(program, self.sensitivity) {
                let interned = intern_batch(&batch, &mut interner);
                for site in interned.sites {
                    if site.func == func && site.callee_text == callee_text {
                        callee = Some(site.callee);
                        break 'batches;
                    }
                }
            }
            (callee?, interner.lookup(&Loc::Func(target_fn.to_string()))?)
        };
        self.why_ids(callee, tgt)
    }

    fn why_ids(&self, dst: u32, tgt: u32) -> Option<Vec<ChainLink>> {
        let prov = self.provenance.as_ref()?;
        let chain = prov.why(dst, tgt)?;
        let sol = self.solution.as_ref()?;
        let interner = sol.interner.lock();
        Some(
            chain
                .iter()
                .map(|cs| ChainLink {
                    dst: interner.resolve(cs.dst).clone(),
                    pointee: interner.resolve(cs.pointee).clone(),
                    src: (cs.src != SEED).then(|| interner.resolve(cs.src).clone()),
                    rule: if cs.src == SEED {
                        "addr-of"
                    } else {
                        cs.edge.map_or("copy", |e| e.kind.name())
                    },
                    via: cs.edge.map(|e| {
                        (
                            interner.resolve(e.trigger).clone(),
                            interner.resolve(e.aux).clone(),
                        )
                    }),
                })
                .collect(),
        )
    }
}

/// Resolves [`SolverChoice::Auto`] for a from-scratch fixpoint (the delta
/// branch is decided by the incremental path before calling this).
fn resolve_choice(sensitivity: Sensitivity, opts: SolveOptions) -> SolverChoice {
    let resolved = match opts.solver {
        SolverChoice::Auto => {
            if sensitivity == Sensitivity::Steensgaard && !opts.provenance {
                SolverChoice::UnionFind
            } else if opts.threads > 1 {
                SolverChoice::Parallel
            } else {
                SolverChoice::Worklist
            }
        }
        c => c,
    };
    // Union-find unification records no derivation steps; a provenance
    // solve routes to the worklist instead (byte-identical output).
    if opts.provenance && resolved == SolverChoice::UnionFind {
        SolverChoice::Worklist
    } else {
        resolved
    }
}

/// Runs the chosen from-scratch solver. Returns the output plus the thread
/// count actually used. `log` asks the solver to record its dynamic edges
/// so the fixpoint can later be repaired incrementally (the union-find
/// solver cannot log — its fixpoints are never delta-repaired).
fn run_solver(
    sensitivity: Sensitivity,
    batches: &[Arc<InternedBatch>],
    bind: &solve::BindTable,
    opts: SolveOptions,
    log: bool,
) -> (solve::SolveOutput, usize) {
    match resolve_choice(sensitivity, opts) {
        SolverChoice::Auto => unreachable!("resolved above"),
        SolverChoice::Worklist => (
            solve::solve_worklist(sensitivity, batches, bind, log, opts.provenance),
            1,
        ),
        SolverChoice::UnionFind if sensitivity == Sensitivity::Steensgaard => {
            (unify::solve_unify(sensitivity, batches, bind), 1)
        }
        // Unification is only an equality-based (Steensgaard) encoding;
        // asking for it at a subset-based sensitivity means the worklist.
        SolverChoice::UnionFind => (
            solve::solve_worklist(sensitivity, batches, bind, log, opts.provenance),
            1,
        ),
        SolverChoice::Parallel => {
            let threads = opts.threads.max(1);
            (
                parallel::solve_parallel(sensitivity, batches, bind, threads, log, opts.provenance),
                threads,
            )
        }
    }
}

/// Runs the points-to analysis over a whole program (one-shot: constraints
/// are generated, interned into a fresh interner, and solved) with the
/// solver and thread count taken from the environment ([`SolveOptions::from_env`]).
pub fn analyze(program: &Program, sensitivity: Sensitivity) -> PointsToResult {
    analyze_with(program, sensitivity, SolveOptions::from_env())
}

/// [`analyze`] with explicit solver options.
pub fn analyze_with(
    program: &Program,
    sensitivity: Sensitivity,
    opts: SolveOptions,
) -> PointsToResult {
    let interner = Arc::new(SharedInterner::default());
    let (batches, bind) = {
        let _span = ivy_telemetry::span("pointsto/intern", sensitivity.name());
        let mut guard = interner.lock();
        let batches: Vec<Arc<InternedBatch>> = gen_program(program, sensitivity)
            .iter()
            .map(|b| Arc::new(intern_batch(b, &mut guard)))
            .collect();
        let bind = solve::BindTable::build(program, &batches, &mut guard);
        (batches, bind)
    };
    let (out, threads_used) = run_solver(sensitivity, &batches, &bind, opts, false);
    let generated = batches.len();
    let mut r = PointsToResult::from_solution(interner, out, sensitivity, 0, generated);
    r.threads_used = threads_used;
    ivy_telemetry::counter_labeled("ivy_pointsto_solves_total", "mode", r.mode.name(), 1);
    r
}

/// Runs the retained naive reference solver (rescan-all rounds over
/// `Loc`-keyed `BTreeMap`s). Slow by design; used by the differential
/// property tests and the solver-scaling bench.
pub fn analyze_naive(program: &Program, sensitivity: Sensitivity) -> PointsToResult {
    let mut constraints = Vec::new();
    let mut indirect_sites = Vec::new();
    for batch in gen_program(program, sensitivity) {
        constraints.extend(batch.constraints);
        indirect_sites.extend(batch.indirect_sites);
    }
    naive::solve_naive(program, sensitivity, constraints, indirect_sites)
}

/// Replays every derivation step of a provenance-enabled solve against the
/// program's own constraints. Checks three things:
///
/// 1. **Well-foundedness** — every premise fact was recorded at a strictly
///    lower arena index than the fact it justifies (so chains terminate).
/// 2. **Rule soundness** — seeds match an `AddrOf` constraint; every other
///    step crosses either a static `Copy` edge or a recorded dynamic edge
///    whose trigger fact exists, precedes the step, and matches the
///    spawning rule (`Load` / `Store` / indirect-call binding).
/// 3. **Completeness** — the recorded facts are exactly the final
///    points-to sets (every set element has a derivation and vice versa).
///
/// Returns the number of steps verified. `program` must be the program the
/// result was computed from.
pub fn verify_derivations(program: &Program, r: &PointsToResult) -> Result<usize, String> {
    let sol = r
        .solution
        .as_ref()
        .ok_or("result has no interned solution")?;
    let prov = r
        .provenance
        .as_ref()
        .ok_or("result has no provenance arena")?;
    let steensgaard = r.sensitivity == Sensitivity::Steensgaard;

    // Regenerate the constraints. Interning is append-only and idempotent,
    // so re-interning the same program yields the ids the solve used.
    let mut interner = sol.interner.lock();
    let batches: Vec<Arc<InternedBatch>> = gen_program(program, r.sensitivity)
        .iter()
        .map(|b| Arc::new(intern_batch(b, &mut interner)))
        .collect();
    let bind = solve::BindTable::build(program, &batches, &mut interner);
    drop(interner);

    let mut addrof: HashSet<(u32, u32)> = HashSet::new();
    let mut copies: HashSet<(u32, u32)> = HashSet::new();
    let mut loads: HashSet<(u32, u32)> = HashSet::new();
    let mut stores: HashSet<(u32, u32)> = HashSet::new();
    let mut sites: Vec<&constraints::ISite> = Vec::new();
    for batch in &batches {
        for c in &batch.constraints {
            match *c {
                IConstraint::AddrOf { dst, loc } => {
                    addrof.insert((dst, loc));
                }
                IConstraint::Copy { dst, src } => {
                    copies.insert((dst, src));
                }
                IConstraint::Load { dst, src } => {
                    loads.insert((dst, src));
                }
                IConstraint::Store { dst, src } => {
                    stores.insert((dst, src));
                }
            }
        }
        sites.extend(batch.sites.iter());
    }

    let mut verified = 0usize;
    for (i, step) in prov.steps().iter().enumerate() {
        let i = u32::try_from(i).expect("arena indices fit u32");
        if step.src == SEED {
            if !addrof.contains(&(step.dst, step.pointee)) {
                return Err(format!(
                    "step {i}: seed {} ∋ {} has no AddrOf constraint",
                    step.dst, step.pointee
                ));
            }
            verified += 1;
            continue;
        }
        // Premise 1: the same pointee in the source set, derived earlier.
        match prov.index_of(step.src, step.pointee) {
            Some(j) if j < i => {}
            Some(j) => {
                return Err(format!(
                    "step {i}: premise {} ∋ {} recorded later (step {j})",
                    step.src, step.pointee
                ))
            }
            None => {
                return Err(format!(
                    "step {i}: premise {} ∋ {} has no derivation",
                    step.src, step.pointee
                ))
            }
        }
        // The edge src → dst itself must be justified.
        if copies.contains(&(step.dst, step.src)) {
            verified += 1;
            continue;
        }
        let Some(e) = prov.edge_prov(step.src, step.dst) else {
            return Err(format!(
                "step {i}: edge {} → {} is neither a static copy nor a recorded dynamic edge",
                step.src, step.dst
            ));
        };
        // Premise 2: the fact that spawned the edge, derived earlier.
        match prov.index_of(e.trigger, e.aux) {
            Some(k) if k < i => {}
            Some(k) => {
                return Err(format!(
                    "step {i}: edge premise {} ∋ {} recorded later (step {k})",
                    e.trigger, e.aux
                ))
            }
            None => {
                return Err(format!(
                    "step {i}: edge premise {} ∋ {} has no derivation",
                    e.trigger, e.aux
                ))
            }
        }
        let rule_ok = match e.kind {
            // `t = *n` with n ∋ p spawns p → t: aux is p (= the step's
            // source), and a Load constraint reads through the trigger.
            EdgeKind::Load => e.aux == step.src && loads.contains(&(step.dst, e.trigger)),
            // `*n = s` with n ∋ p spawns s → p: aux is p (= the step's
            // destination), and a Store constraint writes through the
            // trigger.
            EdgeKind::Store => e.aux == step.dst && stores.contains(&(e.trigger, step.src)),
            // A callee set gaining a function spawns arg → param and
            // ret → result edges (mirrored under Steensgaard).
            EdgeKind::CallBind => bind
                .func_names
                .get(&e.aux)
                .and_then(|name| bind.funcs.get(name))
                .is_some_and(|(params, ret)| {
                    sites.iter().any(|s| {
                        s.callee == e.trigger
                            && (params.iter().zip(&s.args).any(|(&p, &a)| {
                                (step.src, step.dst) == (a, p)
                                    || (steensgaard && (step.src, step.dst) == (p, a))
                            }) || (step.src, step.dst) == (*ret, s.result)
                                || (steensgaard && (step.src, step.dst) == (s.result, *ret)))
                    })
                }),
        };
        if !rule_ok {
            return Err(format!(
                "step {i}: {} edge {} → {} not justified by trigger fact {} ∋ {}",
                e.kind.name(),
                step.src,
                step.dst,
                e.trigger,
                e.aux
            ));
        }
        verified += 1;
    }

    // Completeness: every element of every final set has a derivation, and
    // the counts match (sets only grow, so equal counts mean a bijection).
    let mut total = 0usize;
    for (id, set) in sol.sets.iter() {
        for &p in set {
            total += 1;
            if prov.index_of(*id, p).is_none() {
                return Err(format!("final fact {id} ∋ {p} has no derivation"));
            }
        }
    }
    if total != prov.facts() {
        return Err(format!(
            "arena records {} facts but the solution holds {total}",
            prov.facts()
        ));
    }
    Ok(verified)
}

/// Upper bound on cached constraint batches before the cache is cleared
/// wholesale (the interner is kept — ids stay valid).
const BATCH_CACHE_CAP: usize = 16384;

/// A cross-program cache of interned per-function constraint batches.
///
/// Batches are keyed by `mix(mix(content_hash, env_hash), sensitivity)`:
/// a function's constraints depend only on its own pretty-printed
/// definition and the whole-program type environment (callee signatures and
/// attributes, globals, composites, typedefs), so two programs that share a
/// function body and environment share its batch. After an edit,
/// [`analyze_incremental`] regenerates batches only for dirty functions and
/// re-solves from the cached interned graph — no `Loc` is constructed,
/// hashed, or interned for a clean function.
///
/// The interner is shared with every [`PointsToResult`] produced through
/// the cache, which is what makes their lazy `pts()` materialization work.
#[derive(Debug, Default)]
pub struct ConstraintCache {
    interner: Arc<SharedInterner>,
    batches: Mutex<HashMap<u64, Arc<InternedBatch>>>,
    /// Last logged fixpoint per sensitivity, for delta repair. A stale
    /// state is never wrong — it carries its own plan, and the repair is
    /// a plan diff — only potentially far from the new program.
    states: Mutex<HashMap<u64, Arc<FixpointState>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    solves_cold: AtomicU64,
    solves_repropagate: AtomicU64,
    solves_delta: AtomicU64,
}

impl ConstraintCache {
    /// An empty cache.
    pub fn new() -> ConstraintCache {
        ConstraintCache::default()
    }

    /// Number of cached batches.
    pub fn len(&self) -> usize {
        self.batches.lock().expect("batch map poisoned").len()
    }

    /// Whether the cache holds no batches.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Batches served from cache across all runs.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Batches generated fresh across all runs.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Solves through this cache that ran cold (no batch reused).
    pub fn solves_cold(&self) -> u64 {
        self.solves_cold.load(Ordering::Relaxed)
    }

    /// Solves that re-propagated the cached graph from empty sets.
    pub fn solves_repropagate(&self) -> u64 {
        self.solves_repropagate.load(Ordering::Relaxed)
    }

    /// Solves that delta-repaired a previous fixpoint.
    pub fn solves_delta(&self) -> u64 {
        self.solves_delta.load(Ordering::Relaxed)
    }

    fn count_mode(&self, mode: SolveMode) {
        let c = match mode {
            SolveMode::Cold => &self.solves_cold,
            SolveMode::Repropagate => &self.solves_repropagate,
            SolveMode::DeltaRepair => &self.solves_delta,
        };
        c.fetch_add(1, Ordering::Relaxed);
    }
}

/// Runs the worklist analysis against a [`ConstraintCache`], reusing the
/// constraint batches of every function whose definition and type
/// environment are unchanged. Produces exactly the same result as
/// [`analyze`].
pub fn analyze_incremental(
    program: &Program,
    sensitivity: Sensitivity,
    cache: &ConstraintCache,
) -> PointsToResult {
    analyze_incremental_with(program, sensitivity, cache, SolveOptions::from_env())
}

/// [`analyze_incremental`] with explicit solver options. When the cache
/// holds a logged fixpoint for this sensitivity and the edit retracts at
/// most half of the previous plan, the solve runs as a DRed-style delta
/// repair instead of re-propagating the whole graph.
pub fn analyze_incremental_with(
    program: &Program,
    sensitivity: Sensitivity,
    cache: &ConstraintCache,
    opts: SolveOptions,
) -> PointsToResult {
    let env = env_hash(program);
    let sens_tag = fnv1a(sensitivity.name().as_bytes());
    // The interner lock covers only batch fetch/generation/interning and
    // the bind-table pre-resolution; the solve itself runs lock-free, so
    // solves sharing one cache (e.g. corpus variants) stay parallel.
    let intern_span = ivy_telemetry::span("pointsto/intern", sensitivity.name());
    let mut interner = cache.interner.lock();
    let mut plan: Vec<(u64, Arc<InternedBatch>)> = Vec::with_capacity(program.functions.len() + 1);
    let mut reused = 0usize;
    let mut generated = 0usize;
    {
        let mut map = cache.batches.lock().expect("batch map poisoned");
        let globals_key = mix(mix(fnv1a(b"pointsto/globals"), env), sens_tag);
        let mut fetch = |key: u64,
                         make: &dyn Fn() -> constraints::LocBatch,
                         interner: &mut intern::LocInterner| {
            if let Some(batch) = map.get(&key) {
                reused += 1;
                return Arc::clone(batch);
            }
            generated += 1;
            let batch = Arc::new(intern_batch(&make(), interner));
            if map.len() >= BATCH_CACHE_CAP {
                map.clear();
            }
            map.insert(key, Arc::clone(&batch));
            batch
        };
        plan.push((
            globals_key,
            fetch(
                globals_key,
                &|| gen_globals(program, sensitivity),
                &mut interner,
            ),
        ));
        for f in program.functions.iter().filter(|f| f.body.is_some()) {
            let content = function_content_hash(f);
            let key = mix(mix(content, env), sens_tag);
            plan.push((
                key,
                fetch(
                    key,
                    &|| gen_function_batch(program, sensitivity, f),
                    &mut interner,
                ),
            ));
        }
    }
    cache.hits.fetch_add(reused as u64, Ordering::Relaxed);
    cache.misses.fetch_add(generated as u64, Ordering::Relaxed);
    ivy_telemetry::counter("ivy_pointsto_batch_cache_hits_total", reused as u64);
    ivy_telemetry::counter("ivy_pointsto_batch_cache_misses_total", generated as u64);
    let batches: Vec<Arc<InternedBatch>> = plan.iter().map(|(_, b)| Arc::clone(b)).collect();
    let bind = solve::BindTable::build(program, &batches, &mut interner);
    drop(interner);
    drop(intern_span);

    // Delta repair applies only under automatic dispatch (an explicit
    // solver choice is a request for that exact algorithm), only off the
    // worklist family (union-find fixpoints are never logged), never under
    // provenance (a repaired fixpoint restores retained facts wholesale,
    // so it has no derivations for them — a scratch solve records a
    // complete trace instead), and only when the edit is small enough
    // that repair plausibly beats re-propagation.
    let prior: Option<Arc<FixpointState>> = cache
        .states
        .lock()
        .expect("state map poisoned")
        .get(&sens_tag)
        .cloned();
    let use_delta = opts.solver == SolverChoice::Auto
        && !opts.provenance
        && sensitivity != Sensitivity::Steensgaard
        && prior
            .as_ref()
            .is_some_and(|st| delta::retracted_batches(&st.plan, &plan) * 2 <= st.plan.len());

    let (mut out, threads_used, mode, deleted, rederived) = if use_delta {
        let st = prior.expect("checked above");
        let d = delta::solve_delta(sensitivity, &plan, &bind, &st, true);
        (
            d.out,
            1,
            SolveMode::DeltaRepair,
            d.deleted as u64,
            d.rederived,
        )
    } else {
        let (out, threads) = run_solver(sensitivity, &batches, &bind, opts, true);
        let mode = if reused == 0 {
            SolveMode::Cold
        } else {
            SolveMode::Repropagate
        };
        (out, threads, mode, 0, 0)
    };

    // Capture the fixpoint for the next edit's delta repair. Only the
    // worklist family logs dynamic edges; the union-find solver returns
    // `None` and its fixpoints are simply not capturable.
    let dyn_edges = out.dyn_edges.take();
    let mut r = PointsToResult::from_solution(
        Arc::clone(&cache.interner),
        out,
        sensitivity,
        reused,
        generated,
    );
    if let Some(dyn_edges) = dyn_edges {
        let sets = Arc::clone(&r.solution.as_ref().expect("interned solution").sets);
        cache.states.lock().expect("state map poisoned").insert(
            sens_tag,
            Arc::new(FixpointState {
                plan,
                sets,
                dyn_edges,
            }),
        );
    }
    r.mode = mode;
    r.threads_used = threads_used;
    r.delta_deleted = deleted;
    r.delta_rederived = rederived;
    cache.count_mode(mode);
    ivy_telemetry::counter_labeled("ivy_pointsto_solves_total", "mode", mode.name(), 1);
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivy_cmir::parser::parse_program;

    const OPS_TABLE: &str = r#"
        struct file_ops {
            read: fnptr(u32) -> i32;
            write: fnptr(u32) -> i32;
        }
        global ext2_ops: struct file_ops;
        global pipe_ops: struct file_ops;

        fn ext2_read(n: u32) -> i32 { return 1; }
        fn ext2_write(n: u32) -> i32 { return 2; }
        fn pipe_read(n: u32) -> i32 { return 3; }

        fn register_ops() {
            ext2_ops.read = ext2_read;
            ext2_ops.write = ext2_write;
            pipe_ops.read = pipe_read;
        }

        fn vfs_read(ops: struct file_ops *, n: u32) -> i32 {
            return ops->read(n);
        }

        fn do_read(n: u32) -> i32 {
            return vfs_read(&ext2_ops, n);
        }
    "#;

    #[test]
    fn resolves_function_pointers_through_struct_fields() {
        let p = parse_program(OPS_TABLE).unwrap();
        let r = analyze(&p, Sensitivity::AndersenField);
        let targets = r.indirect_call_targets("vfs_read", "ops->read");
        assert!(targets.contains("ext2_read"), "targets: {targets:?}");
        assert!(
            targets.contains("pipe_read"),
            "field-based merging expected"
        );
        // Field sensitivity separates read from write.
        assert!(!targets.contains("ext2_write"), "targets: {targets:?}");
    }

    #[test]
    fn field_insensitive_merges_fields() {
        let p = parse_program(OPS_TABLE).unwrap();
        let r = analyze(&p, Sensitivity::Andersen);
        let targets = r.indirect_call_targets("vfs_read", "ops->read");
        // Without field sensitivity read and write collapse.
        assert!(targets.contains("ext2_write"), "targets: {targets:?}");
    }

    #[test]
    fn steensgaard_is_no_more_precise_than_andersen() {
        let p = parse_program(OPS_TABLE).unwrap();
        let st = analyze(&p, Sensitivity::Steensgaard);
        let an = analyze(&p, Sensitivity::Andersen);
        let t_st = st.indirect_call_targets("vfs_read", "ops->read");
        let t_an = an.indirect_call_targets("vfs_read", "ops->read");
        assert!(t_an.is_subset(&t_st) || t_an == t_st);
    }

    #[test]
    fn direct_call_binds_parameters() {
        let src = r#"
            fn callee(p: u8 *) -> u8 * { return p; }
            global buffer: u8[64];
            fn caller() -> u8 * {
                let q: u8 * = callee(&buffer[0]);
                return q;
            }
        "#;
        let p = parse_program(src).unwrap();
        let r = analyze(&p, Sensitivity::Andersen);
        let q = Loc::Local {
            func: "caller".into(),
            var: "q".into(),
        };
        let pts = r.points_to(&q);
        assert!(
            pts.iter()
                .any(|l| matches!(l, Loc::Global(g) if g == "buffer")),
            "q should point to buffer, got {pts:?}"
        );
    }

    #[test]
    fn allocation_sites_are_distinct() {
        let src = r#"
            #[allocator]
            fn kmalloc(size: u32, flags: u32) -> void * { return null; }
            fn f() {
                let a: u8 * = kmalloc(16, 0) as u8 *;
                let b: u8 * = kmalloc(32, 0) as u8 *;
                a = b;
            }
        "#;
        let p = parse_program(src).unwrap();
        let r = analyze(&p, Sensitivity::Andersen);
        let a = Loc::Local {
            func: "f".into(),
            var: "a".into(),
        };
        let b = Loc::Local {
            func: "f".into(),
            var: "b".into(),
        };
        // `a` sees both sites after `a = b`; `b` sees only its own.
        assert_eq!(r.points_to(&a).len(), 2, "{:?}", r.points_to(&a));
        assert_eq!(r.points_to(&b).len(), 1);
    }

    #[test]
    fn array_fields_decay_to_their_field_location() {
        // `dev->ring` used as a value must behave like `&dev->ring[0]`:
        // the callee's parameter points at the field's storage, and
        // pointers stored into the array's slots stay visible. The old
        // value-copy modelling dropped both (caught by the dynamic
        // soundness oracle on the kernelgen drivers).
        let src = r#"
            typedef irq_fn = fnptr(u32) -> u32;
            struct dev { ring: u8[64]; tbl: irq_fn[4]; }
            global d0: struct dev;
            fn handler(x: u32) -> u32 { return x; }
            fn fill(p: u8 *) { }
            fn setup() {
                d0.tbl[0] = handler;
                fill(d0.ring);
            }
            fn fire(i: u32) -> u32 {
                return d0.tbl[i](7);
            }
        "#;
        let p = parse_program(src).unwrap();
        for s in [Sensitivity::Andersen, Sensitivity::AndersenField] {
            let r = analyze(&p, s);
            let param = Loc::Local {
                func: "fill".into(),
                var: "p".into(),
            };
            let pts = r.points_to(&param);
            assert!(
                pts.iter().any(|l| matches!(
                    l,
                    Loc::Field { field, .. } if field == "ring"
                ) || matches!(l, Loc::Composite(c) if c == "dev")),
                "{}: array-field decay must reach the callee: {pts:?}",
                s.name()
            );
            let targets = r.indirect_call_targets("fire", "d0.tbl[i]");
            assert!(
                targets.contains("handler"),
                "{}: fnptr stored through an array field must resolve: {targets:?}",
                s.name()
            );
            // Worklist and naive agree on the new constraint shape.
            let slow = analyze_naive(&p, s);
            assert_eq!(r.pts(), slow.pts());
            assert_eq!(r.indirect_targets, slow.indirect_targets);
        }
    }

    #[test]
    fn function_pointer_call_binds_arguments() {
        let src = r#"
            global sink: u8 *;
            fn store(p: u8 *) { sink = p; }
            global hook: fnptr(u8 *) -> void;
            global data: u8[8];
            fn setup() { hook = store; }
            fn fire() { hook(&data[0]); }
        "#;
        let p = parse_program(src).unwrap();
        let r = analyze(&p, Sensitivity::Andersen);
        let sink = Loc::Global("sink".into());
        let pts = r.points_to(&sink);
        assert!(
            pts.iter()
                .any(|l| matches!(l, Loc::Global(g) if g == "data")),
            "indirect call must bind args: {pts:?}"
        );
        let targets = r.indirect_call_targets("fire", "hook");
        assert_eq!(
            targets.into_iter().collect::<Vec<_>>(),
            vec!["store".to_string()]
        );
    }

    #[test]
    fn reports_constraint_statistics() {
        let p = parse_program(OPS_TABLE).unwrap();
        let r = analyze(&p, Sensitivity::AndersenField);
        assert!(r.initial_constraints > 0);
        assert!(
            r.constraint_count > r.initial_constraints,
            "indirect-call bindings must be counted in the total: {} vs {}",
            r.constraint_count,
            r.initial_constraints
        );
        assert!(r.iterations >= 1);
        assert!(r.mean_indirect_fanout() >= 1.0);
    }

    /// The worklist solver and the naive reference agree byte for byte on
    /// every unit-test program, for all sensitivities.
    #[test]
    fn worklist_matches_naive_on_unit_programs() {
        let chain_src = r#"
            global g: u32 = 0;
            fn f() {
                let p3: u32 * = null;
                let p2: u32 * = null;
                let p1: u32 * = null;
                p3 = p2;
                p2 = p1;
                p1 = &g;
            }
        "#;
        for src in [OPS_TABLE, chain_src] {
            let p = parse_program(src).unwrap();
            for s in [
                Sensitivity::Steensgaard,
                Sensitivity::Andersen,
                Sensitivity::AndersenField,
            ] {
                let fast = analyze(&p, s);
                let slow = analyze_naive(&p, s);
                assert_eq!(fast.pts(), slow.pts(), "{} pts diverge", s.name());
                assert_eq!(
                    fast.indirect_targets,
                    slow.indirect_targets,
                    "{} indirect targets diverge",
                    s.name()
                );
                assert_eq!(fast.initial_constraints, slow.initial_constraints);
                assert_eq!(fast.constraint_count, slow.constraint_count);
            }
        }
    }

    /// A reverse-ordered copy chain longer than the seed's deleted
    /// `iterations > 256` bailout: the naive solver needs one rescan round
    /// per link, so reaching the far end proves the fixpoint runs to
    /// completion with no cap.
    #[test]
    fn deep_copy_chain_reaches_a_true_fixpoint() {
        const LINKS: usize = 320;
        let mut src = String::from("global g: u32 = 0;\nfn f() {\n");
        for i in (0..=LINKS).rev() {
            src.push_str(&format!("    let p{i}: u32 * = null;\n"));
        }
        // Adversarial order: the last link is assigned first, so each naive
        // rescan round advances the fact by exactly one link.
        for i in (1..=LINKS).rev() {
            src.push_str(&format!("    p{i} = p{};\n", i - 1));
        }
        src.push_str("    p0 = &g;\n}\n");
        let p = parse_program(&src).unwrap();

        let fast = analyze(&p, Sensitivity::Andersen);
        let slow = analyze_naive(&p, Sensitivity::Andersen);
        assert!(
            slow.iterations > 256,
            "the chain must genuinely need more rounds than the old cap, got {}",
            slow.iterations
        );
        let tail = Loc::Local {
            func: "f".into(),
            var: format!("p{LINKS}"),
        };
        for r in [&fast, &slow] {
            assert!(
                r.points_to(&tail)
                    .iter()
                    .any(|l| matches!(l, Loc::Global(g) if g == "g")),
                "the fact must reach the end of the chain"
            );
        }
        assert_eq!(fast.pts(), slow.pts());
    }

    #[test]
    fn incremental_reuses_clean_batches_and_matches_cold() {
        let p = parse_program(OPS_TABLE).unwrap();
        let cache = ConstraintCache::new();
        let cold = analyze_incremental(&p, Sensitivity::AndersenField, &cache);
        assert_eq!(cold.batches_reused, 0);
        assert!(cold.batches_generated > 0);

        // Identical program: everything reused.
        let warm = analyze_incremental(&p, Sensitivity::AndersenField, &cache);
        assert_eq!(warm.batches_generated, 0);
        assert_eq!(warm.batches_reused, cold.batches_generated);
        assert_eq!(warm.pts(), cold.pts());
        assert_eq!(warm.indirect_targets, cold.indirect_targets);

        // One-function edit: exactly one batch regenerates.
        let edited_src = OPS_TABLE.replace("return vfs_read(&ext2_ops, n);", "return 0;");
        let edited = parse_program(&edited_src).unwrap();
        let incr = analyze_incremental(&edited, Sensitivity::AndersenField, &cache);
        assert_eq!(
            incr.batches_generated, 1,
            "only the edited function is dirty"
        );
        let scratch = analyze(&edited, Sensitivity::AndersenField);
        assert_eq!(incr.pts(), scratch.pts());
        assert_eq!(incr.indirect_targets, scratch.indirect_targets);

        // Sensitivity is part of the key: a different level shares nothing.
        let other = analyze_incremental(&p, Sensitivity::Andersen, &cache);
        assert_eq!(other.batches_reused, 0);
    }

    #[test]
    fn signature_edits_invalidate_every_batch() {
        let p = parse_program(OPS_TABLE).unwrap();
        let cache = ConstraintCache::new();
        analyze_incremental(&p, Sensitivity::Andersen, &cache);
        // Changing a signature changes the env hash, which keys every batch:
        // constraints consult callee signatures, so all must regenerate.
        let edited =
            parse_program(&OPS_TABLE.replace("fn do_read(n: u32)", "fn do_read()")).unwrap();
        let incr = analyze_incremental(&edited, Sensitivity::Andersen, &cache);
        assert_eq!(incr.batches_reused, 0, "env change dirties everything");
        // A full invalidation also retracts every cached batch, so the
        // delta repairer must refuse and the solve runs cold.
        assert_eq!(incr.mode, SolveMode::Cold);
    }

    /// Every explicit solver choice produces byte-identical output to the
    /// naive reference, including the constraint statistics.
    #[test]
    fn explicit_solvers_match_naive() {
        let p = parse_program(OPS_TABLE).unwrap();
        for s in [
            Sensitivity::Steensgaard,
            Sensitivity::Andersen,
            Sensitivity::AndersenField,
        ] {
            let slow = analyze_naive(&p, s);
            for (solver, threads) in [
                (SolverChoice::Worklist, 1),
                (SolverChoice::UnionFind, 1),
                (SolverChoice::Parallel, 4),
            ] {
                let r = analyze_with(
                    &p,
                    s,
                    SolveOptions {
                        solver,
                        threads,
                        ..SolveOptions::default()
                    },
                );
                assert_eq!(r.pts(), slow.pts(), "{} {:?} pts", s.name(), solver);
                assert_eq!(
                    r.indirect_targets,
                    slow.indirect_targets,
                    "{} {:?} targets",
                    s.name(),
                    solver
                );
                assert_eq!(r.initial_constraints, slow.initial_constraints);
                assert_eq!(
                    r.constraint_count,
                    slow.constraint_count,
                    "{} {:?} constraint totals",
                    s.name(),
                    solver
                );
            }
        }
    }

    #[test]
    fn auto_dispatch_picks_thread_count_and_solver() {
        let p = parse_program(OPS_TABLE).unwrap();
        let r = analyze_with(
            &p,
            Sensitivity::Andersen,
            SolveOptions {
                solver: SolverChoice::Auto,
                threads: 4,
                ..SolveOptions::default()
            },
        );
        assert_eq!(r.threads_used, 4, "auto with threads>1 goes parallel");
        let serial = analyze_with(&p, Sensitivity::Andersen, SolveOptions::default());
        assert_eq!(serial.threads_used, 1);
        assert_eq!(r.pts(), serial.pts());
    }

    /// A body-only edit repairs the cached fixpoint (DRed delete +
    /// re-derive) and still matches a from-scratch solve byte for byte —
    /// in both directions, since repair is a plan diff, not a replay.
    #[test]
    fn delta_repair_after_edit_matches_scratch() {
        for s in [Sensitivity::Andersen, Sensitivity::AndersenField] {
            let p = parse_program(OPS_TABLE).unwrap();
            let cache = ConstraintCache::new();
            let cold = analyze_incremental_with(&p, s, &cache, SolveOptions::default());
            assert_eq!(cold.mode, SolveMode::Cold);

            // Deleting a derivation: the direct vfs_read call disappears.
            let edited_src = OPS_TABLE.replace("return vfs_read(&ext2_ops, n);", "return 0;");
            let edited = parse_program(&edited_src).unwrap();
            let repaired = analyze_incremental_with(&edited, s, &cache, SolveOptions::default());
            assert_eq!(repaired.mode, SolveMode::DeltaRepair, "{}", s.name());
            assert_eq!(repaired.batches_generated, 1);
            let scratch = analyze_with(
                &edited,
                s,
                SolveOptions {
                    solver: SolverChoice::Worklist,
                    threads: 1,
                    ..SolveOptions::default()
                },
            );
            assert_eq!(repaired.pts(), scratch.pts(), "{} delete-edit", s.name());
            assert_eq!(repaired.indirect_targets, scratch.indirect_targets);
            assert_eq!(repaired.initial_constraints, scratch.initial_constraints);
            assert_eq!(repaired.constraint_count, scratch.constraint_count);

            // Re-adding it: the repair must re-derive the lost facts from
            // the edited fixpoint.
            let back = analyze_incremental_with(&p, s, &cache, SolveOptions::default());
            assert_eq!(back.mode, SolveMode::DeltaRepair);
            assert_eq!(back.pts(), cold.pts(), "{} re-add edit", s.name());
            assert_eq!(back.indirect_targets, cold.indirect_targets);
            assert_eq!(back.constraint_count, cold.constraint_count);
            assert_eq!(cache.solves_delta(), 2);
            assert_eq!(cache.solves_cold(), 1);
        }
    }

    /// An edit that rewires a function-pointer table: the repair has to
    /// retract previously-derived indirect-call bindings and their
    /// downstream flows, not just local sets.
    #[test]
    fn delta_repair_retracts_indirect_call_bindings() {
        let p = parse_program(OPS_TABLE).unwrap();
        let cache = ConstraintCache::new();
        analyze_incremental_with(
            &p,
            Sensitivity::AndersenField,
            &cache,
            SolveOptions::default(),
        );
        let edited_src = OPS_TABLE.replace("pipe_ops.read = pipe_read;", "");
        let edited = parse_program(&edited_src).unwrap();
        let repaired = analyze_incremental_with(
            &edited,
            Sensitivity::AndersenField,
            &cache,
            SolveOptions::default(),
        );
        assert_eq!(repaired.mode, SolveMode::DeltaRepair);
        assert!(repaired.delta_deleted > 0, "the edit must delete facts");
        let scratch = analyze_with(
            &edited,
            Sensitivity::AndersenField,
            SolveOptions {
                solver: SolverChoice::Worklist,
                threads: 1,
                ..SolveOptions::default()
            },
        );
        assert_eq!(repaired.pts(), scratch.pts());
        assert_eq!(repaired.indirect_targets, scratch.indirect_targets);
        let targets = repaired.indirect_call_targets("vfs_read", "ops->read");
        assert!(!targets.contains("pipe_read"), "stale target must die");
    }

    /// Provenance mode changes nothing about the answer, records a
    /// derivation for every fact, and every chain walks back to a seed.
    #[test]
    fn provenance_solve_is_identical_and_every_chain_reaches_a_seed() {
        let p = parse_program(OPS_TABLE).unwrap();
        for s in [
            Sensitivity::Steensgaard,
            Sensitivity::Andersen,
            Sensitivity::AndersenField,
        ] {
            for threads in [1usize, 4] {
                let opts = SolveOptions {
                    threads,
                    ..SolveOptions::default()
                };
                let plain = analyze_with(&p, s, opts);
                let traced = analyze_with(&p, s, opts.with_provenance(true));
                assert_eq!(traced.pts(), plain.pts(), "{} t={threads}", s.name());
                assert_eq!(traced.indirect_targets, plain.indirect_targets);
                assert_eq!(traced.constraint_count, plain.constraint_count);
                assert!(!plain.has_provenance());
                assert!(traced.has_provenance());
                assert_eq!(plain.provenance_facts(), 0);
                assert!(traced.provenance_facts() > 0);
                assert!(traced.provenance_bytes() > 0);

                let n = verify_derivations(&p, &traced)
                    .unwrap_or_else(|e| panic!("{} t={threads}: replay failed: {e}", s.name()));
                assert_eq!(n, traced.provenance_facts());

                // Every fact in the solution explains itself, seed-first.
                for (loc, set) in traced.pts() {
                    for tgt in set {
                        let chain = traced
                            .why(loc, tgt)
                            .unwrap_or_else(|| panic!("{}: no chain for {loc} ∋ {tgt}", s.name()));
                        assert!(!chain.is_empty());
                        assert_eq!(chain[0].rule, "addr-of", "chains start at a seed");
                        assert!(chain[0].src.is_none());
                        let last = chain.last().unwrap();
                        assert_eq!((&last.dst, &last.pointee), (loc, tgt));
                    }
                }
            }
        }
    }

    /// An indirect-call resolution explains itself end to end: the chain
    /// behind "ops->read may call ext2_read" crosses the call-bind /
    /// load machinery and renders as readable lines.
    #[test]
    fn indirect_call_targets_explain_their_derivation() {
        let p = parse_program(OPS_TABLE).unwrap();
        let r = analyze_with(
            &p,
            Sensitivity::AndersenField,
            SolveOptions::default().with_provenance(true),
        );
        let targets = r.indirect_call_targets("vfs_read", "ops->read");
        assert!(targets.contains("ext2_read"));
        let chain = r
            .why_indirect(&p, "vfs_read", "ops->read", "ext2_read")
            .expect("resolved target must have a derivation");
        assert_eq!(chain[0].rule, "addr-of");
        assert!(
            chain.iter().any(|l| l.rule != "addr-of"),
            "resolution flows through at least one propagation step: {chain:?}"
        );
        for link in &chain {
            assert!(!link.render().is_empty());
        }
        // Unknown target: no chain, no panic.
        assert!(r
            .why_indirect(&p, "vfs_read", "ops->read", "missing")
            .is_none());
    }

    /// Provenance through the incremental path disables delta repair (a
    /// repaired fixpoint has no derivations for retained facts) but still
    /// matches, replays, and keeps working after an edit.
    #[test]
    fn incremental_provenance_forces_scratch_solve_and_replays() {
        let p = parse_program(OPS_TABLE).unwrap();
        let cache = ConstraintCache::new();
        let opts = SolveOptions::default().with_provenance(true);
        let cold = analyze_incremental_with(&p, Sensitivity::AndersenField, &cache, opts);
        assert!(cold.has_provenance());
        verify_derivations(&p, &cold).expect("cold incremental replay");

        let edited_src = OPS_TABLE.replace("return vfs_read(&ext2_ops, n);", "return 0;");
        let edited = parse_program(&edited_src).unwrap();
        let warm = analyze_incremental_with(&edited, Sensitivity::AndersenField, &cache, opts);
        assert_ne!(
            warm.mode,
            SolveMode::DeltaRepair,
            "provenance must force a full re-propagation"
        );
        assert!(warm.has_provenance());
        verify_derivations(&edited, &warm).expect("post-edit incremental replay");
        let scratch = analyze_with(&edited, Sensitivity::AndersenField, opts);
        assert_eq!(warm.pts(), scratch.pts());
        assert_eq!(warm.indirect_targets, scratch.indirect_targets);
    }
}
