//! DRed-style delta re-solve.
//!
//! The incremental path used to re-propagate the whole cached constraint
//! graph after every edit, however small. This module repairs the
//! *previous fixpoint* instead, in the classic delete-and-rederive shape:
//!
//! 1. **Over-approximate deletion.** Diff the old and new solve plans by
//!    batch key (a multiset diff — identical functions share keys). Every
//!    node a retracted batch defines, every pointee a retracted store
//!    reached, and every binding node of a retracted call site is a
//!    deletion root; the root set closes forward over the new static
//!    edges and the logged dynamic edges (an edge also poisons its target
//!    when its *trigger* — the node whose points-to set spawned it — is
//!    affected). Affected sets are discarded wholesale.
//! 2. **Re-derive survivors.** Unaffected sets are restored as-is;
//!    surviving dynamic edges are re-installed without re-propagation
//!    (their contribution is already inside the retained sets). Seeds,
//!    copy edges into affected or fresh nodes, dereference re-spawns, and
//!    indirect-call re-bindings then reseed exactly the derivations the
//!    deletion may have destroyed.
//! 3. **Insert phase.** The ordinary difference-propagating worklist runs
//!    to the fixpoint — the same loop a cold solve uses, just starting
//!    from a mostly-full solution.
//!
//! Because the env hash keys every batch, a delta-applicable edit can only
//! have touched function *bodies*: the function set, signatures, globals,
//! and composites — and therefore the bind table — are identical between
//! the two plans, which is what makes the logged binding edges stable.
//! The repaired fixpoint is the least fixpoint of the new plan, so the
//! output is byte-identical to a cold solve.

use super::constraints::{IConstraint, InternedBatch};
use super::solve::{finish, prepare, BindTable, SolveOutput, Solver};
use super::{FixpointState, Sensitivity};
use ivy_provenance::{EdgeKind, SEED};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// A delta re-solve's output plus its repair statistics.
pub(super) struct DeltaOutcome {
    pub out: SolveOutput,
    /// Points-to facts discarded with the affected nodes.
    pub deleted: usize,
    /// Delta locations propagated while re-deriving.
    pub rederived: u64,
}

/// Number of batch instances the new plan retracts from the old one
/// (multiset difference by key). The dispatcher only repairs when this is
/// small relative to the old plan; a rewrite re-propagates instead.
pub(super) fn retracted_batches(
    old: &[(u64, Arc<InternedBatch>)],
    new: &[(u64, Arc<InternedBatch>)],
) -> usize {
    let mut counts: HashMap<u64, i64> = HashMap::with_capacity(old.len());
    for (key, _) in old {
        *counts.entry(*key).or_insert(0) += 1;
    }
    for (key, _) in new {
        *counts.entry(*key).or_insert(0) -= 1;
    }
    counts
        .values()
        .filter(|&&c| c > 0)
        .map(|&c| c as usize)
        .sum()
}

/// Repairs `state` (the logged fixpoint of the old plan) into the least
/// fixpoint of `new_plan`. Byte-identical to solving the new plan cold.
pub(super) fn solve_delta(
    sensitivity: Sensitivity,
    new_plan: &[(u64, Arc<InternedBatch>)],
    bind: &BindTable,
    state: &FixpointState,
    log: bool,
) -> DeltaOutcome {
    let seed_span = ivy_telemetry::span("pointsto/seed", sensitivity.name());
    let mut solver = Solver::new(sensitivity, bind, log);

    let batches: Vec<Arc<InternedBatch>> = new_plan.iter().map(|(_, b)| Arc::clone(b)).collect();
    let prep = prepare(&mut solver, &batches);

    // The tables must also cover ids only the *old* fixpoint mentions
    // (an edit can shrink a function, orphaning its higher temp ids).
    let mut max_id = solver.sets.len().saturating_sub(1) as u32;
    for (id, set) in state.sets.iter() {
        max_id = max_id.max(*id);
        for &p in set {
            max_id = max_id.max(p);
        }
    }
    for &(u, v, t) in &state.dyn_edges {
        max_id = max_id.max(u).max(v).max(t);
    }
    solver.ensure(max_id as usize + 1);
    let nn = solver.sets.len();

    // Dense view of the old solution for root computation.
    let mut old_sets: Vec<&[u32]> = vec![&[]; nn];
    for (id, set) in state.sets.iter() {
        old_sets[*id as usize] = set;
    }

    // Plan diff: batch keys retracted from / fresh in the new plan.
    let mut counts: HashMap<u64, i64> = HashMap::with_capacity(state.plan.len());
    for (key, _) in &state.plan {
        *counts.entry(*key).or_insert(0) += 1;
    }
    for (key, _) in new_plan {
        *counts.entry(*key).or_insert(0) -= 1;
    }
    let fresh_keys: HashSet<u64> = counts
        .iter()
        .filter(|(_, &c)| c < 0)
        .map(|(&k, _)| k)
        .collect();
    let retracted_keys: HashSet<u64> = counts
        .iter()
        .filter(|(_, &c)| c > 0)
        .map(|(&k, _)| k)
        .collect();

    // Deletion roots. Identical batches share a key, so one representative
    // per retracted key covers every retracted instance.
    let mut affected = vec![false; nn];
    let mut queue: VecDeque<u32> = VecDeque::new();
    let mark = |id: u32, affected: &mut Vec<bool>, queue: &mut VecDeque<u32>| {
        if !affected[id as usize] {
            affected[id as usize] = true;
            queue.push_back(id);
        }
    };
    let mut seen_keys: HashSet<u64> = HashSet::new();
    for (key, batch) in &state.plan {
        if !retracted_keys.contains(key) || !seen_keys.insert(*key) {
            continue;
        }
        for c in &batch.constraints {
            match *c {
                IConstraint::AddrOf { dst, .. }
                | IConstraint::Copy { dst, .. }
                | IConstraint::Load { dst, .. } => mark(dst, &mut affected, &mut queue),
                IConstraint::Store { dst, .. } => {
                    for &p in old_sets[dst as usize] {
                        mark(p, &mut affected, &mut queue);
                    }
                }
            }
        }
        for site in &batch.sites {
            mark(site.result, &mut affected, &mut queue);
            for &a in &site.args {
                mark(a, &mut affected, &mut queue);
            }
            for &f in old_sets[site.callee as usize] {
                let Some(name) = bind.func_names.get(&f) else {
                    continue;
                };
                let Some((params, ret)) = bind.funcs.get(name) else {
                    continue;
                };
                mark(*ret, &mut affected, &mut queue);
                for &p in params {
                    mark(p, &mut affected, &mut queue);
                }
            }
        }
    }

    // Close the root set forward: anything an affected node (or an edge
    // whose trigger is affected) ever flowed into may lose facts.
    let mut dyn_from: HashMap<u32, Vec<u32>> = HashMap::new();
    for &(u, v, trigger) in &state.dyn_edges {
        dyn_from.entry(u).or_default().push(v);
        dyn_from.entry(trigger).or_default().push(v);
    }
    while let Some(x) = queue.pop_front() {
        for i in 0..solver.copy_out[x as usize].len() {
            let v = solver.copy_out[x as usize][i];
            if !affected[v as usize] {
                affected[v as usize] = true;
                queue.push_back(v);
            }
        }
        if let Some(vs) = dyn_from.get(&x) {
            for &v in vs.clone().iter() {
                if !affected[v as usize] {
                    affected[v as usize] = true;
                    queue.push_back(v);
                }
            }
        }
    }

    // Delete affected sets, restore the rest.
    let mut deleted = 0usize;
    for (id, set) in state.sets.iter() {
        if affected[*id as usize] {
            deleted += set.len();
        } else {
            solver.sets[*id as usize] = set.clone();
        }
    }

    // Surviving dynamic edges re-install without re-propagation: their
    // contribution is already inside the retained target sets. (Delta
    // repair never runs with provenance — the dispatcher forces a scratch
    // solve instead — so the aux/kind arguments here are inert.)
    for &(u, v, trigger) in &state.dyn_edges {
        if !affected[u as usize] && !affected[v as usize] && !affected[trigger as usize] {
            solver.keep_dyn_edge(u, v, trigger, trigger, EdgeKind::Load);
        }
    }

    // Re-derivation seeds. (a) Every AddrOf seed (a no-op merge on
    // retained sets).
    for &(dst, loc) in &prep.seeds {
        solver.add_pts(dst, &[loc], SEED);
    }
    // (b) Retained sets flow across static edges into affected targets,
    // and across every edge of a fresh batch (a fresh target may be clean
    // yet have never seen its new source).
    for (key, batch) in new_plan {
        let fresh = fresh_keys.contains(key);
        for c in &batch.constraints {
            if let IConstraint::Copy { dst, src } = *c {
                if dst != src
                    && (fresh || affected[dst as usize])
                    && !solver.sets[src as usize].is_empty()
                {
                    let snapshot = solver.sets[src as usize].clone();
                    solver.add_pts(dst, &snapshot, src);
                }
            }
        }
    }
    // (c) Dereference re-spawns from current pointee sets (kept edges
    // dedup to no-ops; dropped and fresh ones propagate).
    for batch in &batches {
        for c in &batch.constraints {
            match *c {
                IConstraint::Load { dst, src } => {
                    let pointees = solver.sets[src as usize].clone();
                    for p in pointees {
                        solver.add_copy_edge(p, dst, src, p, EdgeKind::Load);
                    }
                }
                IConstraint::Store { dst, src } => {
                    let pointees = solver.sets[dst as usize].clone();
                    for p in pointees {
                        solver.add_copy_edge(src, p, dst, p, EdgeKind::Store);
                    }
                }
                _ => {}
            }
        }
    }
    // (d) Indirect-call re-bindings from current callee sets (affected
    // callees re-bind inside the worklist as their sets refill).
    for site in &prep.sites {
        let funcs: Vec<u32> = solver.sets[site.callee as usize]
            .iter()
            .copied()
            .filter(|p| bind.func_names.contains_key(p))
            .collect();
        let (args, result) = (site.args.clone(), site.result);
        for f in funcs {
            solver.bind_target(&args, result, f, site.callee);
        }
    }
    drop(seed_span);

    // Insert phase: the ordinary difference-propagating worklist.
    let propagate_span = ivy_telemetry::span("pointsto/propagate", sensitivity.name());
    let rederived = solver.drain(&prep.sites, &prep.sites_of);
    drop(propagate_span);

    // The binding count must match what a cold solve would have counted:
    // recompute it from the final callee sets (repair-time bind calls
    // can double-visit pairs the kept edges already covered).
    let steensgaard = solver.steensgaard;
    let mut total = prep.initial_constraints;
    for site in &prep.sites {
        for p in &solver.sets[site.callee as usize] {
            total += bind.binding_cost(site.args.len(), *p, steensgaard);
        }
    }
    solver.total_constraints = total;

    ivy_telemetry::counter("ivy_pointsto_worklist_pops_total", solver.pops as u64);
    ivy_telemetry::counter("ivy_pointsto_delta_locations_total", rederived);
    ivy_telemetry::counter("ivy_pointsto_delta_deleted_total", deleted as u64);
    ivy_telemetry::counter("ivy_pointsto_delta_rederived_total", rederived);

    let out = finish(solver, &prep, prep.initial_constraints);
    DeltaOutcome {
        out,
        deleted,
        rederived,
    }
}
