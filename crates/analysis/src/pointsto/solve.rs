//! The worklist solver: difference propagation over the interned
//! constraint graph.
//!
//! Replaces the naive rescan-everything loop with the standard
//! Andersen-style worklist algorithm:
//!
//! * nodes are interned location ids; points-to sets are sorted
//!   `Vec<u32>`s; copy/load/store constraints become integer adjacency
//!   lists — the hot loop never hashes a string or clones a `Loc`;
//! * **difference propagation**: each node keeps a *delta* of locations
//!   added since it was last processed, and only the delta flows along
//!   copy edges (and triggers new edges at load/store constraints). A
//!   location crosses each edge exactly once, so the full-rescan and the
//!   per-edge whole-set clones of the naive solver are both gone;
//! * **online indirect-call resolution**: when a `Loc::Func` first reaches
//!   the points-to set of an indirect call's callee, the argument/return
//!   copy edges for that target are added *inside* the worklist and the
//!   affected sources propagate their current sets immediately. The
//!   fixpoint therefore terminates by construction — the set of nodes and
//!   edges is finite and all operations are monotone — and the seed's
//!   `iterations > 256` soundness bailout is deleted rather than ported.
//!
//! The solver itself never touches the interner: every id it could
//! possibly need — including the parameter/return locations of indirect
//! bind targets — is pre-interned into a [`BindTable`] while the caller
//! holds the shared interner lock. Solves against one
//! [`ConstraintCache`](super::ConstraintCache) therefore run fully in
//! parallel; only generation/interning serializes.
//!
//! The graph build ([`prepare`]), the per-node propagation step
//! ([`Solver::process_node`]), and the output materialization
//! ([`finish`]) are shared verbatim with the wavefront solver
//! (`parallel`) and the DRed repair solver (`delta`): all three reach the
//! same least fixpoint, so their sorted output sets are byte-identical.

use super::constraints::{IConstraint, ISite, InternedBatch};
use super::intern::LocInterner;
use super::{Loc, Sensitivity};
use ivy_cmir::ast::Program;
use ivy_provenance::{EdgeKind, ProvStore, SEED};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// A dynamically-discovered copy edge `u → v`, tagged with the node whose
/// points-to set spawned it (`trigger`): the dereferenced pointer for
/// load/store edges, the callee node for indirect-call binding edges. The
/// DRed delta re-solve keeps an edge across an edit only while none of the
/// three nodes is in the over-approximate deletion set.
pub(super) type DynEdge = (u32, u32, u32);

/// What the solver hands back: final sets (indexed by location id), the
/// public indirect-call target map, the solve statistics, and — when the
/// caller asked for it — the dynamic-edge log a later delta re-solve
/// repairs from.
pub(super) struct SolveOutput {
    pub sets: Vec<Vec<u32>>,
    pub indirect_targets: HashMap<(String, String), BTreeSet<String>>,
    pub initial_constraints: usize,
    pub total_constraints: usize,
    pub pops: usize,
    pub dyn_edges: Option<Vec<DynEdge>>,
    /// Derivation arena recorded during the solve (`None` when provenance
    /// was not requested).
    pub provenance: Option<ProvStore>,
}

/// Everything the solver needs from the interner, pre-resolved so the
/// solve itself can run without holding the interner lock:
/// argument/return binding ids for every function the program defines, and
/// the function names behind every `Loc::Func` id the plan can ever place
/// into a points-to set (set elements only originate at `AddrOf` seeds, so
/// scanning the plan's `AddrOf` operands covers them all).
pub(super) struct BindTable {
    /// Function name → (parameter location ids, return location id).
    pub(super) funcs: HashMap<String, (Vec<u32>, u32)>,
    /// `Loc::Func` pointee id → function name.
    pub(super) func_names: HashMap<u32, String>,
    /// Largest id mentioned anywhere in the table.
    pub(super) max_id: u32,
}

impl BindTable {
    /// Builds the table for one solve plan. The caller must hold the
    /// interner exclusively (this is the only phase that interns).
    pub(crate) fn build(
        program: &Program,
        batches: &[Arc<InternedBatch>],
        interner: &mut LocInterner,
    ) -> BindTable {
        let mut max_id = 0u32;
        let mut funcs = HashMap::with_capacity(program.functions.len());
        for f in &program.functions {
            let params: Vec<u32> = f
                .params
                .iter()
                .map(|p| {
                    interner.intern(&Loc::Local {
                        func: f.name.clone(),
                        var: p.name.clone(),
                    })
                })
                .collect();
            let ret = interner.intern(&Loc::Ret(f.name.clone()));
            max_id = params.iter().fold(max_id.max(ret), |m, &p| m.max(p));
            funcs.insert(f.name.clone(), (params, ret));
        }
        let mut func_names = HashMap::new();
        for batch in batches {
            for c in &batch.constraints {
                if let IConstraint::AddrOf { loc, .. } = *c {
                    if let Loc::Func(name) = interner.resolve(loc) {
                        func_names.insert(loc, name.clone());
                    }
                }
            }
        }
        BindTable {
            funcs,
            func_names,
            max_id,
        }
    }

    /// The cost the naive reference assigns to binding one call site to one
    /// declared function: one constraint per bound parameter plus one for
    /// the return, doubled in Steensgaard mode (every binding is mirrored).
    pub(super) fn binding_cost(&self, args: usize, func_pointee: u32, steensgaard: bool) -> usize {
        let Some(name) = self.func_names.get(&func_pointee) else {
            return 0;
        };
        let Some((params, _)) = self.funcs.get(name) else {
            return 0;
        };
        let pairs = params.len().min(args) + 1;
        if steensgaard {
            pairs * 2
        } else {
            pairs
        }
    }
}

/// Largest location id a solve plan (or its bind table) references. The
/// per-node tables are sized by this, not by the interner's total history:
/// a long-lived shared cache interns locations from every program it ever
/// saw, and a small program's solve must not pay for that accumulation.
pub(super) fn plan_max_id(batches: &[Arc<InternedBatch>], bind: &BindTable) -> u32 {
    let mut max_id = bind.max_id;
    for batch in batches {
        for c in &batch.constraints {
            let (a, b) = match *c {
                IConstraint::AddrOf { dst, loc } => (dst, loc),
                IConstraint::Copy { dst, src }
                | IConstraint::Load { dst, src }
                | IConstraint::Store { dst, src } => (dst, src),
            };
            max_id = max_id.max(a).max(b);
        }
        for site in &batch.sites {
            max_id = max_id.max(site.callee).max(site.result);
            for &a in &site.args {
                max_id = max_id.max(a);
            }
        }
    }
    max_id
}

/// The static part of a solve plan, installed into a [`Solver`]:
/// flattened indirect sites (indexed by callee node), the deferred
/// `AddrOf` seeds, and the syntax-constraint count.
pub(super) struct Prepared<'p> {
    pub sites: Vec<&'p ISite>,
    pub sites_of: HashMap<u32, Vec<usize>>,
    pub seeds: Vec<(u32, u32)>,
    pub initial_constraints: usize,
}

/// Builds the static graph of `batches` into `solver` (adjacency installed
/// and deduped, tables sized) without seeding: no propagation happens
/// before all initial edges exist. Initial edges are pushed without
/// touching the dedup set: `copy_edges` only guards *dynamically*
/// discovered edges against re-insertion (a dynamic edge duplicating a
/// static one merely re-propagates along that one edge, which is sound;
/// tracking every static edge would put a hash insert on the graph-build
/// path of every re-solve).
pub(super) fn prepare<'p>(solver: &mut Solver, batches: &'p [Arc<InternedBatch>]) -> Prepared<'p> {
    solver.ensure(plan_max_id(batches, solver.bind_max()) as usize + 1);

    let mut seeds: Vec<(u32, u32)> = Vec::new();
    let mut touched: Vec<(u8, u32)> = Vec::new();
    let mut initial_constraints = 0usize;
    for batch in batches {
        initial_constraints += batch.constraints.len();
        for c in &batch.constraints {
            match *c {
                IConstraint::AddrOf { dst, loc } => seeds.push((dst, loc)),
                IConstraint::Copy { dst, src } => {
                    if dst != src {
                        solver.copy_out[src as usize].push(dst);
                        touched.push((0, src));
                    }
                }
                IConstraint::Load { dst, src } => {
                    solver.load_out[src as usize].push(dst);
                    touched.push((1, src));
                }
                IConstraint::Store { dst, src } => {
                    solver.store_out[dst as usize].push(src);
                    touched.push((2, dst));
                }
            }
        }
    }
    solver.total_constraints = initial_constraints;
    // Duplicate static edges would double-propagate every delta crossing
    // them; one sort+dedup pass over the touched adjacency lists is far
    // cheaper than per-edge hashing (and than scanning every node).
    touched.sort_unstable();
    touched.dedup();
    for (kind, node) in touched {
        let adj = match kind {
            0 => &mut solver.copy_out[node as usize],
            1 => &mut solver.load_out[node as usize],
            _ => &mut solver.store_out[node as usize],
        };
        adj.sort_unstable();
        adj.dedup();
    }

    // Indirect sites, indexed by callee node.
    let sites: Vec<&ISite> = batches.iter().flat_map(|b| b.sites.iter()).collect();
    let mut sites_of: HashMap<u32, Vec<usize>> = HashMap::new();
    for (i, site) in sites.iter().enumerate() {
        sites_of.entry(site.callee).or_default().push(i);
    }

    Prepared {
        sites,
        sites_of,
        seeds,
        initial_constraints,
    }
}

/// Materializes the public output of a finished solve: the indirect-call
/// target map exactly as the naive reference builds it (an entry exists
/// for every site, even when empty), plus the final sets and statistics.
pub(super) fn finish(solver: Solver, prep: &Prepared, initial_constraints: usize) -> SolveOutput {
    let mut indirect_targets: HashMap<(String, String), BTreeSet<String>> = HashMap::new();
    for site in &prep.sites {
        let targets: BTreeSet<String> = solver.sets[site.callee as usize]
            .iter()
            .filter_map(|p| solver.bind.func_names.get(p).cloned())
            .collect();
        indirect_targets
            .entry((site.func.clone(), site.callee_text.clone()))
            .or_default()
            .extend(targets);
    }

    SolveOutput {
        sets: solver.sets,
        indirect_targets,
        initial_constraints,
        total_constraints: solver.total_constraints,
        pops: solver.pops,
        dyn_edges: solver.log,
        provenance: solver.prov,
    }
}

/// Solves the union of `batches` to the least fixpoint. Lock-free with
/// respect to the interner: all ids were resolved into `bind` up front.
/// With `log` set, every dynamically-discovered copy edge is recorded for
/// a later DRed delta re-solve.
pub(super) fn solve_worklist(
    sensitivity: Sensitivity,
    batches: &[Arc<InternedBatch>],
    bind: &BindTable,
    log: bool,
    provenance: bool,
) -> SolveOutput {
    let mut solver = Solver::new(sensitivity, bind, log);
    solver.prov = provenance.then(ProvStore::new);

    let seed_span = ivy_telemetry::span("pointsto/seed", sensitivity.name());
    let prep = prepare(&mut solver, batches);
    for &(dst, loc) in &prep.seeds {
        solver.add_pts(dst, &[loc], SEED);
    }
    drop(seed_span);

    let propagate_span = ivy_telemetry::span("pointsto/propagate", sensitivity.name());
    let delta_total = solver.drain(&prep.sites, &prep.sites_of);
    drop(propagate_span);
    ivy_telemetry::counter("ivy_pointsto_worklist_pops_total", solver.pops as u64);
    ivy_telemetry::counter("ivy_pointsto_delta_locations_total", delta_total);

    finish(solver, &prep, prep.initial_constraints)
}

pub(super) struct Solver<'a> {
    pub(super) steensgaard: bool,
    pub(super) bind: &'a BindTable,
    /// Copy successors: `copy_out[u]` ∋ v  ⇒  pts(v) ⊇ pts(u).
    pub(super) copy_out: Vec<Vec<u32>>,
    /// Load constraints keyed by pointer: `load_out[p]` ∋ t for `t = *p`.
    pub(super) load_out: Vec<Vec<u32>>,
    /// Store constraints keyed by pointer: `store_out[p]` ∋ s for `*p = s`.
    pub(super) store_out: Vec<Vec<u32>>,
    /// Full points-to sets, sorted.
    pub(super) sets: Vec<Vec<u32>>,
    /// Newly-added pointees not yet propagated, sorted.
    pub(super) delta: Vec<Vec<u32>>,
    pub(super) queued: Vec<bool>,
    pub(super) worklist: VecDeque<u32>,
    /// Copy-edge dedup, packed `(u << 32) | v`.
    pub(super) copy_edges: HashSet<u64>,
    /// Naive-equivalent constraint count (initial + every indirect-call
    /// binding the reference solver would have appended).
    pub(super) total_constraints: usize,
    pub(super) pops: usize,
    /// Dynamic-edge log for delta re-solves (`None` when not capturing).
    pub(super) log: Option<Vec<DynEdge>>,
    /// Derivation arena (`None` when provenance is off — the disabled
    /// cost is the `is_some` branch per fresh fact and per new edge).
    pub(super) prov: Option<ProvStore>,
}

impl<'a> Solver<'a> {
    pub(super) fn new(sensitivity: Sensitivity, bind: &'a BindTable, log: bool) -> Solver<'a> {
        Solver {
            steensgaard: sensitivity == Sensitivity::Steensgaard,
            bind,
            copy_out: Vec::new(),
            load_out: Vec::new(),
            store_out: Vec::new(),
            sets: Vec::new(),
            delta: Vec::new(),
            queued: Vec::new(),
            worklist: VecDeque::new(),
            copy_edges: HashSet::new(),
            total_constraints: 0,
            pops: 0,
            log: log.then(Vec::new),
            prov: None,
        }
    }

    /// The bind table, for sizing (borrow-friendly accessor for
    /// [`prepare`], which needs `&mut self` at the same time).
    fn bind_max(&self) -> &'a BindTable {
        self.bind
    }

    /// Grows the per-node tables to cover ids `< n`.
    pub(super) fn ensure(&mut self, n: usize) {
        if self.sets.len() < n {
            self.copy_out.resize_with(n, Vec::new);
            self.load_out.resize_with(n, Vec::new);
            self.store_out.resize_with(n, Vec::new);
            self.sets.resize_with(n, Vec::new);
            self.delta.resize_with(n, Vec::new);
            self.queued.resize(n, false);
        }
    }

    /// Adds `items` (sorted, deduped) to `pts(node)`; genuinely new
    /// elements join the node's delta and (re)queue it. `src` is the node
    /// the items flowed from ([`SEED`] for `AddrOf` constraints), recorded
    /// as each fresh fact's premise when provenance is on.
    pub(super) fn add_pts(&mut self, node: u32, items: &[u32], src: u32) {
        let set = &mut self.sets[node as usize];
        let fresh = merge_into(set, items);
        if fresh.is_empty() {
            return;
        }
        if let Some(prov) = &mut self.prov {
            for &p in &fresh {
                prov.record_fact(node, p, src);
            }
        }
        let delta = &mut self.delta[node as usize];
        let merged_delta = merge_sorted(delta, &fresh);
        *delta = merged_delta;
        if !self.queued[node as usize] {
            self.queued[node as usize] = true;
            self.worklist.push_back(node);
        }
    }

    /// Adds the dynamic copy edge u → v (deduped) and, when the edge is
    /// new, propagates u's *current* set across it so late edges see
    /// earlier facts. `trigger` is the node whose points-to set spawned
    /// the edge (recorded in the delta-re-solve log); `aux` is the pointee
    /// of `trigger` the edge routes through, so `(trigger, aux)` is the
    /// edge's justifying fact in the provenance arena.
    pub(super) fn add_copy_edge(&mut self, u: u32, v: u32, trigger: u32, aux: u32, kind: EdgeKind) {
        if u == v {
            return;
        }
        if !self.copy_edges.insert((u64::from(u)) << 32 | u64::from(v)) {
            return;
        }
        if let Some(log) = &mut self.log {
            log.push((u, v, trigger));
        }
        if let Some(prov) = &mut self.prov {
            prov.record_edge(u, v, trigger, aux, kind);
        }
        self.copy_out[u as usize].push(v);
        if !self.sets[u as usize].is_empty() {
            let snapshot = self.sets[u as usize].clone();
            self.add_pts(v, &snapshot, u);
        }
    }

    /// Installs a dynamic edge *without* propagating across it, returning
    /// whether the edge was new. Two callers rely on the deferred
    /// propagation: the DRed repair re-installs survivor edges whose
    /// contribution is already part of the target's retained set, and the
    /// wavefront merge barrier records new edges while the sets live in the
    /// shards (the owning shard flushes the source set next superstep).
    /// Seeds the dedup set and the log so a later spawn of the same edge is
    /// a no-op.
    pub(super) fn keep_dyn_edge(
        &mut self,
        u: u32,
        v: u32,
        trigger: u32,
        aux: u32,
        kind: EdgeKind,
    ) -> bool {
        if u == v || !self.copy_edges.insert((u64::from(u)) << 32 | u64::from(v)) {
            return false;
        }
        if let Some(log) = &mut self.log {
            log.push((u, v, trigger));
        }
        if let Some(prov) = &mut self.prov {
            prov.record_edge(u, v, trigger, aux, kind);
        }
        self.copy_out[u as usize].push(v);
        true
    }

    /// [`Self::bind_target`] for the wavefront merge barrier: identical
    /// edge insertion and constraint counting, but no set propagation —
    /// every newly-inserted edge is reported into `sink` so the barrier can
    /// ask the source's owning shard to flush its current set across it.
    pub(super) fn bind_target_deferred(
        &mut self,
        args: &[u32],
        result: u32,
        func_pointee: u32,
        trigger: u32,
        sink: &mut Vec<(u32, u32)>,
    ) {
        let fname = &self.bind.func_names[&func_pointee];
        let Some((params, ret)) = self.bind.funcs.get(fname) else {
            return;
        };
        let (params, ret) = (params.clone(), *ret);
        for (idx, &pid) in params.iter().enumerate() {
            let Some(&arg) = args.get(idx) else { break };
            if self.keep_dyn_edge(arg, pid, trigger, func_pointee, EdgeKind::CallBind) {
                sink.push((arg, pid));
            }
            self.total_constraints += 1;
            if self.steensgaard {
                if self.keep_dyn_edge(pid, arg, trigger, func_pointee, EdgeKind::CallBind) {
                    sink.push((pid, arg));
                }
                self.total_constraints += 1;
            }
        }
        if self.keep_dyn_edge(ret, result, trigger, func_pointee, EdgeKind::CallBind) {
            sink.push((ret, result));
        }
        self.total_constraints += 1;
        if self.steensgaard {
            if self.keep_dyn_edge(result, ret, trigger, func_pointee, EdgeKind::CallBind) {
                sink.push((result, ret));
            }
            self.total_constraints += 1;
        }
    }

    /// Binds one indirect call site to one discovered target: copy edges
    /// argument → parameter and return → result, mirroring (and counting
    /// exactly like) the constraints the naive reference appends.
    /// `trigger` is the site's callee node.
    pub(super) fn bind_target(
        &mut self,
        args: &[u32],
        result: u32,
        func_pointee: u32,
        trigger: u32,
    ) {
        let fname = &self.bind.func_names[&func_pointee];
        let Some((params, ret)) = self.bind.funcs.get(fname) else {
            // Not a function the program declares (the naive reference
            // skips these bindings too).
            return;
        };
        let (params, ret) = (params.clone(), *ret);
        for (idx, &pid) in params.iter().enumerate() {
            let Some(&arg) = args.get(idx) else { break };
            self.add_copy_edge(arg, pid, trigger, func_pointee, EdgeKind::CallBind);
            self.total_constraints += 1;
            if self.steensgaard {
                self.add_copy_edge(pid, arg, trigger, func_pointee, EdgeKind::CallBind);
                self.total_constraints += 1;
            }
        }
        self.add_copy_edge(ret, result, trigger, func_pointee, EdgeKind::CallBind);
        self.total_constraints += 1;
        if self.steensgaard {
            self.add_copy_edge(result, ret, trigger, func_pointee, EdgeKind::CallBind);
            self.total_constraints += 1;
        }
    }

    /// One worklist step for node `n`: drains its delta through the
    /// load/store constraints (spawning dynamic edges), the copy
    /// successors, and the indirect call sites through `n`. Returns the
    /// number of delta locations processed.
    pub(super) fn process_node(
        &mut self,
        n: u32,
        sites: &[&ISite],
        sites_of: &HashMap<u32, Vec<usize>>,
    ) -> u64 {
        self.pops += 1;
        self.queued[n as usize] = false;
        let d = std::mem::take(&mut self.delta[n as usize]);
        if d.is_empty() {
            return 0;
        }
        // `t = *n`: every new pointee p of n contributes a copy edge p → t.
        // (take/restore instead of clone: `add_copy_edge` only ever touches
        // `copy_out`, never the load/store lists.)
        let loads = std::mem::take(&mut self.load_out[n as usize]);
        for &t in &loads {
            for &p in &d {
                self.add_copy_edge(p, t, n, p, EdgeKind::Load);
            }
        }
        self.load_out[n as usize] = loads;
        // `*n = s`: every new pointee p of n contributes a copy edge s → p.
        let stores = std::mem::take(&mut self.store_out[n as usize]);
        for &s in &stores {
            for &p in &d {
                self.add_copy_edge(s, p, n, p, EdgeKind::Store);
            }
        }
        self.store_out[n as usize] = stores;
        // Copy successors receive only the delta. `add_pts` never adds
        // edges, but `copy_out[n]` may have *grown* while the load/store
        // edges above propagated — so swap rather than overwrite.
        let copies = std::mem::take(&mut self.copy_out[n as usize]);
        for &m in &copies {
            self.add_pts(m, &d, n);
        }
        debug_assert!(self.copy_out[n as usize].is_empty());
        self.copy_out[n as usize] = copies;
        // Indirect calls through n: bind newly-discovered function targets.
        if let Some(site_idxs) = sites_of.get(&n) {
            let new_funcs: Vec<u32> = d
                .iter()
                .copied()
                .filter(|p| self.bind.func_names.contains_key(p))
                .collect();
            if !new_funcs.is_empty() {
                for &i in &site_idxs.clone() {
                    let (args, result) = (sites[i].args.clone(), sites[i].result);
                    for &f in &new_funcs {
                        self.bind_target(&args, result, f, n);
                    }
                }
            }
        }
        d.len() as u64
    }

    /// Runs the worklist to the least fixpoint. Returns the total number
    /// of delta locations propagated (summed locally and flushed as one
    /// counter update per solve so the hot loop never touches telemetry,
    /// even when counters are enabled).
    pub(super) fn drain(&mut self, sites: &[&ISite], sites_of: &HashMap<u32, Vec<usize>>) -> u64 {
        let mut delta_total = 0u64;
        while let Some(n) = self.worklist.pop_front() {
            delta_total += self.process_node(n, sites, sites_of);
        }
        delta_total
    }
}

/// Merges sorted `items` into the sorted `set`, returning the elements that
/// were not already present (sorted). Allocation-free when `items` is
/// already contained — the overwhelmingly common case near the fixpoint.
pub(super) fn merge_into(set: &mut Vec<u32>, items: &[u32]) -> Vec<u32> {
    // Fast path: everything new lands after the current maximum.
    if set
        .last()
        .is_none_or(|&max| items.first().is_some_and(|&f| f > max))
    {
        set.extend_from_slice(items);
        return items.to_vec();
    }
    // Containment pre-check: count fresh elements without building anything.
    let mut fresh_count = 0usize;
    {
        let (mut i, mut j) = (0usize, 0usize);
        while j < items.len() {
            if i == set.len() || set[i] > items[j] {
                fresh_count += 1;
                j += 1;
            } else if set[i] == items[j] {
                i += 1;
                j += 1;
            } else {
                i += 1;
            }
        }
    }
    if fresh_count == 0 {
        return Vec::new();
    }
    let mut fresh = Vec::with_capacity(fresh_count);
    let mut merged = Vec::with_capacity(set.len() + fresh_count);
    let (mut i, mut j) = (0usize, 0usize);
    while i < set.len() && j < items.len() {
        match set[i].cmp(&items[j]) {
            std::cmp::Ordering::Less => {
                merged.push(set[i]);
                i += 1;
            }
            std::cmp::Ordering::Equal => {
                merged.push(set[i]);
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Greater => {
                merged.push(items[j]);
                fresh.push(items[j]);
                j += 1;
            }
        }
    }
    merged.extend_from_slice(&set[i..]);
    for &x in &items[j..] {
        merged.push(x);
        fresh.push(x);
    }
    *set = merged;
    fresh
}

/// Union of two sorted, deduped slices.
pub(super) fn merge_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_into_reports_only_fresh_elements() {
        let mut set = vec![2, 5, 9];
        let fresh = merge_into(&mut set, &[1, 5, 10]);
        assert_eq!(fresh, vec![1, 10]);
        assert_eq!(set, vec![1, 2, 5, 9, 10]);
        assert!(merge_into(&mut set, &[2, 9]).is_empty());
    }

    #[test]
    fn merge_sorted_unions() {
        assert_eq!(merge_sorted(&[1, 3], &[2, 3, 4]), vec![1, 2, 3, 4]);
        assert_eq!(merge_sorted(&[], &[7]), vec![7]);
    }
}
