//! The retained naive reference solver.
//!
//! This is the seed's textbook solver, kept verbatim (minus the unsound
//! `iterations > 256` bailout, which has been deleted everywhere): rescan
//! every constraint each round, clone whole points-to sets on every
//! copy/load/store, append indirect-call bindings between rounds, repeat
//! until nothing changes. It is deliberately slow and deliberately simple —
//! the differential property tests (Klinger et al.-style) assert the
//! worklist solver's `pts` and `indirect_targets` are identical to this
//! implementation on generated programs, which is what lets the fast path
//! evolve without a soundness leap of faith.

use super::constraints::{Constraint, IndirectSite};
use super::{PointsToResult, Sensitivity};
use ivy_cmir::ast::Program;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Runs the reference solver to a true fixpoint (no iteration cap: the
/// constraint system is finite and monotone, so termination is by
/// construction).
pub(crate) fn solve_naive(
    program: &Program,
    sensitivity: Sensitivity,
    mut constraints: Vec<Constraint>,
    indirect_sites: Vec<IndirectSite>,
) -> PointsToResult {
    let initial_constraints = constraints.len();
    let mut pts: BTreeMap<super::Loc, BTreeSet<super::Loc>> = BTreeMap::new();
    let mut bound: BTreeSet<(usize, String)> = BTreeSet::new();
    let mut iterations = 0usize;

    loop {
        iterations += 1;
        let mut changed = false;

        for c in &constraints {
            match c {
                Constraint::AddrOf { dst, loc } => {
                    changed |= pts.entry(dst.clone()).or_default().insert(loc.clone());
                }
                Constraint::Copy { dst, src } => {
                    changed |= copy_into(&mut pts, dst, src);
                }
                Constraint::Load { dst, src } => {
                    let targets = pts.get(src).cloned().unwrap_or_default();
                    for t in targets {
                        changed |= copy_into(&mut pts, dst, &t);
                    }
                }
                Constraint::Store { dst, src } => {
                    let targets = pts.get(dst).cloned().unwrap_or_default();
                    for t in targets {
                        changed |= copy_into(&mut pts, &t, src);
                    }
                }
            }
        }

        // Resolve indirect calls discovered so far: bind arguments and return
        // values for every function the callee may point to.
        let mut new_constraints = Vec::new();
        for (i, site) in indirect_sites.iter().enumerate() {
            let callees: Vec<String> = pts
                .get(&site.callee_loc)
                .map(|s| {
                    s.iter()
                        .filter_map(|l| match l {
                            super::Loc::Func(f) => Some(f.clone()),
                            _ => None,
                        })
                        .collect()
                })
                .unwrap_or_default();
            for callee in callees {
                if !bound.insert((i, callee.clone())) {
                    continue;
                }
                changed = true;
                if let Some(f) = program.function(&callee) {
                    for (idx, param) in f.params.iter().enumerate() {
                        if let Some(arg_loc) = site.arg_locs.get(idx) {
                            new_constraints.push(Constraint::Copy {
                                dst: super::Loc::Local {
                                    func: callee.clone(),
                                    var: param.name.clone(),
                                },
                                src: arg_loc.clone(),
                            });
                        }
                    }
                    new_constraints.push(Constraint::Copy {
                        dst: site.result_loc.clone(),
                        src: super::Loc::Ret(callee.clone()),
                    });
                }
            }
        }
        if sensitivity == Sensitivity::Steensgaard {
            // Equality-based: every copy constraint is bidirectional.
            let reversed: Vec<Constraint> = new_constraints
                .iter()
                .filter_map(|c| match c {
                    Constraint::Copy { dst, src } => Some(Constraint::Copy {
                        dst: src.clone(),
                        src: dst.clone(),
                    }),
                    _ => None,
                })
                .collect();
            new_constraints.extend(reversed);
        }
        constraints.extend(new_constraints);

        if !changed {
            break;
        }
    }

    let mut indirect_targets: HashMap<(String, String), BTreeSet<String>> = HashMap::new();
    for site in &indirect_sites {
        let targets: BTreeSet<String> = pts
            .get(&site.callee_loc)
            .map(|s| {
                s.iter()
                    .filter_map(|l| match l {
                        super::Loc::Func(f) => Some(f.clone()),
                        _ => None,
                    })
                    .collect()
            })
            .unwrap_or_default();
        indirect_targets
            .entry((site.func.clone(), site.callee_text.clone()))
            .or_default()
            .extend(targets);
    }

    PointsToResult::from_naive(
        pts,
        indirect_targets,
        sensitivity,
        initial_constraints,
        constraints.len(),
        iterations,
    )
}

fn copy_into(
    pts: &mut BTreeMap<super::Loc, BTreeSet<super::Loc>>,
    dst: &super::Loc,
    src: &super::Loc,
) -> bool {
    if dst == src {
        return false;
    }
    let src_set = pts.get(src).cloned().unwrap_or_default();
    if src_set.is_empty() {
        return false;
    }
    let dst_set = pts.entry(dst.clone()).or_default();
    let before = dst_set.len();
    dst_set.extend(src_set);
    dst_set.len() != before
}
