//! Location interning: dense `u32` ids for [`Loc`]s.
//!
//! The worklist solver never touches a `Loc` (or its heap-allocated
//! strings) on the hot path: every abstract location is interned to a dense
//! id once, constraints become integer triples, and points-to sets become
//! sorted `Vec<u32>`s. The interner is append-only — ids stay valid for the
//! lifetime of the interner — which is what lets a [`ConstraintCache`]
//! (see the parent module) keep interned constraint batches across programs
//! and hand out results that materialize `Loc`-keyed maps lazily.
//!
//! [`Loc`]: super::Loc
//! [`ConstraintCache`]: super::ConstraintCache

use super::Loc;
use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard};

/// A bidirectional, append-only map `Loc` ↔ dense `u32` id.
#[derive(Debug, Default)]
pub(crate) struct LocInterner {
    ids: HashMap<Loc, u32>,
    locs: Vec<Loc>,
}

impl LocInterner {
    /// The id of `loc`, allocating the next dense id on first sight.
    pub(crate) fn intern(&mut self, loc: &Loc) -> u32 {
        if let Some(&id) = self.ids.get(loc) {
            return id;
        }
        let id = u32::try_from(self.locs.len()).expect("fewer than 2^32 abstract locations");
        self.ids.insert(loc.clone(), id);
        self.locs.push(loc.clone());
        id
    }

    /// The `Loc` behind an id. Ids come from [`LocInterner::intern`], so
    /// this cannot fail for ids produced by the same interner.
    pub(crate) fn resolve(&self, id: u32) -> &Loc {
        &self.locs[id as usize]
    }

    /// The id of `loc` if it has already been interned, without allocating.
    pub(crate) fn lookup(&self, loc: &Loc) -> Option<u32> {
        self.ids.get(loc).copied()
    }

    /// Number of interned locations (== the exclusive upper bound of ids).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.locs.len()
    }
}

/// A shareable, append-only interner: owned jointly by a
/// [`ConstraintCache`](super::ConstraintCache) and every
/// [`PointsToResult`](super::PointsToResult) it produced, so results can
/// materialize `Loc`-keyed views lazily, long after the solve finished.
#[derive(Debug, Default)]
pub(crate) struct SharedInterner {
    inner: Mutex<LocInterner>,
}

impl SharedInterner {
    /// Exclusive access for interning and resolving.
    pub(crate) fn lock(&self) -> MutexGuard<'_, LocInterner> {
        self.inner.lock().expect("interner poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_dense() {
        let mut i = LocInterner::default();
        let a = Loc::Global("a".into());
        let b = Loc::Func("b".into());
        let ia = i.intern(&a);
        let ib = i.intern(&b);
        assert_eq!((ia, ib), (0, 1));
        assert_eq!(i.intern(&a), ia, "re-interning returns the same id");
        assert_eq!(i.resolve(ib), &b);
        assert_eq!(i.len(), 2);
    }
}
