//! Constraint generation: KC AST → inclusion constraints, batched per
//! function.
//!
//! Generation is the only phase that looks at syntax. It produces
//! [`LocBatch`]es — plain [`Loc`]-level constraints plus indirect call
//! sites — one batch for all global initializers and one per defined
//! function. A batch depends *only* on the function's own definition and on
//! the whole-program type environment (callee signatures and attributes,
//! global and composite declarations): never on other function bodies.
//! That makes `mix(content_hash, env_hash)` a sound cache key for a batch,
//! which is what [`ConstraintCache`](super::ConstraintCache) exploits to
//! skip regeneration for clean functions after an edit.
//!
//! Per-batch determinism: temporary and allocation-site counters reset per
//! function (the seed generator numbered allocation sites program-wide,
//! which made a function's constraints depend on its position in the
//! file — unusable as a cache unit).

use super::intern::LocInterner;
use super::{Loc, Sensitivity};
use ivy_cmir::ast::{Expr, Function, Program, Stmt};
use ivy_cmir::typecheck::TypeCtx;
use ivy_cmir::types::Type;
use ivy_cmir::visit;

/// An inclusion constraint over abstract locations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Constraint {
    /// `dst ⊇ {loc}` — `dst` may point to `loc`.
    AddrOf { dst: Loc, loc: Loc },
    /// `dst ⊇ src`.
    Copy { dst: Loc, src: Loc },
    /// `dst ⊇ *src` — for every `t ∈ pts(src)`, `dst ⊇ t`.
    Load { dst: Loc, src: Loc },
    /// `*dst ⊇ src` — for every `t ∈ pts(dst)`, `t ⊇ src`.
    Store { dst: Loc, src: Loc },
}

/// A call through a function pointer, waiting for its callee set.
#[derive(Debug, Clone)]
pub(crate) struct IndirectSite {
    /// Enclosing function.
    pub func: String,
    /// The callee expression as written (`ops->read`).
    pub callee_text: String,
    /// Location holding the function pointer value.
    pub callee_loc: Loc,
    /// Locations of the evaluated arguments, in order.
    pub arg_locs: Vec<Loc>,
    /// Location receiving the call's result.
    pub result_loc: Loc,
}

/// The constraints of one generation unit (the global-initializer batch or
/// one function), in `Loc` form.
#[derive(Debug, Clone, Default)]
pub(crate) struct LocBatch {
    pub constraints: Vec<Constraint>,
    pub indirect_sites: Vec<IndirectSite>,
}

/// [`Constraint`] with both operands interned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum IConstraint {
    AddrOf { dst: u32, loc: u32 },
    Copy { dst: u32, src: u32 },
    Load { dst: u32, src: u32 },
    Store { dst: u32, src: u32 },
}

/// [`IndirectSite`] with its locations interned. The strings survive
/// interning because they key the public `indirect_targets` map.
#[derive(Debug, Clone)]
pub(crate) struct ISite {
    pub func: String,
    pub callee_text: String,
    pub callee: u32,
    pub args: Vec<u32>,
    pub result: u32,
}

/// One generation unit in interned form — the unit the solver consumes and
/// the [`ConstraintCache`](super::ConstraintCache) stores.
#[derive(Debug, Clone, Default)]
pub(crate) struct InternedBatch {
    pub constraints: Vec<IConstraint>,
    pub sites: Vec<ISite>,
}

/// Interns a batch against an interner (ids remain valid as long as the
/// interner lives).
pub(crate) fn intern_batch(batch: &LocBatch, interner: &mut LocInterner) -> InternedBatch {
    let constraints = batch
        .constraints
        .iter()
        .map(|c| match c {
            Constraint::AddrOf { dst, loc } => IConstraint::AddrOf {
                dst: interner.intern(dst),
                loc: interner.intern(loc),
            },
            Constraint::Copy { dst, src } => IConstraint::Copy {
                dst: interner.intern(dst),
                src: interner.intern(src),
            },
            Constraint::Load { dst, src } => IConstraint::Load {
                dst: interner.intern(dst),
                src: interner.intern(src),
            },
            Constraint::Store { dst, src } => IConstraint::Store {
                dst: interner.intern(dst),
                src: interner.intern(src),
            },
        })
        .collect();
    let sites = batch
        .indirect_sites
        .iter()
        .map(|s| ISite {
            func: s.func.clone(),
            callee_text: s.callee_text.clone(),
            callee: interner.intern(&s.callee_loc),
            args: s.arg_locs.iter().map(|a| interner.intern(a)).collect(),
            result: interner.intern(&s.result_loc),
        })
        .collect();
    InternedBatch { constraints, sites }
}

/// Generates the batch for all global initializers.
pub(crate) fn gen_globals(program: &Program, sensitivity: Sensitivity) -> LocBatch {
    let mut gen = ConstraintGen::new(program, sensitivity);
    for g in &program.globals {
        if let Some(init) = &g.init {
            gen.current_func = format!("__global_init_{}", g.decl.name);
            gen.temp_counter = 0;
            gen.alloc_counter = 0;
            let mut ctx = TypeCtx::new(program);
            let src = gen.gen_value(init, &mut ctx);
            gen.push(Constraint::Copy {
                dst: Loc::Global(g.decl.name.clone()),
                src,
            });
        }
    }
    gen.into_batch()
}

/// Generates the batch of one defined function.
pub(crate) fn gen_function_batch(
    program: &Program,
    sensitivity: Sensitivity,
    func: &Function,
) -> LocBatch {
    let mut gen = ConstraintGen::new(program, sensitivity);
    gen.gen_function(func);
    gen.into_batch()
}

/// Generates every batch of a program: globals first, then defined
/// functions in program order (the order the seed generator used).
pub(crate) fn gen_program(program: &Program, sensitivity: Sensitivity) -> Vec<LocBatch> {
    let mut out = vec![gen_globals(program, sensitivity)];
    for f in program.functions.iter().filter(|f| f.body.is_some()) {
        out.push(gen_function_batch(program, sensitivity, f));
    }
    out
}

struct ConstraintGen<'p> {
    program: &'p Program,
    sensitivity: Sensitivity,
    constraints: Vec<Constraint>,
    indirect_sites: Vec<IndirectSite>,
    temp_counter: u32,
    alloc_counter: u32,
    current_func: String,
}

impl<'p> ConstraintGen<'p> {
    fn new(program: &'p Program, sensitivity: Sensitivity) -> ConstraintGen<'p> {
        ConstraintGen {
            program,
            sensitivity,
            constraints: Vec::new(),
            indirect_sites: Vec::new(),
            temp_counter: 0,
            alloc_counter: 0,
            current_func: String::new(),
        }
    }

    fn into_batch(self) -> LocBatch {
        LocBatch {
            constraints: self.constraints,
            indirect_sites: self.indirect_sites,
        }
    }

    fn fresh(&mut self) -> Loc {
        self.temp_counter += 1;
        Loc::Temp {
            func: self.current_func.clone(),
            id: self.temp_counter,
        }
    }

    fn push(&mut self, c: Constraint) {
        if self.sensitivity == Sensitivity::Steensgaard {
            if let Constraint::Copy { dst, src } = &c {
                self.constraints.push(Constraint::Copy {
                    dst: src.clone(),
                    src: dst.clone(),
                });
            }
        }
        self.constraints.push(c);
    }

    fn var_loc(&self, ctx: &TypeCtx<'_>, name: &str) -> Option<Loc> {
        if ctx.lookup(name).is_some() {
            if self.program.global(name).is_some() {
                return Some(Loc::Global(name.to_string()));
            }
            if self.program.function(name).is_some()
                && !matches!(ctx.lookup(name), Some(t) if !matches!(t, Type::Func(_)))
            {
                // A bare function name: handled by the caller (AddrOf(Func)).
                return None;
            }
            return Some(Loc::Local {
                func: self.current_func.clone(),
                var: name.to_string(),
            });
        }
        if self.program.global(name).is_some() {
            return Some(Loc::Global(name.to_string()));
        }
        None
    }

    fn field_loc(&self, composite: Option<String>, field: &str) -> Loc {
        match (self.sensitivity, composite) {
            (Sensitivity::AndersenField, Some(c)) => Loc::Field {
                composite: c,
                field: field.to_string(),
            },
            (_, Some(c)) => Loc::Composite(c),
            (_, None) => Loc::Composite("<unknown>".to_string()),
        }
    }

    fn gen_function(&mut self, func: &Function) {
        self.current_func = func.name.clone();
        self.temp_counter = 0;
        self.alloc_counter = 0;
        let mut ctx = TypeCtx::for_function(self.program, func);
        let body = func
            .body
            .clone()
            .expect("only called for defined functions");
        self.gen_block(&body, func, &mut ctx);
    }

    fn gen_block(&mut self, block: &ivy_cmir::Block, func: &Function, ctx: &mut TypeCtx<'_>) {
        for stmt in &block.stmts {
            self.gen_stmt(stmt, func, ctx);
        }
    }

    fn gen_stmt(&mut self, stmt: &Stmt, func: &Function, ctx: &mut TypeCtx<'_>) {
        match stmt {
            Stmt::Local(d, init) => {
                if let Some(init) = init {
                    let src = self.gen_value(init, ctx);
                    self.push(Constraint::Copy {
                        dst: Loc::Local {
                            func: self.current_func.clone(),
                            var: d.name.clone(),
                        },
                        src,
                    });
                }
                ctx.bind(&d.name, d.ty.clone());
            }
            Stmt::Assign(lhs, rhs, _) => {
                let src = self.gen_value(rhs, ctx);
                self.gen_store(lhs, src, ctx);
            }
            Stmt::Expr(e, _) => {
                let _ = self.gen_value(e, ctx);
            }
            Stmt::Return(Some(e), _) => {
                let src = self.gen_value(e, ctx);
                self.push(Constraint::Copy {
                    dst: Loc::Ret(self.current_func.clone()),
                    src,
                });
            }
            Stmt::Return(None, _) | Stmt::Break(_) | Stmt::Continue(_) => {}
            Stmt::If(c, then_b, else_b, _) => {
                let _ = self.gen_value(c, ctx);
                self.gen_block(then_b, func, ctx);
                if let Some(b) = else_b {
                    self.gen_block(b, func, ctx);
                }
            }
            Stmt::While(c, body, _) => {
                let _ = self.gen_value(c, ctx);
                self.gen_block(body, func, ctx);
            }
            Stmt::Block(b) | Stmt::DelayedFreeScope(b, _) => self.gen_block(b, func, ctx),
            Stmt::Check(c, _) => {
                visit::walk_check_exprs(c, &mut |_| {});
            }
        }
    }

    fn gen_store(&mut self, lhs: &Expr, src: Loc, ctx: &mut TypeCtx<'_>) {
        match lhs {
            Expr::Var(name) => {
                if let Some(dst) = self.var_loc(ctx, name) {
                    self.push(Constraint::Copy { dst, src });
                }
            }
            Expr::Deref(inner) | Expr::Index(inner, _) => {
                let dst = self.gen_value(inner, ctx);
                self.push(Constraint::Store { dst, src });
            }
            Expr::Arrow(obj, field) => {
                let comp = ctx.composite_name_of(obj);
                let _ = self.gen_value(obj, ctx);
                let dst = self.field_loc(comp, field);
                self.push(Constraint::Copy { dst, src });
            }
            Expr::Field(obj, field) => {
                let comp = ctx.composite_name_of(obj);
                let _ = self.gen_value(obj, ctx);
                let dst = self.field_loc(comp, field);
                self.push(Constraint::Copy { dst, src });
            }
            Expr::Cast(_, inner) => self.gen_store(inner, src, ctx),
            _ => {
                // Not an lvalue the analysis models; evaluate for calls.
                let _ = self.gen_value(lhs, ctx);
            }
        }
    }

    fn gen_value(&mut self, e: &Expr, ctx: &mut TypeCtx<'_>) -> Loc {
        match e {
            Expr::Int(_) | Expr::Str(_) | Expr::Null | Expr::SizeOf(_) => self.fresh(),
            Expr::Var(name) => {
                if self.program.function(name).is_some() && ctx_local_shadows(ctx, name).is_none() {
                    let t = self.fresh();
                    self.push(Constraint::AddrOf {
                        dst: t.clone(),
                        loc: Loc::Func(name.clone()),
                    });
                    t
                } else if let Some(l) = self.var_loc(ctx, name) {
                    // Arrays decay to a pointer to their own storage when used
                    // as a value.
                    let is_array = ctx
                        .lookup(name)
                        .map(|t| matches!(self.program.resolve_type(&t), Type::Array(..)))
                        .unwrap_or(false);
                    if is_array {
                        let t = self.fresh();
                        self.push(Constraint::AddrOf {
                            dst: t.clone(),
                            loc: l,
                        });
                        t
                    } else {
                        l
                    }
                } else {
                    self.fresh()
                }
            }
            Expr::Unary(_, inner) => self.gen_value(inner, ctx),
            Expr::Binary(_, a, b) => {
                let la = self.gen_value(a, ctx);
                let lb = self.gen_value(b, ctx);
                let t = self.fresh();
                self.push(Constraint::Copy {
                    dst: t.clone(),
                    src: la,
                });
                self.push(Constraint::Copy {
                    dst: t.clone(),
                    src: lb,
                });
                t
            }
            Expr::Cast(_, inner) => self.gen_value(inner, ctx),
            Expr::Deref(inner) | Expr::Index(inner, _) => {
                let src = self.gen_value(inner, ctx);
                let t = self.fresh();
                self.push(Constraint::Load {
                    dst: t.clone(),
                    src,
                });
                t
            }
            Expr::Arrow(obj, field) | Expr::Field(obj, field) => {
                let comp = ctx.composite_name_of(obj);
                let _ = self.gen_value(obj, ctx);
                let t = self.fresh();
                let f = self.field_loc(comp, field);
                // An array-typed field used as a value decays to a pointer
                // to the field's own storage (like array-typed variables
                // above). Modelling it as a value copy would make
                // `kmemset(dev->ring, ...)`-style handoffs statically
                // invisible — a soundness gap the dynamic oracle caught.
                let decays = ctx
                    .type_of(e)
                    .map(|t| matches!(self.program.resolve_type(&t), Type::Array(..)))
                    .unwrap_or(false);
                if decays {
                    self.push(Constraint::AddrOf {
                        dst: t.clone(),
                        loc: f,
                    });
                } else {
                    self.push(Constraint::Copy {
                        dst: t.clone(),
                        src: f,
                    });
                }
                t
            }
            Expr::AddrOf(inner) => match &**inner {
                Expr::Var(name) => {
                    let t = self.fresh();
                    let loc = if self.program.function(name).is_some()
                        && ctx_local_shadows(ctx, name).is_none()
                    {
                        Loc::Func(name.clone())
                    } else if let Some(l) = self.var_loc(ctx, name) {
                        l
                    } else {
                        return t;
                    };
                    self.push(Constraint::AddrOf {
                        dst: t.clone(),
                        loc,
                    });
                    t
                }
                Expr::Arrow(obj, field) | Expr::Field(obj, field) => {
                    let comp = ctx.composite_name_of(obj);
                    let _ = self.gen_value(obj, ctx);
                    let t = self.fresh();
                    let loc = self.field_loc(comp, field);
                    self.push(Constraint::AddrOf {
                        dst: t.clone(),
                        loc,
                    });
                    t
                }
                Expr::Index(base, _) => self.gen_value(base, ctx),
                Expr::Deref(p) => self.gen_value(p, ctx),
                other => self.gen_value(other, ctx),
            },
            Expr::Call(callee, args) => {
                let arg_locs: Vec<Loc> = args.iter().map(|a| self.gen_value(a, ctx)).collect();
                let result = self.fresh();
                match &**callee {
                    Expr::Var(name)
                        if self.program.function(name).is_some()
                            && ctx_local_shadows(ctx, name).is_none() =>
                    {
                        let f = self.program.function(name).expect("checked above").clone();
                        if f.attrs.allocator {
                            self.alloc_counter += 1;
                            let site = format!("{}#{}", self.current_func, self.alloc_counter);
                            self.push(Constraint::AddrOf {
                                dst: result.clone(),
                                loc: Loc::Alloc { site },
                            });
                        }
                        for (idx, param) in f.params.iter().enumerate() {
                            if let Some(arg_loc) = arg_locs.get(idx) {
                                self.push(Constraint::Copy {
                                    dst: Loc::Local {
                                        func: name.clone(),
                                        var: param.name.clone(),
                                    },
                                    src: arg_loc.clone(),
                                });
                            }
                        }
                        if !f.attrs.allocator {
                            self.push(Constraint::Copy {
                                dst: result.clone(),
                                src: Loc::Ret(name.clone()),
                            });
                        }
                    }
                    other => {
                        let callee_loc = self.gen_value(other, ctx);
                        self.indirect_sites.push(IndirectSite {
                            func: self.current_func.clone(),
                            callee_text: ivy_cmir::pretty::expr_str(other),
                            callee_loc,
                            arg_locs,
                            result_loc: result.clone(),
                        });
                    }
                }
                result
            }
        }
    }
}

fn ctx_local_shadows(ctx: &TypeCtx<'_>, name: &str) -> Option<Type> {
    // A local variable with the same name as a function shadows it; in that
    // case the variable is not a function constant.
    match ctx.lookup(name) {
        Some(Type::Func(_)) | None => None,
        Some(t) => Some(t),
    }
}
