//! True union-find Steensgaard solving.
//!
//! The worklist solver handles Steensgaard's equality constraints by
//! *mirroring* every assignment into two subset edges, which makes the
//! coarsest sensitivity the slowest to solve: every fact crosses every
//! mirrored pair twice and the solver carries twice the edges. This module
//! replaces that encoding with the classic near-linear algorithm: a
//! path-compressed, union-by-rank union-find over interned location ids.
//!
//! * Every static `Copy` constraint is a **union** — sound because the
//!   generator emits Steensgaard copies mirrored, i.e. as equalities.
//! * Load/store constraints stay **directional**, exactly as in the
//!   worklist solver (dereference-spawned flows are not mirrored in either
//!   solver): they become class-level subset edges solved by a small
//!   difference-propagating worklist over equivalence classes.
//! * Indirect-call bindings unify argument with parameter and return with
//!   result (the worklist adds both mirror edges; one union is the same
//!   equality), counted exactly like the naive reference (two constraints
//!   per bound pair).
//!
//! At the end, `pts(id)` is materialized as the points-to set of `find(id)`
//! for every id the plan references — byte-identical to the worklist
//! solver's output, because mirrored subset edges force equal fixpoint sets
//! across each equivalence class and the fixpoint is unique.

use super::constraints::{IConstraint, ISite, InternedBatch};
use super::solve::{merge_into, merge_sorted, plan_max_id, BindTable, SolveOutput};
use super::Sensitivity;
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Solves a Steensgaard plan by unification. The output is byte-identical
/// to `solve_worklist` on the same (mirrored) plan.
pub(super) fn solve_unify(
    sensitivity: Sensitivity,
    batches: &[Arc<InternedBatch>],
    bind: &BindTable,
) -> SolveOutput {
    debug_assert_eq!(sensitivity, Sensitivity::Steensgaard);
    let seed_span = ivy_telemetry::span("pointsto/seed", sensitivity.name());

    let n = plan_max_id(batches, bind) as usize + 1;
    let mut uf = Unify::new(n, bind);

    // Pass 1: unions. Collapsing classes before any propagation means the
    // subset pass below runs over the condensed graph from the start.
    let mut initial_constraints = 0usize;
    for batch in batches {
        initial_constraints += batch.constraints.len();
        for c in &batch.constraints {
            if let IConstraint::Copy { dst, src } = *c {
                uf.union(dst, src);
            }
        }
    }

    // Pass 2: seeds and directional deref constraints.
    let mut seeds: Vec<(u32, u32)> = Vec::new();
    for batch in batches {
        for c in &batch.constraints {
            match *c {
                IConstraint::AddrOf { dst, loc } => seeds.push((dst, loc)),
                IConstraint::Copy { .. } => {}
                IConstraint::Load { dst, src } => {
                    let r = uf.find(src) as usize;
                    uf.loads[r].push(dst);
                }
                IConstraint::Store { dst, src } => {
                    let r = uf.find(dst) as usize;
                    uf.stores[r].push(src);
                }
            }
        }
    }
    uf.total_constraints = initial_constraints;

    // Indirect sites attach to their callee's class and follow it through
    // later merges.
    let sites: Vec<&ISite> = batches.iter().flat_map(|b| b.sites.iter()).collect();
    for (i, site) in sites.iter().enumerate() {
        let r = uf.find(site.callee) as usize;
        uf.sites_at[r].push(i);
    }

    for (dst, loc) in seeds {
        let r = uf.find(dst);
        uf.add_pts(r, &[loc]);
    }
    drop(seed_span);

    let propagate_span = ivy_telemetry::span("pointsto/propagate", sensitivity.name());
    let mut delta_total = 0u64;
    while let Some(r) = uf.worklist.pop_front() {
        let r = uf.find(r);
        uf.pops += 1;
        uf.inq[r as usize] = false;
        let d = std::mem::take(&mut uf.delta[r as usize]);
        if d.is_empty() {
            continue;
        }
        delta_total += d.len() as u64;
        // `t = *r`: each new pointee class flows into t's class.
        let loads = std::mem::take(&mut uf.loads[r as usize]);
        for &t in &loads {
            for &p in &d {
                uf.add_edge(p, t);
            }
        }
        uf.loads[r as usize].splice(0..0, loads);
        // `*r = s`: s's class flows into each new pointee class.
        let stores = std::mem::take(&mut uf.stores[r as usize]);
        for &s in &stores {
            for &p in &d {
                uf.add_edge(s, p);
            }
        }
        uf.stores[r as usize].splice(0..0, stores);
        // Subset successors receive the delta.
        let succ = std::mem::take(&mut uf.succ[r as usize]);
        for &v in &succ {
            let rv = uf.find(v);
            uf.add_pts(rv, &d);
        }
        uf.succ[r as usize].splice(0..0, succ);
        // Indirect calls through this class: unify with new targets.
        let site_idxs = std::mem::take(&mut uf.sites_at[r as usize]);
        if !site_idxs.is_empty() {
            let new_funcs: Vec<u32> = d
                .iter()
                .copied()
                .filter(|p| uf.bind.func_names.contains_key(p))
                .collect();
            for &f in &new_funcs {
                for &i in &site_idxs {
                    uf.bind_site(sites[i], f, i);
                }
            }
        }
        let home = uf.find(r) as usize;
        uf.sites_at[home].splice(0..0, site_idxs);
    }
    drop(propagate_span);
    ivy_telemetry::counter("ivy_pointsto_worklist_pops_total", uf.pops as u64);
    ivy_telemetry::counter("ivy_pointsto_delta_locations_total", delta_total);
    ivy_telemetry::counter("ivy_pointsto_unify_unions_total", uf.unions);

    // Materialize per-id sets from the class sets.
    let mut sets: Vec<Vec<u32>> = vec![Vec::new(); n];
    for id in 0..n as u32 {
        let r = uf.find(id) as usize;
        if !uf.pts[r].is_empty() {
            sets[id as usize] = uf.pts[r].clone();
        }
    }

    let mut indirect_targets: HashMap<(String, String), BTreeSet<String>> = HashMap::new();
    for site in &sites {
        let targets: BTreeSet<String> = sets[site.callee as usize]
            .iter()
            .filter_map(|p| uf.bind.func_names.get(p).cloned())
            .collect();
        indirect_targets
            .entry((site.func.clone(), site.callee_text.clone()))
            .or_default()
            .extend(targets);
    }

    SolveOutput {
        sets,
        indirect_targets,
        initial_constraints,
        total_constraints: uf.total_constraints,
        pops: uf.pops,
        dyn_edges: None,
        // Unification derives facts by merging equivalence classes, not by
        // propagating along edges; it records no provenance (dispatch
        // routes provenance solves to the worklist instead).
        provenance: None,
    }
}

/// Union-find with per-class solver state. All per-class vectors are
/// indexed by *root* id; on union, the loser's state is appended to the
/// winner's.
struct Unify<'a> {
    bind: &'a BindTable,
    parent: Vec<u32>,
    rank: Vec<u8>,
    /// Class points-to sets (element ids are plain location ids).
    pts: Vec<Vec<u32>>,
    delta: Vec<Vec<u32>>,
    /// Class-level subset successors (stored as node ids, canonicalized on
    /// use so merges need no rewriting).
    succ: Vec<Vec<u32>>,
    /// Deref constraints: `loads[r]` ∋ t for `t = *r`, `stores[r]` ∋ s for
    /// `*r = s`.
    loads: Vec<Vec<u32>>,
    stores: Vec<Vec<u32>>,
    /// Indirect sites whose callee lives in this class.
    sites_at: Vec<Vec<usize>>,
    /// Subset-edge dedup over roots at insertion time (post-merge
    /// duplicates only cost a redundant re-propagation).
    edge_set: HashSet<u64>,
    /// Site/target pairs already bound (class deltas can resurface an
    /// element after a merge, unlike the exact-once worklist deltas).
    bound: HashSet<(usize, u32)>,
    inq: Vec<bool>,
    worklist: VecDeque<u32>,
    total_constraints: usize,
    pops: usize,
    unions: u64,
}

impl<'a> Unify<'a> {
    fn new(n: usize, bind: &'a BindTable) -> Unify<'a> {
        Unify {
            bind,
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            pts: vec![Vec::new(); n],
            delta: vec![Vec::new(); n],
            succ: vec![Vec::new(); n],
            loads: vec![Vec::new(); n],
            stores: vec![Vec::new(); n],
            sites_at: vec![Vec::new(); n],
            edge_set: HashSet::new(),
            bound: HashSet::new(),
            inq: vec![false; n],
            worklist: VecDeque::new(),
            total_constraints: 0,
            pops: 0,
            unions: 0,
        }
    }

    /// Path-halving find.
    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Adds `items` to the class set of root `r`; fresh elements join the
    /// class delta and queue the class.
    fn add_pts(&mut self, r: u32, items: &[u32]) {
        let fresh = merge_into(&mut self.pts[r as usize], items);
        if fresh.is_empty() {
            return;
        }
        let merged = merge_sorted(&self.delta[r as usize], &fresh);
        self.delta[r as usize] = merged;
        if !self.inq[r as usize] {
            self.inq[r as usize] = true;
            self.worklist.push_back(r);
        }
    }

    /// Adds the class-level subset edge class(u) → class(v), propagating
    /// the source class's current set.
    fn add_edge(&mut self, u: u32, v: u32) {
        let (ru, rv) = (self.find(u), self.find(v));
        if ru == rv {
            return;
        }
        if !self.edge_set.insert(u64::from(ru) << 32 | u64::from(rv)) {
            return;
        }
        self.succ[ru as usize].push(rv);
        if !self.pts[ru as usize].is_empty() {
            let snapshot = self.pts[ru as usize].clone();
            self.add_pts(rv, &snapshot);
        }
    }

    /// Unifies the classes of `a` and `b` (union by rank). The merged
    /// class's delta gains the symmetric difference of the two sets: each
    /// half is new to the other side's subset edges, and re-propagating it
    /// along the combined edge list covers both (monotone, so the
    /// redundancy is sound).
    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        self.unions += 1;
        let (w, l) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        if self.rank[w as usize] == self.rank[l as usize] {
            self.rank[w as usize] += 1;
        }
        self.parent[l as usize] = w;

        let l_pts = std::mem::take(&mut self.pts[l as usize]);
        let w_pts = std::mem::take(&mut self.pts[w as usize]);
        let sym: Vec<u32> = symmetric_difference(&w_pts, &l_pts);
        self.pts[w as usize] = merge_sorted(&w_pts, &l_pts);

        let l_delta = std::mem::take(&mut self.delta[l as usize]);
        let merged_delta = merge_sorted(&merge_sorted(&self.delta[w as usize], &l_delta), &sym);
        self.delta[w as usize] = merged_delta;

        let l_succ = std::mem::take(&mut self.succ[l as usize]);
        self.succ[w as usize].extend(l_succ);
        let l_loads = std::mem::take(&mut self.loads[l as usize]);
        self.loads[w as usize].extend(l_loads);
        let l_stores = std::mem::take(&mut self.stores[l as usize]);
        self.stores[w as usize].extend(l_stores);
        let l_sites = std::mem::take(&mut self.sites_at[l as usize]);
        self.sites_at[w as usize].extend(l_sites);

        if !self.delta[w as usize].is_empty() && !self.inq[w as usize] {
            self.inq[w as usize] = true;
            self.worklist.push_back(w);
        }
    }

    /// Binds one indirect site to one discovered target: argument/parameter
    /// and return/result unify (the mirrored pair of the subset encoding),
    /// counted exactly like the naive reference (two per pair).
    fn bind_site(&mut self, site: &ISite, func_pointee: u32, site_idx: usize) {
        if !self.bound.insert((site_idx, func_pointee)) {
            return;
        }
        let fname = &self.bind.func_names[&func_pointee];
        let Some((params, ret)) = self.bind.funcs.get(fname) else {
            return;
        };
        let (params, ret) = (params.clone(), *ret);
        for (idx, &pid) in params.iter().enumerate() {
            let Some(&arg) = site.args.get(idx) else {
                break;
            };
            self.union(arg, pid);
            self.total_constraints += 2;
        }
        self.union(ret, site.result);
        self.total_constraints += 2;
    }
}

/// Elements in exactly one of two sorted, deduped slices.
fn symmetric_difference(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_difference_keeps_unshared_elements() {
        assert_eq!(symmetric_difference(&[1, 2, 5], &[2, 3]), vec![1, 3, 5]);
        assert_eq!(symmetric_difference(&[], &[4]), vec![4]);
        assert!(symmetric_difference(&[7], &[7]).is_empty());
    }
}
