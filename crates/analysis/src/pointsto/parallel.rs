//! Parallel wavefront solving.
//!
//! The serial worklist processes one node at a time even though most of
//! the constraint graph is embarrassingly independent: after SCC
//! condensation of the *static* copy graph (the same Tarjan the summary
//! layer uses for call graphs), the condensation is a DAG, and a
//! contiguous topological slice of it only talks to other slices through
//! edges that cross a slice boundary.
//!
//! The solve partitions the graph **once** into per-thread shards — whole
//! SCCs, consecutive in topological order, so copy chains and cycles stay
//! shard-local — and each shard *owns* its nodes' points-to sets for the
//! entire solve. Propagation proceeds in **supersteps** (the wavefront):
//!
//! * every shard drains a private worklist over its own nodes to a local
//!   fixpoint against the shared, frozen-for-the-superstep adjacency,
//!   buffering per-destination deltas for nodes it does not own along with
//!   dereference-spawned copy edges and indirect-call bindings;
//! * a single **merge barrier** per superstep routes the buffered deltas
//!   into the owning shards' inboxes and installs new edges/bindings into
//!   the shared adjacency (the only serial work — set merging itself is
//!   done by the owners, in parallel, at the start of the next superstep);
//! * a newly-installed edge `u → v` asks `u`'s owner to flush `u`'s
//!   current set across it next superstep, so late edges see earlier
//!   facts exactly like the serial solver's `add_copy_edge` does;
//! * supersteps repeat until no shard produced cross-shard work.
//!
//! Determinism: shard assignment is a pure function of the interned graph,
//! every shard drain is sequential, and the barrier applies buffers in
//! shard order — but none of that is even required for the *output* to be
//! byte-identical to the serial solver, because the least fixpoint of the
//! (finite, monotone) constraint system is unique and the sorted sets and
//! indirect-target map are derived from it alone.

use super::constraints::{ISite, InternedBatch};
use super::solve::{finish, merge_into, merge_sorted, prepare, BindTable, SolveOutput, Solver};
use super::Sensitivity;
use crate::summary::tarjan_scc_ids;
use ivy_provenance::{EdgeKind, ProvStore, SEED};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Solves `batches` on `threads` threads with one merge barrier per
/// superstep. Byte-identical output to `solve_worklist`.
///
/// With `provenance` set, each shard records derivations into a private
/// arena which the merge barrier drains into the master store in shard
/// order — cross-shard facts only travel via inboxes and flushes, so a
/// fact's premises always drained at an earlier barrier (or earlier in the
/// same shard's arena) and the master arena stays causally ordered.
pub(super) fn solve_parallel(
    sensitivity: Sensitivity,
    batches: &[Arc<InternedBatch>],
    bind: &BindTable,
    threads: usize,
    log: bool,
    provenance: bool,
) -> SolveOutput {
    let threads = threads.max(1);
    let mut solver = Solver::new(sensitivity, bind, log);
    solver.prov = provenance.then(ProvStore::new);

    // Spawn the workers first: they get scheduled while the serial graph
    // build below runs, so the first superstep dispatches onto warm
    // threads instead of paying thread-startup latency.
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool builds");

    let seed_span = ivy_telemetry::span("pointsto/seed", sensitivity.name());
    let prep = prepare(&mut solver, batches);
    for &(dst, loc) in &prep.seeds {
        solver.add_pts(dst, &[loc], SEED);
    }
    drop(seed_span);

    let propagate_span = ivy_telemetry::span("pointsto/propagate", sensitivity.name());

    // Ownership partition: nodes sorted topologically (Tarjan emits
    // successors first, so descending SCC id is a topological order of the
    // condensation), then cut into `threads` contiguous runs of whole SCCs.
    // Interning is function-major, so the tie-break on node id keeps each
    // function's locations — and therefore most copy edges — shard-local.
    let setup_span = ivy_telemetry::span("pointsto/wavesetup", sensitivity.name());
    let n = solver.sets.len();
    let (scc_of, scc_count) = tarjan_scc_ids(&solver.copy_out);
    // Topological node order by counting sort: bucket for SCC `s` starts
    // after the buckets of all higher SCC ids (descending id = topological
    // order), nodes ascending within a bucket.
    let mut counts = vec![0u32; scc_count as usize];
    for &s in &scc_of {
        counts[s as usize] += 1;
    }
    let mut cursor = vec![0u32; scc_count as usize];
    let mut acc = 0u32;
    for s in (0..scc_count as usize).rev() {
        cursor[s] = acc;
        acc += counts[s];
    }
    let mut order = vec![0u32; n];
    for m in 0..n as u32 {
        let s = scc_of[m as usize] as usize;
        order[cursor[s] as usize] = m;
        cursor[s] += 1;
    }
    // More shards than threads: convergence work clusters in the sink
    // region of the condensation, and finer shards let the round-robin
    // worker assignment spread a hot region across all workers instead of
    // serializing it on one.
    let want_shards = if threads == 1 { 1 } else { threads * 4 };
    let target = n.div_ceil(want_shards).max(1);
    let mut shard_nodes: Vec<Vec<u32>> = Vec::with_capacity(want_shards);
    {
        let mut cur: Vec<u32> = Vec::new();
        let mut i = 0usize;
        while i < order.len() {
            let s = scc_of[order[i] as usize];
            while i < order.len() && scc_of[order[i] as usize] == s {
                cur.push(order[i]);
                i += 1;
            }
            if cur.len() >= target && shard_nodes.len() + 1 < want_shards {
                shard_nodes.push(std::mem::take(&mut cur));
            }
        }
        if !cur.is_empty() || shard_nodes.is_empty() {
            shard_nodes.push(cur);
        }
    }
    let nshards = shard_nodes.len();
    let mut owner = vec![0u32; n];
    let mut slot = vec![0u32; n];
    for (si, nodes) in shard_nodes.iter().enumerate() {
        for (li, &m) in nodes.iter().enumerate() {
            owner[m as usize] = si as u32;
            slot[m as usize] = li as u32;
        }
    }
    let mut shards: Vec<Shard> = shard_nodes
        .into_iter()
        .enumerate()
        .map(|(si, nodes)| Shard::claim(si, nodes, nshards, &mut solver))
        .collect();
    solver.worklist.clear();
    drop(setup_span);

    let mut delta_total = 0u64;
    let mut shard_pops = 0u64;
    let mut merges = 0u64;
    let mut supersteps = 0u64;
    let mut inboxes: Vec<Inbox> = (0..nshards).map(|_| Inbox::new(nshards)).collect();
    loop {
        supersteps += 1;
        let wave_span = ivy_telemetry::span("pointsto/parallel", sensitivity.name());
        let shared = &solver;
        let (owner_ref, slot_ref) = (&owner, &slot);
        let (sites, sites_of) = (&prep.sites, &prep.sites_of);
        let work: Vec<(Shard, Inbox)> = shards.into_iter().zip(inboxes).collect();
        shards = pool.install(|| {
            use rayon::prelude::*;
            work.into_par_iter()
                .map(|(mut s, inbox)| {
                    s.step(shared, owner_ref, slot_ref, sites, sites_of, inbox);
                    s
                })
                .collect()
        });
        drop(wave_span);

        // Merge barrier: drain per-shard provenance arenas (in shard
        // order, so the master arena stays causally ordered), route
        // buffered cross-shard deltas to their owners, and install every
        // new edge/binding, in shard order.
        if let Some(master) = &mut solver.prov {
            for shard in &mut shards {
                if let Some(sp) = &mut shard.prov {
                    sp.drain_into(master);
                }
            }
        }
        inboxes = (0..nshards).map(|_| Inbox::new(nshards)).collect();
        let mut any = false;
        for (si, shard) in shards.iter_mut().enumerate() {
            for (ti, inbox) in inboxes.iter_mut().enumerate() {
                let buf = std::mem::take(&mut shard.out[ti]);
                if !buf.is_empty() {
                    merges += buf.len() as u64;
                    any = true;
                    inbox.deltas[si] = buf;
                }
            }
        }
        let mut sink: Vec<(u32, u32)> = Vec::new();
        for shard in &mut shards {
            for (u, v, trigger, aux, kind) in std::mem::take(&mut shard.dyn_edges) {
                if solver.keep_dyn_edge(u, v, trigger, aux, kind) {
                    sink.push((u, v));
                }
            }
            for (site_idx, f) in std::mem::take(&mut shard.binds) {
                let site = prep.sites[site_idx];
                let args = site.args.clone();
                solver.bind_target_deferred(&args, site.result, f, site.callee, &mut sink);
            }
        }
        for (u, v) in sink.drain(..) {
            inboxes[owner[u as usize] as usize].flushes.push((u, v));
            any = true;
        }
        if !any {
            break;
        }
    }

    // Hand every shard's node state back to the solver for `finish`.
    for shard in &mut shards {
        shard_pops += shard.pops;
        solver.pops += shard.pops as usize;
        delta_total += shard.dtotal;
        for (li, &m) in shard.nodes.iter().enumerate() {
            debug_assert!(shard.delta[li].is_empty(), "shards drain to local fixpoint");
            solver.sets[m as usize] = std::mem::take(&mut shard.sets[li]);
        }
    }
    drop(propagate_span);

    ivy_telemetry::counter("ivy_pointsto_worklist_pops_total", solver.pops as u64);
    ivy_telemetry::counter("ivy_pointsto_delta_locations_total", delta_total);
    ivy_telemetry::counter("ivy_pointsto_parallel_shard_pops_total", shard_pops);
    ivy_telemetry::counter("ivy_pointsto_parallel_merges_total", merges);
    ivy_telemetry::counter("ivy_pointsto_parallel_waves_total", supersteps);

    finish(solver, &prep, prep.initial_constraints)
}

/// Cross-shard input for one shard's next superstep.
struct Inbox {
    /// Buffered deltas `(node, src, items)`, indexed by sending shard so
    /// the apply order is deterministic; `src` is the node the items
    /// flowed from, carried so the owner records correct fact provenance.
    deltas: Vec<Vec<(u32, u32, Vec<u32>)>>,
    /// Newly-installed edges `u → v` with `u` owned here: the shard must
    /// flush `u`'s current set across the edge.
    flushes: Vec<(u32, u32)>,
}

impl Inbox {
    fn new(nshards: usize) -> Inbox {
        Inbox {
            deltas: (0..nshards).map(|_| Vec::new()).collect(),
            flushes: Vec::new(),
        }
    }
}

/// One ownership shard: a contiguous topological run of whole SCCs whose
/// sets/deltas live here for the entire solve, a private worklist over
/// them, and buffers for everything that must wait for the merge barrier.
struct Shard {
    idx: usize,
    nodes: Vec<u32>,
    sets: Vec<Vec<u32>>,
    delta: Vec<Vec<u32>>,
    inq: Vec<bool>,
    queue: VecDeque<usize>,
    pops: u64,
    dtotal: u64,
    /// Deltas destined for nodes other shards own, indexed by owner:
    /// `(node, src, items)`.
    out: Vec<Vec<(u32, u32, Vec<u32>)>>,
    /// Dereference-spawned copy edges `(u, v, trigger, aux, kind)`.
    dyn_edges: Vec<(u32, u32, u32, u32, EdgeKind)>,
    /// Newly discovered indirect-call targets `(site index, func id)`.
    binds: Vec<(usize, u32)>,
    /// Per-shard derivation arena, drained into the master store at every
    /// merge barrier (`None` when provenance is off).
    prov: Option<ProvStore>,
}

impl Shard {
    /// Claims `nodes` from the global solver: their sets, deltas, and
    /// queued flags move into the shard; queued nodes seed the private
    /// worklist in slot (topological) order.
    fn claim(idx: usize, nodes: Vec<u32>, nshards: usize, solver: &mut Solver) -> Shard {
        let mut sets = Vec::with_capacity(nodes.len());
        let mut delta = Vec::with_capacity(nodes.len());
        let mut inq = Vec::with_capacity(nodes.len());
        let mut queue = VecDeque::new();
        for (li, &m) in nodes.iter().enumerate() {
            let queued = std::mem::replace(&mut solver.queued[m as usize], false);
            sets.push(std::mem::take(&mut solver.sets[m as usize]));
            delta.push(std::mem::take(&mut solver.delta[m as usize]));
            inq.push(queued);
            if queued {
                queue.push_back(li);
            }
        }
        Shard {
            idx,
            nodes,
            sets,
            delta,
            inq,
            queue,
            pops: 0,
            dtotal: 0,
            out: (0..nshards).map(|_| Vec::new()).collect(),
            dyn_edges: Vec::new(),
            binds: Vec::new(),
            prov: solver.prov.is_some().then(ProvStore::new),
        }
    }

    /// One superstep: apply the inbox (cross-shard deltas in sender order,
    /// then set flushes for newly-installed edges), then drain the private
    /// worklist to a local fixpoint against the shared frozen adjacency.
    /// Mirrors `Solver::process_node`, with every cross-shard effect
    /// buffered instead of applied.
    fn step(
        &mut self,
        shared: &Solver,
        owner: &[u32],
        slot: &[u32],
        sites: &[&ISite],
        sites_of: &HashMap<u32, Vec<usize>>,
        inbox: Inbox,
    ) {
        for buf in inbox.deltas {
            for (m, src, items) in buf {
                self.local_add(slot[m as usize] as usize, m, &items, src);
            }
        }
        for (u, v) in inbox.flushes {
            let su = slot[u as usize] as usize;
            if self.sets[su].is_empty() {
                continue;
            }
            let items = self.sets[su].clone();
            self.route(v, &items, owner, slot, u);
        }
        while let Some(li) = self.queue.pop_front() {
            self.pops += 1;
            self.inq[li] = false;
            let d = std::mem::take(&mut self.delta[li]);
            if d.is_empty() {
                continue;
            }
            self.dtotal += d.len() as u64;
            let m = self.nodes[li];
            for &t in &shared.load_out[m as usize] {
                for &p in &d {
                    self.spawn_edge(p, t, m, p, EdgeKind::Load, shared);
                }
            }
            for &s in &shared.store_out[m as usize] {
                for &p in &d {
                    self.spawn_edge(s, p, m, p, EdgeKind::Store, shared);
                }
            }
            for &succ in &shared.copy_out[m as usize] {
                self.route(succ, &d, owner, slot, m);
            }
            if let Some(site_idxs) = sites_of.get(&m) {
                let new_funcs: Vec<u32> = d
                    .iter()
                    .copied()
                    .filter(|p| shared.bind.func_names.contains_key(p))
                    .collect();
                if !new_funcs.is_empty() {
                    for &i in site_idxs {
                        debug_assert_eq!(sites[i].callee, m);
                        for &f in &new_funcs {
                            self.binds.push((i, f));
                        }
                    }
                }
            }
        }
    }

    /// Sends `items` (flowing from `src`) to `dst`: merged locally when
    /// this shard owns it, buffered for the owner otherwise.
    fn route(&mut self, dst: u32, items: &[u32], owner: &[u32], slot: &[u32], src: u32) {
        if owner[dst as usize] as usize == self.idx {
            self.local_add(slot[dst as usize] as usize, dst, items, src);
        } else {
            self.out[owner[dst as usize] as usize].push((dst, src, items.to_vec()));
        }
    }

    /// Buffers a dereference-spawned copy edge, pre-filtered against the
    /// (frozen during the superstep) global dedup set.
    fn spawn_edge(
        &mut self,
        u: u32,
        v: u32,
        trigger: u32,
        aux: u32,
        kind: EdgeKind,
        shared: &Solver,
    ) {
        if u == v
            || shared
                .copy_edges
                .contains(&((u64::from(u)) << 32 | u64::from(v)))
        {
            return;
        }
        self.dyn_edges.push((u, v, trigger, aux, kind));
    }

    /// Local difference propagation into a shard-owned node (`node` is the
    /// global id of slot `ls`; `src` the premise node for provenance).
    fn local_add(&mut self, ls: usize, node: u32, items: &[u32], src: u32) {
        let fresh = merge_into(&mut self.sets[ls], items);
        if fresh.is_empty() {
            return;
        }
        if let Some(prov) = &mut self.prov {
            for &p in &fresh {
                prov.record_fact(node, p, src);
            }
        }
        self.delta[ls] = merge_sorted(&self.delta[ls], &fresh);
        if !self.inq[ls] {
            self.inq[ls] = true;
            self.queue.push_back(ls);
        }
    }
}
