//! Lattices for the dataflow framework.
//!
//! A dataflow fact must form a join-semilattice: a bottom element and a join
//! (least upper bound). The worklist solver in [`crate::dataflow`] is generic
//! over any [`Lattice`].

use std::collections::BTreeSet;

/// A join-semilattice of dataflow facts.
pub trait Lattice: Clone + PartialEq {
    /// The least element (associated with unreachable / no information).
    fn bottom() -> Self;

    /// Least upper bound. Returns `true` if `self` changed.
    fn join(&mut self, other: &Self) -> bool;
}

/// The two-point lattice: `false` ⊑ `true`.
///
/// Used for reachability-style facts ("interrupts may be disabled here").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BoolLattice(pub bool);

impl Lattice for BoolLattice {
    fn bottom() -> Self {
        BoolLattice(false)
    }

    fn join(&mut self, other: &Self) -> bool {
        if !self.0 && other.0 {
            self.0 = true;
            true
        } else {
            false
        }
    }
}

/// A powerset lattice over an ordered element type, with set union as join.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SetLattice<T: Ord + Clone> {
    /// The current set of facts.
    pub items: BTreeSet<T>,
}

impl<T: Ord + Clone> SetLattice<T> {
    /// An empty set.
    pub fn new() -> Self {
        SetLattice {
            items: BTreeSet::new(),
        }
    }

    /// A singleton set.
    pub fn singleton(item: T) -> Self {
        let mut s = BTreeSet::new();
        s.insert(item);
        SetLattice { items: s }
    }

    /// Inserts an element; returns true if it was new.
    pub fn insert(&mut self, item: T) -> bool {
        self.items.insert(item)
    }

    /// True if the element is present.
    pub fn contains(&self, item: &T) -> bool {
        self.items.contains(item)
    }
}

impl<T: Ord + Clone> Lattice for SetLattice<T> {
    fn bottom() -> Self {
        SetLattice::new()
    }

    fn join(&mut self, other: &Self) -> bool {
        let before = self.items.len();
        self.items.extend(other.items.iter().cloned());
        self.items.len() != before
    }
}

/// A map lattice: pointwise join of an inner lattice keyed by an ordered key.
///
/// Missing keys are implicitly bottom.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MapLattice<K: Ord + Clone, V: Lattice> {
    /// Keyed facts.
    pub map: std::collections::BTreeMap<K, V>,
}

impl<K: Ord + Clone, V: Lattice> MapLattice<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        MapLattice {
            map: std::collections::BTreeMap::new(),
        }
    }

    /// Gets the fact for a key (bottom if absent).
    pub fn get(&self, k: &K) -> V {
        self.map.get(k).cloned().unwrap_or_else(V::bottom)
    }

    /// Joins a fact into a key; returns true on change.
    pub fn join_at(&mut self, k: K, v: &V) -> bool {
        match self.map.get_mut(&k) {
            Some(existing) => existing.join(v),
            None => {
                if *v == V::bottom() {
                    false
                } else {
                    self.map.insert(k, v.clone());
                    true
                }
            }
        }
    }
}

impl<K: Ord + Clone, V: Lattice> Lattice for MapLattice<K, V> {
    fn bottom() -> Self {
        MapLattice::new()
    }

    fn join(&mut self, other: &Self) -> bool {
        let mut changed = false;
        for (k, v) in &other.map {
            changed |= self.join_at(k.clone(), v);
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_lattice_joins_upwards() {
        let mut a = BoolLattice(false);
        assert!(!a.join(&BoolLattice(false)));
        assert!(a.join(&BoolLattice(true)));
        assert!(!a.join(&BoolLattice(true)));
        assert!(a.0);
    }

    #[test]
    fn set_lattice_union() {
        let mut a: SetLattice<&str> = SetLattice::singleton("x");
        let b = SetLattice::singleton("y");
        assert!(a.join(&b));
        assert!(!a.join(&b));
        assert!(a.contains(&"x") && a.contains(&"y"));
        assert_eq!(SetLattice::<&str>::bottom().items.len(), 0);
    }

    #[test]
    fn map_lattice_pointwise() {
        let mut m: MapLattice<&str, SetLattice<u32>> = MapLattice::new();
        assert!(m.join_at("a", &SetLattice::singleton(1)));
        assert!(m.join_at("a", &SetLattice::singleton(2)));
        assert!(!m.join_at("a", &SetLattice::singleton(2)));
        assert_eq!(m.get(&"a").items.len(), 2);
        assert_eq!(m.get(&"missing").items.len(), 0);

        let mut other = MapLattice::new();
        other.join_at("b", &SetLattice::singleton(9));
        assert!(m.join(&other));
        assert_eq!(m.get(&"b").items.len(), 1);
    }

    #[test]
    fn join_is_idempotent_and_monotone() {
        let mut a = SetLattice::singleton(1);
        a.insert(2);
        let snapshot = a.clone();
        let mut b = a.clone();
        assert!(!b.join(&snapshot));
        assert_eq!(a, b);
    }
}
