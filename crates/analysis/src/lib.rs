//! `ivy-analysis` — static analysis infrastructure shared by the Ivy tools.
//!
//! The paper's three analyses (Deputy, CCount, BlockStop) and the proposed
//! extensions (§3.1) all sit on the same substrate:
//!
//! * [`lattice`] / [`dataflow`] — a generic worklist dataflow solver over the
//!   CFGs built by `ivy-cmir`.
//! * [`pointsto`] — whole-program points-to analysis in three precision
//!   levels (Steensgaard, Andersen, Andersen + field-based field
//!   sensitivity), used to resolve function-pointer calls. Solved by an
//!   interned worklist engine with difference propagation; per-function
//!   constraint batches can be cached across programs
//!   ([`pointsto::ConstraintCache`]) for incremental re-solves, and a
//!   naive reference solver is retained for differential testing.
//! * [`callgraph`] — call-graph construction (direct + indirect edges),
//!   backwards property propagation, reachability, and weighted depth
//!   queries for the stack-bound extension.
//!
//! # Examples
//!
//! ```
//! use ivy_analysis::callgraph::CallGraph;
//! use ivy_analysis::pointsto::{analyze, Sensitivity};
//! use ivy_cmir::parser::parse_program;
//! use std::collections::BTreeSet;
//!
//! let program = parse_program(
//!     r#"
//!     #[blocking]
//!     fn msleep(ms: u32) { }
//!     fn flush_queue() { msleep(1); }
//!     fn irq_path() { }
//!     "#,
//! )
//! .unwrap();
//! let pts = analyze(&program, Sensitivity::AndersenField);
//! let cg = CallGraph::build(&program, &pts);
//! let may_block = cg.propagate_backwards(&BTreeSet::from(["msleep".to_string()]));
//! assert!(may_block.contains("flush_queue"));
//! assert!(!may_block.contains("irq_path"));
//! ```

#![warn(missing_docs)]

pub mod callgraph;
pub mod dataflow;
pub mod lattice;
pub mod pointsto;
pub mod summary;

pub use callgraph::{CallGraph, CallSite, EdgeKind};
pub use dataflow::{solve, Direction, Solution, Transfer};
pub use lattice::{BoolLattice, Lattice, MapLattice, SetLattice};
pub use pointsto::{
    analyze, analyze_incremental, analyze_naive, ConstraintCache, Loc, PointsToResult, Sensitivity,
};
pub use summary::{Condensation, FunctionSummary, ProgramSummaries};
