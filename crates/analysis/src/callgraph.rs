//! Call-graph construction and propagation utilities.
//!
//! "A call graph is a directed graph where each node corresponds to a
//! function and each outgoing edge represents the functions that it might
//! call. The major challenge is to account for calls through function
//! pointers." (§2.3). Indirect calls are resolved with the points-to results
//! from [`crate::pointsto`]; calls inside functions marked `inline_asm` are
//! invisible, which is recorded as a soundness caveat in the graph.

use crate::pointsto::PointsToResult;
use ivy_cmir::ast::{Expr, Function, Program};
use ivy_cmir::pretty::expr_str;
use ivy_cmir::visit;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// How a call edge was discovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Direct call by name.
    Direct,
    /// Call through a function pointer, resolved by points-to analysis.
    Indirect,
}

/// A single call site inside a function.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CallSite {
    /// The calling function.
    pub caller: String,
    /// The callee expression, printed (a function name for direct calls).
    pub callee_text: String,
    /// Possible targets.
    pub targets: BTreeSet<String>,
    /// Whether the call is direct or via a function pointer.
    pub kind: EdgeKind,
    /// Number of arguments at the site.
    pub argc: usize,
}

/// A whole-program call graph.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CallGraph {
    /// Outgoing edges: caller → set of callees.
    pub edges: BTreeMap<String, BTreeSet<String>>,
    /// All call sites, in deterministic program order.
    pub sites: Vec<CallSite>,
    /// Functions whose outgoing edges are incomplete because they contain
    /// inline assembly (the paper's explicit soundness caveat).
    pub opaque_functions: BTreeSet<String>,
    /// Indirect call sites that could not be resolved to any target.
    pub unresolved_sites: usize,
}

impl CallGraph {
    /// Builds the call graph of a program using points-to results for
    /// function-pointer calls.
    pub fn build(program: &Program, pointsto: &PointsToResult) -> CallGraph {
        let mut cg = CallGraph::default();
        for func in program.functions.iter().filter(|f| f.body.is_some()) {
            if func.attrs.inline_asm {
                cg.opaque_functions.insert(func.name.clone());
            }
            cg.edges.entry(func.name.clone()).or_default();
            for (callee_expr, argc) in calls_in(func) {
                let (targets, kind) = match &callee_expr {
                    Expr::Var(name) if program.function(name).is_some() => {
                        (BTreeSet::from([name.clone()]), EdgeKind::Direct)
                    }
                    other => {
                        let text = expr_str(other);
                        let t = pointsto.indirect_call_targets(&func.name, &text);
                        (t, EdgeKind::Indirect)
                    }
                };
                if targets.is_empty() && kind == EdgeKind::Indirect {
                    cg.unresolved_sites += 1;
                }
                cg.edges
                    .entry(func.name.clone())
                    .or_default()
                    .extend(targets.iter().cloned());
                cg.sites.push(CallSite {
                    caller: func.name.clone(),
                    callee_text: expr_str(&callee_expr),
                    targets,
                    kind,
                    argc,
                });
            }
        }
        cg
    }

    /// The callees of a function (empty set if unknown).
    pub fn callees(&self, func: &str) -> BTreeSet<String> {
        self.edges.get(func).cloned().unwrap_or_default()
    }

    /// The callers of a function.
    pub fn callers(&self, func: &str) -> BTreeSet<String> {
        self.edges
            .iter()
            .filter(|(_, callees)| callees.contains(func))
            .map(|(caller, _)| caller.clone())
            .collect()
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(|s| s.len()).sum()
    }

    /// Propagates a property backwards through the call graph: starting from
    /// the `seeds` (functions that *have* the property, e.g. "may block"),
    /// returns every function that can reach a seed through call edges —
    /// i.e. every function that may transitively exhibit the property.
    ///
    /// This is exactly the paper's "propagate this information backwards
    /// through the call graph to get a sound approximation of the set of
    /// functions that might block".
    pub fn propagate_backwards(&self, seeds: &BTreeSet<String>) -> BTreeSet<String> {
        let mut result: BTreeSet<String> = seeds.clone();
        let mut queue: VecDeque<String> = seeds.iter().cloned().collect();
        while let Some(f) = queue.pop_front() {
            for caller in self.callers(&f) {
                if result.insert(caller.clone()) {
                    queue.push_back(caller);
                }
            }
        }
        result
    }

    /// Every function reachable from `root` by following call edges
    /// (including `root` itself).
    pub fn reachable_from(&self, root: &str) -> BTreeSet<String> {
        let mut seen: BTreeSet<String> = BTreeSet::from([root.to_string()]);
        let mut queue: VecDeque<String> = VecDeque::from([root.to_string()]);
        while let Some(f) = queue.pop_front() {
            for callee in self.callees(&f) {
                if seen.insert(callee.clone()) {
                    queue.push_back(callee);
                }
            }
        }
        seen
    }

    /// Longest acyclic call-chain depth starting from `root`, following call
    /// edges, where each function contributes `weight(name)`.
    ///
    /// Used by the stack-depth extension analysis (§3.1): with per-function
    /// frame sizes as weights this bounds worst-case stack usage. Cycles
    /// (recursion) are reported separately via [`CallGraph::recursive_functions`].
    pub fn max_weighted_depth(&self, root: &str, weight: &dyn Fn(&str) -> u64) -> u64 {
        let mut memo: BTreeMap<String, u64> = BTreeMap::new();
        let mut on_stack: BTreeSet<String> = BTreeSet::new();
        self.depth_rec(root, weight, &mut memo, &mut on_stack)
    }

    fn depth_rec(
        &self,
        f: &str,
        weight: &dyn Fn(&str) -> u64,
        memo: &mut BTreeMap<String, u64>,
        on_stack: &mut BTreeSet<String>,
    ) -> u64 {
        if let Some(v) = memo.get(f) {
            return *v;
        }
        if !on_stack.insert(f.to_string()) {
            // Recursive cycle: cut it off (run-time checks cover recursion,
            // per §3.1).
            return 0;
        }
        let mut best = 0;
        for callee in self.callees(f) {
            best = best.max(self.depth_rec(&callee, weight, memo, on_stack));
        }
        on_stack.remove(f);
        let total = best + weight(f);
        memo.insert(f.to_string(), total);
        total
    }

    /// Functions involved in recursion (strongly connected components of size
    /// greater than one, or self-loops).
    pub fn recursive_functions(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for f in self.edges.keys() {
            if self.callees(f).contains(f) {
                out.insert(f.clone());
                continue;
            }
            // f is recursive if it can reach itself through at least one edge.
            let mut seen = BTreeSet::new();
            let mut queue: VecDeque<String> = self.callees(f).into_iter().collect();
            while let Some(g) = queue.pop_front() {
                if g == *f {
                    out.insert(f.clone());
                    break;
                }
                if seen.insert(g.clone()) {
                    queue.extend(self.callees(&g));
                }
            }
        }
        out
    }
}

/// Enumerates every call expression in a function body: (callee expression,
/// argument count), in deterministic traversal order.
pub fn calls_in(func: &Function) -> Vec<(Expr, usize)> {
    let mut out = Vec::new();
    visit::walk_fn_stmts(func, &mut |stmt| {
        visit::walk_stmt_exprs(stmt, &mut |e| {
            if let Expr::Call(callee, args) = e {
                out.push(((**callee).clone(), args.len()));
            }
        });
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pointsto::{analyze, Sensitivity};
    use ivy_cmir::parser::parse_program;

    const KERNEL: &str = r#"
        struct tty_ops {
            flush: fnptr() -> void;
        }
        global console_ops: struct tty_ops;

        #[blocking]
        fn wait_for_completion() { }

        fn read_chan() { wait_for_completion(); }

        fn flush_to_ldisc() { console_ops.flush(); }

        fn register_console() { console_ops.flush = read_chan; }

        #[inline_asm]
        fn switch_to() { }

        fn schedule() { switch_to(); }

        fn recurse(n: u32) { if (n > 0) { recurse(n - 1); } }
    "#;

    fn graph() -> CallGraph {
        let p = parse_program(KERNEL).unwrap();
        let pts = analyze(&p, Sensitivity::AndersenField);
        CallGraph::build(&p, &pts)
    }

    #[test]
    fn direct_edges_present() {
        let cg = graph();
        assert!(cg.callees("read_chan").contains("wait_for_completion"));
        assert!(cg.callees("schedule").contains("switch_to"));
    }

    #[test]
    fn indirect_edge_resolved_via_pointsto() {
        let cg = graph();
        assert!(
            cg.callees("flush_to_ldisc").contains("read_chan"),
            "edges: {:?}",
            cg.callees("flush_to_ldisc")
        );
        let site = cg
            .sites
            .iter()
            .find(|s| s.caller == "flush_to_ldisc")
            .unwrap();
        assert_eq!(site.kind, EdgeKind::Indirect);
    }

    #[test]
    fn backwards_propagation_finds_blockers() {
        let cg = graph();
        let seeds = BTreeSet::from(["wait_for_completion".to_string()]);
        let may_block = cg.propagate_backwards(&seeds);
        assert!(may_block.contains("read_chan"));
        assert!(
            may_block.contains("flush_to_ldisc"),
            "through the fn pointer"
        );
        assert!(!may_block.contains("schedule"));
    }

    #[test]
    fn opaque_functions_recorded() {
        let cg = graph();
        assert!(cg.opaque_functions.contains("switch_to"));
    }

    #[test]
    fn callers_inverse_of_callees() {
        let cg = graph();
        assert!(cg.callers("wait_for_completion").contains("read_chan"));
    }

    #[test]
    fn recursion_detected_and_depth_bounded() {
        let cg = graph();
        assert!(cg.recursive_functions().contains("recurse"));
        // Depth computation terminates despite the cycle.
        let d = cg.max_weighted_depth("recurse", &|_| 100);
        assert!(d >= 100);
    }

    #[test]
    fn weighted_depth_adds_along_chain() {
        let cg = graph();
        let d = cg.max_weighted_depth("read_chan", &|_| 64);
        assert_eq!(d, 128, "read_chan -> wait_for_completion = 2 frames");
    }

    #[test]
    fn reachability() {
        let cg = graph();
        let r = cg.reachable_from("flush_to_ldisc");
        assert!(r.contains("read_chan"));
        assert!(r.contains("wait_for_completion"));
        assert!(!r.contains("schedule"));
    }
}
