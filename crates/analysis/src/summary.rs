//! Per-function summaries, SCC condensation, and dependency hashing.
//!
//! The analysis engine (`ivy-engine`) schedules checker work bottom-up over
//! the call graph and caches per-function results across runs. Both needs
//! are served from here:
//!
//! * [`Condensation`] — Tarjan SCC condensation of a [`CallGraph`] plus a
//!   bottom-up level order (level 0 = leaf SCCs), the unit of parallel
//!   scheduling.
//! * [`FunctionSummary`] — per-function facts: direct+indirect callees, a
//!   content hash of the (pretty-printed) definition, and a *cone hash*
//!   mixing the content hash with the cone hashes of everything reachable
//!   from the function. Two functions with equal cone hashes have
//!   byte-identical bodies *and* byte-identical transitive callees, which is
//!   what makes the hash a sound cache key for bottom-up analyses.
//! * [`ProgramSummaries::env_hash`] — a hash of the whole-program type
//!   environment (composites, typedefs, globals, and every function
//!   *signature*), the extra dependency of analyses that consult callee
//!   signatures rather than callee bodies.

use crate::callgraph::CallGraph;
use ivy_cmir::ast::Program;
use ivy_cmir::pretty::pretty_function;
use std::collections::{BTreeMap, BTreeSet};

/// 64-bit FNV-1a over a byte string.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Mixes a value into an existing hash (order-sensitive).
pub fn mix(hash: u64, value: u64) -> u64 {
    let mut h = hash ^ value.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 29;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^ (h >> 32)
}

/// Summary of one function for scheduling and caching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionSummary {
    /// Function name.
    pub name: String,
    /// Every possible callee (direct and points-to-resolved indirect).
    pub callees: BTreeSet<String>,
    /// Hash of the pretty-printed definition (attributes, signature, body).
    pub content_hash: u64,
    /// Hash of the definition plus the cone hashes of all transitive
    /// callees (SCC-aware, so recursion is well-defined).
    pub cone_hash: u64,
    /// Index of the function's SCC in [`Condensation::sccs`].
    pub scc: usize,
}

/// SCC condensation of a call graph with a bottom-up schedule.
#[derive(Debug, Clone, Default)]
pub struct Condensation {
    /// The strongly connected components; members sorted by name.
    pub sccs: Vec<Vec<String>>,
    /// Function name → SCC index.
    pub scc_of: BTreeMap<String, usize>,
    /// Bottom-up waves of SCC indices: every SCC in `levels[i]` only calls
    /// into SCCs at levels `< i`, so all SCCs of one level can be analyzed
    /// in parallel once the previous levels are done.
    pub levels: Vec<Vec<usize>>,
}

/// Summaries for a whole program.
#[derive(Debug, Clone, Default)]
pub struct ProgramSummaries {
    /// Per-function summaries.
    pub functions: BTreeMap<String, FunctionSummary>,
    /// The condensation used to order them.
    pub condensation: Condensation,
    /// Hash of the type environment: composites, typedefs, globals, and all
    /// function signatures (bodies excluded).
    pub env_hash: u64,
}

impl ProgramSummaries {
    /// The cone hash for a function, if it is known.
    pub fn cone_hash(&self, func: &str) -> Option<u64> {
        self.functions.get(func).map(|s| s.cone_hash)
    }
}

/// Iterative Tarjan SCC over integer nodes `0..succ.len()`. Components are
/// emitted with successors before their predecessors (reverse topological
/// order of the condensation), members sorted ascending. Shared between the
/// call-graph condensation below and the points-to wavefront partitioner,
/// which both need the same successors-first emission order to compute
/// levels in one pass.
pub fn tarjan_sccs(succ: &[Vec<usize>]) -> Vec<Vec<usize>> {
    #[derive(Default, Clone)]
    struct NodeState {
        index: Option<usize>,
        lowlink: usize,
        on_stack: bool,
    }

    let mut state = vec![NodeState::default(); succ.len()];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();

    // Explicit DFS stack of (node, next-successor-position).
    for start in 0..succ.len() {
        if state[start].index.is_some() {
            continue;
        }
        let mut dfs: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut pos)) = dfs.last_mut() {
            if *pos == 0 {
                state[v].index = Some(next_index);
                state[v].lowlink = next_index;
                next_index += 1;
                stack.push(v);
                state[v].on_stack = true;
            }
            if let Some(&w) = succ[v].get(*pos) {
                *pos += 1;
                if state[w].index.is_none() {
                    dfs.push((w, 0));
                } else if state[w].on_stack {
                    state[v].lowlink = state[v].lowlink.min(state[w].index.expect("visited"));
                }
            } else {
                // v is finished.
                if state[v].lowlink == state[v].index.expect("visited") {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("stack non-empty");
                        state[w].on_stack = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    sccs.push(comp);
                }
                dfs.pop();
                if let Some(&mut (parent, _)) = dfs.last_mut() {
                    state[parent].lowlink = state[parent].lowlink.min(state[v].lowlink);
                }
            }
        }
    }
    sccs
}

/// Iterative Tarjan SCC over a `u32`-indexed adjacency, returning each
/// node's component id and the component count. Components are numbered in
/// emission order — successors before predecessors — so *descending* id is
/// a topological order of the condensation. This is the allocation-light
/// variant the points-to wavefront partitioner runs on the interned copy
/// graph on every parallel cold solve (tens of thousands of nodes): no
/// per-component `Vec`s, no `usize` widening of the adjacency, just flat
/// arrays — [`tarjan_sccs`] on the same graph costs several milliseconds
/// more than the whole solve saves.
pub fn tarjan_scc_ids(succ: &[Vec<u32>]) -> (Vec<u32>, u32) {
    const UNVISITED: u32 = u32::MAX;
    let n = succ.len();
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut scc_of = vec![0u32; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut scc_count = 0u32;
    // Explicit DFS stack of (node, next-successor-position).
    let mut dfs: Vec<(u32, u32)> = Vec::new();
    for start in 0..n as u32 {
        if index[start as usize] != UNVISITED {
            continue;
        }
        dfs.push((start, 0));
        while let Some(&mut (v, ref mut pos)) = dfs.last_mut() {
            let vu = v as usize;
            if *pos == 0 {
                index[vu] = next_index;
                lowlink[vu] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[vu] = true;
            }
            if let Some(&w) = succ[vu].get(*pos as usize) {
                *pos += 1;
                if index[w as usize] == UNVISITED {
                    dfs.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[vu] = lowlink[vu].min(index[w as usize]);
                }
            } else {
                // v is finished.
                if lowlink[vu] == index[vu] {
                    loop {
                        let w = stack.pop().expect("stack non-empty");
                        on_stack[w as usize] = false;
                        scc_of[w as usize] = scc_count;
                        if w == v {
                            break;
                        }
                    }
                    scc_count += 1;
                }
                dfs.pop();
                if let Some(&mut (parent, _)) = dfs.last_mut() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[vu]);
                }
            }
        }
    }
    (scc_of, scc_count)
}

/// Tarjan SCC over function names; edges come from the call graph
/// (restricted to functions that exist in the program, so calls to VM
/// builtins do not create phantom nodes).
fn tarjan(nodes: &[String], edges: &BTreeMap<String, BTreeSet<String>>) -> Vec<Vec<String>> {
    let id_of: BTreeMap<&str, usize> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();
    let succ: Vec<Vec<usize>> = nodes
        .iter()
        .map(|n| {
            edges
                .get(n)
                .map(|cs| {
                    cs.iter()
                        .filter_map(|c| id_of.get(c.as_str()).copied())
                        .collect()
                })
                .unwrap_or_default()
        })
        .collect();
    tarjan_sccs(&succ)
        .into_iter()
        .map(|comp| {
            let mut comp: Vec<String> = comp.into_iter().map(|i| nodes[i].clone()).collect();
            comp.sort();
            comp
        })
        .collect()
}

impl Condensation {
    /// Builds the condensation of `cg` over the functions of `program`.
    /// Tarjan emits SCCs with callees before callers, which directly yields
    /// the bottom-up level structure.
    pub fn build(program: &Program, cg: &CallGraph) -> Condensation {
        let nodes: Vec<String> = program.functions.iter().map(|f| f.name.clone()).collect();
        let sccs = tarjan(&nodes, &cg.edges);
        let mut scc_of = BTreeMap::new();
        for (i, comp) in sccs.iter().enumerate() {
            for name in comp {
                scc_of.insert(name.clone(), i);
            }
        }

        // Level = 1 + max(level of callee SCCs); SCCs arrive in an order
        // where callees precede callers, so one pass suffices.
        let mut level_of = vec![0usize; sccs.len()];
        for (i, comp) in sccs.iter().enumerate() {
            let mut level = 0usize;
            for member in comp {
                if let Some(callees) = cg.edges.get(member) {
                    for callee in callees {
                        if let Some(&j) = scc_of.get(callee) {
                            if j != i {
                                level = level.max(level_of[j] + 1);
                            }
                        }
                    }
                }
            }
            level_of[i] = level;
        }
        let max_level = level_of.iter().copied().max().unwrap_or(0);
        let mut levels: Vec<Vec<usize>> = vec![Vec::new(); max_level + 1];
        for (i, &l) in level_of.iter().enumerate() {
            levels[l].push(i);
        }
        Condensation {
            sccs,
            scc_of,
            levels,
        }
    }
}

/// Hash of the whole-program type environment (signatures, not bodies).
///
/// Delegates to the span-insensitive structural hasher in
/// [`ivy_cmir::content`]; the incremental points-to path computes this on
/// every re-solve, so it must not allocate the pretty-printed environment
/// just to hash it.
pub fn env_hash(program: &Program) -> u64 {
    ivy_cmir::content::program_env_hash(program)
}

/// Builds the per-function summaries of a program over a call graph.
pub fn summarize(program: &Program, cg: &CallGraph) -> ProgramSummaries {
    let condensation = Condensation::build(program, cg);
    let env = env_hash(program);

    let content: BTreeMap<String, u64> = program
        .functions
        .iter()
        .map(|f| (f.name.clone(), fnv1a(pretty_function(f).as_bytes())))
        .collect();

    // Cone hash per SCC, bottom-up (Tarjan order has callees first). The
    // SCC's hash mixes every member's content hash plus every callee SCC's
    // cone hash; a member's cone hash then re-mixes its own content so two
    // members of one SCC still hash differently.
    let mut scc_cone = vec![0u64; condensation.sccs.len()];
    for (i, comp) in condensation.sccs.iter().enumerate() {
        let mut h = fnv1a(b"scc");
        for member in comp {
            h = mix(h, content[member]);
        }
        let mut callee_sccs: BTreeSet<usize> = BTreeSet::new();
        for member in comp {
            if let Some(callees) = cg.edges.get(member) {
                for callee in callees {
                    if let Some(&j) = condensation.scc_of.get(callee) {
                        if j != i {
                            callee_sccs.insert(j);
                        }
                    }
                }
            }
        }
        for j in callee_sccs {
            h = mix(h, scc_cone[j]);
        }
        scc_cone[i] = h;
    }

    let mut functions = BTreeMap::new();
    for f in &program.functions {
        let scc = condensation.scc_of[&f.name];
        let callees = cg.edges.get(&f.name).cloned().unwrap_or_default();
        functions.insert(
            f.name.clone(),
            FunctionSummary {
                name: f.name.clone(),
                callees,
                content_hash: content[&f.name],
                cone_hash: mix(scc_cone[scc], content[&f.name]),
                scc,
            },
        );
    }
    ProgramSummaries {
        functions,
        condensation,
        env_hash: env,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pointsto::{analyze, Sensitivity};
    use ivy_cmir::parser::parse_program;

    const SRC: &str = r#"
        fn leaf() { }
        fn mid() { leaf(); }
        fn rec_a(n: u32) { if (n > 0) { rec_b(n - 1); } }
        fn rec_b(n: u32) { rec_a(n); mid(); }
        fn top() { rec_a(3); }
    "#;

    fn build(src: &str) -> (ivy_cmir::ast::Program, CallGraph) {
        let p = parse_program(src).unwrap();
        let pts = analyze(&p, Sensitivity::Steensgaard);
        let cg = CallGraph::build(&p, &pts);
        (p, cg)
    }

    #[test]
    fn condensation_groups_recursion_and_levels_are_bottom_up() {
        let (p, cg) = build(SRC);
        let cond = Condensation::build(&p, &cg);
        let scc_rec_a = cond.scc_of["rec_a"];
        assert_eq!(
            scc_rec_a, cond.scc_of["rec_b"],
            "mutual recursion in one SCC"
        );
        assert_ne!(cond.scc_of["leaf"], cond.scc_of["mid"]);
        // Every SCC's callees live at strictly lower levels.
        let level_of = |scc: usize| {
            cond.levels
                .iter()
                .position(|l| l.contains(&scc))
                .expect("every scc has a level")
        };
        assert!(level_of(cond.scc_of["leaf"]) < level_of(cond.scc_of["mid"]));
        assert!(level_of(cond.scc_of["mid"]) < level_of(scc_rec_a));
        assert!(level_of(scc_rec_a) < level_of(cond.scc_of["top"]));
    }

    #[test]
    fn cone_hash_changes_exactly_for_the_dirty_cone() {
        let (p1, cg1) = build(SRC);
        let s1 = summarize(&p1, &cg1);
        // Edit leaf(): everything reaching leaf is dirty, top/rec_* included.
        let edited = SRC.replace("fn leaf() { }", "fn leaf() { let x: u32 = 1; }");
        let (p2, cg2) = build(&edited);
        let s2 = summarize(&p2, &cg2);
        for dirty in ["leaf", "mid", "rec_a", "rec_b", "top"] {
            assert_ne!(
                s1.cone_hash(dirty),
                s2.cone_hash(dirty),
                "{dirty} should be dirty"
            );
        }

        // Edit top() only: the cone below it is untouched.
        let edited = SRC.replace("fn top() { rec_a(3); }", "fn top() { rec_a(4); }");
        let (p3, cg3) = build(&edited);
        let s3 = summarize(&p3, &cg3);
        assert_ne!(s1.cone_hash("top"), s3.cone_hash("top"));
        for clean in ["leaf", "mid", "rec_a", "rec_b"] {
            assert_eq!(
                s1.cone_hash(clean),
                s3.cone_hash(clean),
                "{clean} should be clean"
            );
        }
    }

    #[test]
    fn env_hash_tracks_signatures_not_bodies() {
        let (p1, _) = build(SRC);
        let body_edit = SRC.replace("fn top() { rec_a(3); }", "fn top() { rec_a(4); }");
        let (p2, _) = build(&body_edit);
        assert_eq!(env_hash(&p1), env_hash(&p2), "body edits keep the env hash");
        let sig_edit = SRC.replace("fn top()", "fn top(flags: u32)");
        let (p3, _) = build(&sig_edit);
        assert_ne!(
            env_hash(&p1),
            env_hash(&p3),
            "signature edits change the env hash"
        );
    }
}
