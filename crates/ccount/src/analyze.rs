//! Static analysis of what CCount must instrument.
//!
//! CCount's compiler "modifies all pointer writes to maintain an 8-bit
//! reference count on each 16-byte chunk of memory" and "requires accurate
//! type information when objects are freed, copied (memcpy), or cleared
//! (memset)". This module computes, for a KC program, exactly which sites
//! those are — the static counterpart of the run-time behaviour implemented
//! by `ivy-vm` — together with the porting-effort statistics the paper
//! reports (types whose layout had to be described, explicit runtime type
//! information sites, memset/memcpy conversions).

use ivy_cmir::ast::{Expr, Function, Program, Stmt};
use ivy_cmir::typecheck::TypeCtx;
use ivy_cmir::types::{Type, CHUNK_SIZE};
use ivy_cmir::visit;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Names treated as free functions.
pub const FREE_FUNCTIONS: &[&str] = &["kfree", "kmem_cache_free", "free_page", "vfree"];
/// Names treated as allocation functions.
pub const ALLOC_FUNCTIONS: &[&str] = &[
    "kmalloc",
    "kzalloc",
    "kmem_cache_alloc",
    "__get_free_page",
    "alloc_page",
    "vmalloc",
];

/// What CCount's compiler would have to touch in a program.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct InstrumentationReport {
    /// Assignments that store a pointer value into memory that is not a
    /// local variable (these get the `RC(b)++, RC(*a)--` rewrite).
    pub counted_pointer_writes: u64,
    /// Assignments that store a pointer into a local variable (not counted
    /// by the kernel version of CCount, per the paper's footnote).
    pub local_pointer_writes: u64,
    /// Call sites of free functions.
    pub free_sites: u64,
    /// Call sites of allocation functions.
    pub alloc_sites: u64,
    /// `memcpy`/`memmove` call sites that must become type-aware.
    pub memcpy_sites: u64,
    /// `memset` call sites that must become type-aware.
    pub memset_sites: u64,
    /// Composite types containing pointers, whose layout CCount must know.
    pub types_needing_layout: u64,
    /// Free sites whose argument is a `void *` (or cast), i.e. places where
    /// explicit run-time type information is needed.
    pub runtime_type_info_sites: u64,
    /// The root variables of those untyped free sites (one entry per site
    /// that frees a bare variable, in traversal order). The engine plugin
    /// feeds these to the shared points-to analysis to name candidate
    /// allocation sites in its diagnostics.
    pub untyped_free_roots: Vec<String>,
    /// Delayed-free scopes already present in the program.
    pub delayed_free_scopes: u64,
    /// Per-subsystem counted pointer writes.
    pub writes_by_subsystem: BTreeMap<String, u64>,
}

impl InstrumentationReport {
    /// The space overhead of the reference counts: one byte per
    /// [`CHUNK_SIZE`]-byte chunk (6.25 %), independent of the program.
    pub fn space_overhead(&self) -> f64 {
        1.0 / CHUNK_SIZE as f64
    }

    /// Total pointer writes (counted + local).
    pub fn total_pointer_writes(&self) -> u64 {
        self.counted_pointer_writes + self.local_pointer_writes
    }

    /// Accumulates another report into this one (used to combine the
    /// per-function reports of [`analyze_function`]).
    pub fn merge(&mut self, other: &InstrumentationReport) {
        self.counted_pointer_writes += other.counted_pointer_writes;
        self.local_pointer_writes += other.local_pointer_writes;
        self.free_sites += other.free_sites;
        self.alloc_sites += other.alloc_sites;
        self.memcpy_sites += other.memcpy_sites;
        self.memset_sites += other.memset_sites;
        self.types_needing_layout += other.types_needing_layout;
        self.runtime_type_info_sites += other.runtime_type_info_sites;
        self.untyped_free_roots
            .extend(other.untyped_free_roots.iter().cloned());
        self.delayed_free_scopes += other.delayed_free_scopes;
        for (subsystem, n) in &other.writes_by_subsystem {
            *self
                .writes_by_subsystem
                .entry(subsystem.clone())
                .or_insert(0) += n;
        }
    }
}

/// Per-function instrumentation reports for every defined function, keyed
/// by name — the granularity the dynamic soundness oracle checks bad-free
/// coverage at (a run-time bad free in a function with no instrumented
/// free site would mean CCount missed a site).
pub fn analyze_by_function(program: &Program) -> BTreeMap<String, InstrumentationReport> {
    program
        .functions
        .iter()
        .filter(|f| f.body.is_some())
        .map(|f| (f.name.clone(), analyze_function(program, f)))
        .collect()
}

/// Analyses a program and reports what CCount must instrument.
pub fn analyze(program: &Program) -> InstrumentationReport {
    let mut report = InstrumentationReport::default();

    for comp in &program.composites {
        let has_ptr = comp.fields.iter().any(|f| contains_pointer(program, &f.ty));
        if has_ptr {
            report.types_needing_layout += 1;
        }
    }

    for func in program.functions.iter().filter(|f| f.body.is_some()) {
        report.merge(&analyze_function(program, func));
    }
    report
}

/// Analyses what CCount must instrument in a single function. The whole
/// analysis is function-local (types are resolved against the program, but
/// no other function's body is consulted), which is what lets the engine
/// schedule and cache CCount per function. `types_needing_layout` is a
/// program-level count and stays zero here.
pub fn analyze_function(program: &Program, func: &Function) -> InstrumentationReport {
    let mut report = InstrumentationReport::default();
    if func.body.is_none() {
        return report;
    }
    {
        let mut ctx = TypeCtx::for_function(program, func);
        let mut local_names: Vec<String> = func.params.iter().map(|p| p.name.clone()).collect();

        visit::walk_fn_stmts(func, &mut |stmt| {
            match stmt {
                Stmt::Local(d, init) => {
                    local_names.push(d.name.clone());
                    ctx.bind(&d.name, d.ty.clone());
                    if init.is_some() && program.resolve_type(&d.ty).is_ptr() {
                        report.local_pointer_writes += 1;
                    }
                }
                Stmt::Assign(lhs, rhs, _) => {
                    let is_ptr_store = ctx
                        .type_of(lhs)
                        .map(|t| program.resolve_type(&t).is_ptr())
                        .unwrap_or(false)
                        || ctx
                            .type_of(rhs)
                            .map(|t| program.resolve_type(&t).is_ptr())
                            .unwrap_or(false);
                    if is_ptr_store {
                        let to_local = matches!(lhs, Expr::Var(v) if local_names.contains(v));
                        if to_local {
                            report.local_pointer_writes += 1;
                        } else {
                            report.counted_pointer_writes += 1;
                            *report
                                .writes_by_subsystem
                                .entry(func.subsystem.clone())
                                .or_insert(0) += 1;
                        }
                    }
                }
                Stmt::DelayedFreeScope(..) => report.delayed_free_scopes += 1,
                _ => {}
            }
            // Walk only the statement's own expressions (conditions,
            // operands, initialisers); nested statements are visited by the
            // outer pre-order walk themselves, so recursing into sub-blocks
            // here would double-count call sites.
            for top in own_exprs(stmt) {
                visit::walk_expr(top, &mut |e| {
                    if let Expr::Call(callee, args) = e {
                        if let Expr::Var(name) = &**callee {
                            if FREE_FUNCTIONS.contains(&name.as_str()) {
                                report.free_sites += 1;
                                if let Some(arg) = args.first() {
                                    if is_untyped_pointer(program, &ctx, arg) {
                                        report.runtime_type_info_sites += 1;
                                        if let Some(var) = root_var(arg) {
                                            report.untyped_free_roots.push(var);
                                        }
                                    }
                                }
                            } else if ALLOC_FUNCTIONS.contains(&name.as_str()) {
                                report.alloc_sites += 1;
                            } else if name == "memcpy" || name == "memmove" {
                                report.memcpy_sites += 1;
                            } else if name == "memset" {
                                report.memset_sites += 1;
                            }
                        }
                    }
                });
            }
        });
    }
    report
}

/// Peels casts and unary operators down to a bare variable, if any.
fn root_var(e: &Expr) -> Option<String> {
    match e {
        Expr::Var(n) => Some(n.clone()),
        Expr::Cast(_, inner) | Expr::Unary(_, inner) => root_var(inner),
        _ => None,
    }
}

/// The expressions belonging directly to a statement (excluding those inside
/// nested statements).
fn own_exprs(stmt: &Stmt) -> Vec<&Expr> {
    match stmt {
        Stmt::Expr(e, _) => vec![e],
        Stmt::Assign(l, r, _) => vec![l, r],
        Stmt::Local(_, Some(init)) => vec![init],
        Stmt::Return(Some(e), _) => vec![e],
        Stmt::If(c, ..) | Stmt::While(c, ..) => vec![c],
        Stmt::Check(c, _) => {
            let mut out = Vec::new();
            visit::walk_check_exprs(c, &mut |e| out.push(e));
            out
        }
        _ => Vec::new(),
    }
}

fn contains_pointer(program: &Program, ty: &Type) -> bool {
    match program.resolve_type(ty) {
        Type::Ptr(..) | Type::Func(_) => true,
        Type::Array(inner, _) => contains_pointer(program, inner),
        Type::Struct(name) | Type::Union(name) => program
            .composite(name)
            .map(|c| c.fields.iter().any(|f| contains_pointer(program, &f.ty)))
            .unwrap_or(false),
        _ => false,
    }
}

/// True when the freed expression's static type gives CCount no element type
/// to work with (a raw `void *`), so explicit run-time type information is
/// needed at this site.
fn is_untyped_pointer(program: &Program, ctx: &TypeCtx<'_>, e: &Expr) -> bool {
    // A cast to `void *` wrapping a typed pointer still carries the type
    // underneath; only genuinely untyped values count.
    let inner = match e {
        Expr::Cast(_, inner) => inner,
        other => other,
    };
    match ctx.type_of(inner) {
        Ok(t) => match program.resolve_type(&t) {
            Type::Ptr(pointee, _) => matches!(program.resolve_type(pointee), Type::Void),
            _ => false,
        },
        Err(_) => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivy_cmir::parser::parse_program;

    const SRC: &str = r#"
        #[allocator]
        extern fn kmalloc(size: u32, flags: u32) -> void *;
        extern fn kfree(p: void *);
        extern fn memcpy(dst: void *, src: void *, n: u32) -> void *;
        extern fn memset(p: void *, c: i32, n: u32) -> void *;

        struct dentry { name: u8 *; parent: struct dentry *; }
        struct plain { a: u32; b: u32; }

        global root: struct dentry *;

        #[subsystem("fs")]
        fn link(d: struct dentry * nonnull, parent: struct dentry *) {
            d->parent = parent;      // counted write (heap/global target)
            root = d;                // counted write (global)
            let tmp: struct dentry * = d;   // local write (not counted)
            memcpy(d as void *, parent as void *, sizeof(struct dentry));
        }

        #[subsystem("fs")]
        fn destroy(d: struct dentry * nonnull) {
            memset(d as void *, 0, sizeof(struct dentry));
            kfree(d as void *);
        }

        fn alloc_one() -> struct dentry * {
            return kmalloc(sizeof(struct dentry), 0) as struct dentry *;
        }

        fn raw_free(p: void *) {
            kfree(p);
        }
    "#;

    #[test]
    fn counts_pointer_writes_and_sites() {
        let p = parse_program(SRC).unwrap();
        let r = analyze(&p);
        assert_eq!(r.counted_pointer_writes, 2);
        assert_eq!(r.local_pointer_writes, 1);
        assert_eq!(r.free_sites, 2);
        assert_eq!(r.alloc_sites, 1);
        assert_eq!(r.memcpy_sites, 1);
        assert_eq!(r.memset_sites, 1);
        assert_eq!(r.writes_by_subsystem["fs"], 2);
    }

    #[test]
    fn type_layout_and_rtti_requirements() {
        let p = parse_program(SRC).unwrap();
        let r = analyze(&p);
        // `dentry` contains pointers, `plain` does not.
        assert_eq!(r.types_needing_layout, 1);
        // `destroy` frees a cast-from-typed pointer (type known); `raw_free`
        // frees a genuine void* (needs explicit RTTI).
        assert_eq!(r.runtime_type_info_sites, 1);
    }

    #[test]
    fn space_overhead_matches_paper() {
        let r = InstrumentationReport::default();
        assert!((r.space_overhead() - 0.0625).abs() < 1e-12);
    }

    #[test]
    fn delayed_scopes_counted() {
        let src = r#"
            extern fn kfree(p: void *);
            fn f(p: void *) { delayed_free { kfree(p); } }
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(analyze(&p).delayed_free_scopes, 1);
    }
}
