//! `ivy-ccount` — CCount, reference-count checking of manual memory
//! management (§2.2 of the paper).
//!
//! CCount does not replace the kernel's manual memory management; it *checks*
//! it: every pointer write maintains an 8-bit reference count per 16-byte
//! chunk (6.25 % space overhead), and every free verifies that no chunk of
//! the freed object is still referenced. Failing frees are logged and the
//! object leaked, which keeps the rest of the kernel sound.
//!
//! The division of labour in this workspace:
//!
//! * [`analyze`] — the static side: which pointer writes get instrumented,
//!   which free/memcpy/memset sites need type information, which composite
//!   types need layout descriptions (the porting-effort numbers of §2.2).
//! * [`transform`] — the source-level changes used to make frees verifiable:
//!   nulling out pointers before frees, wrapping teardown paths in
//!   delayed-free scopes, and making free checks explicit.
//! * [`report`] — free-verification and overhead summaries built from VM run
//!   statistics (experiments E3 and E4).
//! * The run-time refcount maintenance itself is implemented by `ivy-vm`
//!   (enabled with `VmConfig::ccounted`), because it is part of executing the
//!   instrumented kernel rather than of the analysis.
//!
//! # Examples
//!
//! ```
//! use ivy_ccount::analyze::analyze;
//! use ivy_cmir::parser::parse_program;
//!
//! let program = parse_program(
//!     r#"
//!     extern fn kfree(p: void *);
//!     struct buf { data: u8 *; next: struct buf *; }
//!     global pool: struct buf *;
//!     fn recycle(b: struct buf * nonnull) {
//!         b->next = pool;    // counted pointer write
//!         pool = b;          // counted pointer write
//!     }
//!     "#,
//! )
//! .unwrap();
//! let report = analyze(&program);
//! assert_eq!(report.counted_pointer_writes, 2);
//! assert_eq!(report.types_needing_layout, 1);
//! assert!((report.space_overhead() - 0.0625).abs() < 1e-12);
//! ```

#![warn(missing_docs)]

pub mod analyze;
pub mod plugin;
pub mod report;
pub mod transform;

pub use analyze::{analyze, analyze_by_function, analyze_function, InstrumentationReport};
pub use plugin::CCountChecker;
pub use report::{FreeVerification, Overhead};
pub use transform::{insert_free_checks, wrap_in_delayed_free, FixPlan, NullFix};
