//! Run-time verification summaries (experiments E3 and E4).

use ivy_vm::RunStats;
use serde::{Deserialize, Serialize};

/// Summary of the free verification performed during one or more runs
/// (the paper's "we can now verify the correctness of all of the ~107k frees
/// that occur from boot time until the login prompt", §2.2).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FreeVerification {
    /// Frees whose refcount check passed.
    pub good: u64,
    /// Frees whose refcount check failed (logged and leaked).
    pub bad: u64,
    /// Frees deferred by delayed-free scopes.
    pub delayed: u64,
    /// Reference-count updates performed.
    pub rc_updates: u64,
    /// Allocations observed.
    pub allocs: u64,
}

impl FreeVerification {
    /// Builds a summary from VM run statistics.
    pub fn from_stats(stats: &RunStats) -> Self {
        FreeVerification {
            good: stats.frees_good,
            bad: stats.frees_bad,
            delayed: stats.frees_delayed,
            rc_updates: stats.rc_updates,
            allocs: stats.allocs,
        }
    }

    /// Total frees checked.
    pub fn total(&self) -> u64 {
        self.good + self.bad
    }

    /// Fraction of frees verified good (1.0 if none).
    pub fn good_ratio(&self) -> f64 {
        if self.total() == 0 {
            1.0
        } else {
            self.good as f64 / self.total() as f64
        }
    }

    /// Merges another summary (e.g. boot + light use phases).
    pub fn merge(&mut self, other: &FreeVerification) {
        self.good += other.good;
        self.bad += other.bad;
        self.delayed += other.delayed;
        self.rc_updates += other.rc_updates;
        self.allocs += other.allocs;
    }
}

/// The relative overhead of an instrumented run against a baseline run
/// (experiment E4: fork and module-loading, UP and SMP).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Overhead {
    /// Cycles of the uninstrumented run.
    pub baseline_cycles: u64,
    /// Cycles of the instrumented run.
    pub instrumented_cycles: u64,
}

impl Overhead {
    /// Creates an overhead record.
    pub fn new(baseline_cycles: u64, instrumented_cycles: u64) -> Self {
        Overhead {
            baseline_cycles,
            instrumented_cycles,
        }
    }

    /// Relative slowdown, e.g. 1.19 for a 19 % overhead.
    pub fn ratio(&self) -> f64 {
        if self.baseline_cycles == 0 {
            1.0
        } else {
            self.instrumented_cycles as f64 / self.baseline_cycles as f64
        }
    }

    /// Overhead as a percentage, e.g. 19.0 for a 19 % overhead.
    pub fn percent(&self) -> f64 {
        (self.ratio() - 1.0) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_and_percentages() {
        let o = Overhead::new(1000, 1190);
        assert!((o.ratio() - 1.19).abs() < 1e-9);
        assert!((o.percent() - 19.0).abs() < 1e-9);
        assert_eq!(Overhead::new(0, 5).ratio(), 1.0);
    }

    #[test]
    fn free_verification_from_stats() {
        let stats = RunStats {
            frees_good: 985,
            frees_bad: 15,
            rc_updates: 4000,
            ..RunStats::default()
        };
        let v = FreeVerification::from_stats(&stats);
        assert_eq!(v.total(), 1000);
        assert!((v.good_ratio() - 0.985).abs() < 1e-9);
        let mut sum = FreeVerification::default();
        sum.merge(&v);
        sum.merge(&v);
        assert_eq!(sum.total(), 2000);
    }
}
