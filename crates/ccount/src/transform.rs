//! Program transformations used when porting a kernel to CCount.
//!
//! Two kinds of source-level change made the paper's kernel pass its free
//! checks: "nulling out some extra pointers, usually around the time the
//! corresponding object is freed (27 instances so far) and adding delayed
//! free scopes (26 so far)". [`FixPlan`] captures such a set of changes and
//! applies them mechanically, and [`insert_free_checks`] makes the implicit
//! free-time check visible as an explicit `__check_rc_free` statement.

use crate::analyze::FREE_FUNCTIONS;
use ivy_cmir::ast::{Block, Check, Expr, Program, Stmt};
use ivy_cmir::parser::parse_expr;
use ivy_cmir::visit;
use ivy_cmir::Span;
use serde::{Deserialize, Serialize};

/// One "null out this pointer before the frees in this function" fix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NullFix {
    /// Function to patch.
    pub function: String,
    /// The lvalue (KC expression text) to null immediately before each free
    /// call in that function, e.g. `"dev->rx_buf"` or `"console_slot"`.
    pub lvalue: String,
}

/// A set of source-level changes that make a kernel's frees verifiable.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FixPlan {
    /// Pointers to null out before frees (the paper's 27 instances).
    pub null_fixes: Vec<NullFix>,
    /// Functions whose whole body should run inside a delayed-free scope
    /// (the paper's 26 instances), for complex or cyclic structures.
    pub delayed_free_functions: Vec<String>,
}

impl FixPlan {
    /// Total number of individual fixes in the plan.
    pub fn len(&self) -> usize {
        self.null_fixes.len() + self.delayed_free_functions.len()
    }

    /// True if the plan contains no fixes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Applies the plan to a program, returning the patched program.
    ///
    /// Unknown function names are ignored (the plan may be written against a
    /// larger kernel configuration than the one being built).
    pub fn apply(&self, program: &Program) -> Program {
        let mut out = program.clone();
        for fix in &self.null_fixes {
            if let Ok(lvalue) = parse_expr(&fix.lvalue) {
                apply_null_fix(&mut out, &fix.function, &lvalue);
            }
        }
        for fname in &self.delayed_free_functions {
            wrap_in_delayed_free(&mut out, fname);
        }
        out
    }
}

/// Inserts `lvalue = null;` immediately before every free call in `function`.
pub fn apply_null_fix(program: &mut Program, function: &str, lvalue: &Expr) {
    let Some(func) = program.function(function).cloned() else {
        return;
    };
    let rewritten = visit::map_fn_body(&func, &mut |s| match &s {
        Stmt::Expr(e, _) if is_free_call(e) => {
            vec![Stmt::assign(lvalue.clone(), Expr::Null), s]
        }
        _ => vec![s],
    });
    program.add_function(rewritten);
}

/// Wraps the entire body of `function` in a delayed-free scope.
pub fn wrap_in_delayed_free(program: &mut Program, function: &str) {
    let Some(func) = program.function_mut(function) else {
        return;
    };
    let Some(body) = func.body.take() else { return };
    // Avoid double wrapping if the body is already a single delayed scope.
    if body.stmts.len() == 1 && matches!(body.stmts[0], Stmt::DelayedFreeScope(..)) {
        func.body = Some(body);
        return;
    }
    func.body = Some(Block::new(vec![Stmt::DelayedFreeScope(
        body,
        Span::synthetic(),
    )]));
}

/// Inserts an explicit `__check_rc_free(p)` before every `kfree(p)`-style
/// call, making the CCount free check auditable in the program text. Returns
/// the number of checks inserted.
pub fn insert_free_checks(program: &mut Program) -> u64 {
    let mut inserted = 0;
    let originals: Vec<_> = program.functions.clone();
    for func in originals {
        if func.body.is_none() {
            continue;
        }
        let rewritten = visit::map_fn_body(&func, &mut |s| match &s {
            Stmt::Expr(e, span) => {
                if let Some(arg) = free_argument(e) {
                    inserted += 1;
                    vec![Stmt::Check(Check::RcFreeOk(arg), *span), s]
                } else {
                    vec![s]
                }
            }
            _ => vec![s],
        });
        program.add_function(rewritten);
    }
    inserted
}

fn is_free_call(e: &Expr) -> bool {
    free_argument(e).is_some()
}

/// If `e` is a call to a free function, returns its (uncast) first argument.
fn free_argument(e: &Expr) -> Option<Expr> {
    if let Expr::Call(callee, args) = e {
        if let Expr::Var(name) = &**callee {
            if FREE_FUNCTIONS.contains(&name.as_str()) {
                let arg = args.first()?;
                let arg = match arg {
                    Expr::Cast(_, inner) => (**inner).clone(),
                    other => other.clone(),
                };
                return Some(arg);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivy_cmir::parser::parse_program;
    use ivy_cmir::pretty::pretty_program;

    const SRC: &str = r#"
        extern fn kfree(p: void *);
        struct dev { buf: u8 *; }
        global console: struct dev *;
        fn teardown(d: struct dev * nonnull) {
            kfree(d->buf as void *);
            kfree(d as void *);
        }
        fn release_console() {
            kfree(console as void *);
        }
    "#;

    #[test]
    fn null_fix_inserts_assignment_before_each_free() {
        let mut p = parse_program(SRC).unwrap();
        apply_null_fix(&mut p, "release_console", &parse_expr("console").unwrap());
        let text = pretty_program(&p);
        let idx_null = text
            .find("console = null;")
            .expect("null assignment inserted");
        let idx_free = text
            .find("kfree((console as void *));")
            .expect("free still present");
        assert!(idx_null < idx_free);
        // The other function is untouched.
        assert_eq!(text.matches("= null;").count(), 1);
    }

    #[test]
    fn delayed_free_wrap_is_idempotent() {
        let mut p = parse_program(SRC).unwrap();
        wrap_in_delayed_free(&mut p, "teardown");
        wrap_in_delayed_free(&mut p, "teardown");
        let f = p.function("teardown").unwrap();
        let body = f.body.as_ref().unwrap();
        assert_eq!(body.stmts.len(), 1);
        assert!(matches!(body.stmts[0], Stmt::DelayedFreeScope(..)));
    }

    #[test]
    fn free_checks_inserted_before_frees() {
        let mut p = parse_program(SRC).unwrap();
        let n = insert_free_checks(&mut p);
        assert_eq!(n, 3);
        let mut checks = 0;
        for f in p.defined_functions() {
            visit::walk_fn_stmts(f, &mut |s| {
                if matches!(s, Stmt::Check(Check::RcFreeOk(_), _)) {
                    checks += 1;
                }
            });
        }
        assert_eq!(checks, 3);
    }

    #[test]
    fn fix_plan_applies_both_kinds() {
        let p = parse_program(SRC).unwrap();
        let plan = FixPlan {
            null_fixes: vec![NullFix {
                function: "release_console".into(),
                lvalue: "console".into(),
            }],
            delayed_free_functions: vec!["teardown".into(), "not_a_function".into()],
        };
        assert_eq!(plan.len(), 3);
        let patched = plan.apply(&p);
        let text = pretty_program(&patched);
        assert!(text.contains("console = null;"));
        assert!(text.contains("delayed_free {"));
    }
}
