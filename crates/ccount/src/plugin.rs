//! The CCount checker plugin for `ivy-engine`.
//!
//! CCount's static side is function-local — which pointer writes get the
//! refcount rewrite, which free/memcpy/memset sites need type information —
//! so the adapter simply drives [`analyze_function`] per scheduled function
//! and reports the instrumentation facts as diagnostics. Free sites whose
//! argument carries no static type are surfaced as warnings: those are the
//! places the paper's porting effort went (explicit run-time type
//! information), and the fix hint says so.

use crate::analyze::{analyze, analyze_function, InstrumentationReport};
use ivy_cmir::ast::Function;
use ivy_engine::hash::mix;
use ivy_engine::{AnalysisCtx, Checker, Diagnostic, Severity};
use std::sync::Arc;

/// CCount as an engine plugin.
#[derive(Debug, Clone, Copy, Default)]
pub struct CCountChecker;

impl CCountChecker {
    /// Creates the plugin.
    pub fn new() -> CCountChecker {
        CCountChecker
    }

    /// The memoized whole-program instrumentation report for a shared
    /// context (used by the pipeline; per-function checking below does not
    /// need it).
    pub fn report(&self, ctx: &AnalysisCtx) -> Arc<InstrumentationReport> {
        ctx.memo("ccount/report", || analyze(&ctx.program))
    }
}

impl Checker for CCountChecker {
    fn name(&self) -> &'static str {
        "ccount"
    }

    fn context_fingerprint(&self, ctx: &AnalysisCtx, _func: &Function) -> u64 {
        // Pointer-ness of writes is resolved against composites/typedefs
        // and global/param types; the env hash covers those.
        mix(0xcc0417, ctx.env_hash())
    }

    fn check_function(&self, ctx: &AnalysisCtx, func: &Function) -> Vec<Diagnostic> {
        if func.body.is_none() {
            return Vec::new();
        }
        let report = analyze_function(&ctx.program, func);
        let mut out = Vec::new();
        if report.runtime_type_info_sites > 0 {
            out.push(Diagnostic {
                checker: "ccount".into(),
                code: "ccount/untyped-free".into(),
                function: func.name.clone(),
                severity: Severity::Warning,
                message: format!(
                    "{} free site(s) of untyped (`void *`) pointers need explicit run-time type information",
                    report.runtime_type_info_sites
                ),
                span: Some(func.span),
                fix_hint: Some(
                    "free through a typed pointer, or register the object's layout with CCount".into(),
                ),
            });
        }
        if report.counted_pointer_writes > 0 || report.free_sites > 0 {
            out.push(Diagnostic {
                checker: "ccount".into(),
                code: "ccount/instrumentation".into(),
                function: func.name.clone(),
                severity: Severity::Info,
                message: format!(
                    "{} counted pointer write(s), {} local write(s), {} free site(s), {} alloc site(s), {} memcpy/memset site(s)",
                    report.counted_pointer_writes,
                    report.local_pointer_writes,
                    report.free_sites,
                    report.alloc_sites,
                    report.memcpy_sites + report.memset_sites
                ),
                span: Some(func.span),
                fix_hint: None,
            });
        }
        out
    }
}
