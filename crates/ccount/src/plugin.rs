//! The CCount checker plugin for `ivy-engine`.
//!
//! CCount's static side is function-local — which pointer writes get the
//! refcount rewrite, which free/memcpy/memset sites need type information —
//! so the adapter simply drives [`analyze_function`] per scheduled function
//! and reports the instrumentation facts as diagnostics. Free sites whose
//! argument carries no static type are surfaced as warnings: those are the
//! places the paper's porting effort went (explicit run-time type
//! information), and the fix hint says so.

use crate::analyze::{analyze, analyze_function, InstrumentationReport};
use ivy_analysis::pointsto::{Loc, Sensitivity};
use ivy_cmir::ast::Function;
use ivy_engine::hash::{fnv1a, mix};
use ivy_engine::json::Value;
use ivy_engine::persist::{string_set_from_value, strings_to_value};
use ivy_engine::{AnalysisCtx, Checker, Diagnostic, DurableQuery, Query, QueryDb, Severity};
use std::collections::BTreeSet;
use std::sync::Arc;

/// The whole-program CCount instrumentation report (used by the pipeline;
/// per-function checking uses [`FnReportQuery`]).
pub struct ProgramReportQuery;

impl Query for ProgramReportQuery {
    type Key = ();
    type Value = InstrumentationReport;
    const NAME: &'static str = "ccount/report";

    fn compute(db: &QueryDb, _key: &()) -> InstrumentationReport {
        // Reads every function body directly: connect it to the input
        // layer so dependency-driven invalidation can reach it.
        db.depend_on_program();
        analyze(&db.program)
    }
}

/// The per-function instrumentation report, keyed by function name — the
/// cache fingerprint and the per-function check both need it, and
/// fingerprints run on every engine pass, so one AST traversal per
/// function per db must suffice.
pub struct FnReportQuery;

impl Query for FnReportQuery {
    type Key = String;
    type Value = InstrumentationReport;
    const NAME: &'static str = "ccount/fn-report";

    fn compute(db: &QueryDb, key: &String) -> InstrumentationReport {
        // Per-function, but resolved against the type environment: tie it
        // to its function's content and the env for invalidation.
        db.fn_content(key);
        db.env_hash();
        let func = db
            .program
            .function(key)
            .expect("fn-report queried for a known function");
        analyze_function(&db.program, func)
    }
}

/// Alias query against the shared points-to substrate: the candidate heap
/// allocation sites of every pointer the function frees as a raw `void *`.
/// These are exactly the objects whose layout would have to be registered
/// with CCount, so the untyped-free warning can name them. Durable (keyed
/// by program content): the fingerprint reads it on every pass, and a warm
/// process must serve it without solving points-to.
pub struct UntypedFreeSitesQuery;

impl Query for UntypedFreeSitesQuery {
    type Key = String;
    type Value = BTreeSet<String>;
    const NAME: &'static str = "ccount/untyped-free-sites";

    fn compute(db: &QueryDb, key: &String) -> BTreeSet<String> {
        let vars = db.get::<FnReportQuery>(key).untyped_free_roots.clone();
        if vars.is_empty() {
            return BTreeSet::new();
        }
        let pts = db.pointsto(CCountChecker.sensitivity());
        let mut sites = BTreeSet::new();
        for var in vars {
            let loc = if db.program.global(&var).is_some() {
                Loc::Global(var)
            } else {
                Loc::Local {
                    func: key.clone(),
                    var,
                }
            };
            sites.extend(pts.points_to(&loc).into_iter().filter_map(|l| match l {
                Loc::Alloc { site } => Some(site),
                _ => None,
            }));
        }
        sites
    }
}

impl DurableQuery for UntypedFreeSitesQuery {
    const FORMAT_VERSION: u32 = 1;

    fn durable_key(db: &QueryDb, key: &String) -> u64 {
        // The sites come from whole-program points-to: valid exactly for
        // this program content.
        mix(db.program_hash, fnv1a(key.as_bytes()))
    }

    fn encode(sites: &BTreeSet<String>) -> Value {
        strings_to_value(sites)
    }

    fn decode(raw: &Value) -> Option<BTreeSet<String>> {
        string_set_from_value(raw)
    }
}

/// CCount as an engine plugin.
#[derive(Debug, Clone, Copy, Default)]
pub struct CCountChecker;

impl CCountChecker {
    /// Creates the plugin.
    pub fn new() -> CCountChecker {
        CCountChecker
    }

    /// The whole-program instrumentation report for a shared context.
    pub fn report(&self, ctx: &AnalysisCtx) -> Arc<InstrumentationReport> {
        ctx.get::<ProgramReportQuery>(&())
    }

    fn function_report(&self, ctx: &AnalysisCtx, func: &Function) -> Arc<InstrumentationReport> {
        ctx.get::<FnReportQuery>(&func.name)
    }

    fn alloc_sites_of_untyped_frees(
        &self,
        ctx: &AnalysisCtx,
        func: &Function,
    ) -> Arc<BTreeSet<String>> {
        ctx.get_durable::<UntypedFreeSitesQuery>(&func.name)
    }
}

impl Checker for CCountChecker {
    fn name(&self) -> &'static str {
        "ccount"
    }

    fn sensitivity(&self) -> Sensitivity {
        // The alloc-site hints only distinguish allocation sites, which
        // every precision level models identically; the cheapest suffices.
        Sensitivity::Steensgaard
    }

    fn context_fingerprint(&self, ctx: &AnalysisCtx, func: &Function) -> u64 {
        // Pointer-ness of writes is resolved against composites/typedefs
        // and global/param types; the env hash covers those. The untyped-
        // free hints additionally read points-to sets, which can change
        // with *any* body edit — fold the queried sites in so cached
        // diagnostics are replayed only when the hints would reproduce.
        let mut h = mix(0xcc0417, ctx.env_hash());
        for site in self.alloc_sites_of_untyped_frees(ctx, func).iter() {
            h = mix(h, fnv1a(site.as_bytes()));
        }
        h
    }

    fn check_function(&self, ctx: &AnalysisCtx, func: &Function) -> Vec<Diagnostic> {
        if func.body.is_none() {
            return Vec::new();
        }
        let report = self.function_report(ctx, func);
        let mut out = Vec::new();
        if report.runtime_type_info_sites > 0 {
            let sites = self.alloc_sites_of_untyped_frees(ctx, func);
            let fix_hint = if sites.is_empty() {
                "free through a typed pointer, or register the object's layout with CCount"
                    .to_string()
            } else {
                format!(
                    "free through a typed pointer, or register the layout of the object(s) allocated at: {}",
                    sites.iter().cloned().collect::<Vec<_>>().join(", ")
                )
            };
            out.push(Diagnostic {
                checker: "ccount".into(),
                code: "ccount/untyped-free".into(),
                function: func.name.clone(),
                severity: Severity::Warning,
                message: format!(
                    "{} free site(s) of untyped (`void *`) pointers need explicit run-time type information",
                    report.runtime_type_info_sites
                ),
                span: Some(func.span),
                fix_hint: Some(fix_hint),
                // Cite the points-to facts behind the hint: the alloc
                // sites the freed `void *` pointers may reach.
                evidence: sites
                    .iter()
                    .map(|site| {
                        ivy_engine::Evidence::new(
                            "alloc-site",
                            func.name.clone(),
                            format!("freed pointer may point to alloc@{site}"),
                        )
                    })
                    .collect(),
            });
        }
        if report.counted_pointer_writes > 0 || report.free_sites > 0 {
            out.push(Diagnostic {
                checker: "ccount".into(),
                code: "ccount/instrumentation".into(),
                function: func.name.clone(),
                severity: Severity::Info,
                message: format!(
                    "{} counted pointer write(s), {} local write(s), {} free site(s), {} alloc site(s), {} memcpy/memset site(s)",
                    report.counted_pointer_writes,
                    report.local_pointer_writes,
                    report.free_sites,
                    report.alloc_sites,
                    report.memcpy_sites + report.memset_sites
                ),
                span: Some(func.span),
                fix_hint: None,
                evidence: Vec::new(),
            });
        }
        out
    }
}
