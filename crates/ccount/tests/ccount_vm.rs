//! End-to-end CCount tests: instrument a small kernel-like program, execute
//! it on the VM with reference counting enabled, observe bad frees, apply the
//! fix plan, and verify the frees become good — the §2.2 workflow in miniature.

use ivy_ccount::{analyze, FixPlan, FreeVerification, NullFix, Overhead};
use ivy_cmir::parser::parse_program;
use ivy_vm::{Vm, VmConfig};

/// A miniature "driver" with the classic bad-free pattern: an object freed
/// while a global cache still points at it, plus a cyclic pair freed without
/// a delayed-free scope.
const DRIVER: &str = r#"
    #[allocator] #[blocking_if(flags)]
    extern fn kmalloc(size: u32, flags: u32) -> void *;
    extern fn kfree(p: void *);

    struct msg { next: struct msg *; len: u32; }

    global cache: struct msg *;

    fn produce() -> struct msg * {
        let m: struct msg * = (kmalloc(sizeof(struct msg), 0) as struct msg *);
        m->len = 16;
        cache = m;
        return m;
    }

    fn drop_cached(m: struct msg * nonnull) {
        // BUG: `cache` still references the message being freed.
        kfree((m as void *));
    }

    fn drop_pair() {
        let a: struct msg * = (kmalloc(sizeof(struct msg), 0) as struct msg *);
        let b: struct msg * = (kmalloc(sizeof(struct msg), 0) as struct msg *);
        a->next = b;
        b->next = a;
        // BUG: each node is still referenced by the other when freed.
        kfree((a as void *));
        kfree((b as void *));
    }

    fn churn(rounds: u32) {
        let i: u32 = 0;
        while (i < rounds) {
            let m: struct msg * = produce();
            cache = null;
            kfree((m as void *));
            i = i + 1;
        }
    }

    fn scenario() {
        churn(50);
        drop_cached(produce());
        drop_pair();
    }
"#;

fn run_with(program: ivy_cmir::Program, config: VmConfig, entry: &str) -> Vm {
    let mut vm = Vm::new(program, config).unwrap();
    vm.run(entry, vec![]).unwrap();
    vm
}

#[test]
fn unfixed_driver_reports_bad_frees() {
    let program = parse_program(DRIVER).unwrap();
    let vm = run_with(program, VmConfig::ccounted(false), "scenario");
    let v = FreeVerification::from_stats(&vm.stats);
    // The 50 churn frees are good. drop_cached frees a message that `cache`
    // still references (bad). In drop_pair, freeing `a` is bad (`b->next`
    // still points at it); by the time `b` is freed, the type-aware free of
    // `a` has already dropped `a->next`, so `b` checks out good.
    assert_eq!(v.good, 51);
    assert_eq!(v.bad, 2);
    assert!(v.good_ratio() > 0.9 && v.good_ratio() < 1.0);
    // Bad frees are leaked, never reused.
    assert_eq!(vm.mem.stats.leaked_objects, 2);
}

#[test]
fn fix_plan_makes_all_frees_verifiable() {
    let program = parse_program(DRIVER).unwrap();
    let plan = FixPlan {
        null_fixes: vec![NullFix {
            function: "drop_cached".into(),
            lvalue: "cache".into(),
        }],
        delayed_free_functions: vec!["drop_pair".into()],
    };
    let fixed = plan.apply(&program);

    // drop_pair still has to break its cycle inside the scope; emulate the
    // programmer also nulling the next pointers there (the paper's "nulling
    // out some extra pointers" fix) by patching via the same mechanism.
    let fixed = FixPlan {
        null_fixes: vec![
            NullFix {
                function: "drop_pair".into(),
                lvalue: "a->next".into(),
            },
            NullFix {
                function: "drop_pair".into(),
                lvalue: "b->next".into(),
            },
        ],
        delayed_free_functions: vec![],
    }
    .apply(&fixed);

    let vm = run_with(fixed, VmConfig::ccounted(false), "scenario");
    let v = FreeVerification::from_stats(&vm.stats);
    assert_eq!(v.bad, 0, "bad frees: {:?}", vm.stats.bad_frees);
    assert_eq!(v.good, 53);
    assert_eq!(vm.mem.stats.leaked_objects, 0);
    assert!(
        v.delayed >= 2,
        "pair teardown goes through the delayed scope"
    );
    assert_eq!(v.good_ratio(), 1.0);
}

#[test]
fn smp_overhead_exceeds_up_overhead() {
    let program = parse_program(DRIVER).unwrap();

    let baseline = run_with(program.clone(), VmConfig::baseline(), "scenario");
    let up = run_with(program.clone(), VmConfig::ccounted(false), "scenario");
    let smp = run_with(program, VmConfig::ccounted(true), "scenario");

    let up_overhead = Overhead::new(baseline.cycles(), up.cycles());
    let smp_overhead = Overhead::new(baseline.cycles(), smp.cycles());

    assert!(up_overhead.percent() > 0.0);
    assert!(
        smp_overhead.percent() > up_overhead.percent(),
        "SMP locked refcount ops must cost more: UP {:.1}% vs SMP {:.1}%",
        up_overhead.percent(),
        smp_overhead.percent()
    );
}

#[test]
fn static_analysis_matches_dynamic_behaviour() {
    let program = parse_program(DRIVER).unwrap();
    let report = analyze(&program);
    // Pointer writes to globals/heap: produce (cache = m),
    // drop_pair (a->next, b->next), churn (cache = null).
    assert!(report.counted_pointer_writes >= 4);
    assert_eq!(report.free_sites, 4);
    assert_eq!(report.types_needing_layout, 1);

    let vm = run_with(program, VmConfig::ccounted(false), "scenario");
    assert!(vm.stats.rc_updates > 0);
    // Every free site is exercised by the scenario.
    assert_eq!(vm.stats.frees_good + vm.stats.frees_bad, 53);
}
