//! Bench for E6: points-to precision ablation (Steensgaard vs Andersen vs
//! field-sensitive Andersen), the paper's "field- and context-sensitive
//! analysis would improve the results" remark quantified — plus the
//! solver-scaling comparison for the solver substrate: naive reference vs
//! interned worklist solver, cold solve vs incremental re-solve vs DRed
//! delta repair after a one-function edit, plus solver-phase gates for the
//! union-find Steensgaard representation (vs the mirrored-subset worklist)
//! and the parallel wavefront (4 threads vs 1 thread; asserted only when
//! the host actually has >=4 cores — on fewer cores the supersteps
//! time-slice onto one CPU and wall-clock scaling is physically
//! impossible), and a provenance column pricing the derivation-recording
//! arena against the plain worklist cold solve. Emits a machine-readable
//! `JSON-SUMMARY` line (the `BENCH_pointsto.json` trajectory).

use criterion::{criterion_group, criterion_main, Criterion};
use ivy_analysis::pointsto::{
    analyze_incremental, analyze_incremental_with, analyze_naive, analyze_with, ConstraintCache,
    Sensitivity, SolveMode, SolveOptions, SolverChoice,
};
use ivy_cmir::ast::Program;
use ivy_core::experiments::{pointsto_ablation, Scale};
use ivy_kernelgen::{KernelBuild, KernelConfig};
use serde_json::{Map, Value};
use std::time::Instant;

const SENSITIVITIES: [Sensitivity; 3] = [
    Sensitivity::Steensgaard,
    Sensitivity::Andersen,
    Sensitivity::AndersenField,
];

fn median_secs(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

fn time_runs(mut run: impl FnMut(), samples: usize) -> f64 {
    median_secs(
        (0..samples)
            .map(|_| {
                let start = Instant::now();
                run();
                start.elapsed().as_secs_f64()
            })
            .collect(),
    )
}

/// Median *solver-phase* seconds for `run`: the sum of the
/// `pointsto/seed` and `pointsto/propagate` telemetry spans, i.e. graph
/// build + fixpoint only. The constraint-generation/interning frontend is
/// byte-identical across solvers and dominates end-to-end time on these
/// corpora, so solver-vs-solver comparisons are made on the phases a
/// solver can actually change.
fn solver_secs(mut run: impl FnMut(), samples: usize) -> f64 {
    median_secs(
        (0..samples)
            .map(|_| {
                ivy_telemetry::reset();
                ivy_telemetry::enable_spans();
                run();
                let spans = ivy_telemetry::spans_snapshot();
                ivy_telemetry::disable_spans();
                ivy_telemetry::reset();
                spans
                    .iter()
                    .filter(|s| s.cat == "pointsto/seed" || s.cat == "pointsto/propagate")
                    .map(|s| s.dur_us)
                    .sum::<u64>() as f64
                    / 1e6
            })
            .collect(),
    )
}

/// The edited program for the incremental measurement: one function body
/// grows by a duplicated statement (the same edit the engine's dirty-cone
/// test uses).
fn one_function_edit(program: &Program) -> Program {
    let mut edited = program.clone();
    let func = edited
        .function_mut("watchdog_tick")
        .expect("corpus has watchdog_tick");
    let body = func.body.as_mut().expect("defined");
    let extra = body.stmts.first().cloned().expect("non-empty body");
    body.stmts.insert(0, extra);
    edited
}

fn bench_ablation(c: &mut Criterion) {
    let scale = Scale::paper();
    println!("\n==== E6: points-to precision ablation ====");
    println!(
        "{:<16} {:>9} {:>16} {:>13}",
        "variant", "findings", "false positives", "mean fanout"
    );
    for row in pointsto_ablation(&scale) {
        println!(
            "{:<16} {:>9} {:>16} {:>13.2}",
            row.sensitivity, row.findings, row.false_positives, row.mean_indirect_fanout
        );
    }
    println!();

    // ---- Solver scaling: naive vs worklist, cold vs incremental. --------
    // `large` is the largest configuration this bench uses: the paper
    // corpus plus four 400-deep reverse-ordered pointer-handoff chains —
    // the adversarial case for the naive solver (one full rescan round per
    // chain link) and the representative case for deep kernel pointer
    // plumbing.
    let mut large_config = KernelConfig::paper();
    large_config.chains = 4;
    large_config.chain_depth = 400;
    let sweep = [
        ("paper", KernelConfig::paper(), 3usize),
        ("large", large_config, 1usize),
    ];

    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut summary = ivy_bench::summary::Summary::new("table6_pointsto_solver");
    let mut cfg = Map::new();
    cfg.insert("kernels".into(), Value::from("paper,large"));
    cfg.insert(
        "sensitivities".into(),
        Value::from("steensgaard,andersen,andersen_field"),
    );
    cfg.insert("available_parallelism".into(), Value::from(cpus));
    summary.config(Value::Object(cfg));
    // (kernel, variant, worklist, unify, parallel1, parallel4) solver-phase
    // seconds for the E6c table.
    type SolverRow = (String, String, f64, Option<f64>, Option<f64>, Option<f64>);
    let mut solver_rows: Vec<SolverRow> = Vec::new();
    println!("==== E6b: solver scaling (naive vs worklist vs unify/parallel, cold vs incremental vs delta vs provenance) ====");
    println!(
        "{:<8} {:<16} {:>12} {:>12} {:>9} {:>12} {:>9} {:>12} {:>12} {:>8}",
        "kernel",
        "variant",
        "naive (s)",
        "worklist (s)",
        "speedup",
        "incr (s)",
        "vs cold",
        "delta (s)",
        "prov (s)",
        "prov-x",
    );
    for (name, config, naive_samples) in &sweep {
        let build = KernelBuild::generate(config);
        let edited = one_function_edit(&build.program);
        for s in SENSITIVITIES {
            let worklist = SolveOptions {
                solver: SolverChoice::Worklist,
                threads: 1,
                provenance: false,
            };
            let naive_cold = time_runs(
                || {
                    analyze_naive(&build.program, s);
                },
                *naive_samples,
            );
            // Pinned to the serial worklist so the baseline column stays
            // the same solver regardless of IVY_THREADS or dispatch.
            let worklist_cold = time_runs(
                || {
                    analyze_with(&build.program, s, worklist);
                },
                5,
            );
            // The same cold solve with the derivation arena recording —
            // the E6 provenance column. The answers are byte-identical
            // (pinned by the differential tests); this row prices the
            // recording itself.
            let provenance_cold = time_runs(
                || {
                    analyze_with(&build.program, s, worklist.with_provenance(true));
                },
                5,
            );
            // Incremental re-propagation: prime a fresh cache with the
            // base program, then measure the first re-solve of the
            // one-function edit (so every sample sees exactly one dirty
            // batch, never a fully-warm replay). Pinned to the worklist —
            // this is the pre-delta incremental path.
            let incremental = median_secs(
                (0..5)
                    .map(|_| {
                        let cache = ConstraintCache::new();
                        analyze_incremental_with(&build.program, s, &cache, worklist);
                        let start = Instant::now();
                        analyze_incremental_with(&edited, s, &cache, worklist);
                        start.elapsed().as_secs_f64()
                    })
                    .collect(),
            );
            // Delta repair of the same edit under automatic dispatch.
            let delta = median_secs(
                (0..5)
                    .map(|_| {
                        let cache = ConstraintCache::new();
                        analyze_incremental(&build.program, s, &cache);
                        let start = Instant::now();
                        let r = analyze_incremental(&edited, s, &cache);
                        let secs = start.elapsed().as_secs_f64();
                        if s != Sensitivity::Steensgaard {
                            assert_eq!(
                                r.mode,
                                SolveMode::DeltaRepair,
                                "a one-function edit must delta-repair"
                            );
                        }
                        secs
                    })
                    .collect(),
            );
            // Solver-phase timings (seed + propagate spans only) — the
            // phases a solver implementation can actually change. The
            // worklist baseline is measured for every row; the union-find
            // representation exists only for Steensgaard, and the parallel
            // wavefront only for the inclusion-based sensitivities.
            let solver_with = |choice: SolverChoice, threads: usize| {
                solver_secs(
                    || {
                        analyze_with(
                            &build.program,
                            s,
                            SolveOptions {
                                solver: choice,
                                threads,
                                provenance: false,
                            },
                        );
                    },
                    5,
                )
            };
            let worklist_solver = solver_with(SolverChoice::Worklist, 1);
            let unify_solver =
                (s == Sensitivity::Steensgaard).then(|| solver_with(SolverChoice::UnionFind, 1));
            let parallel1_solver =
                (s != Sensitivity::Steensgaard).then(|| solver_with(SolverChoice::Parallel, 1));
            let parallel4_solver =
                (s != Sensitivity::Steensgaard).then(|| solver_with(SolverChoice::Parallel, 4));
            solver_rows.push((
                (*name).to_string(),
                s.name().to_string(),
                worklist_solver,
                unify_solver,
                parallel1_solver,
                parallel4_solver,
            ));
            let reference = analyze_with(&build.program, s, worklist);
            println!(
                "{:<8} {:<16} {:>12.4} {:>12.4} {:>8.1}x {:>12.5} {:>8.1}x {:>12.5} {:>12.4} {:>7.2}x",
                name,
                s.name(),
                naive_cold,
                worklist_cold,
                naive_cold / worklist_cold.max(1e-9),
                incremental,
                worklist_cold / incremental.max(1e-9),
                delta,
                provenance_cold,
                provenance_cold / worklist_cold.max(1e-9),
            );
            let mut row = Map::new();
            row.insert("kernel".into(), Value::from(*name));
            row.insert("sensitivity".into(), Value::from(s.name()));
            row.insert(
                "functions".into(),
                Value::from(build.program.functions.len()),
            );
            row.insert(
                "initial_constraints".into(),
                Value::from(reference.initial_constraints),
            );
            row.insert(
                "total_constraints".into(),
                Value::from(reference.constraint_count),
            );
            row.insert("naive_cold_seconds".into(), Value::from(naive_cold));
            row.insert("worklist_cold_seconds".into(), Value::from(worklist_cold));
            row.insert(
                "cold_speedup".into(),
                Value::from(naive_cold / worklist_cold.max(1e-9)),
            );
            row.insert("incremental_seconds".into(), Value::from(incremental));
            row.insert(
                "incremental_speedup_vs_cold".into(),
                Value::from(worklist_cold / incremental.max(1e-9)),
            );
            row.insert(
                "incremental_speedup_vs_naive".into(),
                Value::from(naive_cold / incremental.max(1e-9)),
            );
            row.insert("delta_repair_seconds".into(), Value::from(delta));
            row.insert(
                "provenance_cold_seconds".into(),
                Value::from(provenance_cold),
            );
            row.insert(
                "provenance_overhead".into(),
                Value::from(provenance_cold / worklist_cold.max(1e-9)),
            );
            row.insert(
                "delta_speedup_vs_incremental".into(),
                Value::from(incremental / delta.max(1e-9)),
            );
            row.insert(
                "worklist_solver_seconds".into(),
                Value::from(worklist_solver),
            );
            if let Some(unify_solver) = unify_solver {
                row.insert("unify_solver_seconds".into(), Value::from(unify_solver));
                row.insert(
                    "unify_solver_speedup".into(),
                    Value::from(worklist_solver / unify_solver.max(1e-9)),
                );
            }
            if let (Some(p1), Some(p4)) = (parallel1_solver, parallel4_solver) {
                row.insert("parallel1_solver_seconds".into(), Value::from(p1));
                row.insert("parallel4_solver_seconds".into(), Value::from(p4));
                row.insert(
                    "parallel_solver_speedup_4t".into(),
                    Value::from(p1 / p4.max(1e-9)),
                );
            }
            summary.push_row(row);
            if *name == "paper" && s == Sensitivity::AndersenField {
                summary.headline(
                    "paper_field_provenance_overhead",
                    provenance_cold / worklist_cold.max(1e-9),
                );
            }
            if *name == "paper" && s == Sensitivity::Steensgaard {
                let unify_solver = unify_solver.expect("measured for steensgaard");
                let unify_speedup = worklist_solver / unify_solver.max(1e-9);
                summary.headline("paper_steensgaard_unify_speedup", unify_speedup);
                assert!(
                    unify_speedup >= 5.0,
                    "union-find Steensgaard must be >=5x the mirrored-subset \
                     worklist (solver phase) on the paper kernel, got {unify_speedup:.1}x"
                );
            }
            if *name == "large" && s == Sensitivity::AndersenField {
                summary.headline("large_field_worklist_cold_seconds", worklist_cold);
                summary.headline(
                    "large_field_cold_speedup",
                    naive_cold / worklist_cold.max(1e-9),
                );
                summary.headline(
                    "large_field_incremental_speedup_vs_cold",
                    worklist_cold / incremental.max(1e-9),
                );
                let p1 = parallel1_solver.expect("measured for andersen+field");
                let p4 = parallel4_solver.expect("measured for andersen+field");
                let parallel_speedup = p1 / p4.max(1e-9);
                summary.headline("large_field_parallel_speedup_4t", parallel_speedup);
                // Wall-clock thread scaling requires actual cores: on a
                // <4-core host the four workers time-slice onto the same
                // CPUs and the ratio measures scheduling overhead, not the
                // solver. Record the headline either way, gate the assert.
                if cpus >= 4 {
                    assert!(
                        parallel_speedup >= 2.0,
                        "the 4-thread wavefront must be >=2x its own 1-thread \
                         run (solver phase) on the large kernel, got \
                         {parallel_speedup:.2}x"
                    );
                } else {
                    println!(
                        "note: parallel >=2x gate skipped \
                         (available_parallelism = {cpus} < 4); \
                         measured {parallel_speedup:.2}x"
                    );
                }
                let delta_speedup = incremental / delta.max(1e-9);
                summary.headline("large_field_delta_speedup_vs_incremental", delta_speedup);
                assert!(
                    delta_speedup > 1.0,
                    "delta repair must beat incremental re-propagation after a \
                     one-function edit, got {delta_speedup:.2}x"
                );
            }
        }
    }
    println!(
        "\n==== E6c: solver-phase timing (seed+propagate spans; cores available: {cpus}) ===="
    );
    println!(
        "{:<8} {:<16} {:>12} {:>11} {:>8} {:>11} {:>11} {:>10}",
        "kernel",
        "variant",
        "worklist (s)",
        "unify (s)",
        "unify-x",
        "par1 (s)",
        "par4 (s)",
        "4t-scaling"
    );
    let fmt_opt = |v: Option<f64>, width: usize| match v {
        Some(v) => format!("{v:>width$.5}"),
        None => format!("{:>width$}", "-"),
    };
    let fmt_ratio = |num: Option<f64>, den: Option<f64>, width: usize| match (num, den) {
        (Some(n), Some(d)) => format!("{:>w$.1}x", n / d.max(1e-9), w = width - 1),
        _ => format!("{:>width$}", "-"),
    };
    for (kernel, variant, wl, unify, p1, p4) in &solver_rows {
        println!(
            "{:<8} {:<16} {:>12.5} {} {} {} {} {}",
            kernel,
            variant,
            wl,
            fmt_opt(*unify, 11),
            fmt_ratio(Some(*wl), *unify, 8),
            fmt_opt(*p1, 11),
            fmt_opt(*p4, 11),
            fmt_ratio(*p1, *p4, 10),
        );
    }
    println!();
    summary.emit();

    // Criterion measurements on the paper configuration.
    let build = KernelBuild::generate(&scale.kernel);
    let mut group = c.benchmark_group("pointsto");
    group.sample_size(10);
    for s in SENSITIVITIES {
        group.bench_function(format!("worklist/{}", s.name()), |b| {
            b.iter(|| {
                analyze_with(
                    &build.program,
                    s,
                    SolveOptions {
                        solver: SolverChoice::Worklist,
                        threads: 1,
                        provenance: false,
                    },
                )
            })
        });
    }
    group.bench_function("worklist-provenance/andersen+field", |b| {
        b.iter(|| {
            analyze_with(
                &build.program,
                Sensitivity::AndersenField,
                SolveOptions {
                    solver: SolverChoice::Worklist,
                    threads: 1,
                    provenance: true,
                },
            )
        })
    });
    group.bench_function("unify/steensgaard", |b| {
        b.iter(|| {
            analyze_with(
                &build.program,
                Sensitivity::Steensgaard,
                SolveOptions {
                    solver: SolverChoice::UnionFind,
                    threads: 1,
                    provenance: false,
                },
            )
        })
    });
    group.bench_function("parallel4/andersen+field", |b| {
        b.iter(|| {
            analyze_with(
                &build.program,
                Sensitivity::AndersenField,
                SolveOptions {
                    solver: SolverChoice::Parallel,
                    threads: 4,
                    provenance: false,
                },
            )
        })
    });
    let cache = ConstraintCache::new();
    analyze_incremental(&build.program, Sensitivity::AndersenField, &cache);
    group.bench_function("incremental-warm/andersen+field", |b| {
        b.iter(|| analyze_incremental(&build.program, Sensitivity::AndersenField, &cache))
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
