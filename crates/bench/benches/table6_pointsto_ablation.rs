//! Bench for E6: points-to precision ablation (Steensgaard vs Andersen vs
//! field-sensitive Andersen), the paper's "field- and context-sensitive
//! analysis would improve the results" remark quantified — plus the
//! solver-scaling comparison for the worklist substrate: naive reference vs
//! interned worklist solver, cold solve vs incremental re-solve after a
//! one-function edit. Emits a machine-readable `JSON-SUMMARY` line (the
//! `BENCH_pointsto.json` trajectory).

use criterion::{criterion_group, criterion_main, Criterion};
use ivy_analysis::pointsto::{
    analyze, analyze_incremental, analyze_naive, ConstraintCache, Sensitivity,
};
use ivy_cmir::ast::Program;
use ivy_core::experiments::{pointsto_ablation, Scale};
use ivy_kernelgen::{KernelBuild, KernelConfig};
use serde_json::{Map, Value};
use std::time::Instant;

const SENSITIVITIES: [Sensitivity; 3] = [
    Sensitivity::Steensgaard,
    Sensitivity::Andersen,
    Sensitivity::AndersenField,
];

fn median_secs(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

fn time_runs(mut run: impl FnMut(), samples: usize) -> f64 {
    median_secs(
        (0..samples)
            .map(|_| {
                let start = Instant::now();
                run();
                start.elapsed().as_secs_f64()
            })
            .collect(),
    )
}

/// The edited program for the incremental measurement: one function body
/// grows by a duplicated statement (the same edit the engine's dirty-cone
/// test uses).
fn one_function_edit(program: &Program) -> Program {
    let mut edited = program.clone();
    let func = edited
        .function_mut("watchdog_tick")
        .expect("corpus has watchdog_tick");
    let body = func.body.as_mut().expect("defined");
    let extra = body.stmts.first().cloned().expect("non-empty body");
    body.stmts.insert(0, extra);
    edited
}

fn bench_ablation(c: &mut Criterion) {
    let scale = Scale::paper();
    println!("\n==== E6: points-to precision ablation ====");
    println!(
        "{:<16} {:>9} {:>16} {:>13}",
        "variant", "findings", "false positives", "mean fanout"
    );
    for row in pointsto_ablation(&scale) {
        println!(
            "{:<16} {:>9} {:>16} {:>13.2}",
            row.sensitivity, row.findings, row.false_positives, row.mean_indirect_fanout
        );
    }
    println!();

    // ---- Solver scaling: naive vs worklist, cold vs incremental. --------
    // `large` is the largest configuration this bench uses: the paper
    // corpus plus four 400-deep reverse-ordered pointer-handoff chains —
    // the adversarial case for the naive solver (one full rescan round per
    // chain link) and the representative case for deep kernel pointer
    // plumbing.
    let mut large_config = KernelConfig::paper();
    large_config.chains = 4;
    large_config.chain_depth = 400;
    let sweep = [
        ("paper", KernelConfig::paper(), 3usize),
        ("large", large_config, 1usize),
    ];

    let mut summary = ivy_bench::summary::Summary::new("table6_pointsto_solver");
    let mut cfg = Map::new();
    cfg.insert("kernels".into(), Value::from("paper,large"));
    cfg.insert(
        "sensitivities".into(),
        Value::from("steensgaard,andersen,andersen_field"),
    );
    summary.config(Value::Object(cfg));
    println!("==== E6b: solver scaling (naive vs worklist, cold vs incremental) ====");
    println!(
        "{:<8} {:<16} {:>12} {:>12} {:>9} {:>12} {:>9} {:>9}",
        "kernel",
        "variant",
        "naive (s)",
        "worklist (s)",
        "speedup",
        "incr (s)",
        "vs cold",
        "vs naive"
    );
    for (name, config, naive_samples) in &sweep {
        let build = KernelBuild::generate(config);
        let edited = one_function_edit(&build.program);
        for s in SENSITIVITIES {
            let naive_cold = time_runs(
                || {
                    analyze_naive(&build.program, s);
                },
                *naive_samples,
            );
            let worklist_cold = time_runs(
                || {
                    analyze(&build.program, s);
                },
                5,
            );
            // Incremental: prime a fresh cache with the base program, then
            // measure the first re-solve of the one-function edit (so every
            // sample sees exactly one dirty batch, never a fully-warm
            // replay).
            let incremental = median_secs(
                (0..5)
                    .map(|_| {
                        let cache = ConstraintCache::new();
                        analyze_incremental(&build.program, s, &cache);
                        let start = Instant::now();
                        analyze_incremental(&edited, s, &cache);
                        start.elapsed().as_secs_f64()
                    })
                    .collect(),
            );
            let reference = analyze(&build.program, s);
            println!(
                "{:<8} {:<16} {:>12.4} {:>12.4} {:>8.1}x {:>12.5} {:>8.1}x {:>8.1}x",
                name,
                s.name(),
                naive_cold,
                worklist_cold,
                naive_cold / worklist_cold.max(1e-9),
                incremental,
                worklist_cold / incremental.max(1e-9),
                naive_cold / incremental.max(1e-9),
            );
            let mut row = Map::new();
            row.insert("kernel".into(), Value::from(*name));
            row.insert("sensitivity".into(), Value::from(s.name()));
            row.insert(
                "functions".into(),
                Value::from(build.program.functions.len()),
            );
            row.insert(
                "initial_constraints".into(),
                Value::from(reference.initial_constraints),
            );
            row.insert(
                "total_constraints".into(),
                Value::from(reference.constraint_count),
            );
            row.insert("naive_cold_seconds".into(), Value::from(naive_cold));
            row.insert("worklist_cold_seconds".into(), Value::from(worklist_cold));
            row.insert(
                "cold_speedup".into(),
                Value::from(naive_cold / worklist_cold.max(1e-9)),
            );
            row.insert("incremental_seconds".into(), Value::from(incremental));
            row.insert(
                "incremental_speedup_vs_cold".into(),
                Value::from(worklist_cold / incremental.max(1e-9)),
            );
            row.insert(
                "incremental_speedup_vs_naive".into(),
                Value::from(naive_cold / incremental.max(1e-9)),
            );
            summary.push_row(row);
            if *name == "large" && s == Sensitivity::AndersenField {
                summary.headline("large_field_worklist_cold_seconds", worklist_cold);
                summary.headline(
                    "large_field_cold_speedup",
                    naive_cold / worklist_cold.max(1e-9),
                );
                summary.headline(
                    "large_field_incremental_speedup_vs_cold",
                    worklist_cold / incremental.max(1e-9),
                );
            }
        }
    }
    summary.emit();

    // Criterion measurements on the paper configuration.
    let build = KernelBuild::generate(&scale.kernel);
    let mut group = c.benchmark_group("pointsto");
    group.sample_size(10);
    for s in SENSITIVITIES {
        group.bench_function(format!("worklist/{}", s.name()), |b| {
            b.iter(|| analyze(&build.program, s))
        });
    }
    let cache = ConstraintCache::new();
    analyze_incremental(&build.program, Sensitivity::AndersenField, &cache);
    group.bench_function("incremental-warm/andersen+field", |b| {
        b.iter(|| analyze_incremental(&build.program, Sensitivity::AndersenField, &cache))
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
