//! Bench for E6: points-to precision ablation (Steensgaard vs Andersen vs
//! field-sensitive Andersen), the paper's "field- and context-sensitive
//! analysis would improve the results" remark quantified.

use criterion::{criterion_group, criterion_main, Criterion};
use ivy_analysis::pointsto::{analyze, Sensitivity};
use ivy_core::experiments::{pointsto_ablation, Scale};
use ivy_kernelgen::KernelBuild;

fn bench_ablation(c: &mut Criterion) {
    let scale = Scale::paper();
    println!("\n==== E6: points-to precision ablation ====");
    println!(
        "{:<16} {:>9} {:>16} {:>13}",
        "variant", "findings", "false positives", "mean fanout"
    );
    for row in pointsto_ablation(&scale) {
        println!(
            "{:<16} {:>9} {:>16} {:>13.2}",
            row.sensitivity, row.findings, row.false_positives, row.mean_indirect_fanout
        );
    }
    println!();

    let build = KernelBuild::generate(&scale.kernel);
    let mut group = c.benchmark_group("pointsto");
    group.sample_size(10);
    for s in [
        Sensitivity::Steensgaard,
        Sensitivity::Andersen,
        Sensitivity::AndersenField,
    ] {
        group.bench_function(s.name(), |b| b.iter(|| analyze(&build.program, s)));
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
