//! Bench for the resident analysis daemon: request latency and throughput
//! over the Unix-socket protocol, cold vs warm, and the cost of an
//! edit round-trip with dependency-driven invalidation — the serving-layer
//! numbers the batch benches cannot see (framing, socket hops, resident
//! state).

use criterion::{criterion_group, criterion_main, Criterion};
use ivy_cmir::pretty::pretty_program;
use ivy_daemon::{Client, Daemon, DaemonConfig};
use ivy_kernelgen::{KernelBuild, KernelConfig};
use serde_json::{Map, Value};
use std::time::Instant;

const WARM_REQUESTS: usize = 24;

fn percentile(mut samples: Vec<f64>, p: f64) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[((samples.len() - 1) as f64 * p) as usize]
}

fn bench_daemon(c: &mut Criterion) {
    let sweep = [
        ("small", KernelConfig::small()),
        ("paper", KernelConfig::paper()),
    ];

    let mut summary = ivy_bench::summary::Summary::new("table9_daemon");
    let mut cfg = Map::new();
    cfg.insert("kernels".into(), Value::from("small,paper"));
    cfg.insert("warm_requests".into(), Value::from(WARM_REQUESTS));
    summary.config(Value::Object(cfg));
    println!("\n==== Table 9: daemon serving (cold vs warm vs edit) ====");
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "kernel", "cold (s)", "p50 (s)", "p95 (s)", "req/s", "edit rt (s)", "retention"
    );
    for (name, config) in &sweep {
        let source = pretty_program(&KernelBuild::generate(config).program);
        let edited = source.replacen("watchdog_ticks + 1", "watchdog_ticks + 2", 1);
        let socket = std::env::temp_dir().join(format!(
            "ivy-bench-daemon-{name}-{}.sock",
            std::process::id()
        ));
        let handle = Daemon::spawn(DaemonConfig::new(&socket)).expect("daemon spawns");
        let mut client = Client::connect(handle.socket()).expect("client connects");

        // Cold: the first request pays the whole solve.
        let start = Instant::now();
        client.analyze(&source).expect("cold analyze");
        let cold = start.elapsed().as_secs_f64();

        // Warm: repeat requests are served from resident state. Latency is
        // per-request wall time including framing and the socket hop.
        let mut latencies = Vec::with_capacity(WARM_REQUESTS);
        let warm_wall = Instant::now();
        let mut warm_stats = None;
        for _ in 0..WARM_REQUESTS {
            let start = Instant::now();
            warm_stats = Some(client.analyze(&source).expect("warm analyze").stats);
            latencies.push(start.elapsed().as_secs_f64());
        }
        let requests_per_sec = WARM_REQUESTS as f64 / warm_wall.elapsed().as_secs_f64();
        let p50 = percentile(latencies.clone(), 0.50);
        let p95 = percentile(latencies, 0.95);
        let warm_stats = warm_stats.expect("ran");

        // Edit round-trip: notify_edit + warm re-analyze of the edited
        // program (the editor-loop cost the daemon exists to shrink).
        let start = Instant::now();
        let edit = client.notify_edit(&edited).expect("notify_edit");
        client.analyze(&edited).expect("post-edit analyze");
        let edit_round_trip = start.elapsed().as_secs_f64();

        println!(
            "{:<8} {:>10.4} {:>10.4} {:>10.4} {:>10.1} {:>12.4} {:>11.1}%",
            name,
            cold,
            p50,
            p95,
            requests_per_sec,
            edit_round_trip,
            edit.invalidation.retention_rate() * 100.0
        );
        let mut row = Map::new();
        row.insert("kernel".into(), Value::from(*name));
        row.insert("cold_seconds".into(), Value::from(cold));
        row.insert("warm_p50_seconds".into(), Value::from(p50));
        row.insert("warm_p95_seconds".into(), Value::from(p95));
        row.insert("requests_per_sec".into(), Value::from(requests_per_sec));
        row.insert("warm_hit_rate".into(), Value::from(warm_stats.hit_rate()));
        row.insert(
            "edit_round_trip_seconds".into(),
            Value::from(edit_round_trip),
        );
        row.insert(
            "edit_invalidated".into(),
            Value::from(edit.invalidation.invalidated),
        );
        row.insert(
            "edit_retained".into(),
            Value::from(edit.invalidation.retained),
        );
        row.insert(
            "edit_retention_rate".into(),
            Value::from(edit.invalidation.retention_rate()),
        );
        summary.push_row(row);
        if *name == "paper" {
            summary.headline("paper_cold_seconds", cold);
            summary.headline("paper_warm_p50_seconds", p50);
            summary.headline("paper_requests_per_sec", requests_per_sec);
            summary.headline(
                "paper_edit_retention_rate",
                edit.invalidation.retention_rate(),
            );
        }

        client.shutdown().expect("shutdown");
        handle.join();
    }

    summary.emit();

    // Criterion measurement on the representative configuration: one warm
    // daemon round-trip, socket included.
    let source = pretty_program(&KernelBuild::generate(&KernelConfig::small()).program);
    let socket =
        std::env::temp_dir().join(format!("ivy-bench-daemon-c-{}.sock", std::process::id()));
    let handle = Daemon::spawn(DaemonConfig::new(&socket)).expect("daemon spawns");
    let mut client = Client::connect(handle.socket()).expect("client connects");
    client.analyze(&source).expect("prime");
    let mut group = c.benchmark_group("daemon");
    group.sample_size(10);
    group.bench_function("warm_round_trip", |b| {
        b.iter(|| client.analyze(&source).expect("warm analyze"))
    });
    group.finish();
    client.shutdown().expect("shutdown");
    handle.join();
}

criterion_group!(benches, bench_daemon);
criterion_main!(benches);
