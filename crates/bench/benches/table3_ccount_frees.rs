//! Bench for E3: CCount free verification across boot and light use.

use criterion::{criterion_group, criterion_main, Criterion};
use ivy_core::experiments::run_workload;
use ivy_core::experiments::{ccount_frees, fix_plan_for, Scale};
use ivy_kernelgen::{boot_workload, KernelBuild};
use ivy_vm::VmConfig;

fn bench_frees(c: &mut Criterion) {
    let scale = Scale::paper();
    let r = ccount_frees(&scale);
    println!("\n==== E3: CCount free verification (boot + light use) ====");
    println!(
        "unfixed: {:>6} frees, {:>3} bad ({:.2}% good)",
        r.unfixed.total(),
        r.unfixed.bad,
        r.unfixed.good_ratio() * 100.0
    );
    println!(
        "fixed:   {:>6} frees, {:>3} bad ({:.2}% good)",
        r.fixed.total(),
        r.fixed.bad,
        r.fixed.good_ratio() * 100.0
    );
    println!(
        "fix plan: {} pointer-nulling fixes + {} delayed-free scopes\n",
        r.null_fixes, r.delayed_free_fixes
    );

    let build = KernelBuild::generate(&scale.kernel);
    let fixed = fix_plan_for(&build).apply(&build.program);
    let boot = boot_workload(scale.kernel.boot_cycles);
    let mut group = c.benchmark_group("ccount_boot");
    group.sample_size(10);
    group.bench_function("boot/baseline", |b| {
        b.iter(|| run_workload(&fixed, VmConfig::baseline(), &boot))
    });
    group.bench_function("boot/ccounted", |b| {
        b.iter(|| run_workload(&fixed, VmConfig::ccounted(false), &boot))
    });
    group.finish();
}

criterion_group!(benches, bench_frees);
criterion_main!(benches);
