//! Bench for E2: annotation burden and Deputy conversion throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use ivy_core::experiments::{deputy_burden, Scale};
use ivy_deputy::Deputy;
use ivy_kernelgen::KernelBuild;

fn bench_burden(c: &mut Criterion) {
    let scale = Scale::paper();
    let r = deputy_burden(&scale);
    println!("\n==== E2: annotation burden ====");
    println!("total lines:     {}", r.burden.total_lines);
    println!(
        "annotated lines: {} ({:.2}%)",
        r.burden.annotated_lines,
        r.burden.annotated_fraction() * 100.0
    );
    println!(
        "trusted lines:   {} ({:.2}%)",
        r.burden.trusted_lines,
        r.burden.trusted_fraction() * 100.0
    );
    println!(
        "checks inserted: {} ({} optimised away, {:.1}% static)\n",
        r.conversion.total_runtime_checks(),
        r.conversion.checks_optimized_away,
        r.conversion.static_ratio() * 100.0
    );

    let build = KernelBuild::generate(&scale.kernel);
    let mut group = c.benchmark_group("deputy");
    group.sample_size(10);
    group.bench_function("convert_whole_kernel", |b| {
        b.iter(|| Deputy::new().convert(&build.program))
    });
    group.bench_function("burden_stats", |b| {
        b.iter(|| ivy_deputy::stats::burden(&build.program))
    });
    group.finish();
}

criterion_group!(benches, bench_burden);
criterion_main!(benches);
