//! Bench for E5: the BlockStop whole-kernel audit.

use criterion::{criterion_group, criterion_main, Criterion};
use ivy_blockstop::BlockStop;
use ivy_core::experiments::{blockstop_results, Scale};
use ivy_kernelgen::KernelBuild;

fn bench_blockstop(c: &mut Criterion) {
    let scale = Scale::paper();
    let r = blockstop_results(&scale);
    println!("\n==== E5: BlockStop (paper: 2 bugs, 15 run-time checks for false positives) ====");
    println!("findings (no assertions):      {}", r.findings_before);
    println!("real bugs covered:             {} of 2", r.real_bugs_found);
    println!("false positives:               {}", r.false_positives);
    println!("run-time assertions inserted:  {}", r.asserts_inserted);
    println!("findings after assertions:     {}", r.findings_after);
    println!(
        "assert failures during boot:   {}\n",
        r.runtime_assert_failures
    );

    let build = KernelBuild::generate(&scale.kernel);
    let mut group = c.benchmark_group("blockstop");
    group.sample_size(10);
    group.bench_function("whole_kernel_analysis", |b| {
        b.iter(|| BlockStop::new().analyze(&build.program))
    });
    group.finish();
}

criterion_group!(benches, bench_blockstop);
criterion_main!(benches);
