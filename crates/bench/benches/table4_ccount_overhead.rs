//! Bench for E4: CCount fork and module-loading overheads, UP vs SMP.

use criterion::{criterion_group, criterion_main, Criterion};
use ivy_core::experiments::{ccount_overhead, run_workload, Scale};
use ivy_kernelgen::{fork_workload, module_load_workload, KernelBuild};
use ivy_vm::VmConfig;

fn bench_overhead(c: &mut Criterion) {
    let scale = Scale::paper();
    let o = ccount_overhead(&scale);
    println!("\n==== E4: CCount overhead (paper: fork 19%/63%, module 8%/12%) ====");
    print!("{}", o.render());
    println!();

    let build = KernelBuild::generate(&scale.kernel);
    let fork = fork_workload().scaled(0.5);
    let module = module_load_workload().scaled(0.5);
    let mut group = c.benchmark_group("ccount_overhead");
    group.sample_size(10);
    group.bench_function("fork/baseline", |b| {
        b.iter(|| run_workload(&build.program, VmConfig::baseline(), &fork))
    });
    group.bench_function("fork/ccount_up", |b| {
        b.iter(|| run_workload(&build.program, VmConfig::ccounted(false), &fork))
    });
    group.bench_function("fork/ccount_smp", |b| {
        b.iter(|| run_workload(&build.program, VmConfig::ccounted(true), &fork))
    });
    group.bench_function("module/ccount_smp", |b| {
        b.iter(|| run_workload(&build.program, VmConfig::ccounted(true), &module))
    });
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
