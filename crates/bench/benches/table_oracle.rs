//! Bench for the dynamic soundness oracle: traced-execution differential
//! validation of every static analysis, across the full kernels and a
//! 100-program sub-sampled fleet, with the per-checker soundness/precision
//! numbers the paper never had.
//!
//! The JSON-SUMMARY line is the trajectory point committed as
//! `BENCH_oracle.json`; CI gates on `"violations_total":0`.

use criterion::{criterion_group, criterion_main, Criterion};
use ivy_cmir::ast::Program;
use ivy_kernelgen::subsample::Mix;
use ivy_kernelgen::{subsample_program, KernelBuild, KernelConfig};
use ivy_oracle::{EntrySpec, Oracle, OracleConfig, OracleReport};
use serde_json::{Map, Value};
use std::time::Instant;

/// Sub-sampled fleet size (together with the two full kernels this keeps
/// the committed trajectory point above the 100-program acceptance floor).
const FLEET: u64 = 100;

/// One fleet case: drop/strip percentages derived from the seed, then the
/// shared sub-sampler (the scheme of `tests/differential_soundness.rs`).
fn subsample(base: &Program, seed: u64) -> Program {
    let mut rng = Mix(seed);
    let (drop_pct, strip_pct) = (rng.next_u64() % 40, rng.next_u64() % 35);
    subsample_program(base, rng.next_u64(), drop_pct, strip_pct)
}

fn entries_for(program: &Program) -> Vec<EntrySpec> {
    EntrySpec::defaults_for(program, 6)
}

fn report_row(name: &str, programs: u64, seconds: f64, report: &OracleReport) -> Value {
    let mut row = Map::new();
    row.insert("config".into(), Value::from(name));
    row.insert("programs".into(), Value::from(programs));
    row.insert("seconds".into(), Value::from(seconds));
    row.insert("entries_run".into(), Value::from(report.entries_run as u64));
    row.insert("traps".into(), Value::from(report.traps as u64));
    row.insert(
        "facts_checked".into(),
        Value::from(report.facts.total() as u64),
    );
    row.insert(
        "ptr_facts".into(),
        Value::from(report.facts.ptr_facts as u64),
    );
    row.insert(
        "indirect_facts".into(),
        Value::from(report.facts.indirect_facts as u64),
    );
    row.insert(
        "blocking_facts".into(),
        Value::from(report.facts.blocking_facts as u64),
    );
    row.insert(
        "bad_free_facts".into(),
        Value::from(report.facts.bad_free_facts as u64),
    );
    row.insert("unresolved".into(), Value::from(report.facts.unresolved));
    row.insert(
        "violations".into(),
        Value::from(report.violations.len() as u64),
    );
    let mut precision = Map::new();
    for (sens, p) in &report.precision {
        precision.insert(sens.clone(), p.to_value());
    }
    row.insert("precision".into(), Value::Object(precision));
    Value::Object(row)
}

fn bench_oracle(c: &mut Criterion) {
    let oracle = Oracle::with_config(OracleConfig {
        max_steps: 2_000_000,
        ..OracleConfig::default()
    });

    println!("\n==== Oracle: dynamic soundness / precision of every analysis ====");
    println!(
        "{:<12} {:>9} {:>8} {:>8} {:>11} {:>11} {:>13} {:>13}",
        "config", "programs", "facts", "viols", "pts(st)", "pts(an)", "pts(an+f)", "seconds"
    );

    let mut rows: Vec<Value> = Vec::new();
    let mut violations_total = 0u64;
    let mut programs_total = 0u64;

    // The two full kernels (boot + light use + workload mix each).
    let mut paper_steensgaard_precision = 0.0f64;
    for (name, config) in [
        ("small", KernelConfig::small()),
        ("paper", KernelConfig::paper()),
    ] {
        let build = KernelBuild::generate(&config);
        let start = Instant::now();
        let report = oracle.run(&build.program, &entries_for(&build.program));
        let seconds = start.elapsed().as_secs_f64();
        print_row(name, 1, &report, seconds);
        if name == "paper" {
            paper_steensgaard_precision = report
                .precision
                .get("steensgaard")
                .map(|p| p.pointsto.rate())
                .unwrap_or(0.0);
        }
        violations_total += report.violations.len() as u64;
        programs_total += 1;
        rows.push(report_row(name, 1, seconds, &report));
    }

    // The sub-sampled fleet: every program a different executable subset.
    let base = KernelBuild::generate(&KernelConfig::small()).program;
    let start = Instant::now();
    let mut fleet = OracleReport::default();
    for seed in 0..FLEET {
        let program = subsample(&base, seed.wrapping_mul(0x9E37_79B9));
        let report = oracle.run(&program, &entries_for(&program));
        fleet.merge(report);
    }
    let seconds = start.elapsed().as_secs_f64();
    print_row("subsampled", FLEET, &fleet, seconds);
    violations_total += fleet.violations.len() as u64;
    programs_total += FLEET;
    rows.push(report_row("subsampled", FLEET, seconds, &fleet));

    let mut summary = ivy_bench::summary::Summary::new("table_oracle");
    let mut cfg = Map::new();
    cfg.insert("fleet".into(), Value::from(FLEET));
    cfg.insert("kernels".into(), Value::from("small,paper,subsampled"));
    summary.config(Value::Object(cfg));
    summary.root_field("programs_total", programs_total);
    summary.root_field("violations_total", violations_total);
    for row in rows {
        if let Value::Object(row) = row {
            summary.push_row(row);
        }
    }
    summary.headline("programs_total", programs_total);
    summary.headline("violations_total", violations_total);
    summary.headline("fleet_seconds", seconds);
    summary.headline(
        "paper_steensgaard_pointsto_precision",
        paper_steensgaard_precision,
    );
    summary.emit();
    // Soundness and precision floors for the solver substrate: every
    // traced fact must be covered at every sensitivity, and the unified
    // (union-find) Steensgaard representation must not collapse the paper
    // kernel's points-to precision below its established floor.
    assert_eq!(
        violations_total, 0,
        "the oracle found dynamic facts missed by a static analysis"
    );
    assert!(
        paper_steensgaard_precision >= 0.011,
        "paper-kernel Steensgaard points-to precision fell below the 0.011 \
         floor, got {paper_steensgaard_precision:.4}"
    );

    // Criterion measurement: one full traced-and-checked oracle pass over
    // the small kernel (execution + three static models + subsumption).
    let build = KernelBuild::generate(&KernelConfig::small());
    let entries = entries_for(&build.program);
    let mut group = c.benchmark_group("oracle");
    group.sample_size(10);
    group.bench_function("small_kernel_full_pass", |b| {
        b.iter(|| {
            let report = oracle.run(&build.program, &entries);
            assert!(report.is_sound());
            report
        })
    });
    group.finish();
}

fn print_row(name: &str, programs: u64, report: &OracleReport, seconds: f64) {
    let rate = |sens: &str| {
        report
            .precision
            .get(sens)
            .map(|p| p.pointsto.rate())
            .unwrap_or(0.0)
    };
    println!(
        "{:<12} {:>9} {:>8} {:>8} {:>11.3} {:>11.3} {:>13.3} {:>13.2}",
        name,
        programs,
        report.facts.total(),
        report.violations.len(),
        rate("steensgaard"),
        rate("andersen"),
        rate("andersen+field"),
        seconds
    );
}

criterion_group!(benches, bench_oracle);
criterion_main!(benches);
