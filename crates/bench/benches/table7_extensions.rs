//! Bench for E7: the §3.1 extension analyses (lock safety, stack bounds,
//! error-code checking) over the whole kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use ivy_core::experiments::{extensions, Scale};
use ivy_core::extensions::{errcheck, lockcheck, stackcheck};
use ivy_kernelgen::KernelBuild;

fn bench_extensions(c: &mut Criterion) {
    let scale = Scale::paper();
    let r = extensions(&scale);
    println!("\n==== E7: extension analyses ====");
    println!(
        "lockcheck:  {} order pairs, {} violations, {} IRQ-context locks, {} runtime checks needed",
        r.locks.order_pairs.len(),
        r.locks.order_violations.len(),
        r.locks.irq_context_locks.len(),
        r.locks.runtime_checks_needed
    );
    let deepest = r.stack.per_entry.values().max().copied().unwrap_or(0);
    println!(
        "stackcheck: {} entry points bounded, deepest {} bytes (budget {}), {} recursive fns",
        r.stack.per_entry.len(),
        deepest,
        r.stack.budget,
        r.stack.recursive.len()
    );
    println!(
        "errcheck:   {} error-returning fns, {} checked call sites, {} unchecked\n",
        r.errors.error_returning.len(),
        r.errors.checked_sites,
        r.errors.unchecked_sites.len()
    );

    let build = KernelBuild::generate(&scale.kernel);
    let mut group = c.benchmark_group("extensions");
    group.sample_size(10);
    group.bench_function("lockcheck", |b| b.iter(|| lockcheck(&build.program)));
    group.bench_function("stackcheck", |b| {
        b.iter(|| stackcheck(&build.program, 8192))
    });
    group.bench_function("errcheck", |b| b.iter(|| errcheck(&build.program)));
    group.finish();
}

criterion_group!(benches, bench_extensions);
criterion_main!(benches);
