//! Bench for E1 / Table 1: regenerates the relative-performance table of the
//! deputized kernel and benchmarks a representative bandwidth and latency
//! workload under baseline vs. deputized execution.

use criterion::{criterion_group, criterion_main, Criterion};
use ivy_core::experiments::{run_workload, table1_hbench, Scale};
use ivy_deputy::Deputy;
use ivy_kernelgen::{hbench_suite, KernelBuild};
use ivy_vm::VmConfig;

fn bench_table1(c: &mut Criterion) {
    let mut scale = Scale::paper();
    scale.workload_factor = 0.5;

    // Regenerate and print the full table once.
    let table = table1_hbench(&scale);
    println!("\n==== Table 1: relative performance of the deputized kernel ====");
    println!("{}", table.render());
    println!("geometric mean: {:.2}\n", table.geomean());

    // Criterion measurements on two representative workloads.
    let build = KernelBuild::generate(&scale.kernel);
    let deputized = Deputy::new().convert(&build.program).program;
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    for name in ["bw_mem_cp", "lat_udp"] {
        let w = hbench_suite()
            .into_iter()
            .find(|w| w.name == name)
            .unwrap()
            .scaled(0.2);
        group.bench_function(format!("{name}/baseline"), |b| {
            b.iter(|| run_workload(&build.program, VmConfig::baseline(), &w))
        });
        group.bench_function(format!("{name}/deputized"), |b| {
            b.iter(|| run_workload(&deputized, VmConfig::deputized(), &w))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
