//! Bench for the analysis engine: throughput at 1/2/4/8 worker threads and
//! warm-vs-cold cache over a `KernelConfig` sweep, with a machine-readable
//! JSON summary for the bench trajectory — plus the telemetry
//! disabled-mode overhead measurement on the warm path.

use criterion::{criterion_group, criterion_main, Criterion};
use ivy_bench::summary::Summary;
use ivy_core::experiments::default_engine;
use ivy_engine::PersistLayer;
use ivy_kernelgen::{KernelBuild, KernelConfig};
use serde_json::{Map, Value};
use std::sync::Arc;
use std::time::Instant;

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn median_secs(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

fn time_runs(mut run: impl FnMut(), samples: usize) -> f64 {
    let times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            run();
            start.elapsed().as_secs_f64()
        })
        .collect();
    median_secs(times)
}

/// Estimated telemetry overhead on a warm analyze with recording
/// *disabled* (the default): events-per-run counted on one fully-enabled
/// warm run, times the measured per-call cost of the disabled gate (one
/// relaxed atomic load), as a fraction of the warm wall time.
fn telemetry_disabled_overhead_pct(
    engine: &ivy_engine::Engine,
    program: &ivy_cmir::ast::Program,
    warm_seconds: f64,
) -> (u64, f64, f64) {
    // Count events a warm run records when everything is on. Each span is
    // one gate check at open; counter sites roughly pair with span sites,
    // so double the span count bounds the disabled-gate checks per run.
    ivy_telemetry::reset();
    ivy_telemetry::enable_all();
    engine.analyze(program);
    let events = 2
        * (ivy_telemetry::spans_snapshot().len() as u64 + ivy_telemetry::dropped_spans())
        + ivy_telemetry::counters_snapshot().len() as u64;
    ivy_telemetry::disable_all();
    ivy_telemetry::reset();

    // Measure the disabled gate itself.
    const CALLS: u64 = 1_000_000;
    let start = Instant::now();
    for _ in 0..CALLS {
        let span = ivy_telemetry::span("bench/gate", "disabled");
        std::hint::black_box(&span);
        ivy_telemetry::counter("ivy_bench_gate_total", 1);
    }
    // Each iteration checked the gate twice (span + counter).
    let gate_ns = start.elapsed().as_nanos() as f64 / (2 * CALLS) as f64;

    let overhead_pct = (events as f64 * gate_ns) / (warm_seconds * 1e9) * 100.0;
    (events, gate_ns, overhead_pct)
}

fn bench_engine_scaling(c: &mut Criterion) {
    let sweep = [
        ("small", KernelConfig::small()),
        ("paper", KernelConfig::paper()),
    ];

    let mut summary = Summary::new("table8_engine_scaling");
    let mut cfg = Map::new();
    cfg.insert("kernels".into(), Value::from("small,paper"));
    cfg.insert("threads".into(), Value::from("1,2,4,8"));
    summary.config(Value::Object(cfg));
    println!("\n==== Table 8: engine scaling (threads x cache temperature) ====");
    println!(
        "{:<8} {:>8} {:>12} {:>12} {:>9} {:>10}",
        "kernel", "threads", "cold (s)", "warm (s)", "speedup", "warm hits"
    );
    for (name, config) in &sweep {
        let build = KernelBuild::generate(config);
        for &threads in &THREAD_SWEEP {
            let cold = time_runs(
                || {
                    default_engine(threads).analyze(&build.program);
                },
                3,
            );
            let engine = default_engine(threads);
            engine.analyze(&build.program); // prime the cache
            let warm_report = engine.analyze(&build.program);
            let warm = time_runs(
                || {
                    engine.analyze(&build.program);
                },
                3,
            );
            println!(
                "{:<8} {:>8} {:>12.4} {:>12.4} {:>8.1}x {:>9.1}%",
                name,
                threads,
                cold,
                warm,
                cold / warm.max(1e-9),
                warm_report.stats.hit_rate() * 100.0
            );
            let mut row = Map::new();
            row.insert("kernel".into(), Value::from(*name));
            row.insert("threads".into(), Value::from(threads));
            row.insert("cold_seconds".into(), Value::from(cold));
            row.insert("warm_seconds".into(), Value::from(warm));
            row.insert(
                "warm_hit_rate".into(),
                Value::from(warm_report.stats.hit_rate()),
            );
            row.insert("functions".into(), Value::from(warm_report.stats.functions));
            row.insert("sccs".into(), Value::from(warm_report.stats.sccs));
            row.insert("levels".into(), Value::from(warm_report.stats.levels));
            summary.push_row(row);
            if *name == "paper" && threads == 4 {
                summary.headline("paper_cold_seconds_t4", cold);
                summary.headline("paper_warm_seconds_t4", warm);
                summary.headline("paper_warm_speedup_t4", cold / warm.max(1e-9));
            }
            // Telemetry disabled-mode overhead on the warm path, measured
            // on the small kernel's 4-thread warm engine (the acceptance
            // gate: must stay well under 2%).
            if *name == "small" && threads == 4 {
                let (events, gate_ns, overhead_pct) =
                    telemetry_disabled_overhead_pct(&engine, &build.program, warm);
                println!(
                    "telemetry disabled-mode overhead: {events} events x {gate_ns:.2} ns gate \
                     / {warm:.4} s warm = {overhead_pct:.4}%"
                );
                let mut row = Map::new();
                row.insert("kernel".into(), Value::from(*name));
                row.insert("mode".into(), Value::from("telemetry_disabled_overhead"));
                row.insert("telemetry_events_per_warm_run".into(), Value::from(events));
                row.insert("disabled_gate_ns".into(), Value::from(gate_ns));
                row.insert("warm_seconds".into(), Value::from(warm));
                row.insert("overhead_pct".into(), Value::from(overhead_pct));
                summary.push_row(row);
                summary.headline("telemetry_disabled_overhead_pct", overhead_pct);
                assert!(
                    overhead_pct < 2.0,
                    "telemetry disabled-mode overhead {overhead_pct:.4}% exceeds the 2% budget"
                );
            }
        }
    }
    // Warm-*process* rows: a fresh engine with empty in-memory caches,
    // pointed at a persist directory a previous "process" populated. This
    // is the cross-process warm start (CI runs, fleet workers): the warm
    // engine reloads summaries, checker reports, and per-function
    // diagnostics from disk and never solves points-to.
    println!("\n---- warm process (persistent cross-process cache) ----");
    println!(
        "{:<8} {:>12} {:>14} {:>9} {:>13}",
        "kernel", "cold (s)", "warm-proc (s)", "speedup", "persist hits"
    );
    for (name, config) in &sweep {
        let build = KernelBuild::generate(config);
        let dir =
            std::env::temp_dir().join(format!("ivy-bench-persist-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // "Process A" fills the cache (and is itself the cold timing).
        let cold_start = Instant::now();
        default_engine(4)
            .with_persist(Arc::new(PersistLayer::open(&dir).expect("persist dir")))
            .analyze(&build.program);
        let cold = cold_start.elapsed().as_secs_f64();
        // "Process B equivalents": fresh engine + freshly opened layer.
        let mut last_stats = None;
        let warm = time_runs(
            || {
                let engine = default_engine(4)
                    .with_persist(Arc::new(PersistLayer::open(&dir).expect("persist dir")));
                last_stats = Some(engine.analyze(&build.program).stats);
            },
            3,
        );
        let stats = last_stats.expect("ran");
        println!(
            "{:<8} {:>12.4} {:>14.4} {:>8.1}x {:>12.1}%",
            name,
            cold,
            warm,
            cold / warm.max(1e-9),
            stats.persist_hit_rate() * 100.0
        );
        let mut row = Map::new();
        row.insert("kernel".into(), Value::from(*name));
        row.insert("mode".into(), Value::from("warm_process"));
        row.insert("cold_seconds".into(), Value::from(cold));
        row.insert("warm_process_seconds".into(), Value::from(warm));
        row.insert(
            "persist_hit_rate".into(),
            Value::from(stats.persist_hit_rate()),
        );
        row.insert(
            "pointsto_constraints_warm".into(),
            Value::from(stats.pointsto_constraints),
        );
        summary.push_row(row);
        if *name == "paper" {
            summary.headline("paper_warm_process_speedup", cold / warm.max(1e-9));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    summary.emit();

    // Criterion measurements on the representative configurations.
    let build = KernelBuild::generate(&KernelConfig::small());
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    for &threads in &THREAD_SWEEP {
        group.bench_function(format!("cold/t{threads}"), |b| {
            b.iter(|| default_engine(threads).analyze(&build.program))
        });
    }
    let engine = default_engine(4);
    engine.analyze(&build.program);
    group.bench_function("warm/t4", |b| b.iter(|| engine.analyze(&build.program)));
    group.finish();
}

criterion_group!(benches, bench_engine_scaling);
criterion_main!(benches);
