//! The bench trajectory: an append-only JSONL history of headline bench
//! numbers, one record per bench run, committed as `BENCH_TRAJECTORY.jsonl`
//! at the repository root.
//!
//! Each line is one record:
//!
//! ```text
//! {"schema":2,"bench":"table8_engine_scaling","git_rev":"2df8929",
//!  "recorded_at":"2026-08-08T12:00:00Z",
//!  "available_parallelism":8,"ivy_threads":1,"config":{...},
//!  "headline":{"paper_cold_seconds":1.92,"paper_warm_speedup":48.1}}
//! ```
//!
//! `schema` gates evolution, `git_rev` ties the numbers to a commit,
//! `headline` holds only numbers (so the dashboard can render any bench
//! without bench-specific code). Schema 2 added the host context every
//! perf comparison needs: `available_parallelism` (the machine) and
//! `ivy_threads` (the solver thread setting, from `IVY_THREADS`) — a
//! trajectory mixing 2-core and 64-core records is otherwise
//! uninterpretable. The validator accepts schema 1 (without the host
//! fields) and schema 2; the writer only produces 2. [`validate_file`]
//! enforces exactly that shape and is what CI runs on every push;
//! [`render_report`] turns the history into the per-PR markdown dashboard
//! (`trajectory report`).

use serde_json::{Map, Value};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Trajectory schema version this writer produces. The validator also
/// accepts [`MIN_SCHEMA_VERSION`] records (pre-host-context history).
pub const SCHEMA_VERSION: u64 = 2;

/// Oldest schema version `validate_record` still accepts.
pub const MIN_SCHEMA_VERSION: u64 = 1;

/// One validated trajectory record.
#[derive(Debug, Clone)]
pub struct Record {
    /// Bench name (the `JSON-SUMMARY` `bench` field).
    pub bench: String,
    /// Short git revision the numbers were recorded at.
    pub git_rev: String,
    /// UTC timestamp, RFC-3339.
    pub recorded_at: String,
    /// Optional bench configuration.
    pub config: Option<Value>,
    /// Headline metric name → number.
    pub headline: Vec<(String, f64)>,
    /// Hardware threads the recording host had (schema ≥2; `None` on
    /// schema-1 history).
    pub available_parallelism: Option<u64>,
    /// Effective `IVY_THREADS` setting at recording time (schema ≥2).
    pub ivy_threads: Option<u64>,
}

/// The trajectory file path: `$IVY_TRAJECTORY` when set, otherwise
/// `BENCH_TRAJECTORY.jsonl` at the repository root (resolved relative to
/// this crate, so benches find it regardless of their working directory).
pub fn path() -> PathBuf {
    if let Ok(p) = std::env::var("IVY_TRAJECTORY") {
        return PathBuf::from(p);
    }
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_TRAJECTORY.jsonl")
}

/// The short git revision of the working tree, or `"unknown"` outside a
/// git checkout (records stay valid either way).
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Current UTC time as RFC-3339 (`2026-08-08T12:00:00Z`), computed from
/// the Unix epoch without a calendar dependency.
pub fn now_rfc3339() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = secs / 86_400;
    let (h, m, s) = ((secs / 3600) % 24, (secs / 60) % 60, secs % 60);
    // Civil-from-days (Howard Hinnant's algorithm), valid for the Unix era.
    let z = days as i64 + 719_468;
    let era = z / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = if month <= 2 { y + 1 } else { y };
    format!("{year:04}-{month:02}-{d:02}T{h:02}:{m:02}:{s:02}Z")
}

/// Appends one record to the trajectory file. The record is validated
/// before writing — this writer can never produce a line `validate_file`
/// would reject.
pub fn append(bench: &str, config: Option<Value>, headline: Map) -> io::Result<PathBuf> {
    let mut record = Map::new();
    record.insert("schema".into(), Value::from(SCHEMA_VERSION));
    record.insert("bench".into(), Value::from(bench));
    record.insert("git_rev".into(), Value::from(git_rev().as_str()));
    record.insert("recorded_at".into(), Value::from(now_rfc3339().as_str()));
    record.insert(
        "available_parallelism".into(),
        Value::from(
            std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(1),
        ),
    );
    record.insert("ivy_threads".into(), Value::from(ivy_threads()));
    if let Some(config) = config {
        record.insert("config".into(), config);
    }
    record.insert("headline".into(), Value::Object(headline));
    let value = Value::Object(record);
    let line = serde_json::to_string(&value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))?;
    validate_record(&value).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let path = path();
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)?;
    writeln!(file, "{line}")?;
    Ok(path)
}

/// The effective `IVY_THREADS` setting: parsed from the environment the
/// same way the solver's `SolveOptions::from_env` does (default 1).
pub fn ivy_threads() -> u64 {
    std::env::var("IVY_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .filter(|&t| t >= 1)
        .unwrap_or(1)
}

fn field<'v>(v: &'v Value, key: &str) -> Result<&'v Value, String> {
    v.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

/// Validates one parsed record against the schema.
pub fn validate_record(v: &Value) -> Result<Record, String> {
    if v.as_object().is_none() {
        return Err("record is not an object".into());
    }
    let schema = field(v, "schema")?
        .as_u64()
        .ok_or("schema is not an integer")?;
    if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&schema) {
        return Err(format!("unsupported schema version {schema}"));
    }
    // Schema 2 added the host context; schema-1 history legitimately
    // lacks it, but a schema-2 record without it is malformed.
    let host_count = |key: &str| -> Result<Option<u64>, String> {
        match v.get(key) {
            Some(value) => value
                .as_u64()
                .filter(|&n| n >= 1)
                .map(Some)
                .ok_or_else(|| format!("{key} is not a positive integer")),
            None if schema >= 2 => Err(format!("schema {schema} record is missing {key}")),
            None => Ok(None),
        }
    };
    let available_parallelism = host_count("available_parallelism")?;
    let ivy_threads = host_count("ivy_threads")?;
    let text = |key: &str| -> Result<String, String> {
        field(v, key)?
            .as_str()
            .map(String::from)
            .ok_or_else(|| format!("{key} is not a string"))
    };
    let bench = text("bench")?;
    if bench.is_empty() {
        return Err("bench is empty".into());
    }
    let config = v.get("config").cloned();
    if let Some(c) = &config {
        if c.as_object().is_none() {
            return Err("config is not an object".into());
        }
    }
    let headline_obj = field(v, "headline")?;
    let mut headline = Vec::new();
    match headline_obj {
        Value::Object(m) => {
            for (key, value) in m.iter() {
                let n = value
                    .as_f64()
                    .ok_or_else(|| format!("headline {key:?} is not a number"))?;
                if !n.is_finite() {
                    return Err(format!("headline {key:?} is not finite"));
                }
                headline.push((key.clone(), n));
            }
        }
        _ => return Err("headline is not an object".into()),
    }
    if headline.is_empty() {
        return Err("headline is empty".into());
    }
    Ok(Record {
        bench,
        git_rev: text("git_rev")?,
        recorded_at: text("recorded_at")?,
        config,
        headline,
        available_parallelism,
        ivy_threads,
    })
}

/// Validates the whole trajectory file; returns its records in order. A
/// missing file is an empty (valid) trajectory.
pub fn validate_file(path: &Path) -> Result<Vec<Record>, String> {
    let content = match std::fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("read {}: {e}", path.display())),
    };
    let mut records = Vec::new();
    for (i, line) in content.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value =
            serde_json::from_str(line).map_err(|e| format!("line {}: not JSON: {e:?}", i + 1))?;
        records.push(validate_record(&value).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(records)
}

fn fmt_number(n: f64) -> String {
    if n == n.trunc() && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else if n.abs() >= 100.0 {
        format!("{n:.1}")
    } else {
        format!("{n:.4}")
    }
}

/// Renders the trajectory as the per-PR markdown dashboard: one section
/// per bench, one row per record, one column per headline metric (the
/// union across that bench's records — absent metrics render as `—`).
pub fn render_report(records: &[Record]) -> String {
    let mut out = String::from("# Bench trajectory\n");
    let mut benches: Vec<&str> = records.iter().map(|r| r.bench.as_str()).collect();
    benches.sort_unstable();
    benches.dedup();
    if benches.is_empty() {
        out.push_str("\nNo records yet.\n");
        return out;
    }
    for bench in benches {
        let rows: Vec<&Record> = records.iter().filter(|r| r.bench == bench).collect();
        let mut metrics: Vec<&str> = rows
            .iter()
            .flat_map(|r| r.headline.iter().map(|(k, _)| k.as_str()))
            .collect();
        metrics.sort_unstable();
        metrics.dedup();
        out.push_str(&format!("\n## {bench}\n\n"));
        out.push_str("| recorded at | rev |");
        for m in &metrics {
            out.push_str(&format!(" {m} |"));
        }
        out.push_str("\n|---|---|");
        out.push_str(&"---|".repeat(metrics.len()));
        out.push('\n');
        for r in rows {
            out.push_str(&format!("| {} | `{}` |", r.recorded_at, r.git_rev));
            for m in &metrics {
                let cell = r
                    .headline
                    .iter()
                    .find(|(k, _)| k == m)
                    .map(|(_, v)| fmt_number(*v))
                    .unwrap_or_else(|| "—".to_string());
                out.push_str(&format!(" {cell} |"));
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid_map() -> Map {
        let text = r#"{"schema":1,"bench":"table8_engine_scaling","git_rev":"abc1234",
                "recorded_at":"2026-08-08T00:00:00Z",
                "config":{"kernel":"paper"},
                "headline":{"cold_seconds":1.5,"warm_speedup":40.0}}"#;
        match serde_json::from_str(text).unwrap() {
            Value::Object(m) => m,
            _ => unreachable!(),
        }
    }

    #[test]
    fn valid_records_pass_and_decode() {
        // Schema-1 history (no host context) stays valid.
        let r = validate_record(&Value::Object(valid_map())).unwrap();
        assert_eq!(r.bench, "table8_engine_scaling");
        assert_eq!(r.headline.len(), 2);
        assert_eq!(r.available_parallelism, None);
        assert_eq!(r.ivy_threads, None);
    }

    #[test]
    fn schema_two_requires_and_decodes_host_context() {
        let mut m = valid_map();
        m.insert("schema".into(), Value::from(2u64));
        // A schema-2 record without the host fields is malformed...
        let err = validate_record(&Value::Object(m.clone())).unwrap_err();
        assert!(err.contains("available_parallelism"), "{err}");
        // ...and with them it decodes.
        m.insert("available_parallelism".into(), Value::from(8u64));
        m.insert("ivy_threads".into(), Value::from(4u64));
        let r = validate_record(&Value::Object(m.clone())).unwrap();
        assert_eq!(r.available_parallelism, Some(8));
        assert_eq!(r.ivy_threads, Some(4));
        // Zero threads is nonsense on any schema.
        m.insert("ivy_threads".into(), Value::from(0u64));
        assert!(validate_record(&Value::Object(m)).is_err());
    }

    #[test]
    fn schema_violations_are_rejected_with_reasons() {
        let mut wrong_schema = valid_map();
        wrong_schema.insert("schema".into(), Value::from(99u64));
        assert!(validate_record(&Value::Object(wrong_schema))
            .unwrap_err()
            .contains("schema"));

        let mut no_headline = valid_map();
        no_headline.remove("headline");
        assert!(validate_record(&Value::Object(no_headline))
            .unwrap_err()
            .contains("headline"));

        let mut bad_metric = valid_map();
        bad_metric.insert(
            "headline".into(),
            serde_json::from_str(r#"{"cold":"fast"}"#).unwrap(),
        );
        assert!(validate_record(&Value::Object(bad_metric)).is_err());
    }

    #[test]
    fn append_writes_lines_validate_file_accepts() {
        let dir = std::env::temp_dir().join(format!("ivy-trajectory-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let file = dir.join("t.jsonl");
        let _ = std::fs::remove_file(&file);
        // Route this test's appends to the temp file.
        std::env::set_var("IVY_TRAJECTORY", &file);
        let mut headline = Map::new();
        headline.insert("cold_seconds".into(), Value::from(1.25));
        append("table_test", None, headline.clone()).unwrap();
        append("table_test", None, headline).unwrap();
        std::env::remove_var("IVY_TRAJECTORY");
        let records = validate_file(&file).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].bench, "table_test");
        // The writer stamps host context on every record it produces.
        assert!(records[0].available_parallelism.is_some());
        assert!(records[0].ivy_threads >= Some(1));
        let report = render_report(&records);
        assert!(report.contains("## table_test"));
        assert!(report.contains("cold_seconds"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_an_empty_trajectory() {
        let records = validate_file(Path::new("/nonexistent/trajectory.jsonl")).unwrap();
        assert!(records.is_empty());
        assert!(render_report(&records).contains("No records"));
    }

    #[test]
    fn timestamps_are_rfc3339_shaped() {
        let t = now_rfc3339();
        assert_eq!(t.len(), 20, "{t}");
        assert!(t.ends_with('Z'));
        assert_eq!(&t[4..5], "-");
        assert_eq!(&t[10..11], "T");
    }
}
