//! `trajectory` — validate and render the bench trajectory file.
//!
//! ```text
//! trajectory validate [path]   # schema-check every record (CI gate)
//! trajectory report [path]     # render the markdown dashboard to stdout
//! ```
//!
//! Without a path argument both subcommands use the default location
//! (`BENCH_TRAJECTORY.jsonl` at the repository root, or `$IVY_TRAJECTORY`).

use ivy_bench::trajectory;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let path = args
        .get(1)
        .map(PathBuf::from)
        .unwrap_or_else(trajectory::path);
    match args.first().map(String::as_str) {
        Some("validate") => match trajectory::validate_file(&path) {
            Ok(records) => {
                println!(
                    "{}: {} valid record(s), schema {}",
                    path.display(),
                    records.len(),
                    trajectory::SCHEMA_VERSION
                );
                ExitCode::SUCCESS
            }
            Err(err) => {
                eprintln!("trajectory: {}: {err}", path.display());
                ExitCode::FAILURE
            }
        },
        Some("report") => match trajectory::validate_file(&path) {
            Ok(records) => {
                print!("{}", trajectory::render_report(&records));
                ExitCode::SUCCESS
            }
            Err(err) => {
                eprintln!("trajectory: {}: {err}", path.display());
                ExitCode::FAILURE
            }
        },
        _ => {
            eprintln!("usage: trajectory <validate|report> [path]");
            ExitCode::FAILURE
        }
    }
}
