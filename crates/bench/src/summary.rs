//! The uniform machine-readable bench summary.
//!
//! Every `table*` bench used to hand-roll the same three steps: build a
//! `{"bench": ..., "rows": [...]}` object, print it on one line prefixed
//! `JSON-SUMMARY` (what CI greps), and lose the numbers forever. This
//! module is that emission in one place — and [`Summary::emit`] also
//! appends the bench's headline numbers to the trajectory file (see
//! [`crate::trajectory`]), so every bench run extends the per-PR
//! performance history for free.

use crate::trajectory;
use serde_json::{Map, Value};

/// Builder for one bench's `JSON-SUMMARY` line.
pub struct Summary {
    bench: String,
    root: Map,
    rows: Vec<Value>,
    headline: Map,
    config: Option<Value>,
}

impl Summary {
    /// Starts a summary for the named bench.
    pub fn new(bench: &str) -> Summary {
        Summary {
            bench: bench.to_string(),
            root: Map::new(),
            rows: Vec::new(),
            headline: Map::new(),
            config: None,
        }
    }

    /// Adds an extra root-level field (e.g. `violations_total` on the
    /// oracle bench, which CI gates on).
    pub fn root_field(&mut self, key: &str, value: impl Into<Value>) {
        self.root.insert(key.into(), value.into());
    }

    /// Appends one row object.
    pub fn push_row(&mut self, row: Map) {
        self.rows.push(Value::Object(row));
    }

    /// Registers one headline number for the trajectory record. Headlines
    /// are the handful of numbers worth tracking across PRs (a cold time,
    /// a speedup, a hit rate) — not the full row set.
    pub fn headline(&mut self, key: &str, value: impl Into<Value>) {
        self.headline.insert(key.into(), value.into());
    }

    /// Attaches the bench configuration recorded alongside the headline
    /// (kernel name, thread count, sweep description — whatever makes the
    /// record reproducible).
    pub fn config(&mut self, config: Value) {
        self.config = Some(config);
    }

    /// Prints the `JSON-SUMMARY` line and appends the trajectory record.
    /// Returns the root object, for benches that assert on it. A
    /// trajectory append failure is reported to stderr, never fatal — a
    /// read-only checkout must not fail the bench.
    pub fn emit(self) -> Value {
        let mut root = self.root;
        root.insert("bench".into(), Value::from(self.bench.as_str()));
        root.insert("rows".into(), Value::Array(self.rows));
        let root = Value::Object(root);
        println!(
            "\nJSON-SUMMARY {}",
            serde_json::to_string(&root).expect("summary serializes")
        );
        if !self.headline.is_empty() {
            if let Err(err) = trajectory::append(&self.bench, self.config, self.headline) {
                eprintln!("ivy-bench: trajectory append failed: {err}");
            }
        }
        root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_root_carries_bench_rows_and_extra_fields() {
        let mut s = Summary::new("table_test");
        s.root_field("violations_total", 0u64);
        let mut row = Map::new();
        row.insert("kernel".into(), Value::from("small"));
        s.push_row(row);
        // No headline: emit must not touch the trajectory file.
        let root = s.emit();
        assert_eq!(
            root.get("bench").and_then(Value::as_str),
            Some("table_test")
        );
        assert_eq!(
            root.get("violations_total").and_then(Value::as_u64),
            Some(0)
        );
        assert_eq!(
            root.get("rows").and_then(Value::as_array).map(Vec::len),
            Some(1)
        );
    }
}
