//! bench crate
