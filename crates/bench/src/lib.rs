//! Shared infrastructure for the `table*` benches: the uniform
//! `JSON-SUMMARY` emission ([`summary`]) and the append-only per-PR
//! performance history it feeds ([`trajectory`]).

pub mod summary;
pub mod trajectory;
