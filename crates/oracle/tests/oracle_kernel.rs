//! The oracle over the kernelgen corpus: the flagship soundness claim.
//!
//! Boot plus a workload mix execute under the tracer, and every dynamic
//! fact must be subsumed by the static answers at every sensitivity. The
//! seeded defects must also *surface* dynamically (the oracle is not
//! vacuous): the boot cycle triggers the blocking bugs and the bad frees.

use ivy_kernelgen::{KernelBuild, KernelConfig};
use ivy_oracle::{EntrySpec, Oracle};

#[test]
fn small_kernel_is_dynamically_sound_at_every_sensitivity() {
    let build = KernelBuild::generate(&KernelConfig::small());
    let entries = EntrySpec::defaults_for(&build.program, 6);
    assert!(
        entries.iter().any(|e| e.entry == "kernel_boot"),
        "boot must be among the default entries"
    );
    let report = Oracle::default().run(&build.program, &entries);

    assert_eq!(report.traps, 0, "kernel entries must not trap");
    assert!(
        report.is_sound(),
        "soundness violations:\n{}",
        report.render()
    );

    // The oracle is not vacuous: a healthy volume of facts of every kind.
    assert!(report.facts.ptr_facts > 100, "{:?}", report.facts);
    assert!(report.facts.indirect_facts >= 5, "{:?}", report.facts);
    assert!(
        report.facts.blocking_facts >= 2,
        "both seeded blocking bugs observed: {:?}",
        report.facts
    );
    assert!(
        report.facts.bad_free_facts
            >= (KernelConfig::small().cache_defects + KernelConfig::small().ring_defects),
        "every seeded bad-free defect observed: {:?}",
        report.facts
    );

    // Precision numbers exist for all three sensitivities, and the
    // coarsest level is no more precise than the finest.
    assert_eq!(report.precision.len(), 3);
    let st = &report.precision["steensgaard"];
    let af = &report.precision["andersen+field"];
    assert!(st.pointsto.claimed >= af.pointsto.claimed);
    assert!(af.pointsto.claimed > 0);
    assert!(af.indirect.claimed > 0);
}

#[test]
fn report_json_is_stable_and_parses_back() {
    let build = KernelBuild::generate(&KernelConfig::small());
    let entries = vec![EntrySpec::new("kernel_boot", &[2, 0])];
    let a = Oracle::default().run(&build.program, &entries);
    let b = Oracle::default().run(&build.program, &entries);
    assert_eq!(a.to_json(), b.to_json(), "oracle runs are deterministic");
    let parsed: serde_json::Value = serde_json::from_str(&a.to_json()).unwrap();
    assert_eq!(parsed.get("programs").and_then(|v| v.as_u64()), Some(1));
    assert!(parsed.get("precision").is_some());
}
