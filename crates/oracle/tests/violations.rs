//! The violation path: programs that *do* escape the static analyses must
//! be reported, with minimized reproducers.
//!
//! Integer-to-pointer forging is the canonical escape hatch: the points-to
//! analysis gives a forged pointer an empty abstraction, so any dynamic
//! fact it produces is unsubsumable. The oracle must flag it (and the
//! kernelgen corpus must never do it — that is the zero-violation gate).

use ivy_cmir::parser::parse_program;
use ivy_oracle::{EntrySpec, Oracle, ViolationKind};

const FORGED: &str = r#"
    global g: u32 = 7;
    fn a(x: u32) -> u32 { return x; }
    fn unrelated_helper() { }
    fn main(n: u32) -> u32 {
        // 0xF0000010: the synthetic address of the first function (`a`).
        let h: fnptr(u32) -> u32 = 4026531856 as fnptr(u32) -> u32;
        // 0x1000: the base of the globals region (`g`).
        let p: u32 * = 4096 as u32 *;
        return h(n) + *p;
    }
"#;

#[test]
fn forged_pointers_are_soundness_violations_with_reproducers() {
    let program = parse_program(FORGED).unwrap();
    let report = Oracle::default().run(&program, &[EntrySpec::new("main", &[3])]);
    assert!(!report.is_sound());

    let kinds: Vec<ViolationKind> = report.violations.iter().map(|v| v.kind).collect();
    assert!(
        kinds.contains(&ViolationKind::IndirectCall),
        "the forged function pointer reaches `a` with an empty static target set: {}",
        report.render()
    );
    assert!(
        kinds.contains(&ViolationKind::PointsTo),
        "the forged data pointer observes `g` outside the empty pts set: {}",
        report.render()
    );

    // Reproducers are attached and minimized: the unrelated helper is
    // gone, the entry session and the violating machinery survive.
    let repro = report
        .violations
        .iter()
        .find(|v| v.kind == ViolationKind::IndirectCall)
        .and_then(|v| v.reproducer.as_ref())
        .expect("reproducer attached");
    assert_eq!(repro.entries, vec![EntrySpec::new("main", &[3])]);
    assert!(!repro.source.contains("unrelated_helper"));
    assert!(repro.source.contains("fn main"));
    assert!(repro.source.contains("fn a"), "{}", repro.source);

    // The reproducer really reproduces: running the oracle on its own
    // source with its own entry session yields the same violation kind.
    let reduced = parse_program(&repro.source).unwrap();
    let again = Oracle::default().run(&reduced, &repro.entries);
    assert!(again
        .violations
        .iter()
        .any(|v| v.kind == ViolationKind::IndirectCall));

    // The report JSON carries the reproducer.
    assert!(report.to_json().contains("reproducer"));
}

#[test]
fn violations_appear_at_every_configured_sensitivity() {
    let program = parse_program(FORGED).unwrap();
    let report = Oracle::default().run(&program, &[EntrySpec::new("main", &[3])]);
    for s in ["steensgaard", "andersen", "andersen+field"] {
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.sensitivity.name() == s && v.kind == ViolationKind::IndirectCall),
            "missing {s} violation: {}",
            report.render()
        );
    }
}
