//! `ivy-oracle` — the dynamic soundness oracle.
//!
//! The paper's whole pitch is *soundness*: analyses whose answers
//! over-approximate every real execution. This crate finally tests that
//! claim end to end, in the spirit of Klinger et al.'s differential
//! testing of program analyzers: `ivy-vm` executes the very KC programs
//! the analyses consume, an opt-in [`Tracer`](ivy_vm::Tracer) records the
//! concrete facts of those executions, and the oracle checks
//! **subsumption** — every dynamic fact must be inside the corresponding
//! static over-approximation:
//!
//! | dynamic fact                         | static answer that must cover it |
//! |--------------------------------------|----------------------------------|
//! | pointer target at a store            | `pts` of the lvalue's `Loc`      |
//! | function reached via function pointer| `indirect_targets` of the site   |
//! | blocking call in atomic context      | a BlockStop finding              |
//! | free rejected by reference counts    | a CCount-instrumented free site  |
//!
//! A miss is a soundness violation, reported with a **minimized
//! reproducer** (program + entry + input). The same run measures
//! **precision** — static claims never witnessed dynamically — giving the
//! paper's soundness/precision tradeoff as numbers per sensitivity.
//!
//! The mapping from run-time addresses to abstract locations is built at
//! "compile time" by [`AbstractionMap`], which mirrors the constraint
//! generator's syntax-directed abstraction (including its traversal-order
//! allocation-site numbering), so the comparison is apples to apples by
//! construction.
//!
//! # Example
//!
//! ```
//! use ivy_oracle::{Oracle, EntrySpec};
//! let program = ivy_cmir::parser::parse_program(r#"
//!     struct ops { go: fnptr(u32) -> u32; }
//!     global t: struct ops;
//!     fn f(x: u32) -> u32 { return x; }
//!     fn main(n: u32, m: u32) -> u32 { t.go = f; return t.go(n); }
//! "#).unwrap();
//! let report = Oracle::default().run(&program, &[EntrySpec::new("main", &[3, 0])]);
//! assert!(report.is_sound(), "{}", report.render());
//! assert!(report.facts.indirect_facts >= 1);
//! ```

#![warn(missing_docs)]

pub mod absmap;
pub mod check;
pub mod dynfacts;
pub mod report;

pub use absmap::{AbsLoc, AbstractionMap, SlotKind};
pub use check::{Precision, PrecisionRow, StaticModel, Violation, ViolationKind};
pub use dynfacts::{DynFacts, OracleTracer, SlotId};
pub use report::{FactCounts, OracleReport, Reproducer};

use ivy_analysis::callgraph::CallGraph;
use ivy_analysis::pointsto::{self, Sensitivity};
use ivy_blockstop::BlockStop;
use ivy_cmir::ast::Program;
use ivy_cmir::pretty::pretty_program;
use ivy_cmir::types::Type;
use ivy_vm::{Value, Vm, VmConfig};
use std::collections::BTreeMap;
use std::sync::Arc;

/// An entry point to drive under the tracer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntrySpec {
    /// Entry function name.
    pub entry: String,
    /// Integer arguments (missing parameters default to 0 in the VM).
    pub args: Vec<i64>,
}

impl EntrySpec {
    /// Creates an entry spec.
    pub fn new(entry: impl Into<String>, args: &[i64]) -> EntrySpec {
        EntrySpec {
            entry: entry.into(),
            args: args.to_vec(),
        }
    }

    /// Picks entries for an arbitrary program: the kernelgen session
    /// entries when present (`kernel_boot` plus a few workloads), and
    /// otherwise up to `max` defined functions whose parameters are all
    /// integers (run with small arguments). Deterministic.
    pub fn defaults_for(program: &Program, max: usize) -> Vec<EntrySpec> {
        let mut out = Vec::new();
        let defined = |name: &str| {
            program
                .function(name)
                .map(|f| f.body.is_some())
                .unwrap_or(false)
        };
        if defined("kernel_boot") {
            // Eight cycles reach every seeded defect (the watchdog's
            // blocking bug fires on every eighth tick).
            out.push(EntrySpec::new("kernel_boot", &[8, 0]));
        }
        if defined("kernel_light_use") {
            out.push(EntrySpec::new("kernel_light_use", &[2, 256]));
        }
        for wl in ["wl_bw_pipe", "wl_lat_fs", "wl_lat_sig", "wl_bw_mmap_rd"] {
            if out.len() >= max {
                break;
            }
            if defined(wl) {
                out.push(EntrySpec::new(wl, &[3, 64]));
            }
        }
        if !out.is_empty() {
            return out;
        }
        // Fallback: all-integer-parameter functions, in program order.
        for f in program.functions.iter().filter(|f| f.body.is_some()) {
            if out.len() >= max {
                break;
            }
            let all_int = f.params.iter().all(|p| {
                matches!(
                    program.resolve_type(&p.ty),
                    Type::Int(_) | Type::Bool | Type::Void
                )
            });
            if all_int {
                out.push(EntrySpec::new(f.name.clone(), &[3, 8]));
            }
        }
        out
    }
}

/// Oracle configuration.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// Sensitivities to validate (default: all three).
    pub sensitivities: Vec<Sensitivity>,
    /// VM step budget per entry (runaway protection; a step-limit trap
    /// still contributes its partial trace).
    pub max_steps: u64,
    /// Attach a minimized reproducer to (the first of) each violation.
    pub minimize: bool,
    /// Maximum candidate-removal attempts during minimization.
    pub minimize_budget: usize,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            sensitivities: vec![
                Sensitivity::Steensgaard,
                Sensitivity::Andersen,
                Sensitivity::AndersenField,
            ],
            max_steps: 4_000_000,
            minimize: true,
            minimize_budget: 128,
        }
    }
}

/// The oracle driver.
#[derive(Debug, Clone, Default)]
pub struct Oracle {
    /// Configuration.
    pub config: OracleConfig,
}

impl Oracle {
    /// An oracle with the given configuration.
    pub fn with_config(config: OracleConfig) -> Oracle {
        Oracle { config }
    }

    /// Executes the entries under the tracer and checks every configured
    /// sensitivity. One report per program; merge for a fleet.
    pub fn run(&self, program: &Program, entries: &[EntrySpec]) -> OracleReport {
        let map = Arc::new(AbstractionMap::build(program));
        let (facts, entries_run, traps) =
            trace_entries(program, entries, &map, self.config.max_steps);

        let ccount_program = ivy_ccount::analyze(program);
        let ccount_by_fn = ivy_ccount::analyze_by_function(program);

        let mut report = OracleReport {
            programs: 1,
            entries_run,
            traps,
            facts: FactCounts {
                ptr_facts: facts.ptr_facts.len(),
                indirect_facts: facts.indirect_facts.len(),
                blocking_facts: facts.blocking_facts.len(),
                bad_free_facts: facts.bad_free_facts.len(),
                check_failures: facts.check_failure_facts.len(),
                ptr_events: facts.ptr_events,
                unresolved: facts.unresolved,
            },
            observed_blocking: facts.blocking_facts.clone(),
            observed_bad_free_functions: facts
                .bad_free_facts
                .iter()
                .map(|(f, _)| f.clone())
                .collect(),
            ..OracleReport::default()
        };

        for &s in &self.config.sensitivities {
            let model = build_static_model(program, s, &ccount_program, &ccount_by_fn);
            let (mut violations, precision) =
                check::check_subsumption(program, &map, &facts, &model);
            if self.config.minimize {
                for v in &mut violations {
                    v.reproducer =
                        self.minimize(program, entries, &model.sensitivity, &v.key, &v.kind);
                }
            }
            report.violations.extend(violations);
            report.precision.insert(s.name().to_string(), precision);
        }
        report
    }

    /// Greedy delta-debugging of a violation witness: repeatedly drop
    /// functions (entry excluded) while the same violation key still
    /// reproduces, within the configured budget.
    fn minimize(
        &self,
        program: &Program,
        entries: &[EntrySpec],
        sensitivity: &Sensitivity,
        key: &str,
        kind: &ViolationKind,
    ) -> Option<Reproducer> {
        let reproduces = |p: &Program| -> bool {
            let map = Arc::new(AbstractionMap::build(p));
            let (facts, _, _) = trace_entries(p, entries, &map, self.config.max_steps);
            let ccount_program = ivy_ccount::analyze(p);
            let ccount_by_fn = ivy_ccount::analyze_by_function(p);
            let model = build_static_model(p, *sensitivity, &ccount_program, &ccount_by_fn);
            let (violations, _) = check::check_subsumption(p, &map, &facts, &model);
            violations.iter().any(|v| v.key == key && v.kind == *kind)
        };
        if !reproduces(program) {
            return None;
        }
        let entry_names: Vec<&str> = entries.iter().map(|e| e.entry.as_str()).collect();
        let mut current = program.clone();
        let mut budget = self.config.minimize_budget;
        let mut progress = true;
        while progress && budget > 0 {
            progress = false;
            let names: Vec<String> = current
                .functions
                .iter()
                .filter(|f| f.body.is_some() && !entry_names.contains(&f.name.as_str()))
                .map(|f| f.name.clone())
                .collect();
            for name in names {
                if budget == 0 {
                    break;
                }
                budget -= 1;
                let mut candidate = current.clone();
                candidate.functions.retain(|f| f.name != name);
                if reproduces(&candidate) {
                    current = candidate;
                    progress = true;
                }
            }
        }
        Some(Reproducer {
            source: pretty_program(&current),
            entries: entries.to_vec(),
        })
    }
}

/// Runs the entries as one kernel session: consecutive entries share a VM
/// (later phases see the state earlier ones set up, like boot followed by
/// light use), with one tracer whose facts are harvested at the end. A
/// trap wedges machine state (locks, interrupt depth), so the session
/// resumes on a fresh VM for the next entry; the partial trace up to the
/// trap still counts.
fn trace_entries(
    program: &Program,
    entries: &[EntrySpec],
    map: &Arc<AbstractionMap>,
    max_steps: u64,
) -> (DynFacts, usize, usize) {
    let mut facts = DynFacts::default();
    let mut entries_run = 0usize;
    let mut traps = 0usize;
    let config = VmConfig {
        ccount: true,
        max_steps,
        // Minimization can wire forged function pointers into accidental
        // self-recursion; keep KC frames shallow enough for test-thread
        // stacks (each KC frame costs several host frames).
        max_call_depth: 48,
        ..VmConfig::baseline()
    };
    let mut vm: Option<Vm> = None;
    let mut shared: Option<std::rc::Rc<std::cell::RefCell<OracleTracer>>> = None;
    let harvest = |vm: &mut Option<Vm>,
                   shared: &mut Option<std::rc::Rc<std::cell::RefCell<OracleTracer>>>,
                   facts: &mut DynFacts| {
        if let Some(mut vm) = vm.take() {
            drop(vm.take_tracer());
        }
        if let Some(shared) = shared.take() {
            let tracer = std::rc::Rc::try_unwrap(shared)
                .ok()
                .expect("VM released its tracer handle")
                .into_inner();
            facts.merge(tracer.into_facts());
        }
    };
    for spec in entries {
        if vm.is_none() {
            let Ok(mut fresh) = Vm::new(program.clone(), config) else {
                continue;
            };
            let tracer =
                std::rc::Rc::new(std::cell::RefCell::new(OracleTracer::new(Arc::clone(map))));
            fresh.attach_tracer(Box::new(dynfacts::SharedOracleTracer(std::rc::Rc::clone(
                &tracer,
            ))));
            vm = Some(fresh);
            shared = Some(tracer);
        }
        entries_run += 1;
        let args: Vec<Value> = spec.args.iter().map(|a| Value::Int(*a)).collect();
        let running = vm.as_mut().expect("constructed above");
        if running.run(&spec.entry, args).is_err() {
            traps += 1;
            // Wedged atomic state would fabricate blocking facts the
            // static analysis rightly knows nothing about; restart.
            harvest(&mut vm, &mut shared, &mut facts);
        }
    }
    harvest(&mut vm, &mut shared, &mut facts);
    (facts, entries_run, traps)
}

/// Builds the static side of the comparison at one sensitivity.
fn build_static_model(
    program: &Program,
    sensitivity: Sensitivity,
    ccount_program: &ivy_ccount::InstrumentationReport,
    ccount_by_fn: &BTreeMap<String, ivy_ccount::InstrumentationReport>,
) -> StaticModel {
    // Solve with derivation tracing on: when a dynamic fact escapes the
    // static answer, the violation report prints the derivation the static
    // side *did* have (or states which seed constraint is missing), which
    // is where diagnosing an unsoundness starts.
    let pts = pointsto::analyze_with(
        program,
        sensitivity,
        pointsto::SolveOptions::from_env().with_provenance(true),
    );
    let callgraph = CallGraph::build(program, &pts);
    let blockstop = BlockStop::with_config(ivy_blockstop::BlockStopConfig {
        sensitivity,
        ..Default::default()
    })
    .analyze_with(program, &pts, &callgraph);
    StaticModel {
        sensitivity,
        pts,
        blockstop,
        ccount_program: ccount_program.clone(),
        ccount_by_fn: ccount_by_fn.clone(),
    }
}
