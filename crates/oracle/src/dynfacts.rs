//! Collecting dynamic facts: the oracle's [`Tracer`] implementation.
//!
//! Every pointer event is resolved *at event time* (stack frames are only
//! live then) into a set of **candidate abstractions** — every abstract
//! location the static analysis could legitimately use for the observed
//! target address:
//!
//! * code addresses → the exact `Loc::Func`;
//! * stack addresses → the exact `Loc::Local` of the live slot;
//! * global addresses → the global itself plus every `(composite, field)`
//!   whose storage covers the offset (via `LayoutCtx::field_path_at`);
//! * heap addresses → the allocation site(s) recorded when the object was
//!   created, plus any address-of abstractions previously *witnessed* for
//!   that exact address (the alias registry: a concrete address carries no
//!   record of whether it was derived as `&obj->field`).
//!
//! Breadth on the candidate side can only mask a violation, never invent
//! one — the right bias for a CI-gated soundness oracle. Values with *no*
//! candidates (string literals, dangling pointers, objects from allocators
//! the program never declared) are skipped and counted.

use crate::absmap::{AbsLoc, AbstractionMap};
use ivy_analysis::pointsto::{Loc, Sensitivity};
use ivy_cmir::layout::LayoutCtx;
use ivy_cmir::pretty::expr_str;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// The identity of an observed pointer-valued slot.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum SlotId {
    /// An assignment lvalue, `(function, lvalue text, was a declaration)`.
    Lvalue(String, String, bool),
    /// A bound parameter, `(function, parameter)`.
    Param(String, String),
    /// A returned value.
    Ret(String),
}

impl SlotId {
    /// Human-readable form for violation messages.
    pub fn describe(&self) -> String {
        match self {
            SlotId::Lvalue(f, t, true) => format!("{f}: let {t} = ..."),
            SlotId::Lvalue(f, t, false) => format!("{f}: {t} = ..."),
            SlotId::Param(f, p) => format!("{f}(param {p})"),
            SlotId::Ret(f) => format!("return of {f}"),
        }
    }
}

/// Candidate abstractions of one observed pointer value, in both
/// field-sensitive and field-insensitive forms (the subsumption check
/// intersects with the static solution of whichever sensitivity is being
/// validated).
pub type Candidates = BTreeSet<Loc>;

/// The dynamic facts of one or more traced executions.
#[derive(Debug, Default)]
pub struct DynFacts {
    /// Deduplicated pointer observations.
    pub ptr_facts: BTreeSet<(SlotId, Vec<Loc>)>,
    /// Deduplicated `(caller, callee text, target)` indirect-call facts.
    pub indirect_facts: BTreeSet<(String, String, String)>,
    /// `(caller, callee)` blocking-in-atomic events (deduplicated).
    pub blocking_facts: BTreeSet<(String, String)>,
    /// `(function, delayed)` bad-free events (deduplicated).
    pub bad_free_facts: BTreeSet<(String, bool)>,
    /// `(function, check kind)` failed run-time checks (deduplicated).
    pub check_failure_facts: BTreeSet<(String, String)>,
    /// Raw pointer events observed (before deduplication).
    pub ptr_events: u64,
    /// Pointer events skipped because the target had no static
    /// abstraction (rodata, dangling, undeclared allocator, ...).
    pub unresolved: u64,
    /// Null-valued pointer events (not facts: the analysis does not model
    /// null).
    pub nulls: u64,
}

impl DynFacts {
    /// Merges facts from another execution (e.g. a second entry point).
    pub fn merge(&mut self, other: DynFacts) {
        self.ptr_facts.extend(other.ptr_facts);
        self.indirect_facts.extend(other.indirect_facts);
        self.blocking_facts.extend(other.blocking_facts);
        self.bad_free_facts.extend(other.bad_free_facts);
        self.check_failure_facts.extend(other.check_failure_facts);
        self.ptr_events += other.ptr_events;
        self.unresolved += other.unresolved;
        self.nulls += other.nulls;
    }
}

/// The oracle's tracer: one per VM (heap addresses are only meaningful
/// within one run). Take it back with [`ivy_vm::Vm::take_tracer`] and
/// [`OracleTracer::into_facts`] when the run completes.
pub struct OracleTracer {
    map: Arc<AbstractionMap>,
    facts: DynFacts,
    /// Heap object base → static allocation-site candidates.
    heap_sites: HashMap<u32, Vec<String>>,
    /// Exact address → address-of abstractions witnessed for it.
    alias_registry: BTreeMap<u32, BTreeSet<Loc>>,
}

impl OracleTracer {
    /// Creates a tracer over a program's abstraction map.
    pub fn new(map: Arc<AbstractionMap>) -> OracleTracer {
        OracleTracer {
            map,
            facts: DynFacts::default(),
            heap_sites: HashMap::new(),
            alias_registry: BTreeMap::new(),
        }
    }

    /// The collected facts.
    pub fn into_facts(self) -> DynFacts {
        self.facts
    }

    /// Resolves a concrete pointer value to its candidate abstractions.
    /// `None` means "skip this event" (null or no abstraction exists).
    fn candidates(&mut self, vm: &ivy_vm::Vm, value: u32) -> Option<Candidates> {
        use ivy_vm::ResolvedAddr;
        let mut out: Candidates = match vm.resolve_addr(value) {
            ResolvedAddr::Null => {
                self.facts.nulls += 1;
                return None;
            }
            ResolvedAddr::Code { func } => BTreeSet::from([Loc::Func(func)]),
            ResolvedAddr::StackLocal { func, var, .. } => {
                BTreeSet::from([Loc::Local { func, var }])
            }
            ResolvedAddr::Global { name, offset } => {
                let mut set = BTreeSet::from([Loc::Global(name.clone())]);
                if let Some(g) = vm.program().global(&name) {
                    let layout = LayoutCtx::new(vm.program());
                    for (composite, field) in layout.field_path_at(&g.decl.ty, u64::from(offset)) {
                        set.insert(Loc::Composite(composite.clone()));
                        set.insert(Loc::Field { composite, field });
                    }
                }
                set
            }
            ResolvedAddr::Heap { base, .. } => self
                .heap_sites
                .get(&base)
                .map(|sites| {
                    sites
                        .iter()
                        .map(|s| Loc::Alloc { site: s.clone() })
                        .collect()
                })
                .unwrap_or_default(),
            ResolvedAddr::Rodata | ResolvedAddr::Unknown => BTreeSet::new(),
        };
        if let Some(aliases) = self.alias_registry.get(&value) {
            out.extend(aliases.iter().cloned());
        }
        if out.is_empty() {
            self.facts.unresolved += 1;
            return None;
        }
        Some(out)
    }

    fn record_ptr(&mut self, slot: SlotId, candidates: Candidates) {
        self.facts
            .ptr_facts
            .insert((slot, candidates.into_iter().collect()));
    }
}

/// The tracer handle actually handed to the VM: forwards every event into
/// an [`OracleTracer`] the harness keeps shared ownership of (so the facts
/// survive the `Box<dyn Tracer>` round-trip without downcasting).
pub struct SharedOracleTracer(pub std::rc::Rc<std::cell::RefCell<OracleTracer>>);

impl ivy_vm::Tracer for SharedOracleTracer {
    fn on_event(&mut self, vm: &ivy_vm::Vm, event: ivy_vm::TraceEvent<'_>) {
        self.0.borrow_mut().on_event(vm, event);
    }
}

impl ivy_vm::Tracer for OracleTracer {
    fn on_event(&mut self, vm: &ivy_vm::Vm, event: ivy_vm::TraceEvent<'_>) {
        use ivy_vm::TraceEvent;
        match event {
            TraceEvent::PtrAssign {
                func,
                lvalue,
                decl,
                value,
            } => {
                self.facts.ptr_events += 1;
                let text = expr_str(lvalue);
                // Extend the candidates with the syntactic abstractions of
                // the right-hand sides this lvalue is assigned from, and
                // remember them for the exact address (the alias
                // registry): `q = &p->f; r = q;` must let `r`'s check see
                // the field abstraction.
                let syn: Vec<Loc> = if decl {
                    self.map.decl_rhs(func, &text)
                } else {
                    self.map
                        .slot(func, &text)
                        .map(|e| e.rhs_syntactic.as_slice())
                        .unwrap_or(&[])
                }
                .iter()
                .flat_map(|a| match a {
                    AbsLoc::Exact(l) => vec![l.clone()],
                    AbsLoc::Field { composite, field } => vec![
                        AbsLoc::Field {
                            composite: composite.clone(),
                            field: field.clone(),
                        }
                        .materialize(Sensitivity::AndersenField),
                        Loc::Composite(composite.clone()),
                    ],
                })
                .collect();
                if !syn.is_empty() && value != 0 {
                    self.alias_registry
                        .entry(value)
                        .or_default()
                        .extend(syn.iter().cloned());
                }
                let Some(mut candidates) = self.candidates(vm, value) else {
                    return;
                };
                candidates.extend(syn);
                self.record_ptr(SlotId::Lvalue(func.to_string(), text, decl), candidates);
            }
            TraceEvent::PtrParam { func, param, value } => {
                self.facts.ptr_events += 1;
                let Some(candidates) = self.candidates(vm, value) else {
                    return;
                };
                self.record_ptr(
                    SlotId::Param(func.to_string(), param.to_string()),
                    candidates,
                );
            }
            TraceEvent::PtrReturn { func, value } => {
                self.facts.ptr_events += 1;
                let Some(candidates) = self.candidates(vm, value) else {
                    return;
                };
                self.record_ptr(SlotId::Ret(func.to_string()), candidates);
            }
            TraceEvent::IndirectCall {
                caller,
                callee_text,
                target,
            } => {
                self.facts.indirect_facts.insert((
                    caller.to_string(),
                    callee_text,
                    target.to_string(),
                ));
            }
            TraceEvent::Alloc {
                func,
                call_text,
                base,
            } => {
                if base != 0 {
                    self.heap_sites
                        .insert(base, self.map.alloc_sites(func, &call_text).to_vec());
                }
            }
            TraceEvent::BlockedInAtomic { caller, callee, .. } => {
                self.facts
                    .blocking_facts
                    .insert((caller.to_string(), callee.to_string()));
            }
            TraceEvent::BadFree { func, delayed, .. } => {
                self.facts
                    .bad_free_facts
                    .insert((func.to_string(), delayed));
            }
            TraceEvent::CheckFailed { func, kind } => {
                self.facts
                    .check_failure_facts
                    .insert((func.to_string(), kind.to_string()));
            }
        }
    }
}
