//! The compile-time lvalue → abstract-location map.
//!
//! The static points-to analysis abstracts the program's storage into
//! [`Loc`]s by a purely syntax-directed scheme
//! (`ivy_analysis::pointsto::constraints`). To compare a *dynamic* fact
//! ("this assignment stored a pointer to that object") against the static
//! solution, the oracle must abstract the run-time event the same way. This
//! module mirrors the constraint generator's traversal over the AST once
//! per program and records, for every syntactic lvalue, the abstract slot
//! the analysis uses for it — plus the allocation-site numbering, which the
//! generator assigns in traversal order per function and the tracer can
//! therefore never reproduce from dynamic order alone (loops and branches
//! reorder execution).
//!
//! Field slots are stored sensitivity-independently as `(composite, field)`
//! pairs and materialized per [`Sensitivity`] at check time, so a single
//! traced execution validates all three precision levels.

use ivy_analysis::pointsto::{Loc, Sensitivity};
use ivy_cmir::ast::{Block, Expr, Function, Program, Stmt};
use ivy_cmir::pretty::expr_str;
use ivy_cmir::typecheck::TypeCtx;
use ivy_cmir::types::Type;
use std::collections::HashMap;

/// A sensitivity-independent abstract location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum AbsLoc {
    /// A location identical at every sensitivity.
    Exact(Loc),
    /// A field slot: `Loc::Field` under field-sensitive analysis,
    /// `Loc::Composite` otherwise (and always `Composite` for the
    /// `<unknown>` composite, mirroring `field_loc`).
    Field {
        /// Composite type name (or `<unknown>`).
        composite: String,
        /// Field name.
        field: String,
    },
}

impl AbsLoc {
    /// The concrete [`Loc`] this abstract location denotes at a precision
    /// level (mirrors `ConstraintGen::field_loc`).
    pub fn materialize(&self, sensitivity: Sensitivity) -> Loc {
        match self {
            AbsLoc::Exact(l) => l.clone(),
            AbsLoc::Field { composite, field } => {
                if sensitivity == Sensitivity::AndersenField && composite != "<unknown>" {
                    Loc::Field {
                        composite: composite.clone(),
                        field: field.clone(),
                    }
                } else {
                    Loc::Composite(composite.clone())
                }
            }
        }
    }
}

/// How the static analysis models a traced assignment's destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlotKind {
    /// The slot is one of these locations directly: the stored value's
    /// abstraction must be in `pts` of one of them.
    Direct(Vec<AbsLoc>),
    /// A store through a pointer (`*p = v`, `p[i] = v`): for some target
    /// `t ∈ pts(ptr)`, the value's abstraction must be in `pts(t)`.
    ThroughPtr(Vec<AbsLoc>),
    /// An lvalue shape the analysis does not model; the oracle skips it.
    Opaque,
}

/// Everything the map knows about one `(function, lvalue text)` pair.
#[derive(Debug, Clone, Default)]
pub struct SlotEntry {
    /// Destination model(s). Multiple entries arise only when two
    /// same-text lvalues in one function abstract differently (possible
    /// with shadowing); any of them passing satisfies the check.
    pub kinds: Vec<SlotKind>,
    /// Syntactic abstractions of the right-hand sides assigned through
    /// this lvalue, when determinable (`&x`, `&p->f`, function constants,
    /// array decay). These extend the run-time candidate set: a concrete
    /// address carries no record of *which* `&`-expression created it.
    pub rhs_syntactic: Vec<AbsLoc>,
}

/// The per-program map from syntax to static abstraction.
#[derive(Debug, Default)]
pub struct AbstractionMap {
    /// `(function, lvalue text)` → destination model for assignments.
    slots: HashMap<(String, String), SlotEntry>,
    /// `(function, lvalue text)` → rhs abstractions for `let` initialisers
    /// (the destination is always the local itself).
    decl_rhs: HashMap<(String, String), Vec<AbsLoc>>,
    /// `(function, call text)` → static allocation sites (plural when the
    /// same allocator call text occurs more than once in a function).
    alloc_sites: HashMap<(String, String), Vec<String>>,
}

impl AbstractionMap {
    /// Builds the map for a program by mirroring the constraint
    /// generator's traversal.
    pub fn build(program: &Program) -> AbstractionMap {
        let mut map = AbstractionMap::default();
        for func in program.functions.iter().filter(|f| f.body.is_some()) {
            let mut b = Builder {
                program,
                ctx: TypeCtx::for_function(program, func),
                func: func.name.clone(),
                alloc_counter: 0,
                map: &mut map,
            };
            let body = func.body.as_ref().expect("filtered");
            b.walk_block(body);
        }
        map
    }

    /// The destination model for an assignment lvalue.
    pub fn slot(&self, func: &str, lvalue_text: &str) -> Option<&SlotEntry> {
        self.slots.get(&(func.to_string(), lvalue_text.to_string()))
    }

    /// The rhs abstractions recorded for a `let` initialiser.
    pub fn decl_rhs(&self, func: &str, var: &str) -> &[AbsLoc] {
        self.decl_rhs
            .get(&(func.to_string(), var.to_string()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The static allocation sites an allocator call text can denote.
    pub fn alloc_sites(&self, func: &str, call_text: &str) -> &[String] {
        self.alloc_sites
            .get(&(func.to_string(), call_text.to_string()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

struct Builder<'p, 'm> {
    program: &'p Program,
    ctx: TypeCtx<'p>,
    func: String,
    alloc_counter: u32,
    map: &'m mut AbstractionMap,
}

impl Builder<'_, '_> {
    fn walk_block(&mut self, block: &Block) {
        for stmt in &block.stmts {
            self.walk_stmt(stmt);
        }
    }

    /// Mirrors `ConstraintGen::gen_stmt`: same traversal order (so the
    /// allocation-site counter agrees), same binding discipline (bindings
    /// are flow-ordered and never popped — the analysis is
    /// flow-insensitive).
    fn walk_stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Local(d, init) => {
                if let Some(init) = init {
                    let rhs = self.rhs_abstraction(init);
                    self.walk_value(init);
                    if !rhs.is_empty() {
                        self.map
                            .decl_rhs
                            .entry((self.func.clone(), d.name.clone()))
                            .or_default()
                            .extend(rhs);
                    }
                }
                self.ctx.bind(&d.name, d.ty.clone());
            }
            Stmt::Assign(lhs, rhs, _) => {
                let rhs_abs = self.rhs_abstraction(rhs);
                self.walk_value(rhs);
                let kind = self.classify_lvalue(lhs);
                self.walk_lvalue_exprs(lhs);
                let entry = self
                    .map
                    .slots
                    .entry((self.func.clone(), expr_str(lhs)))
                    .or_default();
                if !entry.kinds.contains(&kind) {
                    entry.kinds.push(kind);
                }
                entry.rhs_syntactic.extend(rhs_abs);
            }
            Stmt::Expr(e, _) | Stmt::Return(Some(e), _) => self.walk_value(e),
            Stmt::Return(None, _) | Stmt::Break(_) | Stmt::Continue(_) => {}
            Stmt::If(c, then_b, else_b, _) => {
                self.walk_value(c);
                self.walk_block(then_b);
                if let Some(b) = else_b {
                    self.walk_block(b);
                }
            }
            Stmt::While(c, body, _) => {
                self.walk_value(c);
                self.walk_block(body);
            }
            Stmt::Block(b) | Stmt::DelayedFreeScope(b, _) => self.walk_block(b),
            // `gen_stmt` walks check expressions without generating
            // constraints, so no allocation sites are numbered inside them.
            Stmt::Check(..) => {}
        }
    }

    /// Mirrors `gen_store`: what does the analysis treat as the
    /// destination of `lhs = ...`?
    fn classify_lvalue(&mut self, lhs: &Expr) -> SlotKind {
        match lhs {
            Expr::Var(name) => match self.var_loc(name) {
                Some(l) => SlotKind::Direct(vec![l]),
                None => SlotKind::Opaque,
            },
            Expr::Deref(inner) | Expr::Index(inner, _) => {
                // `gen_store` emits `Store { dst: gen_value(inner) }`. When
                // `inner`'s value abstraction is an address-of (arrays and
                // array fields decay), the store lands directly in that
                // location; when it is a pointer-valued location, the store
                // goes through its points-to set.
                let inner = peel_casts(inner);
                let decayed = self.decay_target(inner);
                if !decayed.is_empty() {
                    return SlotKind::Direct(decayed);
                }
                match inner {
                    Expr::Var(name) => match self.var_loc(name) {
                        Some(l) => SlotKind::ThroughPtr(vec![l]),
                        None => SlotKind::Opaque,
                    },
                    Expr::Arrow(obj, field) | Expr::Field(obj, field) => {
                        let comp = self.ctx.composite_name_of(obj);
                        SlotKind::ThroughPtr(vec![field_abs(comp, field)])
                    }
                    _ => SlotKind::Opaque,
                }
            }
            Expr::Arrow(obj, field) | Expr::Field(obj, field) => {
                let comp = self.ctx.composite_name_of(obj);
                SlotKind::Direct(vec![field_abs(comp, field)])
            }
            Expr::Cast(_, inner) => self.classify_lvalue(inner),
            _ => SlotKind::Opaque,
        }
    }

    /// The locations `e` decays to when used as a value (mirrors the
    /// array-decay cases of `gen_value`): array variables and array-typed
    /// fields become the address of their own storage.
    fn decay_target(&self, e: &Expr) -> Vec<AbsLoc> {
        match e {
            Expr::Var(name) => {
                let is_array = self
                    .ctx
                    .lookup(name)
                    .map(|t| matches!(self.program.resolve_type(&t), Type::Array(..)))
                    .unwrap_or(false);
                if is_array {
                    self.var_loc(name).into_iter().collect()
                } else {
                    Vec::new()
                }
            }
            Expr::Arrow(_, _) | Expr::Field(_, _) => {
                let is_array = self
                    .ctx
                    .type_of(e)
                    .map(|t| matches!(self.program.resolve_type(&t), Type::Array(..)))
                    .unwrap_or(false);
                if is_array {
                    let (Expr::Arrow(obj, field) | Expr::Field(obj, field)) = e else {
                        unreachable!("matched above");
                    };
                    vec![field_abs(self.ctx.composite_name_of(obj), field)]
                } else {
                    Vec::new()
                }
            }
            _ => Vec::new(),
        }
    }

    /// Walks the sub-expressions a `gen_store` destination evaluates (so
    /// allocator calls inside complex lvalues stay correctly numbered).
    fn walk_lvalue_exprs(&mut self, lhs: &Expr) {
        match lhs {
            Expr::Var(_) => {}
            Expr::Deref(inner) | Expr::Index(inner, _) => self.walk_value(inner),
            Expr::Arrow(obj, _) | Expr::Field(obj, _) => self.walk_value(obj),
            Expr::Cast(_, inner) => self.walk_lvalue_exprs(inner),
            other => self.walk_value(other),
        }
    }

    /// Mirrors the recursion structure of `gen_value` for the one side
    /// effect the map needs: allocation-site numbering. Direct calls to
    /// `#[allocator]` functions are numbered in traversal order; all other
    /// expression shapes just recurse the way the generator does (note:
    /// the generator does not visit index expressions).
    fn walk_value(&mut self, e: &Expr) {
        match e {
            Expr::Int(_) | Expr::Str(_) | Expr::Null | Expr::SizeOf(_) | Expr::Var(_) => {}
            Expr::Unary(_, inner) | Expr::Cast(_, inner) => self.walk_value(inner),
            Expr::Binary(_, a, b) => {
                self.walk_value(a);
                self.walk_value(b);
            }
            Expr::Deref(inner) | Expr::Index(inner, _) => self.walk_value(inner),
            Expr::Arrow(obj, _) | Expr::Field(obj, _) => self.walk_value(obj),
            Expr::AddrOf(inner) => match &**inner {
                Expr::Var(_) => {}
                Expr::Arrow(obj, _) | Expr::Field(obj, _) => self.walk_value(obj),
                Expr::Index(base, _) => self.walk_value(base),
                Expr::Deref(p) => self.walk_value(p),
                other => self.walk_value(other),
            },
            Expr::Call(callee, args) => {
                for a in args {
                    self.walk_value(a);
                }
                match &**callee {
                    Expr::Var(name) if self.is_direct_callee(name) => {
                        let f = self.program.function(name).expect("checked");
                        if f.attrs.allocator {
                            self.alloc_counter += 1;
                            let site = format!("{}#{}", self.func, self.alloc_counter);
                            self.map
                                .alloc_sites
                                .entry((self.func.clone(), expr_str(e)))
                                .or_default()
                                .push(site);
                        }
                    }
                    other => self.walk_value(other),
                }
            }
        }
    }

    /// Mirrors `gen_value`'s direct-call condition (`ctx_local_shadows`).
    fn is_direct_callee(&self, name: &str) -> bool {
        if self.program.function(name).is_none() {
            return false;
        }
        match self.ctx.lookup(name) {
            Some(Type::Func(_)) | None => true,
            Some(_) => false,
        }
    }

    /// Mirrors `ConstraintGen::var_loc`.
    fn var_loc(&self, name: &str) -> Option<AbsLoc> {
        if self.ctx.lookup(name).is_some() {
            if self.program.global(name).is_some() {
                return Some(AbsLoc::Exact(Loc::Global(name.to_string())));
            }
            if self.program.function(name).is_some()
                && matches!(self.ctx.lookup(name), Some(Type::Func(_)) | None)
            {
                return None;
            }
            return Some(AbsLoc::Exact(Loc::Local {
                func: self.func.clone(),
                var: name.to_string(),
            }));
        }
        if self.program.global(name).is_some() {
            return Some(AbsLoc::Exact(Loc::Global(name.to_string())));
        }
        None
    }

    /// The syntactic abstraction of a value expression, when one is
    /// determinable without running: address-of forms, function constants,
    /// and array decay. Mirrors the `AddrOf`/`Func` cases of `gen_value`.
    /// Casts are transparent. An empty result means "resolve at run time".
    fn rhs_abstraction(&self, e: &Expr) -> Vec<AbsLoc> {
        let e = peel_casts(e);
        match e {
            Expr::Var(name) if self.is_direct_callee(name) => {
                vec![AbsLoc::Exact(Loc::Func(name.to_string()))]
            }
            Expr::AddrOf(inner) => match &**inner {
                Expr::Var(name) => {
                    if self.is_direct_callee(name) {
                        vec![AbsLoc::Exact(Loc::Func(name.to_string()))]
                    } else {
                        self.var_loc(name).into_iter().collect()
                    }
                }
                Expr::Arrow(obj, field) | Expr::Field(obj, field) => {
                    vec![field_abs(self.ctx.composite_name_of(obj), field)]
                }
                Expr::Index(base, _) => self.decay_or_var(base),
                _ => Vec::new(),
            },
            // Everything else (loads, calls, arithmetic) resolves at run
            // time; allocator-call results in particular resolve through
            // the `Alloc` event, whose site numbers this same traversal
            // assigns.
            other => self.decay_target(other),
        }
    }

    /// `&base[i]` follows `gen_value(base)`: arrays (and array fields)
    /// decay to their own location; pointer bases contribute nothing
    /// syntactically.
    fn decay_or_var(&self, base: &Expr) -> Vec<AbsLoc> {
        self.decay_target(peel_casts(base))
    }
}

fn field_abs(composite: Option<String>, field: &str) -> AbsLoc {
    AbsLoc::Field {
        composite: composite.unwrap_or_else(|| "<unknown>".to_string()),
        field: field.to_string(),
    }
}

fn peel_casts(e: &Expr) -> &Expr {
    match e {
        Expr::Cast(_, inner) => peel_casts(inner),
        other => other,
    }
}

/// Convenience used by the checker: is a function's return type a pointer
/// (so `PtrReturn` events have a static `Ret` location to check against)?
pub fn returns_pointer(program: &Program, func: &Function) -> bool {
    matches!(
        program.resolve_type(&func.ret),
        Type::Ptr(..) | Type::Func(_)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivy_cmir::parser::parse_program;

    const SRC: &str = r#"
        #[allocator]
        extern fn kmalloc(size: u32, flags: u32) -> void *;
        struct node { next: struct node *; buf: u8[8]; }
        global head: struct node *;
        global slots: u8 *[4];
        fn mk(n: u32) -> struct node * {
            let a: struct node * = kmalloc(sizeof(struct node), 0) as struct node *;
            let b: struct node * = kmalloc(sizeof(struct node), 0) as struct node *;
            a->next = b;
            head = a;
            slots[0] = &a->buf[0];
            *b = *a;
            return a;
        }
    "#;

    #[test]
    fn slots_and_alloc_sites_mirror_the_generator() {
        let p = parse_program(SRC).unwrap();
        let m = AbstractionMap::build(&p);

        // Two identical allocator call texts -> two candidate sites.
        let sites = m.alloc_sites("mk", "kmalloc(sizeof(struct node), 0)");
        assert_eq!(sites, ["mk#1", "mk#2"]);

        // Field store.
        let e = m.slot("mk", "a->next").unwrap();
        assert_eq!(
            e.kinds,
            vec![SlotKind::Direct(vec![AbsLoc::Field {
                composite: "node".into(),
                field: "next".into()
            }])]
        );

        // Global store records the function-constant-free rhs runtime-only.
        let e = m.slot("mk", "head").unwrap();
        assert_eq!(
            e.kinds,
            vec![SlotKind::Direct(vec![AbsLoc::Exact(Loc::Global(
                "head".into()
            ))])]
        );

        // Store into a global pointer array is a direct store to the
        // array's own location (array decay), with the `&a->buf[0]` rhs
        // contributing its field abstraction as a candidate.
        let e = m.slot("mk", "slots[0]").unwrap();
        assert_eq!(
            e.kinds,
            vec![SlotKind::Direct(vec![AbsLoc::Exact(Loc::Global(
                "slots".into()
            ))])]
        );
        assert_eq!(
            e.rhs_syntactic,
            vec![AbsLoc::Field {
                composite: "node".into(),
                field: "buf".into()
            }]
        );

        // `*b = ...` stores through the pointer b.
        let e = m.slot("mk", "*b").unwrap();
        assert_eq!(
            e.kinds,
            vec![SlotKind::ThroughPtr(vec![AbsLoc::Exact(Loc::Local {
                func: "mk".into(),
                var: "b".into()
            })])]
        );
    }

    #[test]
    fn materialization_tracks_sensitivity() {
        let f = AbsLoc::Field {
            composite: "node".into(),
            field: "next".into(),
        };
        assert_eq!(
            f.materialize(Sensitivity::AndersenField),
            Loc::Field {
                composite: "node".into(),
                field: "next".into()
            }
        );
        assert_eq!(
            f.materialize(Sensitivity::Andersen),
            Loc::Composite("node".into())
        );
        let unknown = AbsLoc::Field {
            composite: "<unknown>".into(),
            field: "x".into(),
        };
        assert_eq!(
            unknown.materialize(Sensitivity::AndersenField),
            Loc::Composite("<unknown>".into())
        );
    }
}
