//! The subsumption check: every dynamic fact must be covered by the
//! static over-approximation.
//!
//! * **points-to** — for every observed pointer store, some abstraction of
//!   the concrete target must be in the static `pts` set of the slot the
//!   analysis uses for that lvalue (stores through pointers check
//!   transitively through the pointer's own points-to set);
//! * **indirect calls** — every function actually reached through a
//!   function pointer must be in `indirect_targets` for that site;
//! * **blocking-in-atomic** — every run-time blocking violation must be
//!   covered by a BlockStop finding against the same caller;
//! * **bad frees** — every free the VM's reference counts rejected must
//!   happen in a function whose CCount instrumentation covers a free site.
//!
//! A miss is a [`Violation`]. The same pass measures **precision**: the
//! fraction of each static claim that was dynamically witnessed.

use crate::absmap::{AbstractionMap, SlotKind};
use crate::dynfacts::{DynFacts, SlotId};
use ivy_analysis::pointsto::{Loc, PointsToResult, Sensitivity};
use ivy_blockstop::BlockStopReport;
use ivy_ccount::InstrumentationReport;
use serde_json::{Map, Value};
use std::collections::{BTreeMap, BTreeSet};

/// The static side of the differential comparison at one sensitivity.
pub struct StaticModel {
    /// Precision level of `pts` and `blockstop`.
    pub sensitivity: Sensitivity,
    /// The points-to solution (worklist solver).
    pub pts: PointsToResult,
    /// BlockStop at the same sensitivity, default configuration (no
    /// silencing assertions — the oracle validates the raw analysis).
    pub blockstop: BlockStopReport,
    /// Program-level CCount instrumentation report.
    pub ccount_program: InstrumentationReport,
    /// Per-function CCount instrumentation reports
    /// (`ivy_ccount::analyze_by_function`).
    pub ccount_by_fn: BTreeMap<String, InstrumentationReport>,
}

/// Which analysis a violation indicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ViolationKind {
    /// A dynamic points-to fact outside the static `pts` set.
    PointsTo,
    /// A dynamically-reached indirect-call target missing statically.
    IndirectCall,
    /// A run-time blocking-in-atomic event with no BlockStop finding.
    BlockStop,
    /// A VM-caught bad free in a function CCount did not instrument.
    CCount,
}

impl ViolationKind {
    /// Stable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            ViolationKind::PointsTo => "points-to",
            ViolationKind::IndirectCall => "indirect-call",
            ViolationKind::BlockStop => "blockstop",
            ViolationKind::CCount => "ccount",
        }
    }
}

/// One soundness violation: a concrete execution produced a fact the
/// static analysis' answer does not cover.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The analysis indicted.
    pub kind: ViolationKind,
    /// Sensitivity at which the static side ran.
    pub sensitivity: Sensitivity,
    /// What was observed and what was missing.
    pub message: String,
    /// A stable identity for the violated fact (used to confirm a
    /// minimized reproducer still exhibits the same violation).
    pub key: String,
    /// What the static side *did* derive for the violated slot: a
    /// provenance chain for one claimed fact when the model was solved
    /// with tracing, or a statement of which seed constraint is missing.
    /// Diagnosing an unsoundness starts here — it says whether the
    /// constraint generator missed the seed entirely or the solver failed
    /// to propagate it.
    pub static_derivation: Option<String>,
    /// A minimized reproducer, attached by the harness.
    pub reproducer: Option<crate::report::Reproducer>,
}

/// `witnessed / claimed` for one analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrecisionRow {
    /// Static claims dynamically witnessed.
    pub witnessed: usize,
    /// Static claims in scope of the traced executions.
    pub claimed: usize,
}

impl PrecisionRow {
    /// Witnessed fraction (1.0 when nothing was claimed).
    pub fn rate(&self) -> f64 {
        if self.claimed == 0 {
            1.0
        } else {
            self.witnessed as f64 / self.claimed as f64
        }
    }

    fn add(&mut self, witnessed: usize, claimed: usize) {
        self.witnessed += witnessed;
        self.claimed += claimed;
    }
}

/// Precision of every checker at one sensitivity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Precision {
    /// Points-to: witnessed pointees over claimed pointees, across the
    /// observed slots.
    pub pointsto: PrecisionRow,
    /// Indirect calls: witnessed targets over claimed targets, across the
    /// observed sites.
    pub indirect: PrecisionRow,
    /// BlockStop: findings confirmed by a run-time violation over total
    /// findings.
    pub blockstop: PrecisionRow,
    /// CCount: functions with an observed bad free over functions with
    /// instrumented free sites.
    pub ccount: PrecisionRow,
}

impl Precision {
    /// Serializes to the stable JSON object used in the oracle report.
    pub fn to_value(&self) -> Value {
        let row = |r: &PrecisionRow| {
            let mut m = Map::new();
            m.insert("witnessed".into(), Value::from(r.witnessed as u64));
            m.insert("claimed".into(), Value::from(r.claimed as u64));
            m.insert("rate".into(), Value::from(r.rate()));
            Value::Object(m)
        };
        let mut m = Map::new();
        m.insert("pointsto".into(), row(&self.pointsto));
        m.insert("indirect".into(), row(&self.indirect));
        m.insert("blockstop".into(), row(&self.blockstop));
        m.insert("ccount".into(), row(&self.ccount));
        Value::Object(m)
    }
}

/// Checks every dynamic fact against a static model; returns the
/// violations and the precision measurement. The program is only consulted
/// when a violation needs its static-side derivation explained (indirect
/// sites are found by regenerating constraints).
pub fn check_subsumption(
    program: &ivy_cmir::ast::Program,
    map: &AbstractionMap,
    facts: &DynFacts,
    model: &StaticModel,
) -> (Vec<Violation>, Precision) {
    let _span = ivy_telemetry::span("oracle/subsumption", model.sensitivity.name());
    let timer = ivy_telemetry::counters_enabled().then(std::time::Instant::now);
    let mut violations = Vec::new();
    let mut precision = Precision::default();
    let s = model.sensitivity;
    let pts = model.pts.pts();
    let empty: BTreeSet<Loc> = BTreeSet::new();
    let pts_of = |l: &Loc| pts.get(l).unwrap_or(&empty);

    // ---- points-to subsumption --------------------------------------
    // Witnessed pointees per materialized slot location, for precision.
    let mut witnessed: BTreeMap<Loc, BTreeSet<Loc>> = BTreeMap::new();
    for (slot, candidates) in &facts.ptr_facts {
        let cand: BTreeSet<&Loc> = candidates.iter().collect();
        let kinds: Vec<SlotKind> = match slot {
            SlotId::Lvalue(f, text, true) => {
                vec![SlotKind::Direct(vec![crate::absmap::AbsLoc::Exact(
                    Loc::Local {
                        func: f.clone(),
                        var: text.clone(),
                    },
                )])]
            }
            SlotId::Lvalue(f, text, false) => match map.slot(f, text) {
                Some(e) => e.kinds.clone(),
                None => continue,
            },
            SlotId::Param(f, p) => vec![SlotKind::Direct(vec![crate::absmap::AbsLoc::Exact(
                Loc::Local {
                    func: f.clone(),
                    var: p.clone(),
                },
            )])],
            SlotId::Ret(f) => vec![SlotKind::Direct(vec![crate::absmap::AbsLoc::Exact(
                Loc::Ret(f.clone()),
            )])],
        };
        let mut covered = false;
        let mut opaque = false;
        // The materialized locations checked, retained so a miss can report
        // what the static side did derive for them.
        let mut checked: Vec<Loc> = Vec::new();
        for kind in &kinds {
            match kind {
                SlotKind::Opaque => opaque = true,
                SlotKind::Direct(locs) => {
                    for l in locs {
                        let l = l.materialize(s);
                        checked.push(l.clone());
                        let set = pts_of(&l);
                        let hit: Vec<Loc> =
                            set.iter().filter(|p| cand.contains(p)).cloned().collect();
                        if !hit.is_empty() {
                            covered = true;
                            witnessed.entry(l).or_default().extend(hit);
                        }
                    }
                }
                SlotKind::ThroughPtr(locs) => {
                    for l in locs {
                        let l = l.materialize(s);
                        for t in pts_of(&l) {
                            if pts_of(t).iter().any(|p| cand.contains(p)) {
                                covered = true;
                            }
                        }
                    }
                }
            }
        }
        if !covered && !opaque {
            violations.push(Violation {
                kind: ViolationKind::PointsTo,
                sensitivity: s,
                message: format!(
                    "observed target {:?} of `{}` is outside the static points-to set",
                    candidates,
                    slot.describe()
                ),
                key: format!("pts:{slot:?}"),
                static_derivation: Some(describe_static_pts(&model.pts, &checked)),
                reproducer: None,
            });
        }
    }
    // Precision over the *directly observed* slots only: slots the traced
    // executions never touched say nothing about precision.
    for (l, wit) in &witnessed {
        precision.pointsto.add(wit.len(), pts_of(l).len());
    }

    // ---- indirect-call subsumption ----------------------------------
    let mut observed_sites: BTreeMap<(String, String), BTreeSet<&str>> = BTreeMap::new();
    for (caller, text, target) in &facts.indirect_facts {
        observed_sites
            .entry((caller.clone(), text.clone()))
            .or_default()
            .insert(target);
        let covered = model
            .pts
            .indirect_targets_for(caller, text)
            .map(|t| t.contains(target))
            .unwrap_or(false);
        if !covered {
            violations.push(Violation {
                kind: ViolationKind::IndirectCall,
                sensitivity: s,
                message: format!(
                    "indirect call `{text}` in `{caller}` reached `{target}`, \
                     which the static target set does not contain"
                ),
                key: format!("indirect:{caller}:{text}:{target}"),
                static_derivation: Some(describe_static_indirect(program, model, caller, text)),
                reproducer: None,
            });
        }
    }
    for ((caller, text), targets) in &observed_sites {
        let stat = model.pts.indirect_call_targets(caller, text);
        precision.indirect.add(
            targets.iter().filter(|t| stat.contains(**t)).count(),
            stat.len(),
        );
    }

    // ---- blocking-in-atomic subsumption -----------------------------
    for (caller, callee) in &facts.blocking_facts {
        let covered = model.blockstop.covers_runtime_violation(caller, callee);
        if !covered {
            violations.push(Violation {
                kind: ViolationKind::BlockStop,
                sensitivity: s,
                message: format!(
                    "run-time blocking call `{caller}` -> `{callee}` in atomic context \
                     has no BlockStop finding against `{caller}`"
                ),
                key: format!("blockstop:{caller}:{callee}"),
                static_derivation: Some(describe_static_blockstop(model, caller)),
                reproducer: None,
            });
        }
    }
    let runtime_callers: BTreeSet<&String> = facts.blocking_facts.iter().map(|(c, _)| c).collect();
    precision.blockstop.add(
        model
            .blockstop
            .findings
            .iter()
            .filter(|f| runtime_callers.contains(&f.caller))
            .count(),
        model.blockstop.findings.len(),
    );

    // ---- bad-free subsumption ---------------------------------------
    for (func, delayed) in &facts.bad_free_facts {
        let per_fn = model
            .ccount_by_fn
            .get(func)
            .map(|r| r.free_sites)
            .unwrap_or(0);
        // A deferred free completes at the end of its delayed-free scope,
        // which can live in a different function than the `kfree` call;
        // any instrumented free site in the program covers it then.
        let covered =
            per_fn > 0 || (*delayed && model.ccount_program.free_sites > 0) || func.is_empty();
        if !covered {
            violations.push(Violation {
                kind: ViolationKind::CCount,
                sensitivity: s,
                message: format!(
                    "run-time bad free in `{func}` but CCount instruments no free site there"
                ),
                key: format!("ccount:{func}"),
                static_derivation: Some(format!(
                    "static side instruments {} free site(s) program-wide, none in `{func}` \
                     — the free-site seed for this function is missing",
                    model.ccount_program.free_sites
                )),
                reproducer: None,
            });
        }
    }
    let bad_free_fns: BTreeSet<&String> = facts.bad_free_facts.iter().map(|(f, _)| f).collect();
    let claimed_fns = model
        .ccount_by_fn
        .iter()
        .filter(|(_, r)| r.free_sites > 0)
        .count();
    precision.ccount.add(
        model
            .ccount_by_fn
            .iter()
            .filter(|(f, r)| r.free_sites > 0 && bad_free_fns.contains(f))
            .count(),
        claimed_fns,
    );

    if let Some(start) = timer {
        ivy_telemetry::counter_labeled(
            "ivy_oracle_subsumption_micros_total",
            "sensitivity",
            model.sensitivity.name(),
            start.elapsed().as_micros() as u64,
        );
        ivy_telemetry::counter_labeled(
            "ivy_oracle_subsumption_checks_total",
            "sensitivity",
            model.sensitivity.name(),
            1,
        );
    }

    (violations, precision)
}

/// What the static side *did* derive for the checked slot locations: the
/// shortest derivation for one claimed pointee when the model was solved
/// with provenance, the claimed set otherwise, or — when the set is
/// empty — the statement that no seed constraint reaches the slot at all.
fn describe_static_pts(pts: &PointsToResult, checked: &[Loc]) -> String {
    for l in checked {
        let set = pts.points_to(l);
        let Some(first) = set.iter().next() else {
            continue;
        };
        if let Some(chain) = pts.why(l, first) {
            let lines: Vec<String> = chain
                .iter()
                .map(|c| format!("    {}", c.render()))
                .collect();
            return format!(
                "static side does derive `{l}` -> `{first}`:\n{}",
                lines.join("\n")
            );
        }
        return format!(
            "static side claims `{l}` may point to: {} \
             (solved without provenance; re-run with IVY_PROVENANCE=1 for the derivation)",
            set.iter()
                .map(|p| p.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    match checked.first() {
        Some(l) => format!(
            "static side derives nothing for `{l}`: no seed constraint \
             (address-of or allocation) ever reaches this slot — the seed for \
             the observed target is missing"
        ),
        None => "static side has no abstraction for this slot".to_string(),
    }
}

/// The static side of an indirect-call miss: the targets it did resolve
/// with the derivation of one of them, or the statement that the
/// function-pointer seed is missing entirely.
fn describe_static_indirect(
    program: &ivy_cmir::ast::Program,
    model: &StaticModel,
    caller: &str,
    text: &str,
) -> String {
    let targets = model.pts.indirect_call_targets(caller, text);
    let listed = targets.iter().cloned().collect::<Vec<_>>().join(", ");
    let Some(first) = targets.iter().next() else {
        return format!(
            "static side resolves no target for `{text}` in `{caller}` — the \
             address-of seed that would make the callee point at the observed \
             function is missing"
        );
    };
    if let Some(chain) = model.pts.why_indirect(program, caller, text, first) {
        let lines: Vec<String> = chain
            .iter()
            .map(|c| format!("    {}", c.render()))
            .collect();
        return format!(
            "static side does resolve `{text}` to {{{listed}}}; derivation for `{first}`:\n{}",
            lines.join("\n")
        );
    }
    format!("static side does resolve `{text}` to {{{listed}}} (solved without provenance)")
}

/// The static side of a blocking-in-atomic miss: the findings BlockStop
/// did raise against the caller, or which seed (atomic-region membership
/// or may-block propagation) never reached it.
fn describe_static_blockstop(model: &StaticModel, caller: &str) -> String {
    let findings: Vec<String> = model
        .blockstop
        .findings
        .iter()
        .filter(|f| f.caller == caller)
        .map(|f| format!("`{}` ({})", f.callee_text, f.example_chain.join(" -> ")))
        .collect();
    if !findings.is_empty() {
        return format!(
            "static side does flag {} other call(s) in `{caller}`: {}",
            findings.len(),
            findings.join("; ")
        );
    }
    if model.blockstop.atomic_functions.contains(caller) {
        "static side does consider the caller atomic but never saw the callee \
         as may-block — the may-block propagation seed is missing"
            .to_string()
    } else {
        format!(
            "static side never marks `{caller}` atomic — the atomic-region seed \
             (irq handler or spinlock path reaching it) is missing"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::absmap::AbstractionMap;

    /// A model whose static answers are all empty: every defect-class
    /// fact must become a violation (pins the BlockStop and CCount
    /// subsumption paths without needing an unsound analysis).
    fn empty_model() -> StaticModel {
        StaticModel {
            sensitivity: Sensitivity::Andersen,
            pts: PointsToResult::default(),
            blockstop: BlockStopReport::default(),
            ccount_program: InstrumentationReport::default(),
            ccount_by_fn: BTreeMap::new(),
        }
    }

    #[test]
    fn uncovered_defect_events_are_violations() {
        let mut facts = DynFacts::default();
        facts
            .blocking_facts
            .insert(("poll".to_string(), "msleep".to_string()));
        facts.bad_free_facts.insert(("teardown".to_string(), false));
        let map = AbstractionMap::default();
        let program = ivy_cmir::parser::parse_program("fn main() { }").unwrap();
        let (violations, _) = check_subsumption(&program, &map, &facts, &empty_model());
        let kinds: Vec<ViolationKind> = violations.iter().map(|v| v.kind).collect();
        assert!(kinds.contains(&ViolationKind::BlockStop));
        assert!(kinds.contains(&ViolationKind::CCount));
        // Every violation explains what the static side did (or did not)
        // derive — a miss is only actionable with its missing seed named.
        assert!(violations.iter().all(|v| v
            .static_derivation
            .as_deref()
            .is_some_and(|d| !d.is_empty())));
    }

    #[test]
    fn delayed_bad_frees_are_covered_by_any_instrumented_site() {
        let mut facts = DynFacts::default();
        facts.bad_free_facts.insert(("scope_end".to_string(), true));
        let mut model = empty_model();
        model.ccount_program.free_sites = 3;
        let map = AbstractionMap::default();
        let program = ivy_cmir::parser::parse_program("fn main() { }").unwrap();
        let (violations, _) = check_subsumption(&program, &map, &facts, &model);
        assert!(
            violations.is_empty(),
            "a deferred free may complete away from its call site: {violations:?}"
        );
    }
}
