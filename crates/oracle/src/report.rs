//! The oracle's report: fact counts, violations with reproducers, and
//! per-checker precision, with a stable JSON encoding.

use crate::check::{Precision, Violation};
use serde_json::{Map, Value};
use std::collections::{BTreeMap, BTreeSet};

/// A minimized witness of a soundness violation: run the entry session on
/// `source` (in order — later entries may rely on state earlier ones set
/// up) and the reported dynamic fact escapes the static answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reproducer {
    /// The (minimized) KC program.
    pub source: String,
    /// The traced session's entries, in execution order.
    pub entries: Vec<crate::EntrySpec>,
}

impl Reproducer {
    /// Renders the reproducer for a report or failure message.
    pub fn render(&self) -> String {
        let session = self
            .entries
            .iter()
            .map(|e| {
                format!(
                    "{}({})",
                    e.entry,
                    e.args
                        .iter()
                        .map(|a| a.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            })
            .collect::<Vec<_>>()
            .join("; ");
        format!(
            "// reproduce: run the session `{session}` with the tracer attached\n{}",
            self.source
        )
    }
}

/// Counts of the dynamic facts an oracle run traced and checked.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FactCounts {
    /// Deduplicated pointer observations checked.
    pub ptr_facts: usize,
    /// Deduplicated indirect-call resolutions checked.
    pub indirect_facts: usize,
    /// Deduplicated blocking-in-atomic events checked.
    pub blocking_facts: usize,
    /// Deduplicated bad-free events checked.
    pub bad_free_facts: usize,
    /// Deduplicated failed run-time checks traced.
    pub check_failures: usize,
    /// Raw pointer events observed before deduplication.
    pub ptr_events: u64,
    /// Pointer events skipped for lack of a static abstraction.
    pub unresolved: u64,
}

impl FactCounts {
    /// Total deduplicated checked facts.
    pub fn total(&self) -> usize {
        self.ptr_facts + self.indirect_facts + self.blocking_facts + self.bad_free_facts
    }
}

/// The outcome of running the oracle over one or more programs.
#[derive(Debug, Clone, Default)]
pub struct OracleReport {
    /// Programs driven through the oracle.
    pub programs: usize,
    /// Entry executions performed (programs × entries).
    pub entries_run: usize,
    /// Entry executions that trapped (their partial trace still counts).
    pub traps: usize,
    /// Traced fact counts, aggregated.
    pub facts: FactCounts,
    /// Soundness violations (empty is the acceptance criterion).
    pub violations: Vec<Violation>,
    /// Precision per sensitivity name.
    pub precision: BTreeMap<String, Precision>,
    /// The `(caller, callee)` blocking-in-atomic events observed — the
    /// *dynamic* ground truth experiments classify diagnostics against.
    pub observed_blocking: BTreeSet<(String, String)>,
    /// Functions in which a bad free was observed.
    pub observed_bad_free_functions: BTreeSet<String>,
}

impl OracleReport {
    /// True when no dynamic fact escaped any static analysis.
    pub fn is_sound(&self) -> bool {
        self.violations.is_empty()
    }

    /// Merges another report (e.g. a second program of a fleet run).
    /// Precision rows are summed per sensitivity.
    pub fn merge(&mut self, other: OracleReport) {
        self.programs += other.programs;
        self.entries_run += other.entries_run;
        self.traps += other.traps;
        self.facts.ptr_facts += other.facts.ptr_facts;
        self.facts.indirect_facts += other.facts.indirect_facts;
        self.facts.blocking_facts += other.facts.blocking_facts;
        self.facts.bad_free_facts += other.facts.bad_free_facts;
        self.facts.check_failures += other.facts.check_failures;
        self.facts.ptr_events += other.facts.ptr_events;
        self.facts.unresolved += other.facts.unresolved;
        self.violations.extend(other.violations);
        self.observed_blocking.extend(other.observed_blocking);
        self.observed_bad_free_functions
            .extend(other.observed_bad_free_functions);
        for (sens, p) in other.precision {
            let row = self.precision.entry(sens).or_default();
            merge_row(&mut row.pointsto, p.pointsto);
            merge_row(&mut row.indirect, p.indirect);
            merge_row(&mut row.blockstop, p.blockstop);
            merge_row(&mut row.ccount, p.ccount);
        }
    }

    /// Serializes to the stable JSON object (sorted keys, content only).
    pub fn to_value(&self) -> Value {
        let mut facts = Map::new();
        facts.insert("ptr_facts".into(), Value::from(self.facts.ptr_facts as u64));
        facts.insert(
            "indirect_facts".into(),
            Value::from(self.facts.indirect_facts as u64),
        );
        facts.insert(
            "blocking_facts".into(),
            Value::from(self.facts.blocking_facts as u64),
        );
        facts.insert(
            "bad_free_facts".into(),
            Value::from(self.facts.bad_free_facts as u64),
        );
        facts.insert(
            "check_failures".into(),
            Value::from(self.facts.check_failures as u64),
        );
        facts.insert("ptr_events".into(), Value::from(self.facts.ptr_events));
        facts.insert("unresolved".into(), Value::from(self.facts.unresolved));

        let violations: Vec<Value> = self
            .violations
            .iter()
            .map(|v| {
                let mut m = Map::new();
                m.insert("kind".into(), Value::from(v.kind.name()));
                m.insert("sensitivity".into(), Value::from(v.sensitivity.name()));
                m.insert("message".into(), Value::from(v.message.as_str()));
                m.insert("key".into(), Value::from(v.key.as_str()));
                if let Some(d) = &v.static_derivation {
                    m.insert("static_derivation".into(), Value::from(d.as_str()));
                }
                if let Some(r) = &v.reproducer {
                    let mut rm = Map::new();
                    rm.insert(
                        "entries".into(),
                        Value::Array(
                            r.entries
                                .iter()
                                .map(|e| {
                                    let mut em = Map::new();
                                    em.insert("entry".into(), Value::from(e.entry.as_str()));
                                    em.insert(
                                        "args".into(),
                                        Value::Array(
                                            e.args.iter().map(|a| Value::from(*a)).collect(),
                                        ),
                                    );
                                    Value::Object(em)
                                })
                                .collect(),
                        ),
                    );
                    rm.insert("source".into(), Value::from(r.source.as_str()));
                    m.insert("reproducer".into(), Value::Object(rm));
                }
                Value::Object(m)
            })
            .collect();

        let mut precision = Map::new();
        for (sens, p) in &self.precision {
            precision.insert(sens.clone(), p.to_value());
        }

        let mut root = Map::new();
        root.insert("programs".into(), Value::from(self.programs as u64));
        root.insert("entries_run".into(), Value::from(self.entries_run as u64));
        root.insert("traps".into(), Value::from(self.traps as u64));
        root.insert("facts".into(), Value::Object(facts));
        root.insert("violations".into(), Value::Array(violations));
        root.insert("precision".into(), Value::Object(precision));
        root.insert(
            "observed_blocking".into(),
            Value::Array(
                self.observed_blocking
                    .iter()
                    .map(|(caller, callee)| Value::from(format!("{caller} -> {callee}")))
                    .collect(),
            ),
        );
        root.insert(
            "observed_bad_free_functions".into(),
            Value::Array(
                self.observed_bad_free_functions
                    .iter()
                    .map(|f| Value::from(f.as_str()))
                    .collect(),
            ),
        );
        Value::Object(root)
    }

    /// Stable pretty JSON (the `OracleReport` wire format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.to_value()).expect("serializes")
    }

    /// A one-paragraph human summary: violations first, then coverage.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "oracle: {} program(s), {} entry run(s) ({} trapped), {} fact(s) checked \
             ({} pointer, {} indirect, {} blocking, {} bad-free; {} unresolved)",
            self.programs,
            self.entries_run,
            self.traps,
            self.facts.total(),
            self.facts.ptr_facts,
            self.facts.indirect_facts,
            self.facts.blocking_facts,
            self.facts.bad_free_facts,
            self.facts.unresolved,
        );
        if self.violations.is_empty() {
            let _ = writeln!(out, "soundness: OK (0 violations)");
        } else {
            let _ = writeln!(out, "soundness: {} VIOLATION(S)", self.violations.len());
            for v in &self.violations {
                let _ = writeln!(
                    out,
                    "  [{} @ {}] {}",
                    v.kind.name(),
                    v.sensitivity.name(),
                    v.message
                );
                if let Some(d) = &v.static_derivation {
                    let _ = writeln!(out, "  {d}");
                }
                if let Some(r) = &v.reproducer {
                    let _ = writeln!(out, "{}", r.render());
                }
            }
        }
        for (sens, p) in &self.precision {
            let _ = writeln!(
                out,
                "precision[{sens}]: pts {:.3} ({}/{}), indirect {:.3} ({}/{}), \
                 blockstop {:.3} ({}/{}), ccount {:.3} ({}/{})",
                p.pointsto.rate(),
                p.pointsto.witnessed,
                p.pointsto.claimed,
                p.indirect.rate(),
                p.indirect.witnessed,
                p.indirect.claimed,
                p.blockstop.rate(),
                p.blockstop.witnessed,
                p.blockstop.claimed,
                p.ccount.rate(),
                p.ccount.witnessed,
                p.ccount.claimed,
            );
        }
        out
    }
}

fn merge_row(into: &mut crate::check::PrecisionRow, from: crate::check::PrecisionRow) {
    into.witnessed += from.witnessed;
    into.claimed += from.claimed;
}
