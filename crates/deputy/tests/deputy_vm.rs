//! End-to-end tests: Deputy conversion + VM execution.
//!
//! These tests exercise the paper's central claims about Deputy: the
//! deputized program behaves identically to the original except for trapping
//! on memory-safety violations, wrong annotations are caught by the inserted
//! checks (annotations are untrusted), erasure recovers the original
//! behaviour, and the run-time overhead is modest.

use ivy_cmir::parser::parse_program;
use ivy_deputy::{erase, Deputy};
use ivy_vm::{TrapKind, Value, Vm, VmConfig};

const KERNEL_SNIPPET: &str = r#"
    #[allocator]
    extern fn kmalloc(size: u32, flags: u32) -> void *;
    extern fn kfree(p: void *);

    struct sk_buff {
        len: u32;
        data: u8 * count(len);
    }

    fn skb_alloc(len: u32) -> struct sk_buff * {
        let skb: struct sk_buff * = (kmalloc(sizeof(struct sk_buff), 0) as struct sk_buff *);
        skb->len = len;
        skb->data = (kmalloc(len, 0) as u8 *);
        return skb;
    }

    fn skb_checksum(skb: struct sk_buff * nonnull) -> u32 {
        let acc: u32 = 0;
        let i: u32 = 0;
        while (i < skb->len) {
            acc = acc + (skb->data[i] as u32);
            i = i + 1;
        }
        return acc;
    }

    fn skb_poke(skb: struct sk_buff * nonnull, index: u32, value: u8) {
        skb->data[index] = value;
    }

    fn run_ok() -> u32 {
        let skb: struct sk_buff * = skb_alloc(64);
        skb_poke(skb, 10, 7);
        let sum: u32 = skb_checksum(skb);
        kfree((skb->data as void *));
        kfree((skb as void *));
        return sum;
    }

    fn run_overflow() -> u32 {
        let skb: struct sk_buff * = skb_alloc(64);
        // BUG: writes one element past the buffer.
        skb_poke(skb, 64, 7);
        return 0;
    }
"#;

fn deputize(src: &str) -> ivy_cmir::Program {
    let program = parse_program(src).unwrap();
    let conv = Deputy::new().convert(&program);
    assert!(
        conv.report.accepted(),
        "diagnostics: {:?}",
        conv.report.diagnostics
    );
    conv.program
}

#[test]
fn deputized_program_preserves_correct_behaviour() {
    let plain = parse_program(KERNEL_SNIPPET).unwrap();
    let deputized = deputize(KERNEL_SNIPPET);

    let mut vm_plain = Vm::new(plain, VmConfig::baseline()).unwrap();
    let r_plain = vm_plain.run("run_ok", vec![]).unwrap();

    let mut vm_dep = Vm::new(deputized, VmConfig::deputized()).unwrap();
    let r_dep = vm_dep.run("run_ok", vec![]).unwrap();

    assert_eq!(
        r_plain, r_dep,
        "checks must not change observable behaviour"
    );
    assert_eq!(r_plain, Value::Int(7));
    assert!(
        vm_dep.stats.total_checks() > 0,
        "the deputized run must execute checks"
    );
    assert!(vm_dep.stats.check_failures.is_empty());
}

#[test]
fn deputized_program_catches_buffer_overflow() {
    let deputized = deputize(KERNEL_SNIPPET);
    let cfg = VmConfig {
        trap_on_check_failure: true,
        ..VmConfig::deputized()
    };
    let mut vm = Vm::new(deputized, cfg).unwrap();
    let err = vm.run("run_overflow", vec![]).unwrap_err();
    assert_eq!(err.kind, TrapKind::CheckFailure);

    // The same buggy program gets no Deputy diagnosis without checks: it
    // either silently corrupts memory or trips a raw hardware-style memory
    // fault far from the actual bug — exactly what the paper argues against
    // relying on.
    let plain = parse_program(KERNEL_SNIPPET).unwrap();
    let mut vm_plain = Vm::new(plain, VmConfig::baseline()).unwrap();
    match vm_plain.run("run_overflow", vec![]) {
        Ok(_) => {}
        Err(e) => assert_ne!(e.kind, TrapKind::CheckFailure),
    }
    assert!(vm_plain.stats.check_failures.is_empty());
}

#[test]
fn wrong_annotation_is_caught_at_run_time() {
    // The annotation claims 32 elements but the allocation is 16: the
    // annotation is untrusted, so the bounds check uses it *and* the access
    // pattern exposes the lie when the VM object is smaller.
    let src = r#"
        #[allocator]
        extern fn kmalloc(size: u32, flags: u32) -> void *;
        struct buf { n: u32; p: u8 * count(n); }
        fn mk() -> struct buf * {
            let b: struct buf * = (kmalloc(sizeof(struct buf), 0) as struct buf *);
            // Erroneous annotation-relevant initialisation: n says 32 but only
            // 16 bytes are allocated.
            b->n = 32;
            b->p = (kmalloc(16, 0) as u8 *);
            return b;
        }
        fn touch(index: u32) -> u32 {
            let b: struct buf * = mk();
            b->p[index] = 1;
            return 0;
        }
    "#;
    let deputized = deputize(src);
    // Within the claimed (wrong) bound, the annotation-based check passes —
    // Deputy is only as good as the annotation for this access...
    let mut vm = Vm::new(deputized.clone(), VmConfig::deputized()).unwrap();
    vm.run("touch", vec![Value::Int(8)]).unwrap();
    assert!(vm.stats.check_failures.is_empty());
    // ...but accesses beyond the annotation are caught by the Deputy check
    // itself (the run may additionally fault afterwards, since this
    // configuration only logs check failures instead of trapping).
    let mut vm2 = Vm::new(deputized, VmConfig::deputized()).unwrap();
    let _ = vm2.run("touch", vec![Value::Int(40)]);
    assert_eq!(vm2.stats.check_failures.len(), 1);
}

#[test]
fn erasure_restores_uninstrumented_cost() {
    let deputized = deputize(KERNEL_SNIPPET);
    let erased = erase(&deputized);

    let mut vm_dep = Vm::new(deputized, VmConfig::deputized()).unwrap();
    vm_dep.run("run_ok", vec![]).unwrap();

    let mut vm_erased = Vm::new(erased, VmConfig::deputized()).unwrap();
    let r = vm_erased.run("run_ok", vec![]).unwrap();

    assert_eq!(r, Value::Int(7));
    assert_eq!(
        vm_erased.stats.total_checks(),
        0,
        "erased program has no checks left"
    );
    assert!(vm_erased.cycles() < vm_dep.cycles());
}

#[test]
fn deputy_overhead_is_modest_on_loop_heavy_code() {
    // The checksum loop is guarded by its own bound, so Deputy discharges the
    // hot-path check statically; overall overhead should stay well under 2x,
    // consistent with Table 1's shape.
    let plain = parse_program(KERNEL_SNIPPET).unwrap();
    let deputized = deputize(KERNEL_SNIPPET);

    let mut vm_plain = Vm::new(plain, VmConfig::baseline()).unwrap();
    vm_plain.run("run_ok", vec![]).unwrap();
    let base = vm_plain.cycles();

    let mut vm_dep = Vm::new(deputized, VmConfig::deputized()).unwrap();
    vm_dep.run("run_ok", vec![]).unwrap();
    let dep = vm_dep.cycles();

    let ratio = dep as f64 / base as f64;
    assert!(ratio >= 1.0);
    assert!(
        ratio < 1.6,
        "Deputy overhead should be modest, got {ratio:.2}"
    );
}
