//! The Deputy checker plugin for `ivy-engine`.
//!
//! Deputy checking decomposes cleanly per function: validation and default
//! inference are prepared once per program ([`PreparedQuery`]), then each
//! function is instrumented independently ([`InstrumentedQuery`]) —
//! call-site obligations only consult *signatures* of callees, never their
//! bodies. The instrumented query is a [`DurableQuery`] keyed by the
//! function's span-insensitive content hash and the whole-program type
//! environment hash: with a persist layer attached, re-deputization after
//! a one-function edit re-instruments exactly the edited function — in
//! this process or a later one — and the instrumented body travels as
//! pretty-printed KC source (the parser round-trips inserted checks).
//! The cache fingerprint for per-function diagnostics is the env hash for
//! the same reason: a body edit leaves every other function's Deputy
//! result cached, which is exactly the dirty-cone behaviour the engine's
//! incremental loop relies on.

use crate::instrument::{convert_function, Conversion, Deputy, DeputyConfig};
use crate::report::{ConversionReport, DeputyDiagnostic, Severity as DeputySeverity};
use ivy_analysis::callgraph::calls_in;
use ivy_analysis::pointsto::Sensitivity;
use ivy_cmir::ast::{Expr, Function, Program};
use ivy_cmir::content::function_content_hash;
use ivy_cmir::parser::parse_program;
use ivy_cmir::pretty::{expr_str, pretty_function, type_str};
use ivy_engine::hash::{fnv1a, mix};
use ivy_engine::json::{Map, Value};
use ivy_engine::persist::{span_from_value, span_to_value};
use ivy_engine::{
    AnalysisCtx, Checker, Diagnostic, DurableQuery, Query, QueryDb, QueryKey, Severity,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

impl QueryKey for DeputyConfig {
    fn stable_hash(&self) -> u64 {
        fnv1a(format!("{self:?}").as_bytes())
    }
}

/// Deputy as an engine plugin.
#[derive(Debug, Clone, Default)]
pub struct DeputyChecker {
    /// The conversion configuration.
    pub config: DeputyConfig,
}

/// The prepared-program result: the program with defaults inferred, plus
/// the validation/inference report.
pub struct Prepared {
    /// Program after validation and default inference.
    pub program: Program,
    /// Validation diagnostics and inference counts.
    pub report: ConversionReport,
}

/// Validation + default inference for a whole program, keyed by the
/// conversion configuration.
pub struct PreparedQuery;

impl Query for PreparedQuery {
    type Key = DeputyConfig;
    type Value = Prepared;
    const NAME: &'static str = "deputy/prepared";

    fn compute(db: &QueryDb, key: &DeputyConfig) -> Prepared {
        // Preparation reads every annotation in the program directly, so
        // dependency-driven invalidation must see the whole-program read.
        db.depend_on_program();
        let deputy = Deputy::with_config(*key);
        let (program, report) = deputy.prepare(&db.program);
        Prepared { program, report }
    }
}

/// Key of [`InstrumentedQuery`]: content-addressed, so a durable entry is
/// valid exactly as long as the function's own definition and the
/// whole-program type environment (the two inputs instrumentation reads)
/// are unchanged — a one-function edit invalidates one entry.
#[derive(Debug, Clone, PartialEq)]
pub struct InstrumentedKey {
    /// Conversion configuration.
    pub config: DeputyConfig,
    /// Function name.
    pub function: String,
    /// Span-insensitive structural hash of the function definition.
    pub content_hash: u64,
    /// Whole-program type environment hash (callee signatures, composites).
    pub env_hash: u64,
}

impl QueryKey for InstrumentedKey {
    fn stable_hash(&self) -> u64 {
        let h = mix(self.config.stable_hash(), fnv1a(self.function.as_bytes()));
        mix(mix(h, self.content_hash), self.env_hash)
    }
}

/// The instrumented ("deputized") form of one function against the
/// prepared program, plus its conversion report. Durable: the body is
/// persisted as pretty-printed KC source and re-parsed on reload.
pub struct InstrumentedQuery;

impl Query for InstrumentedQuery {
    type Key = InstrumentedKey;
    type Value = (Function, ConversionReport);
    const NAME: &'static str = "deputy/instrumented";

    fn compute(db: &QueryDb, key: &InstrumentedKey) -> (Function, ConversionReport) {
        let prepared = db.get::<PreparedQuery>(&key.config);
        let subject = prepared
            .program
            .function(&key.function)
            .or_else(|| db.program.function(&key.function))
            .expect("instrumented query demanded for a known function");
        convert_function(&prepared.program, subject)
    }
}

impl DurableQuery for InstrumentedQuery {
    const FORMAT_VERSION: u32 = 1;

    fn encode(value: &(Function, ConversionReport)) -> Value {
        let mut root = Map::new();
        root.insert(
            "func".into(),
            Value::from(pretty_function(&value.0).as_str()),
        );
        root.insert("report".into(), report_to_value(&value.1));
        Value::Object(root)
    }

    fn decode(raw: &Value) -> Option<(Function, ConversionReport)> {
        let program = parse_program(raw.get("func")?.as_str()?).ok()?;
        let func = program.functions.into_iter().next()?;
        Some((func, report_from_value(raw.get("report")?)?))
    }
}

/// Whole-program conversion assembled from the per-function
/// instrumentations, keyed by configuration.
pub struct ConversionQuery;

impl Query for ConversionQuery {
    type Key = DeputyConfig;
    type Value = Conversion;
    const NAME: &'static str = "deputy/conversion";

    fn compute(db: &QueryDb, key: &DeputyConfig) -> Conversion {
        DeputyChecker::with_config(*key).assemble_conversion(db)
    }
}

/// Resolved indirect-call target groups per function (see
/// [`DeputyChecker::indirect_signature_groups`]); keyed by configuration
/// and function name. Not durable: it reads points-to target sets, and is
/// only demanded when the (off-by-default) drift check is enabled.
pub struct IndirectGroupsQuery;

impl Query for IndirectGroupsQuery {
    type Key = (DeputyConfig, String);
    type Value = BTreeMap<String, BTreeMap<String, BTreeSet<String>>>;
    const NAME: &'static str = "deputy/indirect-groups";

    fn compute(db: &QueryDb, key: &(DeputyConfig, String)) -> Self::Value {
        // The groups read this function's call sites plus whole-program
        // points-to targets (demanded below through the db); anchor the
        // direct body read to the function's content.
        db.fn_content(&key.1);
        let Some(func) = db.program.function(&key.1) else {
            return BTreeMap::new();
        };
        DeputyChecker::with_config(key.0).compute_indirect_signature_groups(db, func)
    }
}

/// Encodes a [`ConversionReport`] for persistence.
fn report_to_value(report: &ConversionReport) -> Value {
    let mut runtime = Map::new();
    for (kind, n) in &report.runtime_checks {
        runtime.insert(kind.clone(), Value::from(*n));
    }
    let mut per_fn = Map::new();
    for (function, n) in &report.checks_per_function {
        per_fn.insert(function.clone(), Value::from(*n));
    }
    let diagnostics: Vec<Value> = report
        .diagnostics
        .iter()
        .map(|d| {
            let mut m = Map::new();
            m.insert("function".into(), Value::from(d.function.as_str()));
            m.insert("message".into(), Value::from(d.message.as_str()));
            m.insert(
                "severity".into(),
                Value::from(match d.severity {
                    DeputySeverity::Error => "error",
                    DeputySeverity::Note => "note",
                }),
            );
            if let Some(span) = &d.span {
                m.insert("span".into(), span_to_value(span));
            }
            Value::Object(m)
        })
        .collect();
    let mut root = Map::new();
    root.insert(
        "static_discharged".into(),
        Value::from(report.static_discharged),
    );
    root.insert(
        "checks_optimized_away".into(),
        Value::from(report.checks_optimized_away),
    );
    root.insert("trusted_sites".into(), Value::from(report.trusted_sites));
    root.insert(
        "inferred_defaults".into(),
        Value::from(report.inferred_defaults),
    );
    root.insert("runtime_checks".into(), Value::Object(runtime));
    root.insert("checks_per_function".into(), Value::Object(per_fn));
    root.insert("diagnostics".into(), Value::Array(diagnostics));
    Value::Object(root)
}

/// Decodes a [`ConversionReport`] from its persisted form.
fn report_from_value(v: &Value) -> Option<ConversionReport> {
    let u64_map = |value: &Value| -> Option<BTreeMap<String, u64>> {
        value
            .as_object()?
            .iter()
            .map(|(k, n)| n.as_u64().map(|n| (k.clone(), n)))
            .collect()
    };
    let diagnostics = v
        .get("diagnostics")?
        .as_array()?
        .iter()
        .map(|d| {
            Some(DeputyDiagnostic {
                function: d.get("function")?.as_str()?.to_string(),
                message: d.get("message")?.as_str()?.to_string(),
                severity: match d.get("severity")?.as_str()? {
                    "error" => DeputySeverity::Error,
                    "note" => DeputySeverity::Note,
                    _ => return None,
                },
                // Present-but-undecodable spans reject the entry (forcing
                // recompute) instead of decaying to a spanless diagnostic.
                span: match d.get("span") {
                    Some(raw) => Some(span_from_value(raw)?),
                    None => None,
                },
            })
        })
        .collect::<Option<Vec<_>>>()?;
    Some(ConversionReport {
        static_discharged: v.get("static_discharged")?.as_u64()?,
        runtime_checks: u64_map(v.get("runtime_checks")?)?,
        checks_optimized_away: v.get("checks_optimized_away")?.as_u64()?,
        trusted_sites: v.get("trusted_sites")?.as_u64()?,
        inferred_defaults: v.get("inferred_defaults")?.as_u64()?,
        diagnostics,
        checks_per_function: u64_map(v.get("checks_per_function")?)?,
    })
}

impl DeputyChecker {
    /// A plugin with the default configuration.
    pub fn new() -> DeputyChecker {
        DeputyChecker::default()
    }

    /// A plugin with a specific configuration.
    pub fn with_config(config: DeputyConfig) -> DeputyChecker {
        DeputyChecker { config }
    }

    fn config_hash(&self) -> u64 {
        self.config.stable_hash()
    }

    /// The prepared program for a shared context, computed once.
    pub fn prepared(&self, ctx: &AnalysisCtx) -> Arc<Prepared> {
        ctx.get::<PreparedQuery>(&self.config)
    }

    /// The instrumented form of one function (against the prepared
    /// program), demanded through the durable query layer so the
    /// per-function checking pass, a later whole-program
    /// [`DeputyChecker::conversion`], and warm-started processes all share
    /// the work.
    pub fn instrumented(
        &self,
        ctx: &AnalysisCtx,
        func: &Function,
    ) -> Arc<(Function, ConversionReport)> {
        let key = InstrumentedKey {
            config: self.config,
            function: func.name.clone(),
            content_hash: function_content_hash(func),
            env_hash: ctx.env_hash(),
        };
        ctx.get_durable::<InstrumentedQuery>(&key)
    }

    /// The full conversion of a context's program, assembled from the
    /// memoized per-function instrumentations (so a pipeline that already
    /// ran the checker pays nothing extra) and memoized itself. Produces
    /// the same program and report as [`Deputy::convert`].
    pub fn conversion(&self, ctx: &AnalysisCtx) -> Arc<Conversion> {
        ctx.get::<ConversionQuery>(&self.config)
    }

    /// The body of [`ConversionQuery::compute`]; separated so the query
    /// and direct callers share one implementation.
    fn assemble_conversion(&self, db: &QueryDb) -> Conversion {
        let prepared = db.get::<PreparedQuery>(&self.config);
        let mut program = prepared.program.clone();
        let mut report = prepared.report.clone();
        if self.config.insert_checks {
            let env_hash = db.env_hash();
            for func in db.program.functions.iter().filter(|f| f.body.is_some()) {
                let key = InstrumentedKey {
                    config: self.config,
                    function: func.name.clone(),
                    content_hash: function_content_hash(func),
                    env_hash,
                };
                let instrumented = db.get_durable::<InstrumentedQuery>(&key);
                program.add_function(instrumented.0.clone());
                report.merge(&instrumented.1);
            }
        }
        if self.config.optimize {
            report.checks_optimized_away =
                crate::optimize::eliminate_redundant_checks(&mut program);
        }
        Conversion { program, report }
    }

    /// Query path into the shared points-to substrate: for every indirect
    /// call in `func`, the resolved targets grouped by their parameter
    /// signature (types *and* Deputy annotations). More than one group
    /// means the function-pointer interface is inconsistent — some target
    /// will be entered with obligations its annotations do not state.
    /// Demanded as a query: the cache fingerprint and the per-function
    /// check both read it, and fingerprints run on every engine pass.
    fn indirect_signature_groups(
        &self,
        ctx: &AnalysisCtx,
        func: &Function,
    ) -> Arc<BTreeMap<String, BTreeMap<String, BTreeSet<String>>>> {
        ctx.get::<IndirectGroupsQuery>(&(self.config, func.name.clone()))
    }

    fn compute_indirect_signature_groups(
        &self,
        db: &QueryDb,
        func: &Function,
    ) -> BTreeMap<String, BTreeMap<String, BTreeSet<String>>> {
        let pts = db.pointsto(self.sensitivity());
        let mut out: BTreeMap<String, BTreeMap<String, BTreeSet<String>>> = BTreeMap::new();
        for (callee_expr, _argc) in calls_in(func) {
            if matches!(&callee_expr, Expr::Var(name) if db.program.function(name).is_some()) {
                continue; // direct call
            }
            let text = expr_str(&callee_expr);
            if out.contains_key(&text) {
                continue;
            }
            let Some(targets) = pts.indirect_targets_for(&func.name, &text) else {
                continue;
            };
            let mut groups: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
            for target in targets {
                let Some(f) = db.program.function(target) else {
                    continue;
                };
                let sig: String = f
                    .params
                    .iter()
                    .map(|p| type_str(&p.ty))
                    .collect::<Vec<_>>()
                    .join(", ");
                groups.entry(sig).or_default().insert(target.clone());
            }
            if !groups.is_empty() {
                out.insert(text, groups);
            }
        }
        out
    }

    fn to_diagnostic(d: &DeputyDiagnostic) -> Diagnostic {
        Diagnostic {
            checker: "deputy".into(),
            code: match d.severity {
                DeputySeverity::Error => "deputy/type-error".into(),
                DeputySeverity::Note => "deputy/note".into(),
            },
            function: d.function.clone(),
            severity: match d.severity {
                DeputySeverity::Error => Severity::Error,
                DeputySeverity::Note => Severity::Info,
            },
            message: d.message.clone(),
            span: d.span,
            fix_hint: match d.severity {
                DeputySeverity::Error => {
                    Some("annotate the pointer, rewrite the construct, or mark it trusted".into())
                }
                DeputySeverity::Note => None,
            },
            // Validation and instrumentation findings read only the
            // function's own syntax and annotations — no analysis facts.
            evidence: Vec::new(),
        }
    }
}

impl Checker for DeputyChecker {
    fn name(&self) -> &'static str {
        "deputy"
    }

    fn sensitivity(&self) -> Sensitivity {
        // The indirect-annotation check only needs target *sets*; the
        // cheapest level suffices (and is shared with the other checkers).
        Sensitivity::Steensgaard
    }

    fn context_fingerprint(&self, ctx: &AnalysisCtx, func: &Function) -> u64 {
        // Per-function instrumentation reads callee *signatures* (and
        // composite layouts) from the prepared program; the env hash covers
        // exactly that. Bodies are covered by the cone hash. The indirect-
        // annotation check additionally reads points-to target sets, which
        // any body edit can change — fold the resolved groups in.
        let mut h = mix(self.config_hash(), ctx.env_hash());
        if self.config.check_indirect_annotations && func.body.is_some() {
            for (text, groups) in self.indirect_signature_groups(ctx, func).iter() {
                h = mix(h, fnv1a(text.as_bytes()));
                for (sig, targets) in groups {
                    h = mix(h, fnv1a(sig.as_bytes()));
                    for t in targets {
                        h = mix(h, fnv1a(t.as_bytes()));
                    }
                }
            }
        }
        h
    }

    fn check_program(&self, ctx: &AnalysisCtx) -> Vec<Diagnostic> {
        // Validation diagnostics attributed to non-function subjects
        // (composite fields read `Type::field`, globals read `global g`)
        // would be dropped by the per-function filter below; surface them
        // at program level.
        let prepared = self.prepared(ctx);
        prepared
            .report
            .diagnostics
            .iter()
            .filter(|d| ctx.program.function(&d.function).is_none())
            .map(Self::to_diagnostic)
            .collect()
    }

    fn check_function(&self, ctx: &AnalysisCtx, func: &Function) -> Vec<Diagnostic> {
        let prepared = self.prepared(ctx);
        let mut out: Vec<Diagnostic> = prepared
            .report
            .diagnostics
            .iter()
            .filter(|d| d.function == func.name)
            .map(Self::to_diagnostic)
            .collect();

        if func.body.is_some() && self.config.check_indirect_annotations {
            for (text, groups) in self.indirect_signature_groups(ctx, func).iter() {
                if groups.len() < 2 {
                    continue;
                }
                let variants: Vec<String> = groups
                    .iter()
                    .map(|(sig, targets)| {
                        format!(
                            "({sig}) <- {}",
                            targets.iter().cloned().collect::<Vec<_>>().join(", ")
                        )
                    })
                    .collect();
                out.push(Diagnostic {
                    checker: "deputy".into(),
                    code: "deputy/indirect-annot".into(),
                    function: func.name.clone(),
                    severity: Severity::Warning,
                    message: format!(
                        "indirect call `{text}` resolves to targets with {} incompatible parameter signatures: {}",
                        groups.len(),
                        variants.join("; ")
                    ),
                    span: Some(func.span),
                    fix_hint: Some(
                        "unify the annotations of every function assigned to this function pointer"
                            .into(),
                    ),
                    // Cite the points-to facts this finding rests on: the
                    // resolved target set of the call site, and the
                    // signature group each target fell into. `ivy-client
                    // explain` turns the first citation into a derivation
                    // chain.
                    evidence: {
                        let mut ev = vec![ivy_engine::Evidence::new(
                            "indirect-targets",
                            format!("{}::{text}", func.name),
                            groups
                                .values()
                                .flat_map(|targets| targets.iter().cloned())
                                .collect::<Vec<_>>()
                                .join(", "),
                        )];
                        ev.extend(groups.iter().map(|(sig, targets)| {
                            ivy_engine::Evidence::new(
                                "signature-group",
                                format!("({sig})"),
                                targets.iter().cloned().collect::<Vec<_>>().join(", "),
                            )
                        }));
                        ev
                    },
                });
            }
        }

        if func.body.is_some() && self.config.insert_checks {
            // Instrument the *prepared* copy of the function so inferred
            // defaults are in effect, exactly as in `Deputy::convert`;
            // demanded through the durable query so `conversion` (and warm
            // processes) reuse the same work.
            let instrumented = self.instrumented(ctx, func);
            let report = &instrumented.1;
            out.extend(report.diagnostics.iter().map(Self::to_diagnostic));
            if report.total_runtime_checks() > 0 || report.static_discharged > 0 {
                let kinds: Vec<String> = report
                    .runtime_checks
                    .iter()
                    .map(|(kind, n)| format!("{kind}:{n}"))
                    .collect();
                out.push(Diagnostic {
                    checker: "deputy".into(),
                    code: "deputy/instrumentation".into(),
                    function: func.name.clone(),
                    severity: Severity::Info,
                    message: format!(
                        "{} run-time checks inserted ({}), {} sites discharged statically, {} trusted",
                        report.total_runtime_checks(),
                        kinds.join(", "),
                        report.static_discharged,
                        report.trusted_sites
                    ),
                    span: Some(func.span),
                    fix_hint: None,
                    evidence: Vec::new(),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivy_cmir::parser::parse_program;

    const SRC: &str = r#"
        struct buf { n: u32; data: u8 * count(n); }
        global pool: struct buf *;
        fn get(b: struct buf * nonnull, i: u32) -> u8 { return b->data[i]; }
        fn sum(b: struct buf * nonnull) -> u32 {
            let acc: u32 = 0;
            let i: u32 = 0;
            while (i < b->n) {
                acc = acc + b->data[i];
                i = i + 1;
            }
            return acc;
        }
    "#;

    #[test]
    fn plugin_conversion_matches_deputy_convert() {
        let p = parse_program(SRC).unwrap();
        let direct = Deputy::new().convert(&p);
        let ctx = AnalysisCtx::new(&p);
        let via_plugin = DeputyChecker::new().conversion(&ctx);
        assert_eq!(direct.program, via_plugin.program);
        assert_eq!(direct.report, via_plugin.report);
    }

    #[test]
    fn instrumented_bodies_roundtrip_through_the_durable_encoding() {
        let p = parse_program(SRC).unwrap();
        let ctx = AnalysisCtx::new(&p);
        let checker = DeputyChecker::new();
        let sum = ctx.program.function("sum").unwrap();
        let instrumented = checker.instrumented(&ctx, sum);
        let encoded = InstrumentedQuery::encode(&instrumented);
        let (func, report) =
            <InstrumentedQuery as DurableQuery>::decode(&encoded).expect("decodes");
        // The reloaded body is structurally identical (spans aside: the
        // content hash ignores them, and so does program equality-of-text).
        assert_eq!(pretty_function(&func), pretty_function(&instrumented.0));
        assert_eq!(
            function_content_hash(&func),
            function_content_hash(&instrumented.0)
        );
        assert_eq!(report, instrumented.1);
        // Tampering is rejected.
        assert!(<InstrumentedQuery as DurableQuery>::decode(&Value::from(1u64)).is_none());
    }

    #[test]
    fn indirect_annotation_check_flags_signature_drift() {
        let p = parse_program(
            r#"
            global hook: fnptr(u8 *, u32) -> void;
            fn strict(p: u8 * count(n) nonnull, n: u32) { }
            fn loose(p: u8 *, n: u32) { }
            fn register_both() { hook = strict; hook = loose; }
            fn fire(q: u8 *, n: u32) { hook(q, n); }
            "#,
        )
        .unwrap();
        let ctx = AnalysisCtx::new(&p);

        // Off by default: no drift warnings.
        let default_checker = DeputyChecker::new();
        let fire = ctx.program.function("fire").unwrap();
        assert!(default_checker
            .check_function(&ctx, fire)
            .iter()
            .all(|d| d.code != "deputy/indirect-annot"));

        let config = DeputyConfig {
            check_indirect_annotations: true,
            ..DeputyConfig::default()
        };
        let checker = DeputyChecker::with_config(config);
        let diags = checker.check_function(&ctx, fire);
        let drift: Vec<_> = diags
            .iter()
            .filter(|d| d.code == "deputy/indirect-annot")
            .collect();
        assert_eq!(drift.len(), 1, "diags: {diags:?}");
        assert!(drift[0].message.contains("strict") && drift[0].message.contains("loose"));
        // Fingerprints differ between the two configurations (the check
        // folds the resolved target groups in).
        assert_ne!(
            checker.context_fingerprint(&ctx, fire),
            default_checker.context_fingerprint(&ctx, fire)
        );
    }

    #[test]
    fn program_level_diagnostics_surface_via_check_program() {
        // A composite-field annotation referencing an unknown sibling is
        // attributed to `buf::data`, which is not a function.
        let p = parse_program(
            r#"
            struct buf { n: u32; data: u8 * count(missing); }
            fn id(x: u32) -> u32 { return x; }
            "#,
        )
        .unwrap();
        let ctx = AnalysisCtx::new(&p);
        let checker = DeputyChecker::new();
        let program_level = checker.check_program(&ctx);
        assert!(
            program_level.iter().any(|d| d.function == "buf::data"),
            "composite-field diagnostics must surface: {program_level:?}"
        );
        // Satellite: validation diagnostics now carry declaration spans.
        assert!(
            program_level.iter().all(|d| d.span.is_some()),
            "composite-field diagnostics carry the field's span: {program_level:?}"
        );
        // And the per-function pass does not duplicate them.
        let per_fn = checker.check_function(&ctx, ctx.program.function("id").unwrap());
        assert!(per_fn.iter().all(|d| d.function == "id"));
    }
}
