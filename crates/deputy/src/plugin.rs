//! The Deputy checker plugin for `ivy-engine`.
//!
//! Deputy checking decomposes cleanly per function: validation and default
//! inference are prepared once per program (memoized in the shared
//! [`AnalysisCtx`]), then each function is instrumented independently —
//! call-site obligations only consult *signatures* of callees, never their
//! bodies. The cache fingerprint is therefore the whole-program type
//! environment hash: a body edit leaves every other function's Deputy
//! result cached, which is exactly the dirty-cone behaviour the engine's
//! incremental loop relies on.

use crate::instrument::{convert_function, Conversion, Deputy, DeputyConfig};
use crate::report::{ConversionReport, DeputyDiagnostic, Severity as DeputySeverity};
use ivy_analysis::callgraph::calls_in;
use ivy_analysis::pointsto::Sensitivity;
use ivy_cmir::ast::{Expr, Function, Program};
use ivy_cmir::pretty::{expr_str, type_str};
use ivy_engine::hash::{fnv1a, mix};
use ivy_engine::{AnalysisCtx, Checker, Diagnostic, Severity};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Deputy as an engine plugin.
#[derive(Debug, Clone, Default)]
pub struct DeputyChecker {
    /// The conversion configuration.
    pub config: DeputyConfig,
}

/// The memoized preparation result: the program with defaults inferred,
/// plus the validation/inference report.
pub struct Prepared {
    /// Program after validation and default inference.
    pub program: Program,
    /// Validation diagnostics and inference counts.
    pub report: ConversionReport,
}

impl DeputyChecker {
    /// A plugin with the default configuration.
    pub fn new() -> DeputyChecker {
        DeputyChecker::default()
    }

    /// A plugin with a specific configuration.
    pub fn with_config(config: DeputyConfig) -> DeputyChecker {
        DeputyChecker { config }
    }

    fn config_hash(&self) -> u64 {
        fnv1a(format!("{:?}", self.config).as_bytes())
    }

    /// The prepared program for a shared context, computed once.
    pub fn prepared(&self, ctx: &AnalysisCtx) -> Arc<Prepared> {
        let key = format!("deputy/prepared/{:016x}", self.config_hash());
        ctx.memo(&key, || {
            let deputy = Deputy::with_config(self.config);
            let (program, report) = deputy.prepare(&ctx.program);
            Prepared { program, report }
        })
    }

    /// The instrumented form of one function (against the prepared
    /// program), memoized per context so the per-function checking pass and
    /// a later whole-program [`DeputyChecker::conversion`] share the work.
    pub fn instrumented(
        &self,
        ctx: &AnalysisCtx,
        func: &Function,
    ) -> Arc<(Function, ConversionReport)> {
        let key = format!("deputy/instr/{:016x}/{}", self.config_hash(), func.name);
        ctx.memo(&key, || {
            let prepared = self.prepared(ctx);
            let subject = prepared.program.function(&func.name).unwrap_or(func);
            convert_function(&prepared.program, subject)
        })
    }

    /// The full conversion of a context's program, assembled from the
    /// memoized per-function instrumentations (so a pipeline that already
    /// ran the checker pays nothing extra) and memoized itself. Produces
    /// the same program and report as [`Deputy::convert`].
    pub fn conversion(&self, ctx: &AnalysisCtx) -> Arc<Conversion> {
        let key = format!("deputy/conversion/{:016x}", self.config_hash());
        ctx.memo(&key, || {
            let prepared = self.prepared(ctx);
            let mut program = prepared.program.clone();
            let mut report = prepared.report.clone();
            if self.config.insert_checks {
                for func in ctx.program.functions.iter().filter(|f| f.body.is_some()) {
                    let instrumented = self.instrumented(ctx, func);
                    program.add_function(instrumented.0.clone());
                    report.merge(&instrumented.1);
                }
            }
            if self.config.optimize {
                report.checks_optimized_away =
                    crate::optimize::eliminate_redundant_checks(&mut program);
            }
            Conversion { program, report }
        })
    }

    /// Query path into the shared points-to substrate: for every indirect
    /// call in `func`, the resolved targets grouped by their parameter
    /// signature (types *and* Deputy annotations). More than one group
    /// means the function-pointer interface is inconsistent — some target
    /// will be entered with obligations its annotations do not state.
    /// Memoized per context: the cache fingerprint and the per-function
    /// check both read it, and fingerprints run on every engine pass.
    fn indirect_signature_groups(
        &self,
        ctx: &AnalysisCtx,
        func: &Function,
    ) -> Arc<BTreeMap<String, BTreeMap<String, BTreeSet<String>>>> {
        let key = format!(
            "deputy/indirect-groups/{:016x}/{}",
            self.config_hash(),
            func.name
        );
        ctx.memo(&key, || self.compute_indirect_signature_groups(ctx, func))
    }

    fn compute_indirect_signature_groups(
        &self,
        ctx: &AnalysisCtx,
        func: &Function,
    ) -> BTreeMap<String, BTreeMap<String, BTreeSet<String>>> {
        let pts = ctx.pointsto(self.sensitivity());
        let mut out: BTreeMap<String, BTreeMap<String, BTreeSet<String>>> = BTreeMap::new();
        for (callee_expr, _argc) in calls_in(func) {
            if matches!(&callee_expr, Expr::Var(name) if ctx.program.function(name).is_some()) {
                continue; // direct call
            }
            let text = expr_str(&callee_expr);
            if out.contains_key(&text) {
                continue;
            }
            let Some(targets) = pts.indirect_targets_for(&func.name, &text) else {
                continue;
            };
            let mut groups: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
            for target in targets {
                let Some(f) = ctx.program.function(target) else {
                    continue;
                };
                let sig: String = f
                    .params
                    .iter()
                    .map(|p| type_str(&p.ty))
                    .collect::<Vec<_>>()
                    .join(", ");
                groups.entry(sig).or_default().insert(target.clone());
            }
            if !groups.is_empty() {
                out.insert(text, groups);
            }
        }
        out
    }

    fn to_diagnostic(d: &DeputyDiagnostic) -> Diagnostic {
        Diagnostic {
            checker: "deputy".into(),
            code: match d.severity {
                DeputySeverity::Error => "deputy/type-error".into(),
                DeputySeverity::Note => "deputy/note".into(),
            },
            function: d.function.clone(),
            severity: match d.severity {
                DeputySeverity::Error => Severity::Error,
                DeputySeverity::Note => Severity::Info,
            },
            message: d.message.clone(),
            span: None,
            fix_hint: match d.severity {
                DeputySeverity::Error => {
                    Some("annotate the pointer, rewrite the construct, or mark it trusted".into())
                }
                DeputySeverity::Note => None,
            },
        }
    }
}

impl Checker for DeputyChecker {
    fn name(&self) -> &'static str {
        "deputy"
    }

    fn sensitivity(&self) -> Sensitivity {
        // The indirect-annotation check only needs target *sets*; the
        // cheapest level suffices (and is shared with the other checkers).
        Sensitivity::Steensgaard
    }

    fn context_fingerprint(&self, ctx: &AnalysisCtx, func: &Function) -> u64 {
        // Per-function instrumentation reads callee *signatures* (and
        // composite layouts) from the prepared program; the env hash covers
        // exactly that. Bodies are covered by the cone hash. The indirect-
        // annotation check additionally reads points-to target sets, which
        // any body edit can change — fold the resolved groups in.
        let mut h = mix(self.config_hash(), ctx.env_hash());
        if self.config.check_indirect_annotations && func.body.is_some() {
            for (text, groups) in self.indirect_signature_groups(ctx, func).iter() {
                h = mix(h, fnv1a(text.as_bytes()));
                for (sig, targets) in groups {
                    h = mix(h, fnv1a(sig.as_bytes()));
                    for t in targets {
                        h = mix(h, fnv1a(t.as_bytes()));
                    }
                }
            }
        }
        h
    }

    fn check_program(&self, ctx: &AnalysisCtx) -> Vec<Diagnostic> {
        // Validation diagnostics attributed to non-function subjects
        // (composite fields read `Type::field`, globals read `global g`)
        // would be dropped by the per-function filter below; surface them
        // at program level.
        let prepared = self.prepared(ctx);
        prepared
            .report
            .diagnostics
            .iter()
            .filter(|d| ctx.program.function(&d.function).is_none())
            .map(Self::to_diagnostic)
            .collect()
    }

    fn check_function(&self, ctx: &AnalysisCtx, func: &Function) -> Vec<Diagnostic> {
        let prepared = self.prepared(ctx);
        let mut out: Vec<Diagnostic> = prepared
            .report
            .diagnostics
            .iter()
            .filter(|d| d.function == func.name)
            .map(Self::to_diagnostic)
            .collect();

        if func.body.is_some() && self.config.check_indirect_annotations {
            for (text, groups) in self.indirect_signature_groups(ctx, func).iter() {
                if groups.len() < 2 {
                    continue;
                }
                let variants: Vec<String> = groups
                    .iter()
                    .map(|(sig, targets)| {
                        format!(
                            "({sig}) <- {}",
                            targets.iter().cloned().collect::<Vec<_>>().join(", ")
                        )
                    })
                    .collect();
                out.push(Diagnostic {
                    checker: "deputy".into(),
                    code: "deputy/indirect-annot".into(),
                    function: func.name.clone(),
                    severity: Severity::Warning,
                    message: format!(
                        "indirect call `{text}` resolves to targets with {} incompatible parameter signatures: {}",
                        groups.len(),
                        variants.join("; ")
                    ),
                    span: Some(func.span),
                    fix_hint: Some(
                        "unify the annotations of every function assigned to this function pointer"
                            .into(),
                    ),
                });
            }
        }

        if func.body.is_some() && self.config.insert_checks {
            // Instrument the *prepared* copy of the function so inferred
            // defaults are in effect, exactly as in `Deputy::convert`;
            // memoized so `conversion` reuses the same work.
            let instrumented = self.instrumented(ctx, func);
            let report = &instrumented.1;
            out.extend(report.diagnostics.iter().map(Self::to_diagnostic));
            if report.total_runtime_checks() > 0 || report.static_discharged > 0 {
                let kinds: Vec<String> = report
                    .runtime_checks
                    .iter()
                    .map(|(kind, n)| format!("{kind}:{n}"))
                    .collect();
                out.push(Diagnostic {
                    checker: "deputy".into(),
                    code: "deputy/instrumentation".into(),
                    function: func.name.clone(),
                    severity: Severity::Info,
                    message: format!(
                        "{} run-time checks inserted ({}), {} sites discharged statically, {} trusted",
                        report.total_runtime_checks(),
                        kinds.join(", "),
                        report.static_discharged,
                        report.trusted_sites
                    ),
                    span: Some(func.span),
                    fix_hint: None,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivy_cmir::parser::parse_program;

    const SRC: &str = r#"
        struct buf { n: u32; data: u8 * count(n); }
        global pool: struct buf *;
        fn get(b: struct buf * nonnull, i: u32) -> u8 { return b->data[i]; }
        fn sum(b: struct buf * nonnull) -> u32 {
            let acc: u32 = 0;
            let i: u32 = 0;
            while (i < b->n) {
                acc = acc + b->data[i];
                i = i + 1;
            }
            return acc;
        }
    "#;

    #[test]
    fn plugin_conversion_matches_deputy_convert() {
        let p = parse_program(SRC).unwrap();
        let direct = Deputy::new().convert(&p);
        let ctx = AnalysisCtx::new(&p);
        let via_plugin = DeputyChecker::new().conversion(&ctx);
        assert_eq!(direct.program, via_plugin.program);
        assert_eq!(direct.report, via_plugin.report);
    }

    #[test]
    fn indirect_annotation_check_flags_signature_drift() {
        let p = parse_program(
            r#"
            global hook: fnptr(u8 *, u32) -> void;
            fn strict(p: u8 * count(n) nonnull, n: u32) { }
            fn loose(p: u8 *, n: u32) { }
            fn register_both() { hook = strict; hook = loose; }
            fn fire(q: u8 *, n: u32) { hook(q, n); }
            "#,
        )
        .unwrap();
        let ctx = AnalysisCtx::new(&p);

        // Off by default: no drift warnings.
        let default_checker = DeputyChecker::new();
        let fire = ctx.program.function("fire").unwrap();
        assert!(default_checker
            .check_function(&ctx, fire)
            .iter()
            .all(|d| d.code != "deputy/indirect-annot"));

        let config = DeputyConfig {
            check_indirect_annotations: true,
            ..DeputyConfig::default()
        };
        let checker = DeputyChecker::with_config(config);
        let diags = checker.check_function(&ctx, fire);
        let drift: Vec<_> = diags
            .iter()
            .filter(|d| d.code == "deputy/indirect-annot")
            .collect();
        assert_eq!(drift.len(), 1, "diags: {diags:?}");
        assert!(drift[0].message.contains("strict") && drift[0].message.contains("loose"));
        // Fingerprints differ between the two configurations (the check
        // folds the resolved target groups in).
        assert_ne!(
            checker.context_fingerprint(&ctx, fire),
            default_checker.context_fingerprint(&ctx, fire)
        );
    }

    #[test]
    fn program_level_diagnostics_surface_via_check_program() {
        // A composite-field annotation referencing an unknown sibling is
        // attributed to `buf::data`, which is not a function.
        let p = parse_program(
            r#"
            struct buf { n: u32; data: u8 * count(missing); }
            fn id(x: u32) -> u32 { return x; }
            "#,
        )
        .unwrap();
        let ctx = AnalysisCtx::new(&p);
        let checker = DeputyChecker::new();
        let program_level = checker.check_program(&ctx);
        assert!(
            program_level.iter().any(|d| d.function == "buf::data"),
            "composite-field diagnostics must surface: {program_level:?}"
        );
        // And the per-function pass does not duplicate them.
        let per_fn = checker.check_function(&ctx, ctx.program.function("id").unwrap());
        assert!(per_fn.iter().all(|d| d.function == "id"));
    }
}
