//! The Deputy checker plugin for `ivy-engine`.
//!
//! Deputy checking decomposes cleanly per function: validation and default
//! inference are prepared once per program (memoized in the shared
//! [`AnalysisCtx`]), then each function is instrumented independently —
//! call-site obligations only consult *signatures* of callees, never their
//! bodies. The cache fingerprint is therefore the whole-program type
//! environment hash: a body edit leaves every other function's Deputy
//! result cached, which is exactly the dirty-cone behaviour the engine's
//! incremental loop relies on.

use crate::instrument::{convert_function, Conversion, Deputy, DeputyConfig};
use crate::report::{ConversionReport, DeputyDiagnostic, Severity as DeputySeverity};
use ivy_cmir::ast::{Function, Program};
use ivy_engine::hash::{fnv1a, mix};
use ivy_engine::{AnalysisCtx, Checker, Diagnostic, Severity};
use std::sync::Arc;

/// Deputy as an engine plugin.
#[derive(Debug, Clone, Default)]
pub struct DeputyChecker {
    /// The conversion configuration.
    pub config: DeputyConfig,
}

/// The memoized preparation result: the program with defaults inferred,
/// plus the validation/inference report.
pub struct Prepared {
    /// Program after validation and default inference.
    pub program: Program,
    /// Validation diagnostics and inference counts.
    pub report: ConversionReport,
}

impl DeputyChecker {
    /// A plugin with the default configuration.
    pub fn new() -> DeputyChecker {
        DeputyChecker::default()
    }

    /// A plugin with a specific configuration.
    pub fn with_config(config: DeputyConfig) -> DeputyChecker {
        DeputyChecker { config }
    }

    fn config_hash(&self) -> u64 {
        fnv1a(format!("{:?}", self.config).as_bytes())
    }

    /// The prepared program for a shared context, computed once.
    pub fn prepared(&self, ctx: &AnalysisCtx) -> Arc<Prepared> {
        let key = format!("deputy/prepared/{:016x}", self.config_hash());
        ctx.memo(&key, || {
            let deputy = Deputy::with_config(self.config);
            let (program, report) = deputy.prepare(&ctx.program);
            Prepared { program, report }
        })
    }

    /// The instrumented form of one function (against the prepared
    /// program), memoized per context so the per-function checking pass and
    /// a later whole-program [`DeputyChecker::conversion`] share the work.
    pub fn instrumented(
        &self,
        ctx: &AnalysisCtx,
        func: &Function,
    ) -> Arc<(Function, ConversionReport)> {
        let key = format!("deputy/instr/{:016x}/{}", self.config_hash(), func.name);
        ctx.memo(&key, || {
            let prepared = self.prepared(ctx);
            let subject = prepared.program.function(&func.name).unwrap_or(func);
            convert_function(&prepared.program, subject)
        })
    }

    /// The full conversion of a context's program, assembled from the
    /// memoized per-function instrumentations (so a pipeline that already
    /// ran the checker pays nothing extra) and memoized itself. Produces
    /// the same program and report as [`Deputy::convert`].
    pub fn conversion(&self, ctx: &AnalysisCtx) -> Arc<Conversion> {
        let key = format!("deputy/conversion/{:016x}", self.config_hash());
        ctx.memo(&key, || {
            let prepared = self.prepared(ctx);
            let mut program = prepared.program.clone();
            let mut report = prepared.report.clone();
            if self.config.insert_checks {
                for func in ctx.program.functions.iter().filter(|f| f.body.is_some()) {
                    let instrumented = self.instrumented(ctx, func);
                    program.add_function(instrumented.0.clone());
                    report.merge(&instrumented.1);
                }
            }
            if self.config.optimize {
                report.checks_optimized_away =
                    crate::optimize::eliminate_redundant_checks(&mut program);
            }
            Conversion { program, report }
        })
    }

    fn to_diagnostic(d: &DeputyDiagnostic) -> Diagnostic {
        Diagnostic {
            checker: "deputy".into(),
            code: match d.severity {
                DeputySeverity::Error => "deputy/type-error".into(),
                DeputySeverity::Note => "deputy/note".into(),
            },
            function: d.function.clone(),
            severity: match d.severity {
                DeputySeverity::Error => Severity::Error,
                DeputySeverity::Note => Severity::Info,
            },
            message: d.message.clone(),
            span: None,
            fix_hint: match d.severity {
                DeputySeverity::Error => {
                    Some("annotate the pointer, rewrite the construct, or mark it trusted".into())
                }
                DeputySeverity::Note => None,
            },
        }
    }
}

impl Checker for DeputyChecker {
    fn name(&self) -> &'static str {
        "deputy"
    }

    fn context_fingerprint(&self, ctx: &AnalysisCtx, _func: &Function) -> u64 {
        // Per-function instrumentation reads callee *signatures* (and
        // composite layouts) from the prepared program; the env hash covers
        // exactly that. Bodies are covered by the cone hash.
        mix(self.config_hash(), ctx.env_hash())
    }

    fn check_program(&self, ctx: &AnalysisCtx) -> Vec<Diagnostic> {
        // Validation diagnostics attributed to non-function subjects
        // (composite fields read `Type::field`, globals read `global g`)
        // would be dropped by the per-function filter below; surface them
        // at program level.
        let prepared = self.prepared(ctx);
        prepared
            .report
            .diagnostics
            .iter()
            .filter(|d| ctx.program.function(&d.function).is_none())
            .map(Self::to_diagnostic)
            .collect()
    }

    fn check_function(&self, ctx: &AnalysisCtx, func: &Function) -> Vec<Diagnostic> {
        let prepared = self.prepared(ctx);
        let mut out: Vec<Diagnostic> = prepared
            .report
            .diagnostics
            .iter()
            .filter(|d| d.function == func.name)
            .map(Self::to_diagnostic)
            .collect();

        if func.body.is_some() && self.config.insert_checks {
            // Instrument the *prepared* copy of the function so inferred
            // defaults are in effect, exactly as in `Deputy::convert`;
            // memoized so `conversion` reuses the same work.
            let instrumented = self.instrumented(ctx, func);
            let report = &instrumented.1;
            out.extend(report.diagnostics.iter().map(Self::to_diagnostic));
            if report.total_runtime_checks() > 0 || report.static_discharged > 0 {
                let kinds: Vec<String> = report
                    .runtime_checks
                    .iter()
                    .map(|(kind, n)| format!("{kind}:{n}"))
                    .collect();
                out.push(Diagnostic {
                    checker: "deputy".into(),
                    code: "deputy/instrumentation".into(),
                    function: func.name.clone(),
                    severity: Severity::Info,
                    message: format!(
                        "{} run-time checks inserted ({}), {} sites discharged statically, {} trusted",
                        report.total_runtime_checks(),
                        kinds.join(", "),
                        report.static_discharged,
                        report.trusted_sites
                    ),
                    span: Some(func.span),
                    fix_hint: None,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivy_cmir::parser::parse_program;

    const SRC: &str = r#"
        struct buf { n: u32; data: u8 * count(n); }
        global pool: struct buf *;
        fn get(b: struct buf * nonnull, i: u32) -> u8 { return b->data[i]; }
        fn sum(b: struct buf * nonnull) -> u32 {
            let acc: u32 = 0;
            let i: u32 = 0;
            while (i < b->n) {
                acc = acc + b->data[i];
                i = i + 1;
            }
            return acc;
        }
    "#;

    #[test]
    fn plugin_conversion_matches_deputy_convert() {
        let p = parse_program(SRC).unwrap();
        let direct = Deputy::new().convert(&p);
        let ctx = AnalysisCtx::new(&p);
        let via_plugin = DeputyChecker::new().conversion(&ctx);
        assert_eq!(direct.program, via_plugin.program);
        assert_eq!(direct.report, via_plugin.report);
    }

    #[test]
    fn program_level_diagnostics_surface_via_check_program() {
        // A composite-field annotation referencing an unknown sibling is
        // attributed to `buf::data`, which is not a function.
        let p = parse_program(
            r#"
            struct buf { n: u32; data: u8 * count(missing); }
            fn id(x: u32) -> u32 { return x; }
            "#,
        )
        .unwrap();
        let ctx = AnalysisCtx::new(&p);
        let checker = DeputyChecker::new();
        let program_level = checker.check_program(&ctx);
        assert!(
            program_level.iter().any(|d| d.function == "buf::data"),
            "composite-field diagnostics must surface: {program_level:?}"
        );
        // And the per-function pass does not duplicate them.
        let per_fn = checker.check_function(&ctx, ctx.program.function("id").unwrap());
        assert!(per_fn.iter().all(|d| d.function == "id"));
    }
}
