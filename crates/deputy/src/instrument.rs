//! The Deputy conversion pass: static checking plus run-time check insertion.
//!
//! For every memory access in non-trusted code the checker decides between
//! three outcomes, mirroring §2.1's hybrid checking:
//!
//! * **static** — the access is provably in bounds (constant index within a
//!   constant bound, or an index guarded by the enclosing loop condition), so
//!   no code is inserted;
//! * **run-time** — a [`Check`] statement is inserted immediately before the
//!   access (`__check_bounds`, `__check_nonnull`, `__check_union`, ...);
//! * **trusted** — the enclosing function or the pointer itself is marked
//!   `trusted`, so Deputy looks away and the site is counted in the trusted
//!   statistics.
//!
//! Annotations are untrusted: the inserted checks evaluate the annotation's
//! bound expression at run time, so a wrong `count(n)` manifests as a check
//! failure rather than silent memory corruption.

use crate::annotate;
use crate::report::{ConversionReport, DeputyDiagnostic, Severity};
use ivy_cmir::ast::{BinOp, Block, Check, Expr, Function, Program, Stmt};
use ivy_cmir::typecheck::TypeCtx;
use ivy_cmir::types::{BoundExpr, Bounds, PtrAnnot, Type};
use ivy_cmir::visit;
use ivy_cmir::Span;

/// Configuration of the Deputy conversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeputyConfig {
    /// Infer default annotations for unannotated pointers before checking.
    pub infer_defaults: bool,
    /// Insert run-time checks (turning this off yields a pure static report).
    pub insert_checks: bool,
    /// Run the redundant-check optimiser after insertion.
    pub optimize: bool,
    /// Check that the resolved targets of every indirect call agree on
    /// their parameter types and annotations (engine plugin only: the check
    /// queries the shared points-to analysis). Off by default — it warns
    /// about latent interface drift rather than definite type errors.
    pub check_indirect_annotations: bool,
}

impl Default for DeputyConfig {
    fn default() -> Self {
        DeputyConfig {
            infer_defaults: true,
            insert_checks: true,
            optimize: true,
            check_indirect_annotations: false,
        }
    }
}

/// Result of converting a program with Deputy.
#[derive(Debug, Clone)]
pub struct Conversion {
    /// The instrumented ("deputized") program.
    pub program: Program,
    /// Statistics and diagnostics.
    pub report: ConversionReport,
}

/// The Deputy tool.
#[derive(Debug, Clone, Default)]
pub struct Deputy {
    /// Conversion configuration.
    pub config: DeputyConfig,
}

impl Deputy {
    /// Creates a Deputy instance with the default configuration.
    pub fn new() -> Self {
        Deputy::default()
    }

    /// Creates a Deputy instance with a specific configuration.
    pub fn with_config(config: DeputyConfig) -> Self {
        Deputy { config }
    }

    /// The preparation half of a conversion: annotation validation plus
    /// default inference, without any check insertion. The engine adapter
    /// runs this once per program (memoized in the shared analysis context)
    /// and then drives [`convert_function`] per function, which is what
    /// makes Deputy checking parallelizable and incrementally cacheable.
    pub fn prepare(&self, program: &Program) -> (Program, ConversionReport) {
        let mut report = ConversionReport::default();
        let mut program = program.clone();
        annotate::validate_annotations(&program, &mut report);
        if self.config.infer_defaults {
            annotate::infer_defaults(&mut program, &mut report);
        }
        (program, report)
    }

    /// Converts (deputizes) a whole program.
    pub fn convert(&self, program: &Program) -> Conversion {
        let (mut program, mut report) = self.prepare(program);

        if self.config.insert_checks {
            let originals: Vec<Function> = program.functions.clone();
            for func in &originals {
                if func.body.is_none() {
                    continue;
                }
                let instrumented = instrument_function(&program, func, &mut report);
                program.add_function(instrumented);
            }
        }

        if self.config.optimize {
            let removed = crate::optimize::eliminate_redundant_checks(&mut program);
            report.checks_optimized_away = removed;
        }

        Conversion { program, report }
    }
}

/// Instruments a single function of an already-[`prepared`](Deputy::prepare)
/// program, returning the instrumented function and a report containing only
/// this function's contribution (check counts, static discharges,
/// diagnostics). Summing these per-function reports over all functions
/// reproduces the pre-optimization numbers of [`Deputy::convert`].
pub fn convert_function(program: &Program, func: &Function) -> (Function, ConversionReport) {
    let mut report = ConversionReport::default();
    let instrumented = instrument_function(program, func, &mut report);
    (instrumented, report)
}

/// A dominating comparison fact `lhs < rhs` collected from enclosing loop and
/// branch conditions, used to discharge bounds checks statically.
#[derive(Debug, Clone, PartialEq)]
struct LessFact {
    lhs: Expr,
    rhs: Expr,
}

struct Instrumenter<'p> {
    program: &'p Program,
    func: &'p Function,
    report: &'p mut ConversionReport,
    facts: Vec<LessFact>,
    /// Span of the statement currently being rewritten; diagnostics raised
    /// while checking its expressions attach here (line-accurate SARIF).
    current_span: Span,
}

fn instrument_function(
    program: &Program,
    func: &Function,
    report: &mut ConversionReport,
) -> Function {
    if func.attrs.trusted {
        // Whole function trusted: count its access sites but do not touch it.
        let mut sites = 0;
        visit::walk_fn_stmts(func, &mut |s| {
            visit::walk_stmt_exprs(s, &mut |e| {
                if matches!(e, Expr::Index(..) | Expr::Deref(_) | Expr::Arrow(..)) {
                    sites += 1;
                }
            });
        });
        report.trusted_sites += sites;
        return func.clone();
    }
    let mut ctx = TypeCtx::for_function(program, func);
    let mut inst = Instrumenter {
        program,
        func,
        report,
        facts: Vec::new(),
        current_span: func.span,
    };
    let body = func
        .body
        .clone()
        .expect("instrument_function requires a body");
    let new_body = inst.rewrite_block(&body, &mut ctx);
    let mut out = func.clone();
    out.body = Some(new_body);
    out
}

impl<'p> Instrumenter<'p> {
    fn rewrite_block(&mut self, block: &Block, ctx: &mut TypeCtx<'p>) -> Block {
        let mark = ctx.scope_mark();
        let mut out = Vec::with_capacity(block.stmts.len());
        for stmt in &block.stmts {
            self.rewrite_stmt(stmt, ctx, &mut out);
        }
        ctx.scope_reset(mark);
        Block::new(out)
    }

    fn rewrite_stmt(&mut self, stmt: &Stmt, ctx: &mut TypeCtx<'p>, out: &mut Vec<Stmt>) {
        if stmt.span().is_real() {
            self.current_span = stmt.span();
        }
        match stmt {
            Stmt::Expr(e, span) => {
                self.emit_checks_for_expr(e, ctx, out);
                out.push(Stmt::Expr(e.clone(), *span));
            }
            Stmt::Assign(lhs, rhs, span) => {
                self.emit_checks_for_expr(rhs, ctx, out);
                self.emit_checks_for_expr(lhs, ctx, out);
                out.push(Stmt::Assign(lhs.clone(), rhs.clone(), *span));
            }
            Stmt::Local(decl, init) => {
                if let Some(e) = init {
                    self.emit_checks_for_expr(e, ctx, out);
                }
                ctx.bind(&decl.name, decl.ty.clone());
                out.push(stmt.clone());
            }
            Stmt::Return(Some(e), span) => {
                self.emit_checks_for_expr(e, ctx, out);
                out.push(Stmt::Return(Some(e.clone()), *span));
            }
            Stmt::Return(None, _) | Stmt::Break(_) | Stmt::Continue(_) | Stmt::Check(..) => {
                out.push(stmt.clone());
            }
            Stmt::If(cond, then_b, else_b, span) => {
                self.emit_checks_for_expr(cond, ctx, out);
                let fact = less_fact_of(cond);
                if let Some(f) = fact.clone() {
                    self.facts.push(f);
                }
                let then_new = self.rewrite_block(then_b, ctx);
                if fact.is_some() {
                    self.facts.pop();
                }
                let else_new = else_b.as_ref().map(|b| self.rewrite_block(b, ctx));
                out.push(Stmt::If(cond.clone(), then_new, else_new, *span));
            }
            Stmt::While(cond, body, span) => {
                self.emit_checks_for_expr(cond, ctx, out);
                // The loop condition dominates the body only if the variables
                // it mentions are not reassigned before the access; accept the
                // canonical counted-loop shape where the index advances as the
                // final statement of the body.
                let fact = less_fact_of(cond).filter(|f| counted_loop_shape(f, body));
                if let Some(f) = fact.clone() {
                    self.facts.push(f);
                }
                let body_new = self.rewrite_block(body, ctx);
                if fact.is_some() {
                    self.facts.pop();
                }
                out.push(Stmt::While(cond.clone(), body_new, *span));
            }
            Stmt::Block(b) => {
                let inner = self.rewrite_block(b, ctx);
                out.push(Stmt::Block(inner));
            }
            Stmt::DelayedFreeScope(b, span) => {
                let inner = self.rewrite_block(b, ctx);
                out.push(Stmt::DelayedFreeScope(inner, *span));
            }
        }
    }

    /// Emits the checks required by every memory access inside `e`.
    fn emit_checks_for_expr(&mut self, e: &Expr, ctx: &TypeCtx<'p>, out: &mut Vec<Stmt>) {
        visit::walk_expr(e, &mut |sub| {
            if let Some(stmt) = self.check_for_access(sub, ctx) {
                out.push(stmt);
            }
        });
    }

    /// Produces the check (if any) required by a single access expression.
    fn check_for_access(&mut self, e: &Expr, ctx: &TypeCtx<'p>) -> Option<Stmt> {
        match e {
            Expr::Index(base, idx) => self.check_index(base, idx, ctx),
            Expr::Deref(base) => self.check_index(base, &Expr::Int(0), ctx),
            Expr::Arrow(obj, field) => self.check_arrow(obj, field, ctx),
            Expr::Field(obj, field) => self.check_union_field(obj, field, ctx),
            Expr::Cast(to, inner) => {
                self.diagnose_cast(to, inner, ctx);
                None
            }
            _ => None,
        }
    }

    fn check_index(&mut self, base: &Expr, idx: &Expr, ctx: &TypeCtx<'p>) -> Option<Stmt> {
        let base_ty = ctx.type_of(base).ok()?;
        let resolved = self.program.resolve_type(&base_ty).clone();
        match resolved {
            Type::Array(_, n) => {
                // Fixed-size arrays: constant indices are checked at compile
                // time, variable indices get a run-time check against the
                // constant length.
                if let Expr::Int(i) = idx {
                    if *i >= 0 && (*i as u64) < n {
                        self.report.static_discharged += 1;
                        return None;
                    }
                    self.error(format!("index {i} is provably outside array of length {n}"));
                    return None;
                }
                if self.fact_discharges(idx, &Expr::Int(n as i64)) {
                    self.report.static_discharged += 1;
                    return None;
                }
                Some(self.emit(Check::PtrBounds {
                    ptr: Expr::addr_of(Expr::index(base.clone(), Expr::Int(0))),
                    index: idx.clone(),
                    len: Some(Expr::Int(n as i64)),
                }))
            }
            Type::Ptr(_, ann) => self.check_ptr_access(base, idx, &ann),
            _ => None,
        }
    }

    fn check_ptr_access(&mut self, base: &Expr, idx: &Expr, ann: &PtrAnnot) -> Option<Stmt> {
        if ann.trusted {
            self.report.trusted_sites += 1;
            return None;
        }
        if self.func.attrs.trusted {
            self.report.trusted_sites += 1;
            return None;
        }
        let mut checks: Option<Stmt> = None;
        match &ann.bounds {
            Bounds::Single => {
                if let Expr::Int(0) = idx {
                    self.report.static_discharged += 1;
                } else {
                    checks = Some(self.emit(Check::PtrBounds {
                        ptr: base.clone(),
                        index: idx.clone(),
                        len: Some(Expr::Int(1)),
                    }));
                }
            }
            Bounds::Count(ce) => {
                let len = lower_bound_expr(ce, base);
                if let (Expr::Int(i), Expr::Int(n)) = (idx, &len) {
                    if *i >= 0 && i < n {
                        self.report.static_discharged += 1;
                        return None;
                    }
                    self.error(format!("index {i} provably outside count({n})"));
                    return None;
                }
                if self.fact_discharges(idx, &len) {
                    self.report.static_discharged += 1;
                    return None;
                }
                checks = Some(self.emit(Check::PtrBounds {
                    ptr: base.clone(),
                    index: idx.clone(),
                    len: Some(len),
                }));
            }
            Bounds::Bound(..) | Bounds::Auto | Bounds::Unknown => {
                // No environment expression describes the extent: fall back to
                // the run-time object-extent lookup (`auto` semantics).
                checks = Some(self.emit(Check::PtrBounds {
                    ptr: base.clone(),
                    index: idx.clone(),
                    len: None,
                }));
            }
        }
        checks
    }

    fn check_arrow(&mut self, obj: &Expr, field: &str, ctx: &TypeCtx<'p>) -> Option<Stmt> {
        let obj_ty = ctx.type_of(obj).ok()?;
        let resolved = self.program.resolve_type(&obj_ty).clone();
        let ann = match &resolved {
            Type::Ptr(_, a) => a.clone(),
            _ => return None,
        };
        if ann.trusted || self.func.attrs.trusted {
            self.report.trusted_sites += 1;
            return None;
        }
        // Union-arm guard, if the field carries one.
        if let Some(stmt) = self.union_tag_check(&resolved, obj, field, true) {
            return Some(stmt);
        }
        if ann.nonnull || matches!(obj, Expr::AddrOf(_)) {
            self.report.static_discharged += 1;
            None
        } else {
            Some(self.emit(Check::NonNull(obj.clone())))
        }
    }

    fn check_union_field(&mut self, obj: &Expr, field: &str, ctx: &TypeCtx<'p>) -> Option<Stmt> {
        let obj_ty = ctx.type_of(obj).ok()?;
        let resolved = self.program.resolve_type(&obj_ty).clone();
        self.union_tag_check(&resolved, obj, field, false)
    }

    fn union_tag_check(
        &mut self,
        obj_ty: &Type,
        obj: &Expr,
        field: &str,
        through_ptr: bool,
    ) -> Option<Stmt> {
        let comp_name = match obj_ty {
            Type::Struct(n) | Type::Union(n) => n.clone(),
            Type::Ptr(inner, _) if through_ptr => match self.program.resolve_type(inner) {
                Type::Struct(n) | Type::Union(n) => n.clone(),
                _ => return None,
            },
            _ => return None,
        };
        let def = self.program.composite(&comp_name)?;
        let fld = def.field(field)?;
        let (tag, value) = fld.when.clone()?;
        if self.func.attrs.trusted {
            self.report.trusted_sites += 1;
            return None;
        }
        let obj_lval = if through_ptr {
            // The check needs the object lvalue; `*obj` re-exposes it.
            Expr::deref(obj.clone())
        } else {
            obj.clone()
        };
        Some(self.emit(Check::UnionTag {
            obj: obj_lval,
            field: field.to_string(),
            tag,
            value,
        }))
    }

    fn diagnose_cast(&mut self, to: &Type, inner: &Expr, ctx: &TypeCtx<'p>) {
        let to_res = self.program.resolve_type(to).clone();
        let from = match ctx.type_of(inner) {
            Ok(t) => self.program.resolve_type(&t).clone(),
            Err(_) => return,
        };
        if self.func.attrs.trusted {
            return;
        }
        match (&from, &to_res) {
            (Type::Int(_), Type::Ptr(_, ann)) if !ann.trusted && !matches!(inner, Expr::Int(0)) => {
                self.error("cast from integer to pointer requires a trusted annotation");
            }
            (Type::Ptr(from_inner, _), Type::Ptr(to_inner, to_ann)) => {
                let from_base = self.program.resolve_type(from_inner).clone();
                let to_base = self.program.resolve_type(to_inner).clone();
                let benign = matches!(from_base, Type::Void)
                    || matches!(to_base, Type::Void)
                    || matches!(to_base, Type::Int(k) if k.size() == 1)
                    || from_base.same_repr(&to_base)
                    || to_ann.trusted;
                if !benign {
                    self.note(format!(
                        "cast between distinct pointer base types `{from_base}` and `{to_base}` is checked dynamically via bounds"
                    ));
                }
            }
            _ => {}
        }
    }

    fn fact_discharges(&self, idx: &Expr, len: &Expr) -> bool {
        self.facts.iter().any(|f| &f.lhs == idx && &f.rhs == len)
    }

    fn emit(&mut self, check: Check) -> Stmt {
        self.report.count_check(check.kind(), &self.func.name);
        Stmt::Check(check, Span::synthetic())
    }

    fn error(&mut self, message: impl Into<String>) {
        self.report.diagnostics.push(DeputyDiagnostic {
            function: self.func.name.clone(),
            message: message.into(),
            severity: Severity::Error,
            span: Some(self.current_span).filter(|s| s.is_real()),
        });
    }

    fn note(&mut self, message: impl Into<String>) {
        self.report.diagnostics.push(DeputyDiagnostic {
            function: self.func.name.clone(),
            message: message.into(),
            severity: Severity::Note,
            span: Some(self.current_span).filter(|s| s.is_real()),
        });
    }
}

/// Extracts an `lhs < rhs` (or `rhs > lhs`) fact from a condition.
fn less_fact_of(cond: &Expr) -> Option<LessFact> {
    match cond {
        Expr::Binary(BinOp::Lt, a, b) => Some(LessFact {
            lhs: (**a).clone(),
            rhs: (**b).clone(),
        }),
        Expr::Binary(BinOp::Gt, a, b) => Some(LessFact {
            lhs: (**b).clone(),
            rhs: (**a).clone(),
        }),
        _ => None,
    }
}

/// True if the loop body has the canonical counted-loop shape with respect to
/// the fact's variables: the index variable is only assigned by the final
/// statement of the body, and the bound variable is never assigned.
fn counted_loop_shape(fact: &LessFact, body: &Block) -> bool {
    let Expr::Var(index_var) = &fact.lhs else {
        return false;
    };
    let bound_vars = fact.rhs.vars_read();
    let n = body.stmts.len();
    for (i, stmt) in body.stmts.iter().enumerate() {
        let mut bad = false;
        visit::walk_block_stmts(&Block::new(vec![stmt.clone()]), &mut |s| {
            if let Stmt::Assign(Expr::Var(v), _, _) = s {
                if bound_vars.contains(v) {
                    bad = true;
                }
                if v == index_var && i + 1 != n {
                    bad = true;
                }
            }
            if let Stmt::Local(d, _) = s {
                if d.name == *index_var || bound_vars.contains(&d.name) {
                    bad = true;
                }
            }
        });
        if bad {
            return false;
        }
    }
    true
}

/// Lowers an annotation bound expression into a program expression, resolving
/// sibling-field references against the base object of the access.
fn lower_bound_expr(be: &BoundExpr, base: &Expr) -> Expr {
    match be {
        BoundExpr::Const(c) => Expr::Int(*c),
        BoundExpr::Var(v) | BoundExpr::SelfField(v) => {
            // If the annotated pointer is a struct field (`skb->data`), a bare
            // name in its annotation refers to a sibling field (`skb->len`).
            match base {
                Expr::Arrow(obj, _) => Expr::arrow((**obj).clone(), v.clone()),
                Expr::Field(obj, _) => Expr::field((**obj).clone(), v.clone()),
                _ => Expr::var(v.clone()),
            }
        }
        BoundExpr::Add(a, b) => Expr::add(lower_bound_expr(a, base), lower_bound_expr(b, base)),
        BoundExpr::Sub(a, b) => Expr::sub(lower_bound_expr(a, base), lower_bound_expr(b, base)),
        BoundExpr::Mul(a, b) => Expr::mul(lower_bound_expr(a, base), lower_bound_expr(b, base)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivy_cmir::parser::parse_program;

    fn convert(src: &str) -> Conversion {
        let p = parse_program(src).unwrap();
        Deputy::new().convert(&p)
    }

    fn checks_in(program: &Program, func: &str) -> Vec<Check> {
        let mut out = Vec::new();
        visit::walk_fn_stmts(program.function(func).unwrap(), &mut |s| {
            if let Stmt::Check(c, _) = s {
                out.push(c.clone());
            }
        });
        out
    }

    #[test]
    fn counted_pointer_gets_bounds_check_with_annotation_length() {
        let c = convert(
            r#"
            fn get(buf: u8 * count(n), n: u32, i: u32) -> u8 {
                return buf[i];
            }
            "#,
        );
        assert!(c.report.accepted(), "{:?}", c.report.diagnostics);
        let checks = checks_in(&c.program, "get");
        assert_eq!(checks.len(), 1);
        match &checks[0] {
            Check::PtrBounds {
                len: Some(Expr::Var(n)),
                ..
            } => assert_eq!(n, "n"),
            other => panic!("unexpected check {other:?}"),
        }
    }

    #[test]
    fn counted_loop_is_discharged_statically() {
        let c = convert(
            r#"
            fn fill(buf: u8 * count(n), n: u32) {
                let i: u32 = 0;
                while (i < n) {
                    buf[i] = 0;
                    i = i + 1;
                }
            }
            "#,
        );
        let checks = checks_in(&c.program, "fill");
        assert!(
            checks.is_empty(),
            "loop-guarded access should be static: {checks:?}"
        );
        assert!(c.report.static_discharged >= 1);
    }

    #[test]
    fn non_counted_loop_keeps_the_check() {
        // The index is modified in the middle of the body, so the loop guard
        // does not dominate the access.
        let c = convert(
            r#"
            fn weird(buf: u8 * count(n), n: u32) {
                let i: u32 = 0;
                while (i < n) {
                    i = i + 2;
                    buf[i] = 0;
                }
            }
            "#,
        );
        let checks = checks_in(&c.program, "weird");
        assert_eq!(checks.len(), 1);
    }

    #[test]
    fn sibling_field_annotation_lowers_to_field_access() {
        let c = convert(
            r#"
            struct sk_buff { len: u32; data: u8 * count(len); }
            fn get(skb: struct sk_buff * nonnull, i: u32) -> u8 {
                return skb->data[i];
            }
            "#,
        );
        let checks = checks_in(&c.program, "get");
        assert_eq!(checks.len(), 1, "{checks:?}");
        match &checks[0] {
            Check::PtrBounds { len: Some(l), .. } => {
                assert_eq!(ivy_cmir::pretty::expr_str(l), "skb->len");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn constant_accesses_discharged_or_rejected() {
        let ok = convert("global tbl: u32[8]; fn f() -> u32 { return tbl[3]; }");
        assert_eq!(checks_in(&ok.program, "f").len(), 0);
        assert!(ok.report.static_discharged >= 1);

        let bad = convert("global tbl: u32[8]; fn f() -> u32 { return tbl[9]; }");
        assert_eq!(bad.report.error_count(), 1);
    }

    #[test]
    fn trusted_function_is_left_alone() {
        let c = convert(
            r#"
            #[trusted]
            fn raw_poke(p: u32 *, i: u32) -> u32 { return p[i]; }
            "#,
        );
        assert!(checks_in(&c.program, "raw_poke").is_empty());
        assert!(c.report.trusted_sites >= 1);
    }

    #[test]
    fn trusted_pointer_is_left_alone() {
        let c = convert("fn f(p: u32 * trusted, i: u32) -> u32 { return p[i]; }");
        assert!(checks_in(&c.program, "f").is_empty());
        assert!(c.report.trusted_sites >= 1);
    }

    #[test]
    fn legacy_pointer_gets_auto_check() {
        let c = convert("fn f(p: u32 *, i: u32) -> u32 { return p[i]; }");
        let checks = checks_in(&c.program, "f");
        assert_eq!(checks.len(), 1);
        assert!(matches!(&checks[0], Check::PtrBounds { len: None, .. }));
    }

    #[test]
    fn nullable_arrow_gets_nonnull_check() {
        let c = convert(
            r#"
            struct inode { ino: u32; }
            fn a(p: struct inode * opt) -> u32 { return p->ino; }
            fn b(p: struct inode * nonnull) -> u32 { return p->ino; }
            "#,
        );
        assert!(checks_in(&c.program, "a")
            .iter()
            .any(|c| matches!(c, Check::NonNull(_))));
        assert!(checks_in(&c.program, "b").is_empty());
    }

    #[test]
    fn union_when_field_gets_tag_check() {
        let c = convert(
            r#"
            struct pkt { kind: u32; echo: u32 when(kind == 8); other: u32; }
            fn f(p: struct pkt * nonnull) -> u32 { return p->echo; }
            fn g(p: struct pkt * nonnull) -> u32 { return p->other; }
            "#,
        );
        assert!(checks_in(&c.program, "f")
            .iter()
            .any(|c| matches!(c, Check::UnionTag { .. })));
        assert!(checks_in(&c.program, "g")
            .iter()
            .all(|c| !matches!(c, Check::UnionTag { .. })));
    }

    #[test]
    fn int_to_pointer_cast_is_an_error() {
        let c = convert("fn f(x: u32) -> u32 * { return x as u32 *; }");
        assert_eq!(c.report.error_count(), 1);
        let ok = convert("#[trusted] fn f(x: u32) -> u32 * { return x as u32 *; }");
        assert!(ok.report.accepted());
    }

    #[test]
    fn report_counts_are_consistent() {
        let c = convert(
            r#"
            fn get(buf: u8 * count(n), n: u32, i: u32) -> u8 {
                let a: u8 = buf[i];
                let b: u8 = buf[i];
                return a + b;
            }
            "#,
        );
        // Two syntactic accesses: both inserted, one later optimised away.
        assert_eq!(c.report.runtime_checks["bounds"], 2);
        assert_eq!(c.report.checks_optimized_away, 1);
        let remaining = checks_in(&c.program, "get").len();
        assert_eq!(remaining, 1);
    }
}
