//! Redundant-check elimination.
//!
//! The paper notes that programmers (and the compiler) can "gradually modify
//! the code to reduce the number of checks that must be deferred until run
//! time". This pass performs the compiler half of that: within straight-line
//! code, a check that is syntactically identical to one already executed — and
//! whose operands have not been reassigned in between — is removed.

use ivy_cmir::ast::{Block, Expr, Program, Stmt};
use ivy_cmir::pretty;
use ivy_cmir::visit;
use std::collections::BTreeSet;

/// Removes redundant checks from every function; returns how many were
/// eliminated.
pub fn eliminate_redundant_checks(program: &mut Program) -> u64 {
    let mut removed = 0;
    let originals: Vec<_> = program.functions.clone();
    for func in originals {
        if func.body.is_none() {
            continue;
        }
        let mut new_func = func.clone();
        let body = func.body.as_ref().expect("checked above");
        new_func.body = Some(optimize_block(body, &mut removed));
        program.add_function(new_func);
    }
    removed
}

fn optimize_block(block: &Block, removed: &mut u64) -> Block {
    let mut seen: Vec<(String, BTreeSet<String>)> = Vec::new();
    let mut out = Vec::with_capacity(block.stmts.len());
    for stmt in &block.stmts {
        match stmt {
            Stmt::Check(check, span) => {
                let key = pretty::pretty_stmt(stmt, 0);
                if seen.iter().any(|(k, _)| *k == key) {
                    *removed += 1;
                    continue;
                }
                let mut vars = BTreeSet::new();
                visit::walk_check_exprs(check, &mut |e| {
                    for v in e.vars_read() {
                        vars.insert(v);
                    }
                });
                seen.push((key, vars));
                out.push(Stmt::Check(check.clone(), *span));
            }
            Stmt::Assign(lhs, rhs, span) => {
                invalidate(&mut seen, lhs);
                out.push(Stmt::Assign(lhs.clone(), rhs.clone(), *span));
            }
            Stmt::Local(decl, init) => {
                seen.retain(|(_, vars)| !vars.contains(&decl.name));
                out.push(Stmt::Local(decl.clone(), init.clone()));
            }
            Stmt::Expr(e, span) => {
                // Calls may mutate memory reachable through pointers, which
                // can change `auto` bounds lookups and union tags; drop all
                // facts conservatively when a call appears.
                if !e.calls().is_empty() {
                    seen.clear();
                }
                out.push(Stmt::Expr(e.clone(), *span));
            }
            Stmt::If(c, t, e, span) => {
                // Control flow: facts do not survive the join.
                let t2 = optimize_block(t, removed);
                let e2 = e.as_ref().map(|b| optimize_block(b, removed));
                out.push(Stmt::If(c.clone(), t2, e2, *span));
                seen.clear();
            }
            Stmt::While(c, b, span) => {
                let b2 = optimize_block(b, removed);
                out.push(Stmt::While(c.clone(), b2, *span));
                seen.clear();
            }
            Stmt::Block(b) => {
                out.push(Stmt::Block(optimize_block(b, removed)));
                seen.clear();
            }
            Stmt::DelayedFreeScope(b, span) => {
                out.push(Stmt::DelayedFreeScope(optimize_block(b, removed), *span));
                seen.clear();
            }
            other => out.push(other.clone()),
        }
    }
    Block::new(out)
}

fn invalidate(seen: &mut Vec<(String, BTreeSet<String>)>, lhs: &Expr) {
    match lhs {
        Expr::Var(v) => seen.retain(|(_, vars)| !vars.contains(v)),
        // Writes through pointers or to fields may change anything the checks
        // read from memory; keep only checks that read plain variables.
        _ => {
            let mut written = BTreeSet::new();
            for v in lhs.vars_read() {
                written.insert(v);
            }
            seen.retain(|(k, vars)| {
                !k.contains("->") && !k.contains('[') && vars.is_disjoint(&written)
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivy_cmir::parser::parse_program;

    fn count_checks(program: &Program, func: &str) -> usize {
        let mut n = 0;
        visit::walk_fn_stmts(program.function(func).unwrap(), &mut |s| {
            if matches!(s, Stmt::Check(..)) {
                n += 1;
            }
        });
        n
    }

    #[test]
    fn duplicate_checks_in_straight_line_are_removed() {
        let src = r#"
            fn f(p: u8 * count(n), n: u32, i: u32) -> u8 {
                __check_bounds(p, i, n);
                __check_bounds(p, i, n);
                let a: u8 = p[0];
                __check_bounds(p, i, n);
                return a;
            }
        "#;
        let mut p = parse_program(src).unwrap();
        let removed = eliminate_redundant_checks(&mut p);
        assert_eq!(removed, 2);
        assert_eq!(count_checks(&p, "f"), 1);
    }

    #[test]
    fn assignment_to_operand_keeps_later_check() {
        let src = r#"
            fn f(p: u8 * count(n), n: u32, i: u32) -> u8 {
                __check_bounds(p, i, n);
                i = i + 1;
                __check_bounds(p, i, n);
                return p[0];
            }
        "#;
        let mut p = parse_program(src).unwrap();
        let removed = eliminate_redundant_checks(&mut p);
        assert_eq!(removed, 0);
        assert_eq!(count_checks(&p, "f"), 2);
    }

    #[test]
    fn calls_invalidate_memory_dependent_checks() {
        let src = r#"
            struct sk_buff { len: u32; data: u8 * count(len); }
            extern fn consume(skb: struct sk_buff *);
            fn f(skb: struct sk_buff * nonnull, i: u32) -> u8 {
                __check_bounds(skb->data, i, skb->len);
                consume(skb);
                __check_bounds(skb->data, i, skb->len);
                return 0;
            }
        "#;
        let mut p = parse_program(src).unwrap();
        let removed = eliminate_redundant_checks(&mut p);
        assert_eq!(removed, 0);
    }

    #[test]
    fn checks_in_branches_not_merged_across_join() {
        let src = r#"
            fn f(p: u8 * count(n), n: u32, i: u32) -> u8 {
                if (i > 0) {
                    __check_bounds(p, i, n);
                    p[0] = 1;
                }
                __check_bounds(p, i, n);
                return p[0];
            }
        "#;
        let mut p = parse_program(src).unwrap();
        let removed = eliminate_redundant_checks(&mut p);
        assert_eq!(removed, 0);
        assert_eq!(count_checks(&p, "f"), 2);
    }
}
