//! Report types produced by the Deputy conversion pipeline.

use ivy_cmir::Span;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Why Deputy could not accept a construct without programmer action.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeputyDiagnostic {
    /// Function containing the construct.
    pub function: String,
    /// What is wrong (e.g. "cast between incompatible pointer types").
    pub message: String,
    /// Severity: errors must be fixed (annotate, rewrite, or trust); notes
    /// are informational.
    pub severity: Severity,
    /// Span of the offending construct (the declaration or statement it
    /// was found in), when one is known.
    pub span: Option<Span>,
}

/// Severity of a [`DeputyDiagnostic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Severity {
    /// The construct is illegal in Deputy's type system.
    Error,
    /// Informational (e.g. a default annotation was inferred).
    Note,
}

/// Outcome of one access site examined by the checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SiteOutcome {
    /// Proven safe at compile time; no run-time check needed.
    Static,
    /// A run-time check was inserted.
    Runtime,
    /// Inside trusted code; not checked.
    Trusted,
    /// Could not be handled (remains an error).
    Error,
}

/// Statistics and diagnostics from a conversion run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ConversionReport {
    /// Memory-access sites proven safe statically.
    pub static_discharged: u64,
    /// Run-time checks inserted, by check kind.
    pub runtime_checks: BTreeMap<String, u64>,
    /// Checks later removed by the redundancy optimiser.
    pub checks_optimized_away: u64,
    /// Access sites skipped because the enclosing function (or pointer) is
    /// trusted.
    pub trusted_sites: u64,
    /// Default annotations inferred for legacy (unannotated) pointers.
    pub inferred_defaults: u64,
    /// Diagnostics (annotation errors, illegal casts, ...).
    pub diagnostics: Vec<DeputyDiagnostic>,
    /// Per-function count of inserted checks (for hot-spot reporting).
    pub checks_per_function: BTreeMap<String, u64>,
}

impl ConversionReport {
    /// Total number of run-time checks inserted (after optimisation).
    pub fn total_runtime_checks(&self) -> u64 {
        self.runtime_checks.values().sum()
    }

    /// Number of hard errors.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// True when the program was accepted (no errors remain).
    pub fn accepted(&self) -> bool {
        self.error_count() == 0
    }

    /// Fraction of examined sites that were discharged statically.
    pub fn static_ratio(&self) -> f64 {
        let total = self.static_discharged + self.total_runtime_checks();
        if total == 0 {
            1.0
        } else {
            self.static_discharged as f64 / total as f64
        }
    }

    /// Records an inserted check of a kind.
    pub fn count_check(&mut self, kind: &str, function: &str) {
        *self.runtime_checks.entry(kind.to_string()).or_insert(0) += 1;
        *self
            .checks_per_function
            .entry(function.to_string())
            .or_insert(0) += 1;
    }

    /// Accumulates another report into this one (used to combine the
    /// per-function reports of [`crate::convert_function`]).
    pub fn merge(&mut self, other: &ConversionReport) {
        self.static_discharged += other.static_discharged;
        self.checks_optimized_away += other.checks_optimized_away;
        self.trusted_sites += other.trusted_sites;
        self.inferred_defaults += other.inferred_defaults;
        for (kind, n) in &other.runtime_checks {
            *self.runtime_checks.entry(kind.clone()).or_insert(0) += n;
        }
        for (function, n) in &other.checks_per_function {
            *self
                .checks_per_function
                .entry(function.clone())
                .or_insert(0) += n;
        }
        self.diagnostics.extend(other.diagnostics.iter().cloned());
    }
}

/// The annotation-burden statistics of §2.1 (experiment E2).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BurdenStats {
    /// Total source lines of the (pretty-printed) program.
    pub total_lines: u64,
    /// Lines carrying a programmer-written Deputy annotation.
    pub annotated_lines: u64,
    /// Lines inside trusted code (trusted functions or trusted pointers).
    pub trusted_lines: u64,
    /// Number of functions in the program.
    pub functions: u64,
    /// Number of functions marked trusted.
    pub trusted_functions: u64,
    /// Per-subsystem breakdown: (total lines, annotated lines).
    pub per_subsystem: BTreeMap<String, (u64, u64)>,
}

impl BurdenStats {
    /// Annotated lines as a fraction of total lines.
    pub fn annotated_fraction(&self) -> f64 {
        if self.total_lines == 0 {
            0.0
        } else {
            self.annotated_lines as f64 / self.total_lines as f64
        }
    }

    /// Trusted lines as a fraction of total lines.
    pub fn trusted_fraction(&self) -> f64 {
        if self.total_lines == 0 {
            0.0
        } else {
            self.trusted_lines as f64 / self.total_lines as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_accounting() {
        let mut r = ConversionReport::default();
        r.count_check("bounds", "skb_push");
        r.count_check("bounds", "skb_push");
        r.count_check("nonnull", "vfs_read");
        r.static_discharged = 7;
        assert_eq!(r.total_runtime_checks(), 3);
        assert_eq!(r.checks_per_function["skb_push"], 2);
        assert!((r.static_ratio() - 0.7).abs() < 1e-9);
        assert!(r.accepted());
        r.diagnostics.push(DeputyDiagnostic {
            function: "f".into(),
            message: "bad cast".into(),
            severity: Severity::Error,
            span: None,
        });
        assert!(!r.accepted());
    }

    #[test]
    fn burden_fractions() {
        let b = BurdenStats {
            total_lines: 1000,
            annotated_lines: 6,
            trusted_lines: 8,
            ..BurdenStats::default()
        };
        assert!((b.annotated_fraction() - 0.006).abs() < 1e-9);
        assert!((b.trusted_fraction() - 0.008).abs() < 1e-9);
        assert_eq!(BurdenStats::default().annotated_fraction(), 0.0);
    }
}
