//! `ivy-deputy` — the Deputy dependent type system for KC (§2.1 of the paper).
//!
//! Deputy "checks that a pointer always points to valid data of the correct
//! type, even in the presence of pointer arithmetic", using lightweight,
//! untrusted annotations (`count`, `bound`, `nullterm`, `nonnull`, `opt`,
//! union `when` tags, `trusted`) plus hybrid static/run-time checking.
//!
//! The crate provides the whole conversion pipeline:
//!
//! * [`annotate`] — annotation validation and default inference for legacy
//!   pointers (the incremental-conversion story).
//! * [`instrument`] — the checker itself: static discharge where provable,
//!   run-time check insertion otherwise, `trusted` escape hatches respected
//!   and counted.
//! * [`optimize`] — redundant-check elimination.
//! * [`erase`](erase()) — erasure semantics: strip every annotation and every
//!   inserted check, recovering a program a traditional build would accept.
//! * [`stats`] — the annotation-burden numbers of experiment E2.
//!
//! # Examples
//!
//! ```
//! use ivy_cmir::parser::parse_program;
//! use ivy_deputy::{Deputy, stats};
//!
//! let program = parse_program(
//!     r#"
//!     fn checksum_pairs(buf: u8 * count(n), n: u32) -> u32 {
//!         let acc: u32 = 0;
//!         let i: u32 = 0;
//!         while (i < n) {
//!             // buf[i] is guarded by the loop condition (static discharge);
//!             // buf[i + 1] is not, so Deputy inserts a run-time check.
//!             acc = acc + buf[i] + buf[i + 1];
//!             i = i + 2;
//!         }
//!         return acc;
//!     }
//!     "#,
//! )
//! .unwrap();
//! let conversion = Deputy::new().convert(&program);
//! assert!(conversion.report.accepted());
//! assert!(conversion.report.total_runtime_checks() > 0);
//! let burden = stats::burden(&program);
//! assert!(burden.annotated_lines > 0);
//! ```

#![warn(missing_docs)]

pub mod annotate;
pub mod instrument;
pub mod optimize;
pub mod plugin;
pub mod report;
pub mod stats;

pub use instrument::{convert_function, Conversion, Deputy, DeputyConfig};
pub use plugin::DeputyChecker;
pub use report::{BurdenStats, ConversionReport, DeputyDiagnostic, Severity, SiteOutcome};

use ivy_cmir::ast::Program;

/// Fully erases a program: every Deputy annotation, every inserted run-time
/// check, and every delayed-free scope marker is removed, yielding the
/// program a traditional build process would compile ("erasure semantics").
pub fn erase(program: &Program) -> Program {
    program.erased()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivy_cmir::parser::parse_program;
    use ivy_cmir::visit;
    use ivy_cmir::Stmt;

    #[test]
    fn erase_after_convert_recovers_plain_program() {
        let src = r#"
            fn get(buf: u8 * count(n), n: u32, i: u32) -> u8 { return buf[i]; }
        "#;
        let p = parse_program(src).unwrap();
        let converted = Deputy::new().convert(&p);
        let erased = erase(&converted.program);
        // No checks and no annotations survive erasure.
        let f = erased.function("get").unwrap();
        assert!(!f.is_annotated());
        let mut has_check = false;
        visit::walk_fn_stmts(f, &mut |s| {
            if matches!(s, Stmt::Check(..)) {
                has_check = true;
            }
        });
        assert!(!has_check);
    }

    #[test]
    fn conversion_is_stable_when_repeated() {
        // Re-deputizing an already deputized program must not duplicate
        // checks (the optimizer removes the would-be duplicates).
        let src = r#"
            fn get(buf: u8 * count(n), n: u32, i: u32) -> u8 { return buf[i]; }
        "#;
        let p = parse_program(src).unwrap();
        let once = Deputy::new().convert(&p);
        let twice = Deputy::new().convert(&once.program);
        let count = |prog: &Program| {
            let mut n = 0;
            visit::walk_fn_stmts(prog.function("get").unwrap(), &mut |s| {
                if matches!(s, Stmt::Check(..)) {
                    n += 1;
                }
            });
            n
        };
        assert_eq!(count(&once.program), count(&twice.program));
    }
}
