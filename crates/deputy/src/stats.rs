//! Annotation-burden statistics (experiment E2).
//!
//! The paper reports, for the converted kernel: total lines converted
//! (~435,000), lines with annotations (~2627, ≈0.6 %), and trusted lines
//! (~3273, ≈0.8 %). This module computes the same three numbers for a KC
//! program, counting lines of the canonical pretty-printed form so that
//! builder-generated and parsed code are measured identically.

use crate::report::BurdenStats;
use ivy_cmir::ast::{Program, Stmt};
use ivy_cmir::pretty;
use ivy_cmir::visit;

/// Computes the annotation-burden statistics of a program.
pub fn burden(program: &Program) -> BurdenStats {
    let mut stats = BurdenStats::default();

    // Composite definitions: one line per field plus two for braces.
    for comp in &program.composites {
        let lines = comp.fields.len() as u64 + 2;
        stats.total_lines += lines;
        let annotated = comp.fields.iter().filter(|f| f.is_annotated()).count() as u64;
        stats.annotated_lines += annotated;
        let entry = stats
            .per_subsystem
            .entry("types".to_string())
            .or_insert((0, 0));
        entry.0 += lines;
        entry.1 += annotated;
    }

    // Globals and typedefs: one line each.
    for g in &program.globals {
        stats.total_lines += 1;
        if g.decl.ty.is_annotated() {
            stats.annotated_lines += 1;
        }
    }
    stats.total_lines += program.typedefs.len() as u64;

    // Functions.
    for f in &program.functions {
        stats.functions += 1;
        let body_lines = pretty::pretty_function(f).lines().count() as u64;
        stats.total_lines += body_lines;

        let mut annotated = 0u64;
        // Signature line counts once if any parameter, the return type, or a
        // function attribute carries an annotation.
        if f.is_annotated() {
            annotated += 1;
        }
        // Each annotated local declaration counts as one annotated line.
        visit::walk_fn_stmts(f, &mut |s| {
            if let Stmt::Local(d, _) = s {
                if d.ty.is_annotated() {
                    annotated += 1;
                }
            }
        });
        stats.annotated_lines += annotated;

        if f.attrs.trusted {
            stats.trusted_functions += 1;
            stats.trusted_lines += body_lines;
        } else {
            // Trusted pointers inside an otherwise-checked function count
            // their declaration lines as trusted.
            let mut trusted_decls = 0u64;
            for p in &f.params {
                if p.ty.ptr_annot().map(|a| a.trusted).unwrap_or(false) {
                    trusted_decls += 1;
                }
            }
            visit::walk_fn_stmts(f, &mut |s| {
                if let Stmt::Local(d, _) = s {
                    if d.ty.ptr_annot().map(|a| a.trusted).unwrap_or(false) {
                        trusted_decls += 1;
                    }
                }
            });
            stats.trusted_lines += trusted_decls;
        }

        let entry = stats
            .per_subsystem
            .entry(f.subsystem.clone())
            .or_insert((0, 0));
        entry.0 += body_lines;
        entry.1 += annotated;
    }

    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivy_cmir::parser::parse_program;

    const SAMPLE: &str = r#"
        struct sk_buff {
            len: u32;
            data: u8 * count(len);
        }
        global jiffies: u64 = 0;
        #[subsystem("net/ipv4")]
        fn ip_rcv(skb: struct sk_buff * nonnull) -> i32 {
            let p: u8 * = skb->data;
            return 0;
        }
        #[subsystem("mm")] #[trusted]
        fn phys_to_virt(addr: u32) -> void * {
            return addr as void *;
        }
        fn untouched(x: u32) -> u32 {
            return x + 1;
        }
    "#;

    #[test]
    fn counts_annotated_and_trusted_lines() {
        let p = parse_program(SAMPLE).unwrap();
        let b = burden(&p);
        assert_eq!(b.functions, 3);
        assert_eq!(b.trusted_functions, 1);
        // One annotated field + the annotated ip_rcv signature.
        assert!(b.annotated_lines >= 2);
        assert!(
            b.trusted_lines >= 3,
            "trusted function body lines: {}",
            b.trusted_lines
        );
        assert!(b.total_lines > b.annotated_lines + b.trusted_lines);
        assert!(b.per_subsystem.contains_key("net/ipv4"));
        assert!(b.per_subsystem.contains_key("mm"));
    }

    #[test]
    fn unannotated_program_has_zero_burden() {
        let p = parse_program("fn f(x: u32) -> u32 { return x; }").unwrap();
        let b = burden(&p);
        assert_eq!(b.annotated_lines, 0);
        assert_eq!(b.trusted_lines, 0);
        assert!(b.total_lines > 0);
    }

    #[test]
    fn fractions_are_small_for_lightly_annotated_code() {
        let p = parse_program(SAMPLE).unwrap();
        let b = burden(&p);
        assert!(b.annotated_fraction() < 0.5);
        assert!(b.trusted_fraction() < 0.5);
    }
}
