//! Annotation validation and default inference.
//!
//! Deputy annotations are written by programmers and are *untrusted*: the
//! checker validates that they are well-formed (bounds expressions only
//! mention names that are actually in scope) and the run-time checks that
//! `ivy-deputy::instrument` inserts will catch annotations that are wrong
//! about the data.
//!
//! The inference pass handles the incremental-conversion story: legacy
//! pointers with no annotation get a sensible default — `single` when the
//! pointer is only dereferenced, `auto` when it is indexed or used in pointer
//! arithmetic — so that a file can be converted without touching every
//! declaration. Inferred defaults are reported separately from programmer
//! annotations so the burden statistics (E2) stay honest.

use crate::report::{ConversionReport, DeputyDiagnostic, Severity};
use ivy_cmir::ast::{Expr, Function, Program, Stmt};
use ivy_cmir::types::{Bounds, PtrAnnot, Type};
use ivy_cmir::visit;
use std::collections::BTreeSet;

/// Validates every annotation in the program, appending diagnostics to the
/// report. Returns the number of annotations examined.
pub fn validate_annotations(program: &Program, report: &mut ConversionReport) -> u64 {
    let mut examined = 0;

    // Struct/union field annotations may reference sibling fields.
    for comp in &program.composites {
        let siblings: BTreeSet<String> = comp.fields.iter().map(|f| f.name.clone()).collect();
        for field in &comp.fields {
            examined += count_annotations(&field.ty);
            for var in annotation_vars(&field.ty) {
                if !siblings.contains(&var) && program.global(&var).is_none() {
                    report.diagnostics.push(DeputyDiagnostic {
                        function: format!("{}::{}", comp.name, field.name),
                        message: format!(
                            "bounds annotation mentions `{var}`, which is neither a sibling field nor a global"
                        ),
                        severity: Severity::Error,
                        span: Some(field.span),
                    });
                }
            }
            if let Some((tag, _)) = &field.when {
                if !siblings.contains(tag) {
                    report.diagnostics.push(DeputyDiagnostic {
                        function: format!("{}::{}", comp.name, field.name),
                        message: format!("when() refers to unknown tag field `{tag}`"),
                        severity: Severity::Error,
                        span: Some(field.span),
                    });
                }
            }
        }
    }

    // Globals may reference other globals.
    for g in &program.globals {
        examined += count_annotations(&g.decl.ty);
        for var in annotation_vars(&g.decl.ty) {
            if program.global(&var).is_none() {
                report.diagnostics.push(DeputyDiagnostic {
                    function: format!("global {}", g.decl.name),
                    message: format!("bounds annotation mentions unknown global `{var}`"),
                    severity: Severity::Error,
                    span: Some(g.decl.span),
                });
            }
        }
    }

    // Function signatures and locals may reference parameters, earlier
    // locals, and globals.
    for f in &program.functions {
        let mut in_scope: BTreeSet<String> = f.params.iter().map(|p| p.name.clone()).collect();
        for g in &program.globals {
            in_scope.insert(g.decl.name.clone());
        }
        for p in &f.params {
            examined += count_annotations(&p.ty);
            for var in annotation_vars(&p.ty) {
                if !in_scope.contains(&var) {
                    report.diagnostics.push(DeputyDiagnostic {
                        function: f.name.clone(),
                        message: format!(
                            "annotation on parameter `{}` mentions `{var}`, which is not in scope",
                            p.name
                        ),
                        severity: Severity::Error,
                        span: Some(if p.span.is_real() { p.span } else { f.span }),
                    });
                }
            }
        }
        examined += count_annotations(&f.ret);
        visit::walk_fn_stmts(f, &mut |s| {
            if let Stmt::Local(decl, _) = s {
                examined += count_annotations(&decl.ty);
                for var in annotation_vars(&decl.ty) {
                    if !in_scope.contains(&var) && decl.name != var {
                        report.diagnostics.push(DeputyDiagnostic {
                            function: f.name.clone(),
                            message: format!(
                                "annotation on local `{}` mentions `{var}`, which is not in scope",
                                decl.name
                            ),
                            severity: Severity::Error,
                            span: Some(if decl.span.is_real() {
                                decl.span
                            } else {
                                f.span
                            }),
                        });
                    }
                }
                in_scope.insert(decl.name.clone());
            }
        });
    }
    examined
}

/// Infers default annotations for unannotated pointers: `auto` bounds for
/// pointers that the function indexes or offsets, `single` for everything
/// else. Returns the number of defaults applied.
pub fn infer_defaults(program: &mut Program, report: &mut ConversionReport) -> u64 {
    // Collect, per function, the set of local/param names that are used with
    // indexing or pointer arithmetic anywhere in the program.
    let mut inferred = 0;
    let functions: Vec<Function> = program.functions.clone();

    for f in &functions {
        if f.body.is_none() {
            continue;
        }
        let arithmetic_ptrs = pointers_used_with_arithmetic(f);
        let target = program.function_mut(&f.name).expect("function exists");
        for p in &mut target.params {
            inferred += apply_default(&mut p.ty, arithmetic_ptrs.contains(&p.name));
        }
        if let Some(body) = &mut target.body {
            let new_body = visit::map_block(body, &mut |s| match s {
                Stmt::Local(mut decl, init) => {
                    inferred += apply_default(&mut decl.ty, arithmetic_ptrs.contains(&decl.name));
                    vec![Stmt::Local(decl, init)]
                }
                other => vec![other],
            });
            target.body = Some(new_body);
        }
    }

    // Globals and fields: default to `auto` for arrays-of-unknown use, else
    // `single`; without per-site usage information the conservative choice is
    // `auto` (it is always checkable at run time).
    for g in &mut program.globals {
        inferred += apply_default(&mut g.decl.ty, true);
    }
    for c in &mut program.composites {
        for field in &mut c.fields {
            inferred += apply_default(&mut field.ty, true);
        }
    }

    report.inferred_defaults += inferred;
    inferred
}

fn apply_default(ty: &mut Type, used_with_arithmetic: bool) -> u64 {
    match ty {
        Type::Ptr(inner, ann) => {
            let mut n = apply_default(inner, used_with_arithmetic);
            if !ann.trusted && matches!(ann.bounds, Bounds::Unknown) {
                ann.bounds = if used_with_arithmetic {
                    Bounds::Auto
                } else {
                    Bounds::Single
                };
                n += 1;
            }
            n
        }
        Type::Array(inner, _) => apply_default(inner, used_with_arithmetic),
        _ => 0,
    }
}

/// Names of parameters/locals that the function indexes or uses in pointer
/// arithmetic (candidates for `auto` bounds rather than `single`).
pub fn pointers_used_with_arithmetic(func: &Function) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    visit::walk_fn_stmts(func, &mut |stmt| {
        visit::walk_stmt_exprs(stmt, &mut |e| match e {
            Expr::Index(base, idx) => {
                if let Expr::Var(name) = &**base {
                    if !matches!(**idx, Expr::Int(0)) {
                        out.insert(name.clone());
                    }
                }
            }
            Expr::Binary(ivy_cmir::BinOp::Add | ivy_cmir::BinOp::Sub, a, _) => {
                if let Expr::Var(name) = &**a {
                    out.insert(name.clone());
                }
            }
            _ => {}
        });
    });
    out
}

fn count_annotations(ty: &Type) -> u64 {
    match ty {
        Type::Ptr(inner, ann) => u64::from(ann.is_annotated()) + count_annotations(inner),
        Type::Array(inner, _) => count_annotations(inner),
        Type::Func(ft) => {
            count_annotations(&ft.ret) + ft.params.iter().map(count_annotations).sum::<u64>()
        }
        _ => 0,
    }
}

fn annotation_vars(ty: &Type) -> Vec<String> {
    match ty {
        Type::Ptr(inner, ann) => {
            let mut v = ann.free_vars();
            v.extend(annotation_vars(inner));
            v
        }
        Type::Array(inner, _) => annotation_vars(inner),
        Type::Func(ft) => {
            let mut v = annotation_vars(&ft.ret);
            for p in &ft.params {
                v.extend(annotation_vars(p));
            }
            v
        }
        _ => Vec::new(),
    }
}

/// Returns the effective pointer annotation of an expression's type, if the
/// expression has pointer type.
pub fn annot_of_type(ty: &Type) -> Option<&PtrAnnot> {
    ty.ptr_annot()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivy_cmir::parser::parse_program;

    #[test]
    fn well_formed_annotations_pass() {
        let src = r#"
            struct sk_buff { len: u32; data: u8 * count(len); }
            global n_devices: u32 = 4;
            global devices: u8 * count(n_devices);
            fn f(buf: u8 * count(n), n: u32) -> u8 { return buf[0]; }
        "#;
        let p = parse_program(src).unwrap();
        let mut r = ConversionReport::default();
        let examined = validate_annotations(&p, &mut r);
        assert!(r.accepted(), "{:?}", r.diagnostics);
        assert!(examined >= 3);
    }

    #[test]
    fn out_of_scope_annotation_rejected() {
        let src = r#"
            struct sk_buff { len: u32; data: u8 * count(payload_size); }
            fn f(buf: u8 * count(m), n: u32) -> u8 { return buf[0]; }
        "#;
        let p = parse_program(src).unwrap();
        let mut r = ConversionReport::default();
        validate_annotations(&p, &mut r);
        assert_eq!(r.error_count(), 2);
    }

    #[test]
    fn bad_when_tag_rejected() {
        let src = r#"
            struct pkt { kind: u32; echo: u32 when(typ == 8); }
        "#;
        let p = parse_program(src).unwrap();
        let mut r = ConversionReport::default();
        validate_annotations(&p, &mut r);
        assert_eq!(r.error_count(), 1);
    }

    #[test]
    fn defaults_single_vs_auto() {
        let src = r#"
            fn only_deref(p: u32 *) -> u32 { return *p; }
            fn walks(p: u32 *, n: u32) -> u32 {
                let acc: u32 = 0;
                let i: u32 = 0;
                while (i < n) { acc = acc + p[i]; i = i + 1; }
                return acc;
            }
        "#;
        let mut p = parse_program(src).unwrap();
        let mut r = ConversionReport::default();
        let n = infer_defaults(&mut p, &mut r);
        assert!(n >= 2);
        let only = &p.function("only_deref").unwrap().params[0].ty;
        assert_eq!(only.ptr_annot().unwrap().bounds, Bounds::Single);
        let walks = &p.function("walks").unwrap().params[0].ty;
        assert_eq!(walks.ptr_annot().unwrap().bounds, Bounds::Auto);
    }

    #[test]
    fn trusted_pointers_not_defaulted() {
        let src = "fn f(p: u32 * trusted) -> u32 { return p[4]; }";
        let mut p = parse_program(src).unwrap();
        let mut r = ConversionReport::default();
        infer_defaults(&mut p, &mut r);
        let ann = p.function("f").unwrap().params[0]
            .ty
            .ptr_annot()
            .unwrap()
            .clone();
        assert!(ann.trusted);
        assert_eq!(ann.bounds, Bounds::Unknown);
    }

    #[test]
    fn inference_is_idempotent() {
        let src = "fn walks(p: u32 *, n: u32) -> u32 { return p[n]; }";
        let mut p = parse_program(src).unwrap();
        let mut r = ConversionReport::default();
        let first = infer_defaults(&mut p, &mut r);
        let second = infer_defaults(&mut p, &mut r);
        assert!(first > 0);
        assert_eq!(
            second, 0,
            "already-annotated pointers must not be touched again"
        );
    }
}
