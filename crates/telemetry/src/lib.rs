//! Zero-dependency in-process span tracing and metrics for the Ivy
//! workspace.
//!
//! Every subsystem (engine, points-to solver, daemon, VM, oracle, core
//! pipeline) records two kinds of telemetry through this crate:
//!
//! * **Spans** — cheap monotonic-clock intervals (`[start, start+dur)` in
//!   microseconds since a process-wide epoch) tagged with a static
//!   category like `"engine/query"` and a dynamic name. Spans are
//!   exportable as Chrome trace-event JSON ([`chrome_trace_json`]) so a
//!   recorded session opens directly in `about://tracing` or Perfetto.
//! * **Counters** — monotonically increasing integers with an optional
//!   single label, exportable as Prometheus-style text exposition
//!   ([`prometheus_text`]).
//!
//! Both feeds share one global, lock-sharded [`Recorder`]-style store.
//! Recording is gated behind two independent switches (spans and
//! counters); the **disabled fast path is a single relaxed atomic load**,
//! so instrumentation left in hot loops costs ~1 ns when telemetry is
//! off. The first gate check lazily consults the `IVY_TRACE` environment
//! variable: `IVY_TRACE=1` enables both feeds for the whole process.
//!
//! This crate deliberately has **no dependencies** — not even the
//! workspace's vendored serde shims — so every other crate can depend on
//! it without cycles. The Chrome-trace and Prometheus emitters are
//! hand-rolled writers producing spec-conformant output.

#![warn(missing_docs)]

use std::borrow::Cow;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Enable gates
// ---------------------------------------------------------------------------

/// Gate states: the gate starts `UNINIT` and resolves to `ON`/`OFF` the
/// first time it is consulted (from `IVY_TRACE`) or explicitly set.
const UNINIT: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;

static SPAN_GATE: AtomicU8 = AtomicU8::new(UNINIT);
static COUNTER_GATE: AtomicU8 = AtomicU8::new(UNINIT);

/// Whether span recording is enabled. The hot path is one relaxed atomic
/// load; only the very first call per process may touch the environment.
#[inline]
pub fn spans_enabled() -> bool {
    match SPAN_GATE.load(Ordering::Relaxed) {
        ON => true,
        OFF => false,
        _ => init_gate_from_env(&SPAN_GATE),
    }
}

/// Whether counter recording is enabled. Same fast path as
/// [`spans_enabled`].
#[inline]
pub fn counters_enabled() -> bool {
    match COUNTER_GATE.load(Ordering::Relaxed) {
        ON => true,
        OFF => false,
        _ => init_gate_from_env(&COUNTER_GATE),
    }
}

#[cold]
fn init_gate_from_env(gate: &AtomicU8) -> bool {
    let on = matches!(
        std::env::var("IVY_TRACE").as_deref(),
        Ok("1") | Ok("true") | Ok("on")
    );
    let resolved = if on { ON } else { OFF };
    // An explicit enable()/disable() racing with us wins.
    let _ = gate.compare_exchange(UNINIT, resolved, Ordering::Relaxed, Ordering::Relaxed);
    gate.load(Ordering::Relaxed) == ON
}

/// Turn span recording on for the whole process.
pub fn enable_spans() {
    SPAN_GATE.store(ON, Ordering::Relaxed);
}

/// Turn span recording off. Already-recorded spans are retained.
pub fn disable_spans() {
    SPAN_GATE.store(OFF, Ordering::Relaxed);
}

/// Turn counter recording on for the whole process.
pub fn enable_counters() {
    COUNTER_GATE.store(ON, Ordering::Relaxed);
}

/// Turn counter recording off. Accumulated counts are retained.
pub fn disable_counters() {
    COUNTER_GATE.store(OFF, Ordering::Relaxed);
}

/// Enable both spans and counters (what `IVY_TRACE=1` does).
pub fn enable_all() {
    enable_spans();
    enable_counters();
}

/// Disable both spans and counters.
pub fn disable_all() {
    disable_spans();
    disable_counters();
}

// ---------------------------------------------------------------------------
// Recorder: lock-sharded span + counter store
// ---------------------------------------------------------------------------

const SHARD_COUNT: usize = 16;

/// Per-shard cap on retained spans; a runaway traced loop degrades to
/// dropping spans (counted) instead of exhausting memory.
const SPAN_CAP_PER_SHARD: usize = 1 << 16;

#[derive(Default)]
struct Shard {
    spans: Vec<SpanRecord>,
    counters: BTreeMap<CounterKey, u64>,
}

struct Recorder {
    shards: Vec<Mutex<Shard>>,
    dropped_spans: AtomicU64,
}

fn recorder() -> &'static Recorder {
    static RECORDER: OnceLock<Recorder> = OnceLock::new();
    RECORDER.get_or_init(|| Recorder {
        shards: (0..SHARD_COUNT)
            .map(|_| Mutex::new(Shard::default()))
            .collect(),
        dropped_spans: AtomicU64::new(0),
    })
}

fn lock_shard(index: usize) -> std::sync::MutexGuard<'static, Shard> {
    recorder().shards[index % SHARD_COUNT]
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Process-wide monotonic epoch; all span timestamps are microseconds
/// since the first telemetry event.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Number of spans discarded because a shard hit its retention cap.
pub fn dropped_spans() -> u64 {
    recorder().dropped_spans.load(Ordering::Relaxed)
}

/// Clear all recorded spans and counters (gates are left as-is). Meant
/// for tests and for an exporter that wants per-run traces.
pub fn reset() {
    let rec = recorder();
    for shard in &rec.shards {
        let mut shard = shard.lock().unwrap_or_else(PoisonError::into_inner);
        shard.spans.clear();
        shard.counters.clear();
    }
    rec.dropped_spans.store(0, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

thread_local! {
    static THREAD_ID: Cell<u64> = const { Cell::new(0) };
    static SPAN_DEPTH: Cell<u32> = const { Cell::new(0) };
}

static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

fn current_tid() -> u64 {
    THREAD_ID.with(|cell| {
        let id = cell.get();
        if id != 0 {
            id
        } else {
            let id = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
            cell.set(id);
            id
        }
    })
}

/// One completed span interval, as stored by the recorder and exported
/// to Chrome trace-event JSON.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static category, e.g. `"engine/query"` — the Chrome trace `cat`.
    pub cat: &'static str,
    /// Dynamic name, e.g. the query or function being computed.
    pub name: String,
    /// Telemetry-local thread id (small dense integers, not OS tids).
    pub tid: u64,
    /// Microseconds since the process telemetry epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Nesting depth on its thread at the time the span opened (0 = root).
    pub depth: u32,
}

struct ActiveSpan {
    cat: &'static str,
    name: Cow<'static, str>,
    start: Instant,
    start_us: u64,
    tid: u64,
    depth: u32,
}

/// RAII guard returned by [`span`]; records the interval when dropped.
#[must_use = "a span measures the interval until the guard drops"]
pub struct Span(Option<ActiveSpan>);

impl Span {
    /// Whether this guard will record anything on drop (i.e. spans were
    /// enabled when it was created).
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(active) = self.0.take() {
            let dur_us = active.start.elapsed().as_micros() as u64;
            SPAN_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            let record = SpanRecord {
                cat: active.cat,
                name: active.name.into_owned(),
                tid: active.tid,
                start_us: active.start_us,
                dur_us,
                depth: active.depth,
            };
            let mut shard = lock_shard(active.tid as usize);
            if shard.spans.len() < SPAN_CAP_PER_SHARD {
                shard.spans.push(record);
            } else {
                drop(shard);
                recorder().dropped_spans.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Open a span. When spans are disabled this is one atomic load and
/// returns an inert guard; when enabled, the interval from this call to
/// the guard's drop is recorded under `cat`/`name`.
#[inline]
pub fn span(cat: &'static str, name: impl Into<Cow<'static, str>>) -> Span {
    if !spans_enabled() {
        return Span(None);
    }
    span_slow(cat, name.into())
}

#[cold]
fn span_slow(cat: &'static str, name: Cow<'static, str>) -> Span {
    let ep = epoch();
    let start = Instant::now();
    let start_us = start.duration_since(ep).as_micros() as u64;
    let depth = SPAN_DEPTH.with(|d| {
        let depth = d.get();
        d.set(depth + 1);
        depth
    });
    Span(Some(ActiveSpan {
        cat,
        name,
        start,
        start_us,
        tid: current_tid(),
        depth,
    }))
}

/// Time a closure under a span; sugar for `let _g = span(..); f()`.
#[inline]
pub fn time<R>(cat: &'static str, name: impl Into<Cow<'static, str>>, f: impl FnOnce() -> R) -> R {
    let _guard = span(cat, name);
    f()
}

/// Snapshot all recorded spans, sorted by start time (then thread, then
/// descending duration so parents precede their children).
pub fn spans_snapshot() -> Vec<SpanRecord> {
    let rec = recorder();
    let mut spans = Vec::new();
    for shard in &rec.shards {
        let shard = shard.lock().unwrap_or_else(PoisonError::into_inner);
        spans.extend(shard.spans.iter().cloned());
    }
    spans.sort_by(|a, b| {
        (a.start_us, a.tid, std::cmp::Reverse(a.dur_us), &a.name).cmp(&(
            b.start_us,
            b.tid,
            std::cmp::Reverse(b.dur_us),
            &b.name,
        ))
    });
    spans
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// Identity of a counter series: a metric name plus at most one
/// `key="value"` label (all current call sites need zero or one).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct CounterKey {
    /// Metric name, e.g. `ivy_engine_cache_hits_total`.
    pub name: Cow<'static, str>,
    /// Optional single label as `(key, value)`.
    pub label: Option<(Cow<'static, str>, String)>,
}

fn counter_shard_index(name: &str) -> usize {
    // FNV-1a over the metric name: counters for the same series always
    // land in the same shard so increments merge without a reduce step.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash as usize
}

/// Add `delta` to the unlabeled counter `name` (no-op when counters are
/// disabled; the disabled path is one atomic load).
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if !counters_enabled() || delta == 0 {
        return;
    }
    counter_record(Cow::Borrowed(name), None, delta);
}

/// Add `delta` to the counter `name{label_key="label_value"}`.
#[inline]
pub fn counter_labeled(name: &'static str, label_key: &'static str, label_value: &str, delta: u64) {
    if !counters_enabled() || delta == 0 {
        return;
    }
    counter_record(
        Cow::Borrowed(name),
        Some((Cow::Borrowed(label_key), label_value.to_string())),
        delta,
    );
}

#[cold]
fn counter_record(name: Cow<'static, str>, label: Option<(Cow<'static, str>, String)>, delta: u64) {
    let mut shard = lock_shard(counter_shard_index(&name));
    *shard
        .counters
        .entry(CounterKey { name, label })
        .or_insert(0) += delta;
}

/// Snapshot every counter series, merged across shards, sorted by key.
pub fn counters_snapshot() -> BTreeMap<CounterKey, u64> {
    let rec = recorder();
    let mut merged = BTreeMap::new();
    for shard in &rec.shards {
        let shard = shard.lock().unwrap_or_else(PoisonError::into_inner);
        for (key, value) in &shard.counters {
            *merged.entry(key.clone()).or_insert(0) += value;
        }
    }
    merged
}

/// Read one counter series back (0 if never incremented).
pub fn counter_value(name: &str, label: Option<(&str, &str)>) -> u64 {
    let shard = lock_shard(counter_shard_index(name));
    let key = CounterKey {
        name: Cow::Owned(name.to_string()),
        label: label.map(|(k, v)| (Cow::Owned(k.to_string()), v.to_string())),
    };
    shard.counters.get(&key).copied().unwrap_or(0)
}

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

/// Incremental Prometheus text-exposition writer. Callers feed series in
/// name-sorted order; a `# TYPE` header is emitted once per metric name.
#[derive(Default)]
pub struct PromText {
    out: String,
    last_name: String,
}

impl PromText {
    /// Start an empty exposition.
    pub fn new() -> Self {
        Self::default()
    }

    fn header(&mut self, name: &str, kind: &str) {
        if self.last_name != name {
            let _ = writeln!(self.out, "# TYPE {name} {kind}");
            self.last_name = name.to_string();
        }
    }

    /// Append one counter sample.
    pub fn counter(&mut self, name: &str, label: Option<(&str, &str)>, value: u64) {
        self.header(name, "counter");
        match label {
            Some((k, v)) => {
                let _ = writeln!(self.out, "{name}{{{k}=\"{}\"}} {value}", escape_label(v));
            }
            None => {
                let _ = writeln!(self.out, "{name} {value}");
            }
        }
    }

    /// Append one gauge sample.
    pub fn gauge(&mut self, name: &str, label: Option<(&str, &str)>, value: f64) {
        self.header(name, "gauge");
        match label {
            Some((k, v)) => {
                let _ = writeln!(self.out, "{name}{{{k}=\"{}\"}} {value}", escape_label(v));
            }
            None => {
                let _ = writeln!(self.out, "{name} {value}");
            }
        }
    }

    /// Append one fixed-bucket histogram: a cumulative `_bucket` sample per
    /// upper bound, the implicit `+Inf` bucket (equal to `count`), then
    /// `_sum` and `_count`. `cumulative[i]` is the number of observations
    /// at or below `bounds[i]` — already cumulative, and never larger than
    /// `count`.
    pub fn histogram(
        &mut self,
        name: &str,
        label: Option<(&str, &str)>,
        bounds: &[u64],
        cumulative: &[u64],
        sum: u64,
        count: u64,
    ) {
        self.header(name, "histogram");
        let extra = match label {
            Some((k, v)) => format!("{k}=\"{}\",", escape_label(v)),
            None => String::new(),
        };
        for (le, cum) in bounds.iter().zip(cumulative) {
            let _ = writeln!(self.out, "{name}_bucket{{{extra}le=\"{le}\"}} {cum}");
        }
        let _ = writeln!(self.out, "{name}_bucket{{{extra}le=\"+Inf\"}} {count}");
        match label {
            Some((k, v)) => {
                let v = escape_label(v);
                let _ = writeln!(self.out, "{name}_sum{{{k}=\"{v}\"}} {sum}");
                let _ = writeln!(self.out, "{name}_count{{{k}=\"{v}\"}} {count}");
            }
            None => {
                let _ = writeln!(self.out, "{name}_sum {sum}");
                let _ = writeln!(self.out, "{name}_count {count}");
            }
        }
    }

    /// Finish and return the exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Render every recorded counter as Prometheus text exposition.
pub fn prometheus_text() -> String {
    let mut prom = PromText::new();
    for (key, value) in counters_snapshot() {
        let label = key.label.as_ref().map(|(k, v)| (k.as_ref(), v.as_str()));
        prom.counter(&key.name, label, value);
    }
    prom.finish()
}

// ---------------------------------------------------------------------------
// Chrome trace-event JSON export
// ---------------------------------------------------------------------------

fn escape_json(value: &str, out: &mut String) {
    for ch in value.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Render all recorded spans as a Chrome trace-event JSON document
/// (`{"traceEvents": [...]}` of `ph:"X"` complete events, microsecond
/// timestamps) — loadable directly in `about://tracing` or Perfetto.
pub fn chrome_trace_json() -> String {
    let spans = spans_snapshot();
    let mut out = String::with_capacity(64 + spans.len() * 112);
    out.push_str("{\"traceEvents\":[");
    for (i, span) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        escape_json(&span.name, &mut out);
        out.push_str("\",\"cat\":\"");
        escape_json(span.cat, &mut out);
        let _ = write!(
            out,
            "\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"depth\":{}}}}}",
            span.tid, span.start_us, span.dur_us, span.depth
        );
    }
    out.push_str("]}");
    out
}

/// Write [`chrome_trace_json`] to `path`.
pub fn write_chrome_trace(path: &Path) -> io::Result<()> {
    std::fs::write(path, chrome_trace_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Telemetry state is process-global; serialize the tests that touch
    /// gates and the recorder.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disabled_mode_records_nothing() {
        let _g = guard();
        disable_all();
        reset();
        {
            let _s = span("test/cat", "noop");
            counter("test_noop_total", 3);
        }
        assert!(spans_snapshot().is_empty());
        assert!(counters_snapshot().is_empty());
    }

    #[test]
    fn spans_nest_and_export() {
        let _g = guard();
        disable_all();
        reset();
        enable_spans();
        {
            let _outer = span("test/outer", "parent");
            let _inner = span("test/inner", "child");
        }
        disable_all();
        let spans = spans_snapshot();
        assert_eq!(spans.len(), 2);
        let parent = spans.iter().find(|s| s.name == "parent").expect("parent");
        let child = spans.iter().find(|s| s.name == "child").expect("child");
        assert_eq!(parent.depth, 0);
        assert_eq!(child.depth, 1);
        assert!(child.start_us >= parent.start_us);
        assert!(child.start_us + child.dur_us <= parent.start_us + parent.dur_us);
        let json = chrome_trace_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"cat\":\"test/outer\""));
    }

    #[test]
    fn counters_merge_and_expose() {
        let _g = guard();
        disable_all();
        reset();
        enable_counters();
        counter("test_plain_total", 2);
        counter("test_plain_total", 3);
        counter_labeled("test_labeled_total", "verb", "analyze", 7);
        counter_labeled("test_labeled_total", "verb", "stats", 1);
        disable_all();
        assert_eq!(counter_value("test_plain_total", None), 5);
        assert_eq!(
            counter_value("test_labeled_total", Some(("verb", "analyze"))),
            7
        );
        let text = prometheus_text();
        assert!(text.contains("# TYPE test_plain_total counter"));
        assert!(text.contains("test_plain_total 5"));
        assert!(text.contains("test_labeled_total{verb=\"analyze\"} 7"));
        // One TYPE header per metric name even with two label values.
        assert_eq!(text.matches("# TYPE test_labeled_total").count(), 1);
    }

    #[test]
    fn json_escaping_is_sound() {
        let mut out = String::new();
        escape_json("a\"b\\c\nd\u{1}", &mut out);
        assert_eq!(out, "a\\\"b\\\\c\\nd\\u0001");
        assert_eq!(escape_label("a\"b\\c"), "a\\\"b\\\\c");
    }
}
